//! Uniform-unit allocation: demand paging and replacement strategies.
//!
//! "Storage can be allocated in blocks of equal size, which we call
//! 'page frames', a 'page' being the set of informational items that can
//! fit within a page frame. ... One of the great virtues of such systems
//! is their simplicity, since a page can be placed in any available page
//! frame" — §Uniformity of Unit of Storage Allocation.
//!
//! * [`paged::PagedMemory`] — the demand-paging engine: page table,
//!   frame pool, fault servicing, pinning and advice, and the ATLAS
//!   "keep one frame vacant" option;
//! * [`sensors::Sensors`] — the use/modify recording hardware of special
//!   facility (iv), interrogated by replacement strategies;
//! * [`replacement`] — the strategies themselves: FIFO, LRU, Clock,
//!   Random, the M44's class-based random selection, the ATLAS learning
//!   program, Belady's MIN (the offline optimum, as the yardstick his
//!   study \[1\] used), and a working-set simulator;
//! * [`page_size`] — helpers for page-size sweeps (experiment E6).

pub mod compact;
pub mod page_size;
pub mod paged;
pub mod replacement;
pub mod sensors;

pub use compact::CompactLru;
pub use paged::{AdviceOutcome, PagedMemory, PagingStats, TouchOutcome};
pub use replacement::{
    atlas::AtlasLearning, clock::ClockRepl, fifo::FifoRepl, lfu::LfuRepl, lru::LruRepl,
    min::MinRepl, nru::ClassRandomRepl, random::RandomRepl, ws::working_set_sim, Replacer,
};
pub use sensors::Sensors;
