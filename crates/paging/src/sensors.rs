//! Use and modify sensors.
//!
//! Special hardware facility (iv): "sensors which record the fact of
//! usage or of modifications of the information constituting a page or a
//! segment. Such sensors can then be interrogated in order to guide the
//! actions of a replacement strategy." The 360/67 provides "automatic
//! recording of the fact of use or of modification of the contents of
//! each page frame" (A.7).
//!
//! [`Sensors`] keeps one use bit and one modify bit per frame. The use
//! bits are typically reset periodically (or on inspection, as the Clock
//! strategy does); the modify bit is cleared only when a frame's
//! contents are (re)loaded, since it records whether the copy in backing
//! storage is stale.

use dsa_core::ids::FrameNo;

/// Per-frame use/modify recording hardware.
#[derive(Clone, Debug)]
pub struct Sensors {
    used: Vec<bool>,
    modified: Vec<bool>,
}

impl Sensors {
    /// Creates sensors for `frames` page frames, all clear.
    #[must_use]
    pub fn new(frames: usize) -> Sensors {
        Sensors {
            used: vec![false; frames],
            modified: vec![false; frames],
        }
    }

    /// Number of frames covered.
    #[must_use]
    pub fn frames(&self) -> usize {
        self.used.len()
    }

    /// Records an access to `frame` (setting the modify bit too when
    /// `write`).
    ///
    /// # Panics
    ///
    /// Panics if `frame` is out of range.
    pub fn touch(&mut self, frame: FrameNo, write: bool) {
        self.used[frame.index()] = true;
        if write {
            self.modified[frame.index()] = true;
        }
    }

    /// The use bit of `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is out of range.
    #[must_use]
    pub fn used(&self, frame: FrameNo) -> bool {
        self.used[frame.index()]
    }

    /// The modify bit of `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is out of range.
    #[must_use]
    pub fn modified(&self, frame: FrameNo) -> bool {
        self.modified[frame.index()]
    }

    /// Clears the use bit of `frame` (the Clock strategy's second
    /// chance; periodic scans).
    ///
    /// # Panics
    ///
    /// Panics if `frame` is out of range.
    pub fn reset_use(&mut self, frame: FrameNo) {
        self.used[frame.index()] = false;
    }

    /// Clears all use bits (a periodic reference-bit sweep).
    pub fn reset_all_use(&mut self) {
        self.used.iter_mut().for_each(|b| *b = false);
    }

    /// Clears both bits of `frame` — called when new information is
    /// loaded into it.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is out of range.
    pub fn clear(&mut self, frame: FrameNo) {
        self.used[frame.index()] = false;
        self.modified[frame.index()] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_start_clear() {
        let s = Sensors::new(4);
        assert_eq!(s.frames(), 4);
        for i in 0..4 {
            assert!(!s.used(FrameNo(i)));
            assert!(!s.modified(FrameNo(i)));
        }
    }

    #[test]
    fn touch_sets_bits() {
        let mut s = Sensors::new(2);
        s.touch(FrameNo(0), false);
        assert!(s.used(FrameNo(0)));
        assert!(!s.modified(FrameNo(0)));
        s.touch(FrameNo(0), true);
        assert!(s.modified(FrameNo(0)));
        assert!(!s.used(FrameNo(1)));
    }

    #[test]
    fn reset_use_keeps_modify() {
        let mut s = Sensors::new(1);
        s.touch(FrameNo(0), true);
        s.reset_use(FrameNo(0));
        assert!(!s.used(FrameNo(0)));
        assert!(s.modified(FrameNo(0)), "modify bit must survive use resets");
    }

    #[test]
    fn reset_all_use_sweeps() {
        let mut s = Sensors::new(3);
        for i in 0..3 {
            s.touch(FrameNo(i), false);
        }
        s.reset_all_use();
        for i in 0..3 {
            assert!(!s.used(FrameNo(i)));
        }
    }

    #[test]
    fn clear_on_load_resets_both() {
        let mut s = Sensors::new(1);
        s.touch(FrameNo(0), true);
        s.clear(FrameNo(0));
        assert!(!s.used(FrameNo(0)));
        assert!(!s.modified(FrameNo(0)));
    }
}
