//! The M44/44X class-based random strategy.
//!
//! Appendix A.2: "One of particular interest selects at random from a
//! set of equally acceptable candidates determined on the basis of
//! frequency of usage and whether or not a page has been modified (see
//! Belady)."
//!
//! Frames are classed by their (use, modify) sensor bits; the victim is
//! drawn uniformly from the most-replaceable non-empty class:
//!
//! | class | used | modified | rationale |
//! |---|---|---|---|
//! | 0 | no | no | idle and clean: free to drop |
//! | 1 | no | yes | idle but needs write-back |
//! | 2 | yes | no | active but clean |
//! | 3 | yes | yes | active and dirty: last resort |
//!
//! Use bits are reset after each victim selection, so "use" means "used
//! since the last replacement decision" — a crude frequency estimate,
//! as on the real machine.

use dsa_core::clock::VirtualTime;
use dsa_core::ids::{FrameNo, PageNo};

use crate::replacement::{Replacer, TinyRng};
use crate::sensors::Sensors;

/// Random-within-lowest-class replacement (NRU with random
/// tie-breaking).
#[derive(Clone, Debug)]
pub struct ClassRandomRepl {
    rng: TinyRng,
    /// Decisions between use-bit sweeps.
    decisions_per_sweep: u32,
    decisions: u32,
}

impl ClassRandomRepl {
    /// Creates the policy; use bits are swept every
    /// `decisions_per_sweep` victim selections (1 = after every
    /// decision).
    #[must_use]
    pub fn new(seed: u64, decisions_per_sweep: u32) -> ClassRandomRepl {
        ClassRandomRepl {
            rng: TinyRng::new(seed),
            decisions_per_sweep: decisions_per_sweep.max(1),
            decisions: 0,
        }
    }
}

impl Replacer for ClassRandomRepl {
    fn loaded(&mut self, _frame: FrameNo, _page: PageNo, _now: VirtualTime) {}

    // Invariant: the trait contract guarantees `eligible` is never
    // empty, so the selection below always yields a frame.
    #[allow(clippy::expect_used)]
    fn victim(
        &mut self,
        eligible: &[FrameNo],
        sensors: &mut Sensors,
        _now: VirtualTime,
    ) -> FrameNo {
        let class_of = |s: &Sensors, f: FrameNo| -> u8 {
            (u8::from(s.used(f)) << 1) | u8::from(s.modified(f))
        };
        let best = eligible
            .iter()
            .map(|&f| class_of(sensors, f))
            .min()
            .expect("eligible is never empty");
        let candidates: Vec<FrameNo> = eligible
            .iter()
            .copied()
            .filter(|&f| class_of(sensors, f) == best)
            .collect();
        let victim = candidates[self.rng.below(candidates.len())];
        self.decisions += 1;
        if self.decisions >= self.decisions_per_sweep {
            self.decisions = 0;
            sensors.reset_all_use();
        }
        victim
    }

    fn name(&self) -> &'static str {
        "class-random (M44)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefers_unused_clean_frames() {
        let mut r = ClassRandomRepl::new(1, 1000);
        let mut s = Sensors::new(4);
        let all = [FrameNo(0), FrameNo(1), FrameNo(2), FrameNo(3)];
        s.touch(FrameNo(0), true); // used+dirty
        s.touch(FrameNo(1), false); // used
        s.touch(FrameNo(2), true);
        s.reset_use(FrameNo(2)); // dirty only
                                 // Frame 3: untouched -> class 0, must always win.
        for t in 0..20 {
            assert_eq!(r.victim(&all, &mut s, t), FrameNo(3));
        }
    }

    #[test]
    fn dirty_idle_beats_clean_active() {
        let mut r = ClassRandomRepl::new(2, 1000);
        let mut s = Sensors::new(2);
        s.touch(FrameNo(0), true);
        s.reset_use(FrameNo(0)); // idle, dirty: class 1
        s.touch(FrameNo(1), false); // active, clean: class 2
        assert_eq!(r.victim(&[FrameNo(0), FrameNo(1)], &mut s, 0), FrameNo(0));
    }

    #[test]
    fn random_among_equal_candidates() {
        let mut r = ClassRandomRepl::new(3, 1000);
        let mut s = Sensors::new(4);
        let all = [FrameNo(0), FrameNo(1), FrameNo(2), FrameNo(3)];
        let mut seen = [false; 4];
        for t in 0..200 {
            seen[r.victim(&all, &mut s, t).index()] = true;
        }
        assert!(
            seen.iter().all(|&x| x),
            "all equal-class frames should be chosen sometimes"
        );
    }

    #[test]
    fn sweep_resets_use_bits() {
        let mut r = ClassRandomRepl::new(4, 1);
        let mut s = Sensors::new(2);
        s.touch(FrameNo(0), false);
        s.touch(FrameNo(1), false);
        let _ = r.victim(&[FrameNo(0), FrameNo(1)], &mut s, 0);
        assert!(
            !s.used(FrameNo(0)) && !s.used(FrameNo(1)),
            "sweep after decision"
        );
    }
}
