//! Belady's MIN — the offline optimal replacement policy.
//!
//! MIN evicts the resident page whose next use lies farthest in the
//! future (or never comes). It requires the full future reference
//! string, so it is not a realizable strategy; Belady's study \[1\] —
//! the evaluation the paper defers to — used it as the yardstick every
//! realizable policy is measured against, and so do experiments E4 and
//! E12. A property test in this crate checks the defining bound: no
//! policy faults less than MIN on any trace.

use std::collections::{BTreeSet, HashMap};

use dsa_core::clock::VirtualTime;
use dsa_core::ids::{FrameNo, PageNo};

use crate::replacement::Replacer;
use crate::sensors::Sensors;

/// The per-position next-use table MIN reasons from, as a standalone
/// pass: entry *i* is the position of the next reference to `trace[i]`
/// strictly after *i*, or [`VirtualTime::MAX`] if the page never recurs.
///
/// [`MinRepl`] keeps the same information as per-page sorted position
/// lists (it must answer "next use after `now`" for arbitrary `now`);
/// consumers that walk the trace front to back — the one-pass OPT
/// distance engine in `dsa-stackdist` — only ever need the next use *at
/// the reference itself*, which one backward sweep precomputes exactly.
#[must_use]
pub fn next_use_times(trace: &[PageNo]) -> Vec<VirtualTime> {
    let mut next = vec![VirtualTime::MAX; trace.len()];
    let mut seen: HashMap<PageNo, VirtualTime> = HashMap::new();
    for (i, &p) in trace.iter().enumerate().rev() {
        if let Some(&later) = seen.get(&p) {
            next[i] = later;
        }
        seen.insert(p, i as VirtualTime);
    }
    next
}

/// The offline optimum, constructed from the full reference string.
///
/// Victim selection keeps a `BTreeSet<(next use, frame)>` whose tail is
/// the farthest-out frame. The cached next-use per frame stays valid
/// between touches: under the replay contract (reference *i* at
/// `now == i`) a resident page's next use can only pass without a
/// `touched` callback if the page was not referenced — impossible, since
/// that position *is* a reference to it. Pinning falls back to the plain
/// scan over `eligible`.
#[derive(Clone, Debug)]
pub struct MinRepl {
    /// For each page, the sorted positions at which it is referenced.
    uses: HashMap<PageNo, Vec<VirtualTime>>,
    /// Page currently in each frame.
    resident: HashMap<FrameNo, PageNo>,
    /// Cached next use per resident frame (`VirtualTime::MAX` = never
    /// referenced again). Mirrors `by_next` exactly.
    cached: HashMap<FrameNo, VirtualTime>,
    /// Farthest-next-use index: `(next use, frame)`, farthest last.
    by_next: BTreeSet<(VirtualTime, FrameNo)>,
}

impl MinRepl {
    /// Builds the oracle from the page-granular reference string that
    /// will be replayed. Reference *i* of the replay must be made at
    /// `now == i`.
    #[must_use]
    pub fn new(trace: &[PageNo]) -> MinRepl {
        let mut uses: HashMap<PageNo, Vec<VirtualTime>> = HashMap::new();
        for (i, &p) in trace.iter().enumerate() {
            uses.entry(p).or_default().push(i as VirtualTime);
        }
        MinRepl {
            uses,
            resident: HashMap::new(),
            cached: HashMap::new(),
            by_next: BTreeSet::new(),
        }
    }

    /// The next use of `page` strictly after `now`, or `None`.
    fn next_use(&self, page: PageNo, now: VirtualTime) -> Option<VirtualTime> {
        let positions = self.uses.get(&page)?;
        let idx = positions.partition_point(|&t| t <= now);
        positions.get(idx).copied()
    }

    /// Re-caches `frame`'s next use as of `now`.
    fn recache(&mut self, frame: FrameNo, page: PageNo, now: VirtualTime) {
        let nu = self.next_use(page, now).unwrap_or(VirtualTime::MAX);
        if let Some(old) = self.cached.insert(frame, nu) {
            self.by_next.remove(&(old, frame));
        }
        self.by_next.insert((nu, frame));
    }
}

impl Replacer for MinRepl {
    fn loaded(&mut self, frame: FrameNo, page: PageNo, now: VirtualTime) {
        self.resident.insert(frame, page);
        self.recache(frame, page, now);
    }

    fn touched(&mut self, frame: FrameNo, page: PageNo, now: VirtualTime, _write: bool) {
        self.recache(frame, page, now);
    }

    // Invariant: the trait contract guarantees `eligible` is never
    // empty, so the selection below always yields a frame.
    #[allow(clippy::expect_used)]
    fn victim(
        &mut self,
        eligible: &[FrameNo],
        _sensors: &mut Sensors,
        now: VirtualTime,
    ) -> FrameNo {
        // Every eligible frame is resident (hence cached), so equal
        // lengths mean the sets coincide. The index tail is the largest
        // next use; among ties — possible only at `VirtualTime::MAX`,
        // since any finite position references exactly one page — it is
        // the highest frame, matching the ascending scan's last-maximum
        // rule below.
        if eligible.len() == self.cached.len() {
            if let Some(&(_, frame)) = self.by_next.last() {
                return frame;
            }
        }
        // Pinned frames shrink `eligible` below the resident set: scan.
        *eligible
            .iter()
            .max_by_key(|f| {
                let page = self.resident.get(f).copied().unwrap_or(PageNo(u64::MAX));
                // Never-used-again sorts above everything.
                self.next_use(page, now).unwrap_or(VirtualTime::MAX)
            })
            .expect("eligible is never empty")
    }

    fn evicted(&mut self, frame: FrameNo) {
        self.resident.remove(&frame);
        if let Some(old) = self.cached.remove(&frame) {
            self.by_next.remove(&(old, frame));
        }
    }

    fn name(&self) -> &'static str {
        "MIN (Belady)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(xs: &[u64]) -> Vec<PageNo> {
        xs.iter().map(|&x| PageNo(x)).collect()
    }

    #[test]
    fn next_use_times_matches_lookup() {
        let trace = pages(&[1, 2, 1, 3, 2]);
        let next = next_use_times(&trace);
        assert_eq!(
            next,
            vec![2, 4, VirtualTime::MAX, VirtualTime::MAX, VirtualTime::MAX]
        );
        // Agrees with MinRepl's own per-page lists at every position.
        let r = MinRepl::new(&trace);
        for (i, &p) in trace.iter().enumerate() {
            assert_eq!(
                r.next_use(p, i as VirtualTime).unwrap_or(VirtualTime::MAX),
                next[i],
                "position {i}"
            );
        }
        assert!(next_use_times(&[]).is_empty());
    }

    #[test]
    fn next_use_lookup() {
        let r = MinRepl::new(&pages(&[1, 2, 1, 3, 2]));
        assert_eq!(r.next_use(PageNo(1), 0), Some(2));
        assert_eq!(r.next_use(PageNo(1), 2), None);
        assert_eq!(r.next_use(PageNo(2), 0), Some(1));
        assert_eq!(r.next_use(PageNo(2), 1), Some(4));
        assert_eq!(r.next_use(PageNo(9), 0), None);
    }

    #[test]
    fn evicts_farthest_next_use() {
        // Trace: 1 2 3 | at t=3 page 4 arrives. Next uses after 3:
        // p1 at 4, p2 at 6, p3 at 5 -> evict p2's frame.
        let trace = pages(&[1, 2, 3, 4, 1, 3, 2]);
        let mut r = MinRepl::new(&trace);
        let mut s = Sensors::new(3);
        r.loaded(FrameNo(0), PageNo(1), 0);
        r.loaded(FrameNo(1), PageNo(2), 1);
        r.loaded(FrameNo(2), PageNo(3), 2);
        let all = [FrameNo(0), FrameNo(1), FrameNo(2)];
        assert_eq!(r.victim(&all, &mut s, 3), FrameNo(1));
    }

    #[test]
    fn never_used_again_is_first_choice() {
        let trace = pages(&[1, 2, 3, 4, 1, 2]);
        let mut r = MinRepl::new(&trace);
        let mut s = Sensors::new(3);
        r.loaded(FrameNo(0), PageNo(1), 0);
        r.loaded(FrameNo(1), PageNo(2), 1);
        r.loaded(FrameNo(2), PageNo(3), 2);
        // Page 3 never recurs after t=2: its frame must go.
        let all = [FrameNo(0), FrameNo(1), FrameNo(2)];
        assert_eq!(r.victim(&all, &mut s, 3), FrameNo(2));
    }

    #[test]
    fn eviction_forgets_residency() {
        let trace = pages(&[1, 2]);
        let mut r = MinRepl::new(&trace);
        r.loaded(FrameNo(0), PageNo(1), 0);
        r.evicted(FrameNo(0));
        assert!(r.resident.is_empty());
    }
}
