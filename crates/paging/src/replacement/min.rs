//! Belady's MIN — the offline optimal replacement policy.
//!
//! MIN evicts the resident page whose next use lies farthest in the
//! future (or never comes). It requires the full future reference
//! string, so it is not a realizable strategy; Belady's study \[1\] —
//! the evaluation the paper defers to — used it as the yardstick every
//! realizable policy is measured against, and so do experiments E4 and
//! E12. A property test in this crate checks the defining bound: no
//! policy faults less than MIN on any trace.

use std::collections::HashMap;

use dsa_core::clock::VirtualTime;
use dsa_core::ids::{FrameNo, PageNo};

use crate::replacement::Replacer;
use crate::sensors::Sensors;

/// The offline optimum, constructed from the full reference string.
#[derive(Clone, Debug)]
pub struct MinRepl {
    /// For each page, the sorted positions at which it is referenced.
    uses: HashMap<PageNo, Vec<VirtualTime>>,
    /// Page currently in each frame.
    resident: HashMap<FrameNo, PageNo>,
}

impl MinRepl {
    /// Builds the oracle from the page-granular reference string that
    /// will be replayed. Reference *i* of the replay must be made at
    /// `now == i`.
    #[must_use]
    pub fn new(trace: &[PageNo]) -> MinRepl {
        let mut uses: HashMap<PageNo, Vec<VirtualTime>> = HashMap::new();
        for (i, &p) in trace.iter().enumerate() {
            uses.entry(p).or_default().push(i as VirtualTime);
        }
        MinRepl {
            uses,
            resident: HashMap::new(),
        }
    }

    /// The next use of `page` strictly after `now`, or `None`.
    fn next_use(&self, page: PageNo, now: VirtualTime) -> Option<VirtualTime> {
        let positions = self.uses.get(&page)?;
        let idx = positions.partition_point(|&t| t <= now);
        positions.get(idx).copied()
    }
}

impl Replacer for MinRepl {
    fn loaded(&mut self, frame: FrameNo, page: PageNo, _now: VirtualTime) {
        self.resident.insert(frame, page);
    }

    // Invariant: the trait contract guarantees `eligible` is never
    // empty, so the selection below always yields a frame.
    #[allow(clippy::expect_used)]
    fn victim(
        &mut self,
        eligible: &[FrameNo],
        _sensors: &mut Sensors,
        now: VirtualTime,
    ) -> FrameNo {
        *eligible
            .iter()
            .max_by_key(|f| {
                let page = self.resident.get(f).copied().unwrap_or(PageNo(u64::MAX));
                // Never-used-again sorts above everything.
                self.next_use(page, now).unwrap_or(VirtualTime::MAX)
            })
            .expect("eligible is never empty")
    }

    fn evicted(&mut self, frame: FrameNo) {
        self.resident.remove(&frame);
    }

    fn name(&self) -> &'static str {
        "MIN (Belady)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(xs: &[u64]) -> Vec<PageNo> {
        xs.iter().map(|&x| PageNo(x)).collect()
    }

    #[test]
    fn next_use_lookup() {
        let r = MinRepl::new(&pages(&[1, 2, 1, 3, 2]));
        assert_eq!(r.next_use(PageNo(1), 0), Some(2));
        assert_eq!(r.next_use(PageNo(1), 2), None);
        assert_eq!(r.next_use(PageNo(2), 0), Some(1));
        assert_eq!(r.next_use(PageNo(2), 1), Some(4));
        assert_eq!(r.next_use(PageNo(9), 0), None);
    }

    #[test]
    fn evicts_farthest_next_use() {
        // Trace: 1 2 3 | at t=3 page 4 arrives. Next uses after 3:
        // p1 at 4, p2 at 6, p3 at 5 -> evict p2's frame.
        let trace = pages(&[1, 2, 3, 4, 1, 3, 2]);
        let mut r = MinRepl::new(&trace);
        let mut s = Sensors::new(3);
        r.loaded(FrameNo(0), PageNo(1), 0);
        r.loaded(FrameNo(1), PageNo(2), 1);
        r.loaded(FrameNo(2), PageNo(3), 2);
        let all = [FrameNo(0), FrameNo(1), FrameNo(2)];
        assert_eq!(r.victim(&all, &mut s, 3), FrameNo(1));
    }

    #[test]
    fn never_used_again_is_first_choice() {
        let trace = pages(&[1, 2, 3, 4, 1, 2]);
        let mut r = MinRepl::new(&trace);
        let mut s = Sensors::new(3);
        r.loaded(FrameNo(0), PageNo(1), 0);
        r.loaded(FrameNo(1), PageNo(2), 1);
        r.loaded(FrameNo(2), PageNo(3), 2);
        // Page 3 never recurs after t=2: its frame must go.
        let all = [FrameNo(0), FrameNo(1), FrameNo(2)];
        assert_eq!(r.victim(&all, &mut s, 3), FrameNo(2));
    }

    #[test]
    fn eviction_forgets_residency() {
        let trace = pages(&[1, 2]);
        let mut r = MinRepl::new(&trace);
        r.loaded(FrameNo(0), PageNo(1), 0);
        r.evicted(FrameNo(0));
        assert!(r.resident.is_empty());
    }
}
