//! The fixed-allocation policy cast as an indexable registry.
//!
//! Experiments E4 and E12 both sweep the same cast of replacement
//! policies; keeping the count, the constructors, and the table labels
//! in one place (mirroring `dsa_machines::presets::machine_by_index`)
//! means adding a policy cannot desync them. Indexes follow E4's table
//! order, which is Belady's presentation order: the offline bound
//! first, then the realizable policies.

use dsa_core::ids::PageNo;

use crate::replacement::atlas::AtlasLearning;
use crate::replacement::clock::ClockRepl;
use crate::replacement::fifo::FifoRepl;
use crate::replacement::lfu::LfuRepl;
use crate::replacement::lru::LruRepl;
use crate::replacement::min::MinRepl;
use crate::replacement::nru::ClassRandomRepl;
use crate::replacement::random::RandomRepl;
use crate::replacement::Replacer;

/// Index of Belady's MIN (the offline optimum).
pub const MIN: usize = 0;
/// Index of true LRU.
pub const LRU: usize = 1;
/// Index of Clock / second chance.
pub const CLOCK: usize = 2;
/// Index of FIFO.
pub const FIFO: usize = 3;
/// Index of the M44's class-based random selection.
pub const CLASS_RANDOM: usize = 4;
/// Index of pure random selection.
pub const RANDOM: usize = 5;
/// Index of the ATLAS learning program.
pub const ATLAS: usize = 6;
/// Index of aged LFU.
pub const LFU_AGED: usize = 7;

/// Number of registered policies ([`policy_by_index`]'s domain).
#[must_use]
pub const fn policy_count() -> usize {
    8
}

/// Constructs policy `index` for a memory of `frames` frames replaying
/// `trace` (MIN needs the future; Clock needs the frame count; the
/// rest ignore both). Lets a parallel sweep build each worker's policy
/// on the worker itself.
///
/// # Panics
///
/// Panics if `index >= policy_count()`.
#[must_use]
pub fn policy_by_index(index: usize, frames: usize, trace: &[PageNo]) -> Box<dyn Replacer> {
    match index {
        MIN => Box::new(MinRepl::new(trace)),
        LRU => Box::new(LruRepl::new()),
        CLOCK => Box::new(ClockRepl::new(frames)),
        FIFO => Box::new(FifoRepl::new()),
        CLASS_RANDOM => Box::new(ClassRandomRepl::new(4, 8)),
        RANDOM => Box::new(RandomRepl::new(4)),
        ATLAS => Box::new(AtlasLearning::new()),
        LFU_AGED => Box::new(LfuRepl::with_aging(32)),
        _ => panic!("policy index {index} out of range"),
    }
}

/// The experiment-table label of policy `index` (E4's row captions,
/// which annotate provenance and so differ from `Replacer::name`).
///
/// # Panics
///
/// Panics if `index >= policy_count()`.
#[must_use]
pub fn policy_label(index: usize) -> &'static str {
    match index {
        MIN => "MIN (Belady)",
        LRU => "LRU",
        CLOCK => "Clock",
        FIFO => "FIFO",
        CLASS_RANDOM => "class-random (M44)",
        RANDOM => "Random",
        ATLAS => "ATLAS learning",
        LFU_AGED => "LFU (aged)",
        _ => panic!("policy index {index} out of range"),
    }
}

/// Whether policy `index` is an exact stack algorithm — inclusion
/// property holds and `dsa-stackdist` computes its whole fault curve
/// in one pass. True for MIN and LRU only: FIFO and Clock lack
/// inclusion outright (Belady's anomaly), the randomized policies are
/// stochastic, ATLAS's learned periods depend on its own eviction
/// history, and aged LFU's periodic halving ties its ranks to fault
/// timing.
#[must_use]
pub fn is_exact_stack(index: usize) -> bool {
    matches!(index, MIN | LRU)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_index_constructs_and_labels() {
        let trace: Vec<PageNo> = (0..50u64).map(|i| PageNo(i % 7)).collect();
        let mut labels = Vec::new();
        for i in 0..policy_count() {
            let p = policy_by_index(i, 8, &trace);
            assert!(!p.name().is_empty());
            labels.push(policy_label(i));
        }
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), policy_count(), "labels must be distinct");
    }

    #[test]
    fn named_indexes_agree_with_constructors() {
        let trace: Vec<PageNo> = (0..10u64).map(PageNo).collect();
        assert_eq!(policy_by_index(MIN, 4, &trace).name(), "MIN (Belady)");
        assert_eq!(policy_by_index(LRU, 4, &trace).name(), "LRU");
        assert_eq!(policy_by_index(FIFO, 4, &trace).name(), "FIFO");
        assert_eq!(policy_by_index(ATLAS, 4, &trace).name(), "ATLAS learning");
    }

    #[test]
    fn only_min_and_lru_are_exact_stack() {
        let stack: Vec<usize> = (0..policy_count()).filter(|&i| is_exact_stack(i)).collect();
        assert_eq!(stack, vec![MIN, LRU]);
    }
}
