//! First-in, first-out replacement.

use std::collections::VecDeque;

use dsa_core::clock::VirtualTime;
use dsa_core::ids::{FrameNo, PageNo};

use crate::replacement::Replacer;
use crate::sensors::Sensors;

/// Evicts the page that has been resident longest, regardless of use.
#[derive(Clone, Debug, Default)]
pub struct FifoRepl {
    queue: VecDeque<FrameNo>,
}

impl FifoRepl {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> FifoRepl {
        FifoRepl::default()
    }
}

impl Replacer for FifoRepl {
    fn loaded(&mut self, frame: FrameNo, _page: PageNo, _now: VirtualTime) {
        self.queue.push_back(frame);
    }

    // Invariant: the trait contract guarantees `eligible` is never
    // empty, so the selection below always yields a frame.
    #[allow(clippy::expect_used)]
    fn victim(
        &mut self,
        eligible: &[FrameNo],
        _sensors: &mut Sensors,
        _now: VirtualTime,
    ) -> FrameNo {
        // The oldest-loaded eligible frame.
        let pos = self
            .queue
            .iter()
            .position(|f| eligible.contains(f))
            .expect("some eligible frame must be in the load queue");
        self.queue[pos]
    }

    fn evicted(&mut self, frame: FrameNo) {
        if let Some(pos) = self.queue.iter().position(|&f| f == frame) {
            self.queue.remove(pos);
        }
    }

    fn name(&self) -> &'static str {
        "FIFO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_load_order() {
        let mut r = FifoRepl::new();
        let mut s = Sensors::new(3);
        r.loaded(FrameNo(0), PageNo(10), 0);
        r.loaded(FrameNo(1), PageNo(11), 1);
        r.loaded(FrameNo(2), PageNo(12), 2);
        // Touching must not matter.
        r.touched(FrameNo(0), PageNo(10), 3, false);
        let all = [FrameNo(0), FrameNo(1), FrameNo(2)];
        assert_eq!(r.victim(&all, &mut s, 4), FrameNo(0));
        r.evicted(FrameNo(0));
        assert_eq!(r.victim(&all[1..], &mut s, 5), FrameNo(1));
    }

    #[test]
    fn respects_eligibility() {
        let mut r = FifoRepl::new();
        let mut s = Sensors::new(3);
        r.loaded(FrameNo(0), PageNo(10), 0);
        r.loaded(FrameNo(1), PageNo(11), 1);
        // Frame 0 pinned (not eligible): the next oldest is chosen.
        assert_eq!(r.victim(&[FrameNo(1)], &mut s, 2), FrameNo(1));
    }

    #[test]
    fn reload_moves_to_back() {
        let mut r = FifoRepl::new();
        let mut s = Sensors::new(2);
        r.loaded(FrameNo(0), PageNo(10), 0);
        r.loaded(FrameNo(1), PageNo(11), 1);
        r.evicted(FrameNo(0));
        r.loaded(FrameNo(0), PageNo(12), 2); // reused frame, new page
        let all = [FrameNo(0), FrameNo(1)];
        assert_eq!(r.victim(&all, &mut s, 3), FrameNo(1));
    }
}
