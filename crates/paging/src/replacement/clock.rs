//! Clock (second-chance) replacement.
//!
//! The essentially cyclical strategy the B5000 developers "found to be
//! effective" (A.3), upgraded with the use-bit sensors of special
//! hardware facility (iv): the hand sweeps frames in a fixed circular
//! order, clearing use bits and evicting the first frame found unused
//! since the previous sweep.

use dsa_core::clock::VirtualTime;
use dsa_core::ids::{FrameNo, PageNo};

use crate::replacement::Replacer;
use crate::sensors::Sensors;

/// The clock hand over a fixed set of frames.
#[derive(Clone, Debug)]
pub struct ClockRepl {
    frames: usize,
    hand: usize,
    /// When true, the use bit is ignored and the policy degenerates to
    /// pure cyclic replacement (the original B5000 form).
    pure_cyclic: bool,
}

impl ClockRepl {
    /// Second-chance clock over `frames` frames.
    #[must_use]
    pub fn new(frames: usize) -> ClockRepl {
        ClockRepl {
            frames,
            hand: 0,
            pure_cyclic: false,
        }
    }

    /// Pure cyclic replacement (no use-bit consultation) — the B5000
    /// variant, useful as an ablation.
    #[must_use]
    pub fn cyclic(frames: usize) -> ClockRepl {
        ClockRepl {
            frames,
            hand: 0,
            pure_cyclic: true,
        }
    }
}

impl Replacer for ClockRepl {
    fn loaded(&mut self, _frame: FrameNo, _page: PageNo, _now: VirtualTime) {}

    fn victim(
        &mut self,
        eligible: &[FrameNo],
        sensors: &mut Sensors,
        _now: VirtualTime,
    ) -> FrameNo {
        // Sweep at most two full turns: one may be spent clearing use
        // bits, after which some eligible frame must show clear.
        for _ in 0..2 * self.frames {
            let f = FrameNo(self.hand as u64);
            self.hand = (self.hand + 1) % self.frames;
            if !eligible.contains(&f) {
                continue;
            }
            if self.pure_cyclic {
                return f;
            }
            if sensors.used(f) {
                sensors.reset_use(f); // second chance
            } else {
                return f;
            }
        }
        // All eligible frames were re-used during the sweep; take the
        // one now under the hand.
        *eligible
            .iter()
            .find(|f| f.index() >= self.hand)
            .unwrap_or(&eligible[0])
    }

    fn name(&self) -> &'static str {
        if self.pure_cyclic {
            "cyclic"
        } else {
            "Clock"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_gives_second_chance() {
        let mut r = ClockRepl::new(3);
        let mut s = Sensors::new(3);
        let all = [FrameNo(0), FrameNo(1), FrameNo(2)];
        s.touch(FrameNo(0), false);
        s.touch(FrameNo(1), false);
        // Frame 2 unused: hand clears 0 and 1, evicts 2.
        assert_eq!(r.victim(&all, &mut s, 0), FrameNo(2));
        assert!(!s.used(FrameNo(0)), "use bit cleared in passing");
        assert!(!s.used(FrameNo(1)));
    }

    #[test]
    fn clock_advances_hand_between_victims() {
        let mut r = ClockRepl::new(3);
        let mut s = Sensors::new(3);
        let all = [FrameNo(0), FrameNo(1), FrameNo(2)];
        assert_eq!(r.victim(&all, &mut s, 0), FrameNo(0));
        assert_eq!(r.victim(&all, &mut s, 1), FrameNo(1));
        assert_eq!(r.victim(&all, &mut s, 2), FrameNo(2));
        assert_eq!(r.victim(&all, &mut s, 3), FrameNo(0));
    }

    #[test]
    fn all_used_frames_still_yield_a_victim() {
        let mut r = ClockRepl::new(2);
        let mut s = Sensors::new(2);
        let all = [FrameNo(0), FrameNo(1)];
        s.touch(FrameNo(0), false);
        s.touch(FrameNo(1), false);
        let v = r.victim(&all, &mut s, 0);
        assert!(all.contains(&v));
    }

    #[test]
    fn cyclic_ignores_use_bits() {
        let mut r = ClockRepl::cyclic(2);
        let mut s = Sensors::new(2);
        s.touch(FrameNo(0), false);
        let all = [FrameNo(0), FrameNo(1)];
        assert_eq!(
            r.victim(&all, &mut s, 0),
            FrameNo(0),
            "cyclic takes the hand's frame"
        );
        assert!(s.used(FrameNo(0)), "cyclic must not clear use bits");
        assert_eq!(r.name(), "cyclic");
    }

    #[test]
    fn skips_ineligible_frames() {
        let mut r = ClockRepl::new(3);
        let mut s = Sensors::new(3);
        // Only frame 2 eligible.
        assert_eq!(r.victim(&[FrameNo(2)], &mut s, 0), FrameNo(2));
    }
}
