//! The ATLAS "learning program".
//!
//! Appendix A.1: "The learning program makes use of information which
//! records the length of time since the page in each page frame has
//! been accessed and the previous duration of inactivity for that page.
//! It attempts to find a page which appears to be no longer in use. If
//! all the pages are in current use it tries to choose the one which,
//! if the recent pattern of use is maintained, will be the last to be
//! required." (Kilburn et al., *One-level storage system*.)
//!
//! Per page (history survives eviction — the drum copy of the learning
//! data on the real machine) we keep `t` — time since last access — and
//! `T` — the previous inactivity period (last inter-access gap, whether
//! spent in core or on the drum):
//!
//! 1. any page with `t > T + slack` "appears to be no longer in use";
//!    among such pages the one with the largest `t - T` is chosen;
//! 2. otherwise every page is assumed periodic with period `T`, so its
//!    next use is expected in `T - t`; the page with the largest `T - t`
//!    is "the last to be required".
//!
//! On strict loop nests (experiment E12) this learns each page's period
//! and evicts the page whose return lies farthest away — including the
//! just-used long-period page LRU would keep — so it beats LRU there
//! and on cyclic sweeps; on irregular references the learned periods
//! mislead it, exactly the trade Belady's study reported.

use std::collections::HashMap;

use dsa_core::clock::VirtualTime;
use dsa_core::ids::{FrameNo, PageNo};

use crate::replacement::Replacer;
use crate::sensors::Sensors;

/// Per-page learning state.
#[derive(Clone, Copy, Debug)]
struct PageHistory {
    last_use: VirtualTime,
    prev_gap: VirtualTime,
}

/// The ATLAS learning replacement strategy.
#[derive(Clone, Debug)]
pub struct AtlasLearning {
    /// Per-page history, persistent across residencies.
    history: HashMap<PageNo, PageHistory>,
    /// Which page each frame currently holds.
    resident: HashMap<FrameNo, PageNo>,
    /// Tolerance before a page is deemed out of use (Kilburn used one
    /// drum-revolution worth of time; in reference time a small slack).
    slack: VirtualTime,
}

impl AtlasLearning {
    /// Creates the policy with the default slack of 1 reference.
    #[must_use]
    pub fn new() -> AtlasLearning {
        AtlasLearning::with_slack(1)
    }

    /// Creates the policy with an explicit out-of-use slack.
    #[must_use]
    pub fn with_slack(slack: VirtualTime) -> AtlasLearning {
        AtlasLearning {
            history: HashMap::new(),
            resident: HashMap::new(),
            slack,
        }
    }

    fn note_use(&mut self, page: PageNo, now: VirtualTime) {
        match self.history.get_mut(&page) {
            Some(h) => {
                let gap = now.saturating_sub(h.last_use);
                if gap > 0 {
                    h.prev_gap = gap;
                }
                h.last_use = now;
            }
            None => {
                self.history.insert(
                    page,
                    PageHistory {
                        last_use: now,
                        prev_gap: 0,
                    },
                );
            }
        }
    }
}

impl Default for AtlasLearning {
    fn default() -> Self {
        AtlasLearning::new()
    }
}

impl Replacer for AtlasLearning {
    fn loaded(&mut self, frame: FrameNo, page: PageNo, now: VirtualTime) {
        self.resident.insert(frame, page);
        // The load is caused by a use; the gap since the previous use is
        // precisely the "previous duration of inactivity".
        self.note_use(page, now);
    }

    fn touched(&mut self, _frame: FrameNo, page: PageNo, now: VirtualTime, _write: bool) {
        self.note_use(page, now);
    }

    // Invariant: the trait contract guarantees `eligible` is never
    // empty, so the selection below always yields a frame.
    #[allow(clippy::expect_used)]
    fn victim(
        &mut self,
        eligible: &[FrameNo],
        _sensors: &mut Sensors,
        now: VirtualTime,
    ) -> FrameNo {
        let state = |f: FrameNo| -> (VirtualTime, VirtualTime) {
            let page = self.resident.get(&f);
            let h = page
                .and_then(|p| self.history.get(p))
                .copied()
                .unwrap_or(PageHistory {
                    last_use: 0,
                    prev_gap: 0,
                });
            (now.saturating_sub(h.last_use), h.prev_gap)
        };
        // Case 1: pages that appear out of use (t exceeds the learned
        // period by more than the slack).
        let out_of_use = eligible
            .iter()
            .copied()
            .filter(|&f| {
                let (t, period) = state(f);
                t > period + self.slack
            })
            .max_by_key(|&f| {
                let (t, period) = state(f);
                t - period
            });
        if let Some(f) = out_of_use {
            return f;
        }
        // Case 2: all in current use; the one last to be required if the
        // pattern holds is the one with the largest T - t.
        *eligible
            .iter()
            .max_by_key(|&&f| {
                let (t, period) = state(f);
                period.saturating_sub(t)
            })
            .expect("eligible is never empty")
    }

    fn evicted(&mut self, frame: FrameNo) {
        // The frame empties, but the page's learned history is kept.
        self.resident.remove(&frame);
    }

    fn name(&self) -> &'static str {
        "ATLAS learning"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a policy with three frames touched periodically:
    /// frame 0 with period 4, frame 1 with period 8, frame 2 abandoned.
    fn trained() -> (AtlasLearning, VirtualTime) {
        let mut r = AtlasLearning::new();
        r.loaded(FrameNo(0), PageNo(0), 0);
        r.loaded(FrameNo(1), PageNo(1), 0);
        r.loaded(FrameNo(2), PageNo(2), 0);
        let mut now = 0;
        for t in 1..=40u64 {
            now = t;
            if t % 4 == 0 {
                r.touched(FrameNo(0), PageNo(0), t, false);
            }
            if t % 8 == 0 {
                r.touched(FrameNo(1), PageNo(1), t, false);
            }
            if t <= 8 {
                r.touched(FrameNo(2), PageNo(2), t, false);
            }
        }
        (r, now)
    }

    #[test]
    fn abandoned_page_is_detected_out_of_use() {
        let (mut r, now) = trained();
        let mut s = Sensors::new(3);
        let all = [FrameNo(0), FrameNo(1), FrameNo(2)];
        // Page 2: last used at 8, learned gap 1 -> t=32 >> T+1.
        assert_eq!(r.victim(&all, &mut s, now), FrameNo(2));
    }

    #[test]
    fn among_active_pages_longest_until_next_use_goes() {
        let (mut r, now) = trained();
        let mut s = Sensors::new(3);
        // Only the two periodic frames eligible; both just used at 40.
        // Page 0 returns in 4, page 1 in 8: evict frame 1.
        let v = r.victim(&[FrameNo(0), FrameNo(1)], &mut s, now);
        assert_eq!(v, FrameNo(1));
    }

    #[test]
    fn mid_period_prediction() {
        let mut r = AtlasLearning::new();
        r.loaded(FrameNo(0), PageNo(0), 0);
        r.loaded(FrameNo(1), PageNo(1), 0);
        // Page 0 period 10 last touched t=20; page 1 period 4 last t=22.
        for t in [10u64, 20] {
            r.touched(FrameNo(0), PageNo(0), t, false);
        }
        for t in [14u64, 18, 22] {
            r.touched(FrameNo(1), PageNo(1), t, false);
        }
        let mut s = Sensors::new(2);
        // At t=23: page 0 expected back at 30 (T-t = 7), page 1 at 26
        // (T-t = 3): evict frame 0.
        assert_eq!(r.victim(&[FrameNo(0), FrameNo(1)], &mut s, 23), FrameNo(0));
    }

    #[test]
    fn newly_loaded_pages_are_protected_from_out_of_use_test() {
        let mut r = AtlasLearning::new();
        r.loaded(FrameNo(0), PageNo(0), 100);
        let mut s = Sensors::new(1);
        // t=1, T=0: not out of use (1 <= 0+slack), falls to case 2.
        assert_eq!(r.victim(&[FrameNo(0)], &mut s, 101), FrameNo(0));
    }

    #[test]
    fn history_survives_eviction_and_learns_the_reload_gap() {
        let mut r = AtlasLearning::new();
        r.loaded(FrameNo(0), PageNo(7), 10);
        r.evicted(FrameNo(0));
        // Reloaded 90 refs later: the inactivity period 90 is learned.
        r.loaded(FrameNo(0), PageNo(7), 100);
        r.loaded(FrameNo(1), PageNo(8), 100);
        // Page 8 is new (T=0); page 7 has T=90, t=0 -> T-t=90: page 7 is
        // "last to be required" and must be the victim.
        let mut s = Sensors::new(2);
        assert_eq!(r.victim(&[FrameNo(0), FrameNo(1)], &mut s, 100), FrameNo(0));
    }

    #[test]
    fn long_period_page_is_evicted_right_after_its_use() {
        // The signature behaviour that beats LRU on loops: the page that
        // was *just used* but has a long learned period is the best
        // victim, while LRU would keep it longest.
        let mut r = AtlasLearning::new();
        r.loaded(FrameNo(0), PageNo(0), 0);
        r.loaded(FrameNo(1), PageNo(1), 0);
        // Page 0: short period 5; page 1: long period 50.
        for t in [5u64, 10, 15, 20, 25, 30, 35, 40, 45, 50] {
            r.touched(FrameNo(0), PageNo(0), t, false);
        }
        r.touched(FrameNo(1), PageNo(1), 50, false);
        let mut s = Sensors::new(2);
        // At t=51 both were just touched; LRU would evict page 0 (used
        // at 50, tie) or keep both equal. ATLAS evicts page 1: its next
        // use is ~49 away while page 0 returns in ~4.
        assert_eq!(r.victim(&[FrameNo(0), FrameNo(1)], &mut s, 51), FrameNo(1));
    }

    #[test]
    fn eviction_clears_residency_but_keeps_history() {
        let (mut r, _) = trained();
        r.evicted(FrameNo(2));
        assert!(!r.resident.contains_key(&FrameNo(2)));
        assert!(r.history.contains_key(&PageNo(2)));
    }

    #[test]
    fn slack_delays_out_of_use_classification() {
        let mut strict = AtlasLearning::with_slack(0);
        let mut lax = AtlasLearning::with_slack(100);
        for r in [&mut strict, &mut lax] {
            r.loaded(FrameNo(0), PageNo(0), 0);
            r.loaded(FrameNo(1), PageNo(1), 0);
            // Page 0: period 5, last used 20. Page 1: period 2, last 24.
            for t in [5u64, 10, 15, 20] {
                r.touched(FrameNo(0), PageNo(0), t, false);
            }
            for t in [22u64, 24] {
                r.touched(FrameNo(1), PageNo(1), t, false);
            }
        }
        let mut s = Sensors::new(2);
        let all = [FrameNo(0), FrameNo(1)];
        // At t=27: page 0 t=7 > T=5 (out of use under slack 0).
        assert_eq!(strict.victim(&all, &mut s, 27), FrameNo(0));
        // Under huge slack nothing is out of use; the victim is still an
        // eligible frame.
        let v = lax.victim(&all, &mut s, 27);
        assert!(all.contains(&v));
    }
}
