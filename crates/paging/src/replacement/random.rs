//! Random replacement (Belady's control policy).

use dsa_core::clock::VirtualTime;
use dsa_core::ids::{FrameNo, PageNo};

use crate::replacement::{Replacer, TinyRng};
use crate::sensors::Sensors;

/// Evicts a uniformly random eligible frame.
#[derive(Clone, Debug)]
pub struct RandomRepl {
    rng: TinyRng,
}

impl RandomRepl {
    /// Creates the policy with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> RandomRepl {
        RandomRepl {
            rng: TinyRng::new(seed),
        }
    }
}

impl Replacer for RandomRepl {
    fn loaded(&mut self, _frame: FrameNo, _page: PageNo, _now: VirtualTime) {}

    fn victim(
        &mut self,
        eligible: &[FrameNo],
        _sensors: &mut Sensors,
        _now: VirtualTime,
    ) -> FrameNo {
        eligible[self.rng.below(eligible.len())]
    }

    fn name(&self) -> &'static str {
        "Random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victims_are_eligible_and_deterministic() {
        let mut a = RandomRepl::new(7);
        let mut b = RandomRepl::new(7);
        let mut s = Sensors::new(4);
        let all = [FrameNo(0), FrameNo(1), FrameNo(2), FrameNo(3)];
        for t in 0..100 {
            let va = a.victim(&all, &mut s, t);
            let vb = b.victim(&all, &mut s, t);
            assert_eq!(va, vb);
            assert!(all.contains(&va));
        }
    }

    #[test]
    fn covers_all_frames_eventually() {
        let mut r = RandomRepl::new(3);
        let mut s = Sensors::new(3);
        let all = [FrameNo(0), FrameNo(1), FrameNo(2)];
        let mut seen = [false; 3];
        for t in 0..200 {
            seen[r.victim(&all, &mut s, t).index()] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }
}
