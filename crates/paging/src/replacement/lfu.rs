//! Least-frequently-used replacement.
//!
//! The M44/44X determined its "equally acceptable candidates ... on the
//! basis of frequency of usage" (A.2); LFU is that criterion taken
//! neat: evict the resident page with the fewest recorded uses. Its
//! classic pathology — a page heavily used long ago is never evicted —
//! is tamed by an optional periodic halving of all counts (aging).

use std::collections::HashMap;

use dsa_core::clock::VirtualTime;
use dsa_core::ids::{FrameNo, PageNo};

use crate::replacement::Replacer;
use crate::sensors::Sensors;

/// Evicts the least-frequently-used page, with optional count aging.
#[derive(Clone, Debug)]
pub struct LfuRepl {
    counts: HashMap<FrameNo, u64>,
    /// Halve all counts every this many victim selections (0 = never).
    age_every: u32,
    decisions: u32,
}

impl LfuRepl {
    /// Pure LFU (no aging).
    #[must_use]
    pub fn new() -> LfuRepl {
        LfuRepl::with_aging(0)
    }

    /// LFU with counts halved every `age_every` victim selections.
    #[must_use]
    pub fn with_aging(age_every: u32) -> LfuRepl {
        LfuRepl {
            counts: HashMap::new(),
            age_every,
            decisions: 0,
        }
    }
}

impl Default for LfuRepl {
    fn default() -> Self {
        LfuRepl::new()
    }
}

impl Replacer for LfuRepl {
    fn loaded(&mut self, frame: FrameNo, _page: PageNo, _now: VirtualTime) {
        self.counts.insert(frame, 1);
    }

    fn touched(&mut self, frame: FrameNo, _page: PageNo, _now: VirtualTime, _write: bool) {
        *self.counts.entry(frame).or_insert(0) += 1;
    }

    // Invariant: the trait contract guarantees `eligible` is never
    // empty, so the selection below always yields a frame.
    #[allow(clippy::expect_used)]
    fn victim(
        &mut self,
        eligible: &[FrameNo],
        _sensors: &mut Sensors,
        _now: VirtualTime,
    ) -> FrameNo {
        let victim = *eligible
            .iter()
            .min_by_key(|f| self.counts.get(f).copied().unwrap_or(0))
            .expect("eligible is never empty");
        self.decisions += 1;
        if self.age_every > 0 && self.decisions >= self.age_every {
            self.decisions = 0;
            for c in self.counts.values_mut() {
                *c /= 2;
            }
        }
        victim
    }

    fn evicted(&mut self, frame: FrameNo) {
        self.counts.remove(&frame);
    }

    fn hint_idle(&mut self, frame: FrameNo) {
        // Advisory demotion: forget the accumulated frequency.
        self.counts.insert(frame, 0);
    }

    fn name(&self) -> &'static str {
        "LFU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_used() {
        let mut r = LfuRepl::new();
        let mut s = Sensors::new(3);
        for f in 0..3 {
            r.loaded(FrameNo(f), PageNo(f), 0);
        }
        for _ in 0..5 {
            r.touched(FrameNo(0), PageNo(0), 1, false);
        }
        r.touched(FrameNo(2), PageNo(2), 1, false);
        let all = [FrameNo(0), FrameNo(1), FrameNo(2)];
        assert_eq!(r.victim(&all, &mut s, 2), FrameNo(1));
    }

    #[test]
    fn classic_pathology_old_hot_page_sticks() {
        let mut r = LfuRepl::new();
        let mut s = Sensors::new(2);
        r.loaded(FrameNo(0), PageNo(0), 0);
        for _ in 0..100 {
            r.touched(FrameNo(0), PageNo(0), 1, false);
        }
        // A new page arrives and is used a little; pure LFU still
        // prefers to evict it over the long-dead hot page.
        r.loaded(FrameNo(1), PageNo(1), 50);
        r.touched(FrameNo(1), PageNo(1), 51, false);
        assert_eq!(r.victim(&[FrameNo(0), FrameNo(1)], &mut s, 99), FrameNo(1));
    }

    #[test]
    fn aging_forgives_history() {
        let mut r = LfuRepl::with_aging(1);
        let mut s = Sensors::new(2);
        r.loaded(FrameNo(0), PageNo(0), 0);
        for _ in 0..100 {
            r.touched(FrameNo(0), PageNo(0), 1, false);
        }
        r.loaded(FrameNo(1), PageNo(1), 50);
        // Several decisions halve frame 0's count toward frame 1's.
        for t in 0..7 {
            let _ = r.victim(&[FrameNo(0)], &mut s, t);
        }
        assert!(r.counts[&FrameNo(0)] <= 1, "aging must erode old counts");
    }

    #[test]
    fn hint_idle_zeroes_count() {
        let mut r = LfuRepl::new();
        let mut s = Sensors::new(2);
        r.loaded(FrameNo(0), PageNo(0), 0);
        r.loaded(FrameNo(1), PageNo(1), 0);
        for _ in 0..10 {
            r.touched(FrameNo(0), PageNo(0), 1, false);
        }
        r.touched(FrameNo(1), PageNo(1), 1, false);
        r.hint_idle(FrameNo(0));
        assert_eq!(r.victim(&[FrameNo(0), FrameNo(1)], &mut s, 2), FrameNo(0));
    }

    #[test]
    fn eviction_clears_count() {
        let mut r = LfuRepl::new();
        r.loaded(FrameNo(0), PageNo(0), 0);
        r.evicted(FrameNo(0));
        assert!(r.counts.is_empty());
    }
}
