//! The working-set policy (variable allocation).
//!
//! Unlike the fixed-allocation policies, the working-set discipline
//! varies how much storage a program holds: a page stays resident only
//! while it has been referenced within the last `tau` references. It is
//! the natural formalization of the paper's observation that "if the
//! program has started using information from a particular segment, it
//! is likely, in a short time, to need to use other information in that
//! segment" — recency defines the set worth keeping. The simulator
//! reports both the fault count and the *mean resident-set size*, since
//! the policy trades one against the other (the space-time product
//! again).

use std::collections::{HashMap, VecDeque};

use dsa_core::clock::VirtualTime;
use dsa_core::ids::PageNo;

/// Results of a working-set simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WsReport {
    /// References processed.
    pub references: u64,
    /// Page faults taken (first touches included).
    pub faults: u64,
    /// Mean resident-set size, sampled after every reference.
    pub mean_resident: f64,
    /// Largest resident set observed.
    pub peak_resident: usize,
}

impl WsReport {
    /// Faults per reference.
    #[must_use]
    pub fn fault_rate(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.faults as f64 / self.references as f64
        }
    }
}

/// Simulates the working-set policy with window `tau` over a
/// page-granular reference string.
///
/// A page is resident at time `t` iff it was referenced in
/// `(t - tau, t]`; a reference to a non-resident page faults.
///
/// # Panics
///
/// Panics if `tau` is zero.
#[must_use]
pub fn working_set_sim(trace: &[PageNo], tau: VirtualTime) -> WsReport {
    assert!(tau > 0, "window must be positive");
    let mut last_use: HashMap<PageNo, VirtualTime> = HashMap::new();
    // Sliding-window distinct count: (time, page) queue + multiplicity.
    let mut window: VecDeque<(VirtualTime, PageNo)> = VecDeque::new();
    let mut in_window: HashMap<PageNo, u32> = HashMap::new();
    let mut faults = 0u64;
    let mut resident_sum = 0u64;
    let mut peak = 0usize;
    for (i, &page) in trace.iter().enumerate() {
        let now = i as VirtualTime;
        let resident = matches!(last_use.get(&page), Some(&t) if now - t <= tau);
        if !resident {
            faults += 1;
        }
        last_use.insert(page, now);
        window.push_back((now, page));
        *in_window.entry(page).or_insert(0) += 1;
        // Expire references older than the window.
        while let Some(&(t, p)) = window.front() {
            if now - t >= tau {
                window.pop_front();
                // Invariant: every queued reference incremented its
                // page's multiplicity when pushed.
                #[allow(clippy::expect_used)]
                let c = in_window.get_mut(&p).expect("queued page is counted");
                *c -= 1;
                if *c == 0 {
                    in_window.remove(&p);
                }
            } else {
                break;
            }
        }
        let size = in_window.len();
        resident_sum += size as u64;
        peak = peak.max(size);
    }
    WsReport {
        references: trace.len() as u64,
        faults,
        mean_resident: if trace.is_empty() {
            0.0
        } else {
            resident_sum as f64 / trace.len() as f64
        },
        peak_resident: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(xs: &[u64]) -> Vec<PageNo> {
        xs.iter().map(|&x| PageNo(x)).collect()
    }

    #[test]
    fn empty_trace() {
        let r = working_set_sim(&[], 4);
        assert_eq!(r.faults, 0);
        assert_eq!(r.references, 0);
        assert_eq!(r.fault_rate(), 0.0);
    }

    #[test]
    fn first_touches_fault() {
        let r = working_set_sim(&pages(&[1, 2, 3]), 10);
        assert_eq!(r.faults, 3);
        assert_eq!(r.peak_resident, 3);
    }

    #[test]
    fn rereference_within_window_hits() {
        let r = working_set_sim(&pages(&[1, 2, 1, 2, 1, 2]), 4);
        assert_eq!(r.faults, 2, "only the two first touches fault");
    }

    #[test]
    fn page_expires_after_window() {
        // tau=2: page 1 at t=0, untouched at t=1,2; at t=3 it has been
        // 3 > tau references since use -> fault.
        let r = working_set_sim(&pages(&[1, 2, 3, 1]), 2);
        assert_eq!(r.faults, 4);
    }

    #[test]
    fn window_bounds_resident_set() {
        // A cyclic sweep over 10 pages with tau=3 keeps at most 3
        // resident.
        let trace: Vec<PageNo> = (0..100u64).map(|i| PageNo(i % 10)).collect();
        let r = working_set_sim(&trace, 3);
        assert!(r.peak_resident <= 3, "peak {}", r.peak_resident);
        assert_eq!(r.faults, 100, "every reference misses under a short window");
    }

    #[test]
    fn larger_window_fewer_faults_more_space() {
        let trace: Vec<PageNo> = (0..300u64).map(|i| PageNo(i % 7)).collect();
        let small = working_set_sim(&trace, 3);
        let large = working_set_sim(&trace, 10);
        assert!(large.faults < small.faults);
        assert!(large.mean_resident > small.mean_resident);
        // tau=10 covers the whole 7-page loop: only cold faults remain.
        assert_eq!(large.faults, 7);
    }

    #[test]
    fn mean_resident_is_between_one_and_peak() {
        let trace = pages(&[1, 1, 1, 2, 2, 2]);
        let r = working_set_sim(&trace, 2);
        assert!(r.mean_resident >= 1.0);
        assert!(r.mean_resident <= r.peak_resident as f64);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = working_set_sim(&[PageNo(1)], 0);
    }

    #[test]
    fn single_reference_trace() {
        let r = working_set_sim(&[PageNo(9)], 5);
        assert_eq!(r.faults, 1);
        assert_eq!(r.peak_resident, 1);
        assert_eq!(r.mean_resident, 1.0);
    }
}
