//! Least-recently-used replacement.

use std::collections::HashMap;

use dsa_core::clock::VirtualTime;
use dsa_core::ids::{FrameNo, PageNo};

use crate::replacement::Replacer;
use crate::sensors::Sensors;

/// Evicts the page whose last reference is oldest.
///
/// True LRU requires a timestamp (or stack) per frame — hardware no
/// 1967 machine could afford, which is why the paper's systems
/// approximate it with use bits (see [`crate::replacement::clock`]) or
/// learning periods (see [`crate::replacement::atlas`]). It is included
/// as the recency-ideal reference point.
#[derive(Clone, Debug, Default)]
pub struct LruRepl {
    last_use: HashMap<FrameNo, VirtualTime>,
}

impl LruRepl {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> LruRepl {
        LruRepl::default()
    }
}

impl Replacer for LruRepl {
    fn loaded(&mut self, frame: FrameNo, _page: PageNo, now: VirtualTime) {
        self.last_use.insert(frame, now);
    }

    fn touched(&mut self, frame: FrameNo, _page: PageNo, now: VirtualTime, _write: bool) {
        self.last_use.insert(frame, now);
    }

    // Invariant: the trait contract guarantees `eligible` is never
    // empty, so the selection below always yields a frame.
    #[allow(clippy::expect_used)]
    fn victim(
        &mut self,
        eligible: &[FrameNo],
        _sensors: &mut Sensors,
        _now: VirtualTime,
    ) -> FrameNo {
        *eligible
            .iter()
            .min_by_key(|f| self.last_use.get(f).copied().unwrap_or(0))
            .expect("eligible is never empty")
    }

    fn evicted(&mut self, frame: FrameNo) {
        self.last_use.remove(&frame);
    }

    fn name(&self) -> &'static str {
        "LRU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut r = LruRepl::new();
        let mut s = Sensors::new(3);
        r.loaded(FrameNo(0), PageNo(10), 0);
        r.loaded(FrameNo(1), PageNo(11), 1);
        r.loaded(FrameNo(2), PageNo(12), 2);
        r.touched(FrameNo(0), PageNo(10), 3, false); // 0 is now recent
        let all = [FrameNo(0), FrameNo(1), FrameNo(2)];
        assert_eq!(r.victim(&all, &mut s, 4), FrameNo(1));
    }

    #[test]
    fn loading_counts_as_use() {
        let mut r = LruRepl::new();
        let mut s = Sensors::new(2);
        r.loaded(FrameNo(0), PageNo(1), 5);
        r.loaded(FrameNo(1), PageNo(2), 6);
        assert_eq!(r.victim(&[FrameNo(0), FrameNo(1)], &mut s, 7), FrameNo(0));
    }

    #[test]
    fn eviction_forgets_frame_state() {
        let mut r = LruRepl::new();
        let mut s = Sensors::new(2);
        r.loaded(FrameNo(0), PageNo(1), 10);
        r.evicted(FrameNo(0));
        // Reused frame with no recorded use sorts as oldest.
        r.loaded(FrameNo(1), PageNo(2), 11);
        assert!(!r.last_use.contains_key(&FrameNo(0)));
        assert_eq!(r.victim(&[FrameNo(1)], &mut s, 12), FrameNo(1));
    }
}
