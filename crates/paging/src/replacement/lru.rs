//! Least-recently-used replacement.

use std::collections::{BTreeSet, HashMap};

use dsa_core::clock::VirtualTime;
use dsa_core::ids::{FrameNo, PageNo};

use crate::replacement::Replacer;
use crate::sensors::Sensors;

/// Evicts the page whose last reference is oldest.
///
/// True LRU requires a timestamp (or stack) per frame — hardware no
/// 1967 machine could afford, which is why the paper's systems
/// approximate it with use bits (see [`crate::replacement::clock`]) or
/// learning periods (see [`crate::replacement::atlas`]). It is included
/// as the recency-ideal reference point.
///
/// Victim selection is a host-cost hot path (every eviction), so the
/// recency order is kept in a `BTreeSet<(stamp, frame)>` whose head is
/// the victim whenever every tracked frame is eligible — the common,
/// nothing-pinned case. When pinning shrinks the eligible set the
/// policy falls back to the plain scan over `eligible`.
#[derive(Clone, Debug, Default)]
pub struct LruRepl {
    last_use: HashMap<FrameNo, VirtualTime>,
    /// Recency index: `(last use, frame)`, oldest first. Mirrors
    /// `last_use` exactly.
    by_time: BTreeSet<(VirtualTime, FrameNo)>,
}

impl LruRepl {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> LruRepl {
        LruRepl::default()
    }
}

impl LruRepl {
    fn stamp(&mut self, frame: FrameNo, now: VirtualTime) {
        if let Some(old) = self.last_use.insert(frame, now) {
            self.by_time.remove(&(old, frame));
        }
        self.by_time.insert((now, frame));
    }
}

impl Replacer for LruRepl {
    fn loaded(&mut self, frame: FrameNo, _page: PageNo, now: VirtualTime) {
        self.stamp(frame, now);
    }

    fn touched(&mut self, frame: FrameNo, _page: PageNo, now: VirtualTime, _write: bool) {
        self.stamp(frame, now);
    }

    // Invariant: the trait contract guarantees `eligible` is never
    // empty, so the selection below always yields a frame.
    #[allow(clippy::expect_used)]
    fn victim(
        &mut self,
        eligible: &[FrameNo],
        _sensors: &mut Sensors,
        _now: VirtualTime,
    ) -> FrameNo {
        // Every eligible frame is tracked (residency implies a `loaded`
        // call), so equal lengths mean the sets coincide and the index
        // head — oldest stamp, lowest frame among equal stamps — is
        // exactly what the ascending scan's first-minimum rule picks.
        if eligible.len() == self.last_use.len() {
            if let Some(&(_, frame)) = self.by_time.first() {
                return frame;
            }
        }
        // Pinned frames shrink `eligible` below the tracked set: scan.
        *eligible
            .iter()
            .min_by_key(|f| self.last_use.get(f).copied().unwrap_or(0))
            .expect("eligible is never empty")
    }

    fn evicted(&mut self, frame: FrameNo) {
        if let Some(old) = self.last_use.remove(&frame) {
            self.by_time.remove(&(old, frame));
        }
    }

    fn name(&self) -> &'static str {
        "LRU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut r = LruRepl::new();
        let mut s = Sensors::new(3);
        r.loaded(FrameNo(0), PageNo(10), 0);
        r.loaded(FrameNo(1), PageNo(11), 1);
        r.loaded(FrameNo(2), PageNo(12), 2);
        r.touched(FrameNo(0), PageNo(10), 3, false); // 0 is now recent
        let all = [FrameNo(0), FrameNo(1), FrameNo(2)];
        assert_eq!(r.victim(&all, &mut s, 4), FrameNo(1));
    }

    #[test]
    fn loading_counts_as_use() {
        let mut r = LruRepl::new();
        let mut s = Sensors::new(2);
        r.loaded(FrameNo(0), PageNo(1), 5);
        r.loaded(FrameNo(1), PageNo(2), 6);
        assert_eq!(r.victim(&[FrameNo(0), FrameNo(1)], &mut s, 7), FrameNo(0));
    }

    #[test]
    fn eviction_forgets_frame_state() {
        let mut r = LruRepl::new();
        let mut s = Sensors::new(2);
        r.loaded(FrameNo(0), PageNo(1), 10);
        r.evicted(FrameNo(0));
        // Reused frame with no recorded use sorts as oldest.
        r.loaded(FrameNo(1), PageNo(2), 11);
        assert!(!r.last_use.contains_key(&FrameNo(0)));
        assert_eq!(r.victim(&[FrameNo(1)], &mut s, 12), FrameNo(1));
    }
}
