//! Replacement strategies.
//!
//! "When it is necessary to make room in working storage for some new
//! information, a replacement strategy is used to determine which
//! informational units should be overlayed. The strategy should seek to
//! avoid the overlaying of information which may be required again in
//! the near future. Program and information structure ... or recent
//! history of usage of information may guide the allocator toward this
//! ideal" — §Replacement Strategies. The detailed evaluation the paper
//! cites is Belady's study \[1\], whose cast we implement in full:
//!
//! | Policy | Module | Provenance |
//! |---|---|---|
//! | FIFO | [`fifo`] | Belady's baseline |
//! | LRU | [`lru`] | recency of use |
//! | Clock / second chance | [`clock`] | use-bit approximation of LRU |
//! | Random | [`random`] | Belady's control |
//! | Class-based random | [`nru`] | the M44/44X strategy (A.2): random among the least-recommended (use, modify) class |
//! | LFU | [`lfu`] | the M44's "frequency of usage" criterion taken neat, with optional aging |
//! | ATLAS learning program | [`atlas`] | Kilburn et al. (A.1): inactivity-period prediction |
//! | MIN | [`min`] | Belady's offline optimum — a bound, not a realizable policy |
//! | Working set | [`ws`] | variable-allocation counterpoint |
//!
//! All fixed-allocation policies implement [`Replacer`], the interface
//! [`crate::paged::PagedMemory`] drives; they learn about loads and
//! touches through callbacks (the software analogue of the paper's
//! use/modify sensors, which are also available to them directly at
//! victim-selection time).

pub mod atlas;
pub mod clock;
pub mod fifo;
pub mod lfu;
pub mod lru;
pub mod min;
pub mod nru;
pub mod random;
pub mod ws;

use dsa_core::clock::VirtualTime;
use dsa_core::ids::{FrameNo, PageNo};

use crate::sensors::Sensors;

/// A fixed-allocation replacement strategy.
///
/// The engine calls [`Replacer::loaded`] when a page is placed in a
/// frame, [`Replacer::touched`] on every reference to a resident page,
/// and [`Replacer::victim`] when a frame must be vacated.
/// [`Replacer::victim`] must return one of `eligible` (frames holding
/// unpinned resident pages).
pub trait Replacer {
    /// A page was loaded into `frame`.
    fn loaded(&mut self, frame: FrameNo, page: PageNo, now: VirtualTime);

    /// A resident page was referenced.
    fn touched(&mut self, frame: FrameNo, page: PageNo, now: VirtualTime, write: bool) {
        let _ = (frame, page, now, write);
    }

    /// Chooses a frame to vacate among `eligible` (never empty).
    fn victim(&mut self, eligible: &[FrameNo], sensors: &mut Sensors, now: VirtualTime) -> FrameNo;

    /// The page in `frame` was evicted.
    fn evicted(&mut self, frame: FrameNo) {
        let _ = frame;
    }

    /// Advisory: the page in `frame` will not be needed for some time
    /// (a "wont-need" directive landed on it). Default: ignored.
    fn hint_idle(&mut self, frame: FrameNo) {
        let _ = frame;
    }

    /// A short label for experiment tables.
    fn name(&self) -> &'static str;
}

/// A tiny deterministic xorshift generator used by the randomized
/// policies, kept local so `dsa-paging` needs no workload-crate
/// dependency.
#[derive(Clone, Debug)]
pub(crate) struct TinyRng(u64);

impl TinyRng {
    pub(crate) fn new(seed: u64) -> TinyRng {
        TinyRng(seed | 1)
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_rng_is_deterministic_and_in_range() {
        let mut a = TinyRng::new(42);
        let mut b = TinyRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        for _ in 0..1000 {
            assert!(a.below(7) < 7);
        }
    }

    #[test]
    fn tiny_rng_zero_seed_is_usable() {
        let mut r = TinyRng::new(0);
        let first = r.next();
        assert_ne!(first, 0);
    }
}
