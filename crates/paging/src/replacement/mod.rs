//! Replacement strategies.
//!
//! "When it is necessary to make room in working storage for some new
//! information, a replacement strategy is used to determine which
//! informational units should be overlayed. The strategy should seek to
//! avoid the overlaying of information which may be required again in
//! the near future. Program and information structure ... or recent
//! history of usage of information may guide the allocator toward this
//! ideal" — §Replacement Strategies. The detailed evaluation the paper
//! cites is Belady's study \[1\], whose cast we implement in full:
//!
//! | Policy | Module | Provenance |
//! |---|---|---|
//! | FIFO | [`fifo`] | Belady's baseline |
//! | LRU | [`lru`] | recency of use |
//! | Clock / second chance | [`clock`] | use-bit approximation of LRU |
//! | Random | [`random`] | Belady's control |
//! | Class-based random | [`nru`] | the M44/44X strategy (A.2): random among the least-recommended (use, modify) class |
//! | LFU | [`lfu`] | the M44's "frequency of usage" criterion taken neat, with optional aging |
//! | ATLAS learning program | [`atlas`] | Kilburn et al. (A.1): inactivity-period prediction |
//! | MIN | [`min`] | Belady's offline optimum — a bound, not a realizable policy |
//! | Working set | [`ws`] | variable-allocation counterpoint |
//!
//! All fixed-allocation policies implement [`Replacer`], the interface
//! [`crate::paged::PagedMemory`] drives; they learn about loads and
//! touches through callbacks (the software analogue of the paper's
//! use/modify sensors, which are also available to them directly at
//! victim-selection time). The whole cast is indexable through
//! [`registry`] — count, constructors, table labels, and which members
//! are exact stack algorithms — shared by experiments E4 and E12.

pub mod atlas;
pub mod clock;
pub mod fifo;
pub mod lfu;
pub mod lru;
pub mod min;
pub mod nru;
pub mod random;
pub mod registry;
pub mod ws;

use dsa_core::clock::VirtualTime;
use dsa_core::ids::{FrameNo, PageNo};

use crate::sensors::Sensors;

/// A fixed-allocation replacement strategy.
///
/// The engine calls [`Replacer::loaded`] when a page is placed in a
/// frame, [`Replacer::touched`] on every reference to a resident page,
/// and [`Replacer::victim`] when a frame must be vacated.
/// [`Replacer::victim`] must return one of `eligible` (frames holding
/// unpinned resident pages).
///
/// `Send` is a supertrait so boxed policies (and the machines holding
/// them) can be dispatched to the parallel simulation engine's workers.
pub trait Replacer: Send {
    /// A page was loaded into `frame`.
    fn loaded(&mut self, frame: FrameNo, page: PageNo, now: VirtualTime);

    /// A resident page was referenced.
    fn touched(&mut self, frame: FrameNo, page: PageNo, now: VirtualTime, write: bool) {
        let _ = (frame, page, now, write);
    }

    /// Chooses a frame to vacate among `eligible` (never empty).
    fn victim(&mut self, eligible: &[FrameNo], sensors: &mut Sensors, now: VirtualTime) -> FrameNo;

    /// The page in `frame` was evicted.
    fn evicted(&mut self, frame: FrameNo) {
        let _ = frame;
    }

    /// Advisory: the page in `frame` will not be needed for some time
    /// (a "wont-need" directive landed on it). Default: ignored.
    fn hint_idle(&mut self, frame: FrameNo) {
        let _ = frame;
    }

    /// A short label for experiment tables.
    fn name(&self) -> &'static str;
}

/// A tiny deterministic xorshift generator used by the randomized
/// policies, kept local so `dsa-paging` needs no workload-crate
/// dependency.
#[derive(Clone, Debug)]
pub(crate) struct TinyRng(u64);

impl TinyRng {
    pub(crate) fn new(seed: u64) -> TinyRng {
        TinyRng(seed | 1)
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    pub(crate) fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_rng_is_deterministic_and_in_range() {
        let mut a = TinyRng::new(42);
        let mut b = TinyRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        for _ in 0..1000 {
            assert!(a.below(7) < 7);
        }
    }

    #[test]
    fn tiny_rng_zero_seed_is_usable() {
        let mut r = TinyRng::new(0);
        let first = r.next();
        assert_ne!(first, 0);
    }
}

#[cfg(test)]
mod probe_tests {
    use crate::paged::PagedMemory;
    use crate::replacement::atlas::AtlasLearning;
    use crate::replacement::clock::ClockRepl;
    use crate::replacement::fifo::FifoRepl;
    use crate::replacement::lfu::LfuRepl;
    use crate::replacement::lru::LruRepl;
    use crate::replacement::min::MinRepl;
    use crate::replacement::nru::ClassRandomRepl;
    use crate::replacement::random::RandomRepl;
    use crate::replacement::Replacer;
    use dsa_core::ids::PageNo;
    use dsa_probe::CountingProbe;

    /// The engine emits events centrally, so one test run per policy
    /// proves the whole cast traces identically: touch/fault/evict
    /// totals from the probe must equal the engine's own statistics.
    #[test]
    fn every_policy_traces_consistently_with_stats() {
        let trace: Vec<PageNo> = (0..400u64).map(|i| PageNo((i * 13) % 24)).collect();
        let frames = 8;
        let policies: Vec<Box<dyn Replacer>> = vec![
            Box::new(LruRepl::new()),
            Box::new(FifoRepl::new()),
            Box::new(ClockRepl::new(frames)),
            Box::new(RandomRepl::new(5)),
            Box::new(ClassRandomRepl::new(5, 8)),
            Box::new(AtlasLearning::new()),
            Box::new(LfuRepl::with_aging(32)),
            Box::new(MinRepl::new(&trace)),
        ];
        for policy in policies {
            let name = policy.name();
            let mut mem = PagedMemory::new(frames, policy);
            let mut probe = CountingProbe::new();
            let stats = mem
                .run_pages_probed(&trace, &mut probe)
                .expect("no pinning");
            assert_eq!(probe.touches, stats.references, "{name}: touches");
            assert_eq!(probe.faults, stats.faults, "{name}: faults");
            assert_eq!(probe.evictions, stats.evictions, "{name}: evictions");
            assert_eq!(
                probe.dirty_evictions, stats.dirty_evictions,
                "{name}: dirty evictions"
            );
            assert_eq!(probe.prefetches, stats.prefetches, "{name}: prefetches");
        }
    }

    /// `run_pages` and `run_pages_probed` with a sink attached must
    /// drive the engine identically — probing never perturbs behaviour.
    #[test]
    fn probing_does_not_change_fault_counts() {
        let trace: Vec<PageNo> = (0..300u64).map(|i| PageNo((i * 7) % 20)).collect();
        let mut plain = PagedMemory::new(6, Box::new(LruRepl::new()));
        let mut probed = PagedMemory::new(6, Box::new(LruRepl::new()));
        let mut probe = CountingProbe::new();
        let a = plain.run_pages(&trace).expect("no pinning");
        let b = probed
            .run_pages_probed(&trace, &mut probe)
            .expect("no pinning");
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.evictions, b.evictions);
        probed.check_invariants();
    }

    /// `words_per_page` scales the word quantities carried by evictions.
    #[test]
    fn words_per_page_scales_traced_transfers() {
        let trace: Vec<PageNo> = (0..10u64).map(PageNo).collect();
        let mut mem = PagedMemory::new(4, Box::new(LruRepl::new())).with_words_per_page(512);
        let mut probe = CountingProbe::new();
        mem.run_pages_probed(&trace, &mut probe)
            .expect("no pinning");
        assert_eq!(probe.evictions, 6);
        assert_eq!(probe.evicted_words, 6 * 512);
    }
}
