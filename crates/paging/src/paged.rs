//! The demand-paging engine.
//!
//! "Demand paging uses the address mapping device to deflect reference
//! to a page which is not currently in one of the page frames. A page
//! fetch will then be initiated. Demand paging thus tends to minimize
//! the amount of working storage allocated to each program, since only
//! pages which are referenced are loaded" — §Fetch Strategies.
//!
//! [`PagedMemory`] drives a [`Replacer`] over a fixed pool of page
//! frames, maintains the use/modify [`Sensors`], honours advisory
//! directives (prefetch on will-need, demote on wont-need, pin, release
//! — the M44/MULTICS repertoire), and optionally keeps one frame vacant
//! at all times, as the ATLAS replacement machinery did ("the
//! replacement strategy ... is used to ensure that one page frame is
//! kept vacant, ready for the next page demand").

use std::collections::{HashMap, HashSet};

use dsa_core::access::{Access, AccessKind};
use dsa_core::advice::{Advice, AdviceUnit};
use dsa_core::clock::VirtualTime;
use dsa_core::error::{AllocError, CoreError};
use dsa_core::ids::{FrameNo, PageNo, Words};
use dsa_probe::{EventKind, NullProbe, Probe, Stamp};

use crate::replacement::Replacer;
use crate::sensors::Sensors;

/// A page pushed out of working storage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EvictedPage {
    /// The page that was removed.
    pub page: PageNo,
    /// The frame it occupied.
    pub frame: FrameNo,
    /// Whether its modify sensor was set (a write-back is needed).
    pub dirty: bool,
}

/// The outcome of one reference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TouchOutcome {
    /// The page was resident.
    Hit {
        /// The frame holding it.
        frame: FrameNo,
    },
    /// The page was fetched on demand.
    Fault {
        /// The frame it was loaded into.
        frame: FrameNo,
        /// The page evicted to make room, if any.
        evicted: Option<EvictedPage>,
    },
}

impl TouchOutcome {
    /// True for [`TouchOutcome::Fault`].
    #[must_use]
    pub fn is_fault(&self) -> bool {
        matches!(self, TouchOutcome::Fault { .. })
    }
}

/// Cumulative paging statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct PagingStats {
    /// References processed.
    pub references: u64,
    /// Demand faults.
    pub faults: u64,
    /// Pages evicted (for any reason).
    pub evictions: u64,
    /// Evictions that required a write-back.
    pub dirty_evictions: u64,
    /// Pages loaded by will-need prefetch.
    pub prefetches: u64,
    /// Prefetched pages that were later actually referenced.
    pub useful_prefetches: u64,
    /// Pages evicted by release advice.
    pub advised_evictions: u64,
}

impl PagingStats {
    /// Faults per reference.
    #[must_use]
    pub fn fault_rate(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.faults as f64 / self.references as f64
        }
    }
}

/// What an advisory directive actually did.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdviceOutcome {
    /// A page was brought in: `(page, frame)`.
    pub loaded: Option<(PageNo, FrameNo)>,
    /// A page was pushed out (to make room for a prefetch, or by a
    /// release directive).
    pub evicted: Option<EvictedPage>,
}

/// A fixed pool of page frames under a replacement strategy.
pub struct PagedMemory {
    frames: Vec<Option<PageNo>>,
    page_table: HashMap<PageNo, FrameNo>,
    free: Vec<FrameNo>,
    sensors: Sensors,
    replacer: Box<dyn Replacer>,
    pinned: HashSet<PageNo>,
    prefetched: HashSet<PageNo>,
    /// Frames retired from service after a bad-frame fault; never free,
    /// never loaded into again.
    quarantined: HashSet<FrameNo>,
    reserve_vacant: bool,
    /// One-block lookahead: on a demand fault for page *p*, page *p+1*
    /// is prefetched as well.
    lookahead: bool,
    /// Words a page stands for in probe events (machine adapters set
    /// this to their page size so traced transfer sizes are real).
    words_per_page: Words,
    stats: PagingStats,
}

impl PagedMemory {
    /// Creates a memory of `n_frames` frames driven by `replacer`.
    ///
    /// # Panics
    ///
    /// Panics if `n_frames` is zero.
    #[must_use]
    pub fn new(n_frames: usize, replacer: Box<dyn Replacer>) -> PagedMemory {
        assert!(n_frames > 0, "need at least one frame");
        PagedMemory {
            frames: vec![None; n_frames],
            page_table: HashMap::new(),
            free: (0..n_frames as u64).rev().map(FrameNo).collect(),
            sensors: Sensors::new(n_frames),
            replacer,
            pinned: HashSet::new(),
            prefetched: HashSet::new(),
            quarantined: HashSet::new(),
            reserve_vacant: false,
            lookahead: false,
            words_per_page: 1,
            stats: PagingStats::default(),
        }
    }

    /// Sets how many words a page stands for in traced events.
    #[must_use]
    pub fn with_words_per_page(mut self, words: Words) -> PagedMemory {
        self.words_per_page = words.max(1);
        self
    }

    /// Enables the ATLAS discipline of keeping one frame vacant at all
    /// times, evicting eagerly after each load.
    #[must_use]
    pub fn with_vacant_reserve(mut self) -> PagedMemory {
        self.reserve_vacant = true;
        self
    }

    /// Enables one-block lookahead — the simplest anticipatory fetch
    /// strategy of §Fetch Strategies ("information can be fetched before
    /// it is needed"): every demand fault for page *p* also brings in
    /// page *p+1*, through the same path as a will-need directive.
    ///
    /// Note for machine adapters that mirror residency into a mapping
    /// device: lookahead loads are internal and not reported through
    /// [`TouchOutcome`]; use explicit advice instead.
    #[must_use]
    pub fn with_lookahead(mut self) -> PagedMemory {
        self.lookahead = true;
        self
    }

    /// Number of frames.
    #[must_use]
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Number of resident pages.
    #[must_use]
    pub fn resident_count(&self) -> usize {
        self.page_table.len()
    }

    /// Frames still in service (not quarantined).
    #[must_use]
    pub fn usable_frames(&self) -> usize {
        self.frames.len() - self.quarantined.len()
    }

    /// Frames retired from service by [`PagedMemory::retire_frame`].
    #[must_use]
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Whether `frame` has been retired from service.
    #[must_use]
    pub fn is_quarantined(&self, frame: FrameNo) -> bool {
        self.quarantined.contains(&frame)
    }

    /// Retires `frame` from service permanently: it leaves the free pool
    /// and is never loaded into again, shrinking working storage for the
    /// rest of the run. Any page it held is dropped *without* write-back
    /// — a frame is retired because its storage failed, so its contents
    /// are not to be trusted; the caller refetches the page from the
    /// backing copy into a surviving frame.
    ///
    /// Returns `false` (and does nothing) if the frame is out of range,
    /// already quarantined, or the last usable frame — a machine must
    /// always keep at least one frame in service.
    pub fn retire_frame(&mut self, frame: FrameNo) -> bool {
        if frame.index() >= self.frames.len()
            || self.quarantined.contains(&frame)
            || self.usable_frames() <= 1
        {
            return false;
        }
        if let Some(page) = self.frames[frame.index()].take() {
            self.page_table.remove(&page);
            self.pinned.remove(&page);
            self.prefetched.remove(&page);
            self.sensors.clear(frame);
            self.replacer.evicted(frame);
        } else {
            self.free.retain(|&f| f != frame);
        }
        self.quarantined.insert(frame);
        true
    }

    /// Drops every pin, returning how many were released. The
    /// degradation ladder's shed-load rung calls this to surrender
    /// advisory claims when a demand would otherwise fail.
    pub fn unpin_all(&mut self) -> usize {
        let n = self.pinned.len();
        self.pinned.clear();
        n
    }

    /// The frame holding `page`, if resident.
    #[must_use]
    pub fn frame_of(&self, page: PageNo) -> Option<FrameNo> {
        self.page_table.get(&page).copied()
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &PagingStats {
        &self.stats
    }

    /// The replacement strategy's label.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.replacer.name()
    }

    /// Frames eligible for eviction: resident and not pinned.
    fn eligible(&self) -> Vec<FrameNo> {
        self.frames
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                Some(page) if !self.pinned.contains(page) => Some(FrameNo(i as u64)),
                _ => None,
            })
            .collect()
    }

    fn evict_one_probed<P: Probe + ?Sized>(
        &mut self,
        at: Stamp,
        probe: &mut P,
    ) -> Result<EvictedPage, CoreError> {
        let now = at.vtime;
        let eligible = self.eligible();
        if eligible.is_empty() {
            return Err(CoreError::Alloc(AllocError::OutOfStorage {
                requested: 1,
                largest_free: 0,
            }));
        }
        let frame = self.replacer.victim(&eligible, &mut self.sensors, now);
        debug_assert!(
            eligible.contains(&frame),
            "policy returned ineligible frame"
        );
        // Internal invariant, not a user-reachable failure: the policy
        // chose from `eligible`, which only lists resident frames.
        #[allow(clippy::expect_used)]
        let page = self.frames[frame.index()].expect("victim frame must be resident");
        let dirty = self.sensors.modified(frame);
        self.frames[frame.index()] = None;
        self.page_table.remove(&page);
        self.sensors.clear(frame);
        self.replacer.evicted(frame);
        self.free.push(frame);
        self.stats.evictions += 1;
        if dirty {
            self.stats.dirty_evictions += 1;
        }
        probe.emit(
            EventKind::Evict {
                dirty,
                words: self.words_per_page,
            },
            at,
        );
        Ok(EvictedPage { page, frame, dirty })
    }

    fn load_into_free(&mut self, page: PageNo, now: VirtualTime) -> FrameNo {
        // Internal invariant, not a user-reachable failure: every caller
        // evicts (or checks) before loading.
        #[allow(clippy::expect_used)]
        let frame = self.free.pop().expect("caller ensured a free frame");
        self.frames[frame.index()] = Some(page);
        self.page_table.insert(page, frame);
        self.sensors.clear(frame);
        self.replacer.loaded(frame, page, now);
        frame
    }

    /// References `page` at reference-time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Alloc`] if the page is absent and every
    /// frame is pinned.
    pub fn touch(
        &mut self,
        page: PageNo,
        write: bool,
        now: VirtualTime,
    ) -> Result<TouchOutcome, CoreError> {
        self.touch_probed(page, write, Stamp::vtime(now), &mut NullProbe)
    }

    /// [`PagedMemory::touch`] with event emission: `Fault` when the
    /// reference misses, `Evict` for every page pushed out (demand,
    /// vacant-reserve, or prefetch displacement), `Prefetch` for
    /// lookahead loads. The caller supplies the stamp so machine
    /// adapters can carry their cycle clock into the trace.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Alloc`] if the page is absent and every
    /// frame is pinned.
    pub fn touch_probed<P: Probe + ?Sized>(
        &mut self,
        page: PageNo,
        write: bool,
        at: Stamp,
        probe: &mut P,
    ) -> Result<TouchOutcome, CoreError> {
        let now = at.vtime;
        self.stats.references += 1;
        if let Some(frame) = self.page_table.get(&page).copied() {
            if self.prefetched.remove(&page) {
                self.stats.useful_prefetches += 1;
            }
            self.sensors.touch(frame, write);
            self.replacer.touched(frame, page, now, write);
            return Ok(TouchOutcome::Hit { frame });
        }
        // Demand fault.
        self.stats.faults += 1;
        probe.emit(EventKind::Fault, at);
        let mut evicted = None;
        if self.free.is_empty() {
            evicted = Some(self.evict_one_probed(at, probe)?);
        }
        let frame = self.load_into_free(page, now);
        self.sensors.touch(frame, write);
        self.prefetched.remove(&page);
        // One-block lookahead rides the advice path (and is therefore
        // also counted in the prefetch statistics).
        if self.lookahead {
            self.advise_probed(
                Advice::WillNeed(AdviceUnit::Page(PageNo(page.0 + 1))),
                at,
                probe,
            );
        }
        // The ATLAS vacant-frame reserve: evict now so the *next* demand
        // finds a frame waiting.
        if self.reserve_vacant && self.free.is_empty() {
            let extra = self.evict_one_probed(at, probe)?;
            evicted = evicted.or(Some(extra));
        }
        Ok(TouchOutcome::Fault { frame, evicted })
    }

    /// Applies an advisory directive at reference-time `now`, reporting
    /// what actually happened so callers keeping a mapping device in
    /// step (the machine adapters) can mirror it. Advice on segments is
    /// ignored here (segment advice is interpreted by the segment
    /// store).
    pub fn advise(&mut self, advice: Advice, now: VirtualTime) -> AdviceOutcome {
        self.advise_probed(advice, Stamp::vtime(now), &mut NullProbe)
    }

    /// [`PagedMemory::advise`] with event emission: `Prefetch` for every
    /// will-need load, `Evict` for every page displaced or released.
    pub fn advise_probed<P: Probe + ?Sized>(
        &mut self,
        advice: Advice,
        at: Stamp,
        probe: &mut P,
    ) -> AdviceOutcome {
        let now = at.vtime;
        let AdviceUnit::Page(page) = advice.unit() else {
            return AdviceOutcome::default();
        };
        let mut out = AdviceOutcome::default();
        match advice {
            Advice::WillNeed(_) => {
                // "Brought into working storage if possible": a free
                // frame is used if one exists; otherwise the replacement
                // strategy gives one up — unless everything is pinned,
                // in which case the advice is quietly dropped (it is
                // advisory, never an error).
                if self.page_table.contains_key(&page) {
                    return out;
                }
                if self.free.is_empty() {
                    match self.evict_one_probed(at, probe) {
                        Ok(e) => out.evicted = Some(e),
                        Err(_) => return out,
                    }
                }
                let frame = self.load_into_free(page, now);
                // The arrival marks the use sensor, as a hardware fetch
                // would; otherwise sensor-driven policies see the
                // still-untouched prefetched pages as prime victims and
                // prefetches cannibalize each other.
                self.sensors.touch(frame, false);
                self.prefetched.insert(page);
                self.stats.prefetches += 1;
                probe.emit(
                    EventKind::Prefetch {
                        words: self.words_per_page,
                    },
                    at,
                );
                out.loaded = Some((page, frame));
            }
            Advice::WontNeed(_) => {
                if let Some(frame) = self.page_table.get(&page).copied() {
                    // Make it look idle to sensor-driven policies and
                    // tell history-driven ones directly.
                    self.sensors.reset_use(frame);
                    self.replacer.hint_idle(frame);
                }
            }
            Advice::Pin(_) => {
                self.pinned.insert(page);
            }
            Advice::Unpin(_) => {
                self.pinned.remove(&page);
            }
            Advice::Release(_) => {
                self.pinned.remove(&page);
                if let Some(frame) = self.page_table.get(&page).copied() {
                    let dirty = self.sensors.modified(frame);
                    self.frames[frame.index()] = None;
                    self.page_table.remove(&page);
                    self.sensors.clear(frame);
                    self.replacer.evicted(frame);
                    self.free.push(frame);
                    self.stats.evictions += 1;
                    self.stats.advised_evictions += 1;
                    if dirty {
                        self.stats.dirty_evictions += 1;
                    }
                    probe.emit(
                        EventKind::Evict {
                            dirty,
                            words: self.words_per_page,
                        },
                        at,
                    );
                    out.evicted = Some(EvictedPage { page, frame, dirty });
                }
            }
        }
        out
    }

    /// Replays a page-granular reference string (all reads), returning
    /// the final statistics.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CoreError`] (possible only with pinning).
    pub fn run_pages(&mut self, trace: &[PageNo]) -> Result<PagingStats, CoreError> {
        self.run_pages_probed(trace, &mut NullProbe)
    }

    /// [`PagedMemory::run_pages`] over any page iterator — the
    /// streaming entry point: a `dsa-trace` stream (or any other
    /// constant-memory source) drives the machine without a `Vec` ever
    /// materializing. Equivalent to `run_pages` on the collected
    /// sequence, touch for touch.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CoreError`] (possible only with pinning).
    pub fn run_pages_iter<I>(&mut self, pages: I) -> Result<PagingStats, CoreError>
    where
        I: IntoIterator<Item = PageNo>,
    {
        for (i, page) in pages.into_iter().enumerate() {
            self.touch(page, false, i as VirtualTime)?;
        }
        Ok(self.stats)
    }

    /// [`PagedMemory::run_pages`] with event emission: a `Touch` per
    /// reference plus the fault/evict/prefetch stream, stamped with
    /// reference time.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CoreError`] (possible only with pinning).
    pub fn run_pages_probed<P: Probe + ?Sized>(
        &mut self,
        trace: &[PageNo],
        probe: &mut P,
    ) -> Result<PagingStats, CoreError> {
        for (i, &page) in trace.iter().enumerate() {
            let at = Stamp::vtime(i as VirtualTime);
            probe.emit(EventKind::Touch { write: false }, at);
            self.touch_probed(page, false, at, probe)?;
        }
        Ok(self.stats)
    }

    /// Replays an [`Access`] string whose names are page numbers.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CoreError`] (possible only with pinning).
    pub fn run_accesses(&mut self, trace: &[Access]) -> Result<PagingStats, CoreError> {
        for (i, a) in trace.iter().enumerate() {
            self.touch(
                PageNo(a.name.value()),
                a.kind == AccessKind::Write,
                i as VirtualTime,
            )?;
        }
        Ok(self.stats)
    }

    /// Verifies internal invariants.
    ///
    /// # Panics
    ///
    /// Panics if the page table and frame array disagree or frames are
    /// double-booked.
    pub fn check_invariants(&self) {
        let mut seen = HashSet::new();
        for (i, slot) in self.frames.iter().enumerate() {
            if let Some(page) = slot {
                assert_eq!(
                    self.page_table.get(page),
                    Some(&FrameNo(i as u64)),
                    "frame/page-table disagreement for {page}"
                );
                assert!(seen.insert(*page), "page resident twice");
            }
        }
        assert_eq!(
            seen.len(),
            self.page_table.len(),
            "stale page-table entries"
        );
        let resident = self.frames.iter().filter(|s| s.is_some()).count();
        assert_eq!(
            resident + self.free.len() + self.quarantined.len(),
            self.frames.len(),
            "frames leaked"
        );
        for &frame in &self.quarantined {
            assert!(
                self.frames[frame.index()].is_none(),
                "quarantined frame holds a page"
            );
            assert!(
                !self.free.contains(&frame),
                "quarantined frame in free pool"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::fifo::FifoRepl;
    use crate::replacement::lru::LruRepl;
    use crate::replacement::min::MinRepl;

    fn pages(xs: &[u64]) -> Vec<PageNo> {
        xs.iter().map(|&x| PageNo(x)).collect()
    }

    fn lru(frames: usize) -> PagedMemory {
        PagedMemory::new(frames, Box::new(LruRepl::new()))
    }

    #[test]
    fn cold_faults_then_hits() {
        let mut m = lru(2);
        assert!(m.touch(PageNo(1), false, 0).unwrap().is_fault());
        assert!(m.touch(PageNo(2), false, 1).unwrap().is_fault());
        assert!(!m.touch(PageNo(1), false, 2).unwrap().is_fault());
        assert_eq!(m.stats().faults, 2);
        assert_eq!(m.stats().references, 3);
        assert_eq!(m.resident_count(), 2);
        m.check_invariants();
    }

    #[test]
    fn run_pages_iter_matches_run_pages() {
        let trace: Vec<PageNo> = (0..500u64).map(|i| PageNo((i * 7 + i * i) % 23)).collect();
        let mut batch = lru(8);
        let mut streamed = lru(8);
        let a = batch.run_pages(&trace).unwrap();
        let b = streamed.run_pages_iter(trace.iter().copied()).unwrap();
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.references, b.references);
        assert_eq!(a.evictions, b.evictions);
        streamed.check_invariants();
    }

    #[test]
    fn eviction_happens_when_full() {
        let mut m = lru(2);
        m.touch(PageNo(1), false, 0).unwrap();
        m.touch(PageNo(2), false, 1).unwrap();
        let out = m.touch(PageNo(3), false, 2).unwrap();
        match out {
            TouchOutcome::Fault {
                evicted: Some(e), ..
            } => {
                assert_eq!(e.page, PageNo(1), "LRU evicts page 1");
                assert!(!e.dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(m.frame_of(PageNo(1)), None);
        m.check_invariants();
    }

    #[test]
    fn dirty_pages_report_writeback() {
        let mut m = lru(1);
        m.touch(PageNo(1), true, 0).unwrap();
        let out = m.touch(PageNo(2), false, 1).unwrap();
        match out {
            TouchOutcome::Fault {
                evicted: Some(e), ..
            } => assert!(e.dirty),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(m.stats().dirty_evictions, 1);
    }

    #[test]
    fn lru_sequence_fault_count_matches_hand_computation() {
        // Classic example: 3 frames, trace 1 2 3 4 1 2 5 1 2 3 4 5.
        // LRU faults: 10.
        let trace = pages(&[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]);
        let mut m = lru(3);
        let stats = m.run_pages(&trace).unwrap();
        assert_eq!(stats.faults, 10);
    }

    #[test]
    fn fifo_belady_anomaly_exists() {
        // The canonical anomaly trace: FIFO with 4 frames faults MORE
        // than with 3.
        let trace = pages(&[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]);
        let mut m3 = PagedMemory::new(3, Box::new(FifoRepl::new()));
        let mut m4 = PagedMemory::new(4, Box::new(FifoRepl::new()));
        let f3 = m3.run_pages(&trace).unwrap().faults;
        let f4 = m4.run_pages(&trace).unwrap().faults;
        assert_eq!(f3, 9);
        assert_eq!(f4, 10);
        assert!(f4 > f3, "Belady's anomaly must reproduce");
    }

    #[test]
    fn min_is_optimal_on_the_classic_trace() {
        let trace = pages(&[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]);
        let mut m = PagedMemory::new(3, Box::new(MinRepl::new(&trace)));
        let stats = m.run_pages(&trace).unwrap();
        assert_eq!(stats.faults, 7, "Belady's published optimum for this trace");
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let mut m = lru(2);
        m.touch(PageNo(1), false, 0).unwrap();
        m.advise(Advice::Pin(AdviceUnit::Page(PageNo(1))), 0);
        m.touch(PageNo(2), false, 1).unwrap();
        m.touch(PageNo(3), false, 2).unwrap(); // must evict 2, not 1
        assert!(m.frame_of(PageNo(1)).is_some());
        assert!(m.frame_of(PageNo(2)).is_none());
        m.check_invariants();
    }

    #[test]
    fn all_pinned_faults_out_of_storage() {
        let mut m = lru(1);
        m.touch(PageNo(1), false, 0).unwrap();
        m.advise(Advice::Pin(AdviceUnit::Page(PageNo(1))), 0);
        let err = m.touch(PageNo(2), false, 1).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Alloc(AllocError::OutOfStorage { .. })
        ));
    }

    #[test]
    fn unpin_restores_eligibility() {
        let mut m = lru(1);
        m.touch(PageNo(1), false, 0).unwrap();
        m.advise(Advice::Pin(AdviceUnit::Page(PageNo(1))), 0);
        m.advise(Advice::Unpin(AdviceUnit::Page(PageNo(1))), 1);
        assert!(m.touch(PageNo(2), false, 2).is_ok());
    }

    #[test]
    fn will_need_prefetches_and_may_replace() {
        let mut m = lru(2);
        m.advise(Advice::WillNeed(AdviceUnit::Page(PageNo(7))), 0);
        assert!(m.frame_of(PageNo(7)).is_some());
        assert_eq!(m.stats().prefetches, 1);
        // A later touch is a hit and counts the prefetch useful.
        assert!(!m.touch(PageNo(7), false, 1).unwrap().is_fault());
        assert_eq!(m.stats().useful_prefetches, 1);
        // With memory full, a prefetch displaces the LRU page — the
        // danger of inaccurate advice.
        m.touch(PageNo(8), false, 2).unwrap();
        m.advise(Advice::WillNeed(AdviceUnit::Page(PageNo(9))), 3);
        assert!(m.frame_of(PageNo(9)).is_some());
        assert!(m.frame_of(PageNo(7)).is_none(), "LRU page displaced");
        assert_eq!(m.stats().prefetches, 2);
        m.check_invariants();
    }

    #[test]
    fn will_need_is_dropped_when_all_pinned() {
        let mut m = lru(1);
        m.touch(PageNo(1), false, 0).unwrap();
        m.advise(Advice::Pin(AdviceUnit::Page(PageNo(1))), 0);
        m.advise(Advice::WillNeed(AdviceUnit::Page(PageNo(2))), 1);
        assert!(m.frame_of(PageNo(2)).is_none(), "advice is never an error");
        assert_eq!(m.stats().prefetches, 0);
        m.check_invariants();
    }

    #[test]
    fn release_evicts_immediately() {
        let mut m = lru(2);
        m.touch(PageNo(1), true, 0).unwrap();
        m.advise(Advice::Release(AdviceUnit::Page(PageNo(1))), 1);
        assert!(m.frame_of(PageNo(1)).is_none());
        assert_eq!(m.stats().advised_evictions, 1);
        assert_eq!(
            m.stats().dirty_evictions,
            1,
            "released dirty page still writes back"
        );
        m.check_invariants();
    }

    #[test]
    fn wont_need_makes_page_the_next_victim_for_sensor_policies() {
        use crate::replacement::nru::ClassRandomRepl;
        let mut m = PagedMemory::new(2, Box::new(ClassRandomRepl::new(1, 1000)));
        m.touch(PageNo(1), false, 0).unwrap();
        m.touch(PageNo(2), false, 1).unwrap();
        m.advise(Advice::WontNeed(AdviceUnit::Page(PageNo(1))), 2);
        let out = m.touch(PageNo(3), false, 3).unwrap();
        match out {
            TouchOutcome::Fault {
                evicted: Some(e), ..
            } => assert_eq!(e.page, PageNo(1)),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn vacant_reserve_keeps_a_frame_free() {
        let mut m = lru(3).with_vacant_reserve();
        for (t, p) in [1u64, 2, 3, 4, 5].into_iter().enumerate() {
            m.touch(PageNo(p), false, t as u64).unwrap();
            assert!(
                m.resident_count() < m.frame_count(),
                "one frame must stay vacant after servicing"
            );
        }
        m.check_invariants();
    }

    #[test]
    fn retire_frame_shrinks_the_pool_permanently() {
        let mut m = lru(3);
        m.touch(PageNo(1), false, 0).unwrap();
        let frame = m.frame_of(PageNo(1)).unwrap();
        assert!(m.retire_frame(frame));
        assert_eq!(m.quarantined_count(), 1);
        assert_eq!(m.usable_frames(), 2);
        assert!(m.is_quarantined(frame));
        assert!(
            m.frame_of(PageNo(1)).is_none(),
            "page dropped, no writeback"
        );
        assert!(!m.retire_frame(frame), "already quarantined");
        // The frame is never reused: fill the memory and check.
        for (t, p) in [2u64, 3, 4, 5].into_iter().enumerate() {
            m.touch(PageNo(p), false, t as u64 + 1).unwrap();
            assert_ne!(m.frame_of(PageNo(p)), Some(frame));
        }
        m.check_invariants();
    }

    #[test]
    fn retire_frame_refuses_the_last_usable_frame() {
        let mut m = lru(2);
        m.touch(PageNo(1), false, 0).unwrap();
        assert!(m.retire_frame(FrameNo(0)));
        assert!(
            !m.retire_frame(FrameNo(1)),
            "must keep one frame in service"
        );
        assert_eq!(m.usable_frames(), 1);
        assert!(m.touch(PageNo(2), false, 1).is_ok(), "still serviceable");
        m.check_invariants();
    }

    #[test]
    fn retire_vacant_frame_leaves_free_pool_consistent() {
        let mut m = lru(3);
        m.touch(PageNo(1), false, 0).unwrap();
        // Retire a frame that is still in the free pool.
        let vacant = (0..3u64)
            .map(FrameNo)
            .find(|&f| m.frames[f.index()].is_none())
            .unwrap();
        assert!(m.retire_frame(vacant));
        m.check_invariants();
        // Faulting past capacity still works with the shrunken pool.
        m.touch(PageNo(2), false, 1).unwrap();
        m.touch(PageNo(3), false, 2).unwrap();
        assert_eq!(m.resident_count(), 2);
        m.check_invariants();
    }

    #[test]
    fn unpin_all_releases_every_pin() {
        let mut m = lru(2);
        m.touch(PageNo(1), false, 0).unwrap();
        m.touch(PageNo(2), false, 1).unwrap();
        m.advise(Advice::Pin(AdviceUnit::Page(PageNo(1))), 2);
        m.advise(Advice::Pin(AdviceUnit::Page(PageNo(2))), 2);
        assert!(m.touch(PageNo(3), false, 3).is_err(), "everything pinned");
        assert_eq!(m.unpin_all(), 2);
        assert!(m.touch(PageNo(3), false, 4).is_ok());
        m.check_invariants();
    }

    #[test]
    fn run_accesses_tracks_writes() {
        use dsa_core::access::Access;
        let mut m = lru(2);
        let trace = vec![Access::write(0u64), Access::read(1u64), Access::read(2u64)];
        m.run_accesses(&trace).unwrap();
        assert_eq!(
            m.stats().dirty_evictions,
            1,
            "page 0 was written, then evicted"
        );
    }
}

#[cfg(test)]
mod lookahead_tests {
    use super::*;
    use crate::replacement::lru::LruRepl;

    fn pages(xs: &[u64]) -> Vec<PageNo> {
        xs.iter().map(|&x| PageNo(x)).collect()
    }

    #[test]
    fn sequential_scan_faults_halve_with_lookahead() {
        let trace: Vec<PageNo> = (0..64u64).map(PageNo).collect();
        let mut demand = PagedMemory::new(8, Box::new(LruRepl::new()));
        let mut obl = PagedMemory::new(8, Box::new(LruRepl::new())).with_lookahead();
        let d = demand.run_pages(&trace).unwrap();
        let o = obl.run_pages(&trace).unwrap();
        assert_eq!(d.faults, 64);
        assert_eq!(o.faults, 32, "every other page arrives by lookahead");
        assert!(o.useful_prefetches >= 31);
    }

    #[test]
    fn random_references_gain_nothing_but_pay_transfers() {
        // Page n+1 is almost never the next touch on a scattered trace.
        let trace = pages(&[40, 3, 17, 29, 8, 55, 12, 47, 21, 60, 5, 33]);
        let mut demand = PagedMemory::new(6, Box::new(LruRepl::new()));
        let mut obl = PagedMemory::new(6, Box::new(LruRepl::new())).with_lookahead();
        let d = demand.run_pages(&trace).unwrap();
        let o = obl.run_pages(&trace).unwrap();
        assert!(
            o.faults >= d.faults,
            "lookahead cannot help scattered access"
        );
        assert!(o.prefetches > 0);
        assert_eq!(o.useful_prefetches, 0);
    }

    #[test]
    fn lookahead_respects_pins() {
        let mut m = PagedMemory::new(2, Box::new(LruRepl::new())).with_lookahead();
        // The fault on page 0 lookahead-loads page 1 into the second
        // frame; pin both.
        m.touch(PageNo(0), false, 0).unwrap();
        assert!(m.frame_of(PageNo(1)).is_some(), "lookahead loaded page 1");
        m.advise(Advice::Pin(AdviceUnit::Page(PageNo(0))), 0);
        m.advise(Advice::Pin(AdviceUnit::Page(PageNo(1))), 0);
        // Fault on a new page is impossible (all pinned) — and the
        // lookahead attempt must not panic either.
        assert!(m.touch(PageNo(5), false, 1).is_err());
        m.check_invariants();
    }

    #[test]
    fn lookahead_invariants_hold_under_churn() {
        let trace: Vec<PageNo> = (0..200u64).map(|i| PageNo((i * 7) % 40)).collect();
        let mut m = PagedMemory::new(8, Box::new(LruRepl::new())).with_lookahead();
        m.run_pages(&trace).unwrap();
        m.check_invariants();
    }
}
