//! A compact fixed-capacity LRU resident set.
//!
//! [`crate::paged::PagedMemory`] is the full engine — page table, frame
//! pool, use/modify sensors, advice, quarantine — and each instance
//! costs a few hashes and a `Box<dyn Replacer>` per touch and several
//! hundred bytes at rest. A population-scale multiprogramming simulator
//! keeps one resident set per *tenant*, and at 100k+ tenants the full
//! engine's footprint (and pointer-chasing) dominates the run.
//! [`CompactLru`] is the purpose-built summary for that regime: one
//! small `Vec<PageNo>` in recency order, nothing else.
//!
//! It is not an approximation. For any reference string and capacity,
//! the hit/fault outcome of every touch equals `PagedMemory` driving
//! [`crate::replacement::lru::LruRepl`] over the same string (the
//! property test `compact_lru_matches_paged_memory` in
//! `tests/properties_sched.rs` pins the two together). What it gives up
//! is the engine's generality: no sensors, no advice, no dirty
//! tracking, LRU only — and an O(capacity) scan per touch, which for
//! the small per-tenant allotments the scheduler deals in (a handful to
//! a few dozen frames) beats the hash-map machinery it replaces.

use dsa_core::ids::PageNo;

/// A fixed-capacity LRU-ordered resident set: `pages[0]` is the most
/// recently used, `pages[len-1]` the eviction victim.
#[derive(Clone, Debug)]
pub struct CompactLru {
    pages: Vec<PageNo>,
    capacity: usize,
}

impl CompactLru {
    /// An empty resident set of `capacity` frames (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> CompactLru {
        let capacity = capacity.max(1);
        CompactLru {
            pages: Vec::with_capacity(capacity.min(64)),
            capacity,
        }
    }

    /// Frames this set may occupy.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently resident.
    #[must_use]
    pub fn resident_count(&self) -> usize {
        self.pages.len()
    }

    /// References `page`; returns `true` on a fault (the page was not
    /// resident), evicting the least recently used page if the set is
    /// full.
    pub fn touch(&mut self, page: PageNo) -> bool {
        if let Some(i) = self.pages.iter().position(|&p| p == page) {
            // Hit: rotate to most-recent position.
            self.pages[..=i].rotate_right(1);
            return false;
        }
        if self.pages.len() == self.capacity {
            self.pages.pop();
        }
        self.pages.insert(0, page);
        true
    }

    /// Shrinks (or grows) the capacity to `capacity` frames, evicting
    /// least-recently-used pages first if the set no longer fits.
    /// Returns how many pages were evicted.
    pub fn resize(&mut self, capacity: usize) -> usize {
        self.capacity = capacity.max(1);
        let evicted = self.pages.len().saturating_sub(self.capacity);
        self.pages.truncate(self.capacity);
        evicted
    }

    /// Drops every resident page (swap-out); returns how many were
    /// resident.
    pub fn clear(&mut self) -> usize {
        let n = self.pages.len();
        self.pages.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: u64) -> PageNo {
        PageNo(x)
    }

    #[test]
    fn cold_faults_then_hits() {
        let mut m = CompactLru::new(2);
        assert!(m.touch(p(1)));
        assert!(m.touch(p(2)));
        assert!(!m.touch(p(1)));
        assert!(!m.touch(p(2)));
        assert_eq!(m.resident_count(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut m = CompactLru::new(2);
        m.touch(p(1));
        m.touch(p(2));
        m.touch(p(1)); // recency now [1, 2]
        assert!(m.touch(p(3))); // evicts 2
        assert!(!m.touch(p(1)), "1 survived");
        assert!(m.touch(p(2)), "2 was the victim");
    }

    #[test]
    fn resize_trims_lru_side() {
        let mut m = CompactLru::new(4);
        for x in 1..=4 {
            m.touch(p(x));
        }
        // Recency: [4, 3, 2, 1]. Shrinking to 2 evicts 1 and 2.
        assert_eq!(m.resize(2), 2);
        assert!(!m.touch(p(4)));
        assert!(!m.touch(p(3)));
        assert!(m.touch(p(1)));
    }

    #[test]
    fn clear_swaps_everything_out() {
        let mut m = CompactLru::new(3);
        m.touch(p(1));
        m.touch(p(2));
        assert_eq!(m.clear(), 2);
        assert_eq!(m.resident_count(), 0);
        assert!(m.touch(p(1)), "cold again after swap-out");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut m = CompactLru::new(0);
        assert_eq!(m.capacity(), 1);
        assert!(m.touch(p(1)));
        assert!(!m.touch(p(1)));
        assert!(m.touch(p(2)));
    }
}
