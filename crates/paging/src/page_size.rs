//! Page-size sweep helpers (experiment E6).
//!
//! "One of the problems of designing a system based on a uniform unit of
//! allocation is choosing the size of the unit. If it is too small,
//! there will be an unacceptable amount of overhead. If it is too large,
//! too much space will be wasted" — §Uniformity of Unit of Storage
//! Allocation. These helpers turn a *word-granular* reference string
//! into the page-granular strings a [`crate::paged::PagedMemory`] of a
//! given page size sees, so the same workload can be replayed across
//! page sizes with working storage held constant.

use dsa_core::access::Access;
use dsa_core::ids::{PageNo, Words};

/// Maps a word name to its page under `page_size`.
///
/// # Panics
///
/// Panics (in debug builds) if `page_size` is zero.
#[must_use]
pub fn page_of(word: u64, page_size: Words) -> PageNo {
    debug_assert!(page_size > 0);
    PageNo(word / page_size)
}

/// Projects a word-granular access string to page granularity.
#[must_use]
pub fn to_page_trace(accesses: &[Access], page_size: Words) -> Vec<PageNo> {
    accesses
        .iter()
        .map(|a| page_of(a.name.value(), page_size))
        .collect()
}

/// Number of frames a working storage of `memory_words` provides at
/// `page_size` (rounded down; at least 1).
#[must_use]
pub fn frames_for(memory_words: Words, page_size: Words) -> usize {
    ((memory_words / page_size).max(1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_of_divides() {
        assert_eq!(page_of(0, 512), PageNo(0));
        assert_eq!(page_of(511, 512), PageNo(0));
        assert_eq!(page_of(512, 512), PageNo(1));
        assert_eq!(page_of(1535, 512), PageNo(2));
    }

    #[test]
    fn trace_projection() {
        let trace = vec![
            Access::read(0u64),
            Access::read(100u64),
            Access::read(300u64),
        ];
        assert_eq!(
            to_page_trace(&trace, 256),
            vec![PageNo(0), PageNo(0), PageNo(1)]
        );
        assert_eq!(
            to_page_trace(&trace, 64),
            vec![PageNo(0), PageNo(1), PageNo(4)]
        );
    }

    #[test]
    fn frames_for_rounds_down_but_never_zero() {
        assert_eq!(frames_for(16_384, 512), 32);
        assert_eq!(frames_for(1000, 512), 1);
        assert_eq!(frames_for(100, 512), 1);
    }
}
