//! A thread-safe counting sink: atomics instead of plain integers.
//!
//! [`CountingProbe`] is the reconciliation workhorse of the workspace,
//! but it is `&mut self` all the way down — one owner, one thread. A
//! concurrent allocation service ([`dsa-arena`]) has many worker
//! threads emitting into *one* sink, and the reports must still
//! reconcile exactly: the total observed by the shared sink has to
//! equal the sum of the per-worker outcomes no matter how the threads
//! interleaved. [`SharedProbe`] is that sink — every counter of
//! [`CountingProbe`], each an [`AtomicU64`] bumped with relaxed
//! fetch-adds (counters are commutative; no ordering is needed beyond
//! the final join).
//!
//! Emission sites take `P: Probe` by `&mut` reference, so the shared
//! sink is used *by shared reference through a mutable one*: `&SharedProbe`
//! itself implements [`Probe`], and each worker holds its own
//! `&SharedProbe` copy. After the workers join, [`SharedProbe::snapshot`]
//! freezes the atomics into an ordinary [`CountingProbe`] for
//! comparison against per-worker tallies.
//!
//! [`dsa-arena`]: https://docs.rs/dsa-arena

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{CountingProbe, DegradationStep, Event, EventKind, InjectedFault, Probe};

/// An atomic [`CountingProbe`]: one counter per event kind and payload
/// quantity, safe to share across any number of emitting threads.
#[derive(Debug, Default)]
pub struct SharedProbe {
    touches: AtomicU64,
    writes: AtomicU64,
    faults: AtomicU64,
    fetch_starts: AtomicU64,
    fetches: AtomicU64,
    fetched_words: AtomicU64,
    evictions: AtomicU64,
    dirty_evictions: AtomicU64,
    evicted_words: AtomicU64,
    writebacks: AtomicU64,
    writeback_words: AtomicU64,
    allocs: AtomicU64,
    alloc_words: AtomicU64,
    alloc_searched: AtomicU64,
    frees: AtomicU64,
    freed_words: AtomicU64,
    compactions: AtomicU64,
    compaction_moved_words: AtomicU64,
    advice: AtomicU64,
    prefetches: AtomicU64,
    prefetched_words: AtomicU64,
    bounds_traps: AtomicU64,
    map_lookups: AtomicU64,
    map_hits: AtomicU64,
    map_misses: AtomicU64,
    faults_injected: AtomicU64,
    transfer_errors_injected: AtomicU64,
    bad_frames_injected: AtomicU64,
    channel_delays_injected: AtomicU64,
    alloc_failures_injected: AtomicU64,
    shard_corruptions_injected: AtomicU64,
    retry_attempts: AtomicU64,
    frames_quarantined: AtomicU64,
    degradation_steps: AtomicU64,
    shed_loads: AtomicU64,
    quota_denials: AtomicU64,
    admission_rejects: AtomicU64,
    tenants_shed: AtomicU64,
    tenant_shed_words: AtomicU64,
    shards_quarantined: AtomicU64,
    shards_restored: AtomicU64,
    tenants_admitted: AtomicU64,
    tenants_deactivated: AtomicU64,
    deactivated_resident_pages: AtomicU64,
    ws_estimates: AtomicU64,
    ws_estimate_pages: AtomicU64,
}

impl SharedProbe {
    #[must_use]
    pub fn new() -> SharedProbe {
        SharedProbe::default()
    }

    fn record_shared(&self, event: &Event) {
        let add = |c: &AtomicU64| {
            c.fetch_add(1, Ordering::Relaxed);
        };
        let add_n = |c: &AtomicU64, n: u64| {
            c.fetch_add(n, Ordering::Relaxed);
        };
        match event.kind {
            EventKind::Touch { write } => {
                add(&self.touches);
                if write {
                    add(&self.writes);
                }
            }
            EventKind::Fault => add(&self.faults),
            EventKind::FetchStart { .. } => add(&self.fetch_starts),
            EventKind::FetchDone { words } => {
                add(&self.fetches);
                add_n(&self.fetched_words, words);
            }
            EventKind::Evict { dirty, words } => {
                add(&self.evictions);
                if dirty {
                    add(&self.dirty_evictions);
                }
                add_n(&self.evicted_words, words);
            }
            EventKind::Writeback { words } => {
                add(&self.writebacks);
                add_n(&self.writeback_words, words);
            }
            EventKind::Alloc { words, searched } => {
                add(&self.allocs);
                add_n(&self.alloc_words, words);
                add_n(&self.alloc_searched, searched);
            }
            EventKind::Free { words } => {
                add(&self.frees);
                add_n(&self.freed_words, words);
            }
            EventKind::CompactionStart => {}
            EventKind::CompactionDone { moved_words } => {
                add(&self.compactions);
                add_n(&self.compaction_moved_words, moved_words);
            }
            EventKind::Advice => add(&self.advice),
            EventKind::Prefetch { words } => {
                add(&self.prefetches);
                add_n(&self.prefetched_words, words);
            }
            EventKind::BoundsTrap => add(&self.bounds_traps),
            EventKind::MapLookup { hit } => {
                add(&self.map_lookups);
                if hit {
                    add(&self.map_hits);
                } else {
                    add(&self.map_misses);
                }
            }
            EventKind::FaultInjected { fault } => {
                add(&self.faults_injected);
                match fault {
                    InjectedFault::TransferError => add(&self.transfer_errors_injected),
                    InjectedFault::BadFrame => add(&self.bad_frames_injected),
                    InjectedFault::ChannelDelay => add(&self.channel_delays_injected),
                    InjectedFault::AllocFailure => add(&self.alloc_failures_injected),
                    InjectedFault::ShardCorruption => add(&self.shard_corruptions_injected),
                }
            }
            EventKind::RetryAttempt { .. } => add(&self.retry_attempts),
            EventKind::FrameQuarantined => add(&self.frames_quarantined),
            EventKind::DegradationStep { step } => {
                add(&self.degradation_steps);
                if step == DegradationStep::ShedLoad {
                    add(&self.shed_loads);
                }
            }
            EventKind::QuotaDenied { .. } => add(&self.quota_denials),
            EventKind::AdmissionReject { .. } => add(&self.admission_rejects),
            EventKind::TenantShed { words, .. } => {
                add(&self.tenants_shed);
                add_n(&self.tenant_shed_words, words);
            }
            EventKind::ShardQuarantined { .. } => add(&self.shards_quarantined),
            EventKind::ShardRestored { .. } => add(&self.shards_restored),
            EventKind::TenantAdmitted { .. } => add(&self.tenants_admitted),
            EventKind::TenantDeactivated { resident, .. } => {
                add(&self.tenants_deactivated);
                add_n(&self.deactivated_resident_pages, u64::from(resident));
            }
            EventKind::WsEstimate { pages, .. } => {
                add(&self.ws_estimates);
                add_n(&self.ws_estimate_pages, u64::from(pages));
            }
        }
    }

    /// Freezes the atomics into an ordinary [`CountingProbe`], so
    /// reconciliation code compares one struct against another rather
    /// than thirty-odd atomic loads.
    ///
    /// Relaxed loads: call this after the emitting threads have joined
    /// (the join is the synchronization point).
    #[must_use]
    pub fn snapshot(&self) -> CountingProbe {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        CountingProbe {
            touches: get(&self.touches),
            writes: get(&self.writes),
            faults: get(&self.faults),
            fetch_starts: get(&self.fetch_starts),
            fetches: get(&self.fetches),
            fetched_words: get(&self.fetched_words),
            evictions: get(&self.evictions),
            dirty_evictions: get(&self.dirty_evictions),
            evicted_words: get(&self.evicted_words),
            writebacks: get(&self.writebacks),
            writeback_words: get(&self.writeback_words),
            allocs: get(&self.allocs),
            alloc_words: get(&self.alloc_words),
            alloc_searched: get(&self.alloc_searched),
            frees: get(&self.frees),
            freed_words: get(&self.freed_words),
            compactions: get(&self.compactions),
            compaction_moved_words: get(&self.compaction_moved_words),
            advice: get(&self.advice),
            prefetches: get(&self.prefetches),
            prefetched_words: get(&self.prefetched_words),
            bounds_traps: get(&self.bounds_traps),
            map_lookups: get(&self.map_lookups),
            map_hits: get(&self.map_hits),
            map_misses: get(&self.map_misses),
            faults_injected: get(&self.faults_injected),
            transfer_errors_injected: get(&self.transfer_errors_injected),
            bad_frames_injected: get(&self.bad_frames_injected),
            channel_delays_injected: get(&self.channel_delays_injected),
            alloc_failures_injected: get(&self.alloc_failures_injected),
            shard_corruptions_injected: get(&self.shard_corruptions_injected),
            retry_attempts: get(&self.retry_attempts),
            frames_quarantined: get(&self.frames_quarantined),
            degradation_steps: get(&self.degradation_steps),
            shed_loads: get(&self.shed_loads),
            quota_denials: get(&self.quota_denials),
            admission_rejects: get(&self.admission_rejects),
            tenants_shed: get(&self.tenants_shed),
            tenant_shed_words: get(&self.tenant_shed_words),
            shards_quarantined: get(&self.shards_quarantined),
            shards_restored: get(&self.shards_restored),
            tenants_admitted: get(&self.tenants_admitted),
            tenants_deactivated: get(&self.tenants_deactivated),
            deactivated_resident_pages: get(&self.deactivated_resident_pages),
            ws_estimates: get(&self.ws_estimates),
            ws_estimate_pages: get(&self.ws_estimate_pages),
        }
    }

    /// What happened since `earlier`: a fresh snapshot minus the one
    /// the caller kept from the previous interval.
    ///
    /// [`SharedProbe::snapshot`] reports totals since construction,
    /// which loses ordering context on a long-running service; periodic
    /// callers keep the previous snapshot and ask for the delta, giving
    /// per-interval rates that sum exactly to the running totals
    /// (counters are monotone, so the subtraction never saturates in
    /// practice).
    #[must_use]
    pub fn delta(&self, earlier: &CountingProbe) -> CountingProbe {
        self.snapshot().delta(earlier)
    }
}

impl Probe for SharedProbe {
    fn record(&mut self, event: &Event) {
        self.record_shared(event);
    }
}

/// The shared-reference form workers actually hold: each thread keeps
/// its own `&SharedProbe` and emits through it.
impl Probe for &SharedProbe {
    fn record(&mut self, event: &Event) {
        self.record_shared(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stamp;

    #[test]
    fn snapshot_matches_a_sequential_counting_probe() {
        let shared = SharedProbe::new();
        let mut plain = CountingProbe::new();
        let s = Stamp::vtime(3);
        let events = [
            EventKind::Alloc {
                words: 64,
                searched: 2,
            },
            EventKind::Free { words: 64 },
            EventKind::Fault,
            EventKind::Touch { write: true },
            EventKind::MapLookup { hit: false },
        ];
        for kind in events {
            (&shared).emit(kind, s);
            plain.emit(kind, s);
        }
        let snap = shared.snapshot();
        assert_eq!(snap.allocs, plain.allocs);
        assert_eq!(snap.alloc_words, plain.alloc_words);
        assert_eq!(snap.alloc_searched, plain.alloc_searched);
        assert_eq!(snap.frees, plain.frees);
        assert_eq!(snap.freed_words, plain.freed_words);
        assert_eq!(snap.faults, plain.faults);
        assert_eq!(snap.touches, plain.touches);
        assert_eq!(snap.map_misses, plain.map_misses);
        assert_eq!(snap.total_events(), plain.total_events());
    }

    #[test]
    fn interval_deltas_sum_to_the_running_total() {
        let shared = SharedProbe::new();
        let mut prev = shared.snapshot();
        let mut summed = 0u64;
        for round in 1..=4u64 {
            for i in 0..round * 3 {
                (&shared).emit(
                    EventKind::Alloc {
                        words: 16,
                        searched: 2,
                    },
                    Stamp::vtime(i),
                );
            }
            let d = shared.delta(&prev);
            assert_eq!(d.allocs, round * 3, "interval {round}");
            assert_eq!(d.alloc_words, round * 3 * 16);
            summed += d.allocs;
            prev = shared.snapshot();
        }
        assert_eq!(summed, shared.snapshot().allocs);
    }

    #[test]
    fn concurrent_emission_loses_nothing() {
        let shared = SharedProbe::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let probe = &shared;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let mut p = probe;
                        p.emit(
                            EventKind::Alloc {
                                words: 8,
                                searched: 1,
                            },
                            Stamp::vtime(t * per_thread + i),
                        );
                        p.emit(EventKind::Free { words: 8 }, Stamp::vtime(t));
                    }
                });
            }
        });
        let snap = shared.snapshot();
        assert_eq!(snap.allocs, threads * per_thread);
        assert_eq!(snap.frees, threads * per_thread);
        assert_eq!(snap.alloc_words, 8 * threads * per_thread);
        assert_eq!(snap.alloc_searched, threads * per_thread);
    }
}
