//! Latency and effort histograms derived from the event stream.

use crate::{Event, EventKind, Probe};
use dsa_core::clock::{Cycles, VirtualTime};
use dsa_metrics::histogram::{geometry, Histogram};

/// Histograms of the dynamics the paper reasons about but end-of-run
/// totals hide: how long each fault stalls the program (machine time
/// between `FetchStart` and `FetchDone`), how far apart faults are in
/// reference time, and how many free-list entries each allocation
/// probed.
#[derive(Clone, Debug)]
pub struct LatencyProbe {
    /// Fault-service latency in nanoseconds, log2-bucketed.
    fault_service: Histogram,
    /// Inter-fault distance in references, log2-bucketed.
    inter_fault: Histogram,
    /// Free-list entries examined per successful allocation.
    search_len: Histogram,
    pending_fetch: Option<Cycles>,
    last_fault_vtime: Option<VirtualTime>,
}

impl Default for LatencyProbe {
    fn default() -> Self {
        // The shared geometries in `dsa_metrics::histogram::geometry`
        // are the single source of bucket shapes: the always-on atomic
        // telemetry (`dsa-telemetry`) builds its accumulators from the
        // same specs, so its percentiles and these can never diverge.
        LatencyProbe {
            fault_service: Histogram::with_spec(geometry::FAULT_SERVICE_NS),
            inter_fault: Histogram::with_spec(geometry::INTER_FAULT_REFS),
            search_len: Histogram::with_spec(geometry::SEARCH_LEN),
            pending_fetch: None,
            last_fault_vtime: None,
        }
    }
}

impl LatencyProbe {
    #[must_use]
    pub fn new() -> LatencyProbe {
        LatencyProbe::default()
    }

    /// Machine-time nanoseconds from `FetchStart` to `FetchDone`.
    #[must_use]
    pub fn fault_service(&self) -> &Histogram {
        &self.fault_service
    }

    /// References between consecutive faults.
    #[must_use]
    pub fn inter_fault(&self) -> &Histogram {
        &self.inter_fault
    }

    /// Free-list entries examined per successful allocation.
    #[must_use]
    pub fn search_len(&self) -> &Histogram {
        &self.search_len
    }

    /// One-line digest for experiment tables.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "faults: n={} p50={}ns p95={}ns | inter-fault p50={} refs | search p95={}",
            self.fault_service.count(),
            self.fault_service.quantile(0.5),
            self.fault_service.quantile(0.95),
            self.inter_fault.quantile(0.5),
            self.search_len.quantile(0.95),
        )
    }
}

impl Probe for LatencyProbe {
    fn record(&mut self, event: &Event) {
        match event.kind {
            EventKind::Fault => {
                if let Some(prev) = self.last_fault_vtime {
                    self.inter_fault.record(event.vtime.saturating_sub(prev));
                }
                self.last_fault_vtime = Some(event.vtime);
            }
            EventKind::FetchStart { .. } => {
                self.pending_fetch = Some(event.cycles);
            }
            EventKind::FetchDone { .. } => {
                if let Some(start) = self.pending_fetch.take() {
                    self.fault_service
                        .record(event.cycles.saturating_sub(start).as_nanos());
                }
            }
            EventKind::Alloc { searched, .. } => {
                self.search_len.record(searched);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stamp;

    #[test]
    fn fetch_pairs_become_service_latency() {
        let mut p = LatencyProbe::new();
        p.emit(EventKind::Fault, Stamp::at(Cycles::from_nanos(100), 5));
        p.emit(
            EventKind::FetchStart { words: 512 },
            Stamp::at(Cycles::from_nanos(100), 5),
        );
        p.emit(
            EventKind::FetchDone { words: 512 },
            Stamp::at(Cycles::from_nanos(4_100), 5),
        );
        assert_eq!(p.fault_service().count(), 1);
        assert_eq!(p.fault_service().sum(), 4_000);
    }

    #[test]
    fn inter_fault_distances_use_reference_time() {
        let mut p = LatencyProbe::new();
        for vt in [10u64, 18, 50] {
            p.emit(EventKind::Fault, Stamp::vtime(vt));
        }
        assert_eq!(p.inter_fault().count(), 2);
        assert_eq!(p.inter_fault().sum(), (18 - 10) + (50 - 18));
    }

    #[test]
    fn search_lengths_are_recorded() {
        let mut p = LatencyProbe::new();
        p.emit(
            EventKind::Alloc {
                words: 10,
                searched: 7,
            },
            Stamp::vtime(1),
        );
        p.emit(
            EventKind::Alloc {
                words: 10,
                searched: 1,
            },
            Stamp::vtime(2),
        );
        assert_eq!(p.search_len().count(), 2);
        assert_eq!(p.search_len().sum(), 8);
    }

    #[test]
    fn unpaired_fetch_done_is_ignored() {
        let mut p = LatencyProbe::new();
        p.emit(EventKind::FetchDone { words: 1 }, Stamp::vtime(0));
        assert_eq!(p.fault_service().count(), 0);
    }

    #[test]
    fn summary_mentions_percentiles() {
        let mut p = LatencyProbe::new();
        p.emit(EventKind::Fault, Stamp::vtime(1));
        let s = p.summary();
        assert!(s.contains("p95"), "{s}");
    }
}
