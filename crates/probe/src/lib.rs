//! Structured event tracing for the allocation machines.
//!
//! The paper's "special hardware facilities" — use/modify sensors on
//! storage blocks and invalid-access trapping — are the monitoring
//! substrate every strategy in the taxonomy depends on. This crate is
//! their software analogue: a vocabulary of [`Event`]s emitted from the
//! hot paths of the paging engine, the free-list allocators, the
//! address maps and the composed machines, plus pluggable [`Probe`]
//! sinks that turn the stream into counters, latency histograms,
//! space-time curves, or a JSONL trace.
//!
//! Every event carries a dual timestamp: [`Cycles`] (simulated machine
//! time) and [`VirtualTime`] (reference time — the index of the current
//! access). Machine time orders events against device latencies;
//! reference time is what replacement theory (Belady distances,
//! working-set windows, inter-fault intervals) is written in.
//!
//! Probing is zero-cost when disabled: emission sites are generic over
//! `P: Probe`, and the default sink [`NullProbe`] reports
//! `is_enabled() == false`, so the event construction and the sink call
//! const-fold away entirely under monomorphization (the `probe` bench
//! in `dsa-bench` holds this to ≤2% of the un-probed hot path).

pub mod counting;
pub mod jsonl;
pub mod latency;
pub mod shared;
pub mod spacetime;

pub use counting::CountingProbe;
pub use jsonl::JsonlRecorder;
pub use latency::LatencyProbe;
pub use shared::SharedProbe;
pub use spacetime::SpaceTimeProbe;

use dsa_core::clock::{Cycles, VirtualTime};
use dsa_core::ids::Words;

/// The dual timestamp every event is stamped with.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Stamp {
    /// Simulated machine time.
    pub cycles: Cycles,
    /// Reference time: the index of the current access.
    pub vtime: VirtualTime,
}

impl Stamp {
    /// A stamp carrying both clocks.
    #[must_use]
    pub const fn at(cycles: Cycles, vtime: VirtualTime) -> Stamp {
        Stamp { cycles, vtime }
    }

    /// A stamp for contexts that only track reference time (the bare
    /// paging engine, the allocators driven by event streams).
    #[must_use]
    pub const fn vtime(vtime: VirtualTime) -> Stamp {
        Stamp {
            cycles: Cycles::ZERO,
            vtime,
        }
    }
}

/// What kind of hardware failure an injector simulated.
///
/// The paper's systems assume hardware that can fail and trap: parity
/// and transfer errors on drum/disc channels, frames whose storage has
/// gone bad, and exhaustion the allocator must survive. The fault
/// injector replays those failure modes deterministically; each
/// injection is traced with its mode so recovery accounting can
/// reconcile per mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InjectedFault {
    /// A backing-storage transfer failed (parity/transfer error); the
    /// transfer must be retried.
    TransferError,
    /// A page frame's storage was found bad; the frame must be
    /// quarantined and its page refetched elsewhere.
    BadFrame,
    /// A channel stalled; the transfer completes late.
    ChannelDelay,
    /// An allocation request was failed outright.
    AllocFailure,
    /// A shard's free list was corrupted in place; the shard must be
    /// quarantined and rebuilt from the live-allocation snapshot.
    ShardCorruption,
}

/// One rung of the graceful-degradation ladder a system climbs under
/// storage pressure before giving up with a typed error.
///
/// The enum itself lives in `dsa-faults` (`dsa_faults::ladder`) so the
/// machine drivers and the concurrent arena's overload guard share one
/// vocabulary; this re-export keeps the probe-side spelling
/// (`dsa_probe::DegradationStep`) working.
pub use dsa_faults::ladder::DegradationStep;

/// What happened. Payloads carry the quantities reports aggregate, so a
/// counting sink can reconcile exactly with a `MachineReport`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A program reference reached the storage system.
    Touch { write: bool },
    /// The reference missed working storage and must be serviced.
    Fault,
    /// A transfer from backing storage began.
    FetchStart { words: Words },
    /// The transfer completed; the program may resume.
    FetchDone { words: Words },
    /// A block or page lost its working-storage residence.
    Evict { dirty: bool, words: Words },
    /// Modified words were copied back to backing storage.
    Writeback { words: Words },
    /// A variable-unit allocation succeeded after probing `searched`
    /// free-list entries.
    Alloc { words: Words, searched: u64 },
    /// A variable-unit block was released.
    Free { words: Words },
    /// A compaction pass began.
    CompactionStart,
    /// The compaction pass finished, having slid `moved_words` words.
    CompactionDone { moved_words: Words },
    /// The program gave the system an advice operation.
    Advice,
    /// The system brought storage in ahead of demand.
    Prefetch { words: Words },
    /// An invalid access was trapped by a bounds check.
    BoundsTrap,
    /// An address-map lookup was resolved.
    MapLookup { hit: bool },
    /// The fault injector simulated a hardware failure.
    FaultInjected { fault: InjectedFault },
    /// A failed transfer was retried (`attempt` is 1-based).
    RetryAttempt { attempt: u32 },
    /// A bad page frame was removed from service permanently.
    FrameQuarantined,
    /// A degradation rung was climbed under storage pressure.
    DegradationStep { step: DegradationStep },
    /// A tenant's allocation was refused because it would exceed the
    /// tenant's word quota.
    QuotaDenied { tenant: u32 },
    /// The overload guard refused a tenant's allocation at admission,
    /// before touching any shard.
    AdmissionReject { tenant: u32 },
    /// A lower-priority tenant's live allocations (`words` in total)
    /// were shed to admit a higher-priority demand.
    TenantShed { tenant: u32, words: Words },
    /// A shard failed its audit and was quarantined: routed out of the
    /// home/steal rotation until healed.
    ShardQuarantined { shard: u32 },
    /// A quarantined shard's free list was rebuilt from the live
    /// allocations, re-verified, and readmitted to the rotation.
    ShardRestored { shard: u32 },
    /// A tenant passed admission and was activated with `frames` page
    /// frames of allotment.
    TenantAdmitted { tenant: u32, frames: u32 },
    /// An active tenant was swapped out by the load controller;
    /// `resident` resident pages were dropped.
    TenantDeactivated { tenant: u32, resident: u32 },
    /// The load controller estimated a tenant's working-set size at
    /// `pages` pages (windowed, from a trace sample).
    WsEstimate { tenant: u32, pages: u32 },
}

/// One traced occurrence: an [`EventKind`] plus the dual timestamp.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    pub kind: EventKind,
    /// Simulated machine time of the occurrence.
    pub cycles: Cycles,
    /// Reference time of the occurrence.
    pub vtime: VirtualTime,
}

/// A sink for traced events.
///
/// Emission sites call [`Probe::emit`], which consults
/// [`Probe::is_enabled`] first; a sink whose `is_enabled` is a constant
/// `false` (the [`NullProbe`]) therefore costs nothing after
/// monomorphization.
pub trait Probe {
    /// Receives one event. Only called while [`Probe::is_enabled`]
    /// returns `true`.
    fn record(&mut self, event: &Event);

    /// Whether this sink wants events at all. Constant per sink type.
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }

    /// Stamps and delivers an event, skipping all work when disabled.
    #[inline]
    fn emit(&mut self, kind: EventKind, at: Stamp) {
        if self.is_enabled() {
            self.record(&Event {
                kind,
                cycles: at.cycles,
                vtime: at.vtime,
            });
        }
    }
}

/// The default sink: discards everything, compiles to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullProbe;

impl Probe for NullProbe {
    #[inline]
    fn record(&mut self, _event: &Event) {}

    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

impl<P: Probe + ?Sized> Probe for &mut P {
    #[inline]
    fn record(&mut self, event: &Event) {
        (**self).record(event);
    }

    #[inline]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
}

impl<P: Probe + ?Sized> Probe for Box<P> {
    #[inline]
    fn record(&mut self, event: &Event) {
        (**self).record(event);
    }

    #[inline]
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
}

/// Fans one event stream into two sinks.
///
/// Emission sites take a single `P: Probe`; a run that wants both the
/// always-on telemetry sink *and* a per-thread flight-recorder handle
/// wraps them in a `Tee`. Enabled when either side is, and a disabled
/// side (e.g. a [`NullProbe`] leg) still const-folds away — the tee
/// checks each leg's own `is_enabled` before delivering.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Probe, B: Probe> Probe for Tee<A, B> {
    #[inline]
    fn record(&mut self, event: &Event) {
        if self.0.is_enabled() {
            self.0.record(event);
        }
        if self.1.is_enabled() {
            self.1.record(event);
        }
    }

    #[inline]
    fn is_enabled(&self) -> bool {
        self.0.is_enabled() || self.1.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Collector(Vec<Event>);

    impl Probe for Collector {
        fn record(&mut self, event: &Event) {
            self.0.push(*event);
        }
    }

    #[test]
    fn emit_stamps_both_clocks() {
        let mut c = Collector(Vec::new());
        c.emit(EventKind::Fault, Stamp::at(Cycles::from_micros(3), 41));
        assert_eq!(c.0.len(), 1);
        assert_eq!(c.0[0].cycles, Cycles::from_micros(3));
        assert_eq!(c.0[0].vtime, 41);
        assert_eq!(c.0[0].kind, EventKind::Fault);
    }

    #[test]
    fn null_probe_is_disabled() {
        let mut p = NullProbe;
        assert!(!p.is_enabled());
        // emit must be a no-op (nothing to observe, but it must not panic).
        p.emit(EventKind::Touch { write: true }, Stamp::vtime(0));
    }

    #[test]
    fn mut_ref_and_box_delegate() {
        let mut c = Collector(Vec::new());
        {
            let r: &mut Collector = &mut c;
            assert!(r.is_enabled());
            r.emit(EventKind::Advice, Stamp::vtime(7));
        }
        let mut b: Box<dyn Probe> = Box::new(Collector(Vec::new()));
        assert!(b.is_enabled());
        b.emit(EventKind::BoundsTrap, Stamp::vtime(8));
        assert_eq!(c.0.len(), 1);
    }

    #[test]
    fn tee_delivers_to_both_legs() {
        let mut tee = Tee(Collector(Vec::new()), Collector(Vec::new()));
        tee.emit(EventKind::Fault, Stamp::vtime(1));
        assert_eq!(tee.0 .0.len(), 1);
        assert_eq!(tee.1 .0.len(), 1);
        // A tee with two null legs is itself disabled.
        assert!(!Tee(NullProbe, NullProbe).is_enabled());
        assert!(Tee(NullProbe, Collector(Vec::new())).is_enabled());
    }

    #[test]
    fn dyn_probe_works_through_mut_ref() {
        let mut c = Collector(Vec::new());
        let d: &mut dyn Probe = &mut c;
        // The blanket `&mut P` impl makes `&mut dyn Probe` itself a Probe.
        fn takes_generic<P: Probe + ?Sized>(p: &mut P) {
            p.emit(EventKind::MapLookup { hit: true }, Stamp::vtime(1));
        }
        takes_generic(d);
        assert_eq!(c.0.len(), 1);
    }
}
