//! Incremental Figure-3 curves: occupancy over time, split by phase.

use crate::{Event, EventKind, Probe};
use dsa_core::ids::Words;
use dsa_metrics::spacetime::{Phase, SpaceTimeMeter, SpaceTimeReport};

/// Feeds a [`SpaceTimeMeter`] from the event stream, so the space-time
/// product of Figure 3 can be *plotted over time* instead of only
/// integrated: occupancy rises on `FetchDone`/`Alloc`, falls on
/// `Evict`/`Free`, and the interval between `FetchStart` and
/// `FetchDone` is charged as `AwaitingFetch`.
///
/// A bounded sample buffer keeps `(machine-time ns, occupied words)`
/// points for plotting; when full, it decimates to every other sample
/// and doubles its stride, so memory stays bounded on arbitrarily long
/// runs while the curve keeps full range.
#[derive(Clone, Debug)]
pub struct SpaceTimeProbe {
    meter: SpaceTimeMeter,
    occupied: Words,
    awaiting_fetch: bool,
    samples: Vec<(u64, Words)>,
    capacity: usize,
    stride: u64,
    events_since_sample: u64,
}

impl SpaceTimeProbe {
    /// `capacity` bounds the number of retained curve samples (min 16).
    #[must_use]
    pub fn new(capacity: usize) -> SpaceTimeProbe {
        SpaceTimeProbe {
            meter: SpaceTimeMeter::new(),
            occupied: 0,
            awaiting_fetch: false,
            samples: Vec::new(),
            capacity: capacity.max(16),
            stride: 1,
            events_since_sample: 0,
        }
    }

    /// Words currently resident according to the event stream.
    #[must_use]
    pub fn occupied(&self) -> Words {
        self.occupied
    }

    /// The integrated space-time product so far.
    #[must_use]
    pub fn report(&self) -> SpaceTimeReport {
        self.meter.report()
    }

    /// The retained `(machine-time ns, occupied words)` curve.
    #[must_use]
    pub fn curve(&self) -> &[(u64, Words)] {
        &self.samples
    }

    fn phase(&self) -> Phase {
        if self.awaiting_fetch {
            Phase::AwaitingFetch
        } else {
            Phase::Active
        }
    }

    fn sample(&mut self, t_ns: u64) {
        self.events_since_sample += 1;
        if self.events_since_sample < self.stride {
            return;
        }
        self.events_since_sample = 0;
        if self.samples.len() >= self.capacity {
            // Decimate: keep every other point, double the stride.
            let mut keep = 0;
            self.samples.retain(|_| {
                keep += 1;
                keep % 2 == 1
            });
            self.stride *= 2;
        }
        self.samples.push((t_ns, self.occupied));
    }
}

impl Probe for SpaceTimeProbe {
    fn record(&mut self, event: &Event) {
        let changed = match event.kind {
            EventKind::FetchStart { .. } => {
                self.awaiting_fetch = true;
                true
            }
            EventKind::FetchDone { words } | EventKind::Prefetch { words } => {
                // Prefetched pages arrive outside a demand stall; both
                // raise occupancy. (Demand fetches emit both FetchDone
                // and, never, Prefetch — the kinds are disjoint.)
                self.awaiting_fetch = false;
                self.occupied += words;
                true
            }
            EventKind::Alloc { words, .. } => {
                self.occupied += words;
                true
            }
            EventKind::Evict { words, .. } | EventKind::Free { words } => {
                self.occupied = self.occupied.saturating_sub(words);
                true
            }
            _ => false,
        };
        if changed {
            self.meter.record(event.cycles, self.occupied, self.phase());
            self.sample(event.cycles.as_nanos());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stamp;
    use dsa_core::clock::Cycles;

    #[test]
    fn occupancy_tracks_fetch_and_evict() {
        let mut p = SpaceTimeProbe::new(64);
        let s = |us| Stamp::at(Cycles::from_micros(us), 0);
        p.emit(EventKind::FetchStart { words: 512 }, s(0));
        p.emit(EventKind::FetchDone { words: 512 }, s(10));
        assert_eq!(p.occupied(), 512);
        p.emit(
            EventKind::Evict {
                dirty: false,
                words: 512,
            },
            s(20),
        );
        assert_eq!(p.occupied(), 0);
    }

    #[test]
    fn waiting_interval_is_charged_to_awaiting_fetch() {
        let mut p = SpaceTimeProbe::new(64);
        let s = |us| Stamp::at(Cycles::from_micros(us), 0);
        p.emit(
            EventKind::Alloc {
                words: 100,
                searched: 1,
            },
            s(0),
        );
        p.emit(EventKind::FetchStart { words: 512 }, s(10));
        p.emit(EventKind::FetchDone { words: 512 }, s(50));
        let r = p.report();
        // 0..10us at 100 words active; 10..50us at 100 words awaiting.
        assert_eq!(r.active_word_nanos, 100 * 10_000);
        assert_eq!(r.waiting_word_nanos, 100 * 40_000);
    }

    #[test]
    fn alloc_and_free_move_occupancy() {
        let mut p = SpaceTimeProbe::new(64);
        p.emit(
            EventKind::Alloc {
                words: 30,
                searched: 2,
            },
            Stamp::vtime(0),
        );
        p.emit(
            EventKind::Alloc {
                words: 20,
                searched: 1,
            },
            Stamp::vtime(1),
        );
        p.emit(EventKind::Free { words: 30 }, Stamp::vtime(2));
        assert_eq!(p.occupied(), 20);
    }

    #[test]
    fn curve_stays_bounded_under_decimation() {
        let mut p = SpaceTimeProbe::new(16);
        for i in 0..10_000u64 {
            p.emit(
                EventKind::Alloc {
                    words: 1,
                    searched: 1,
                },
                Stamp::at(Cycles::from_nanos(i), i),
            );
        }
        assert!(p.curve().len() <= 17, "len = {}", p.curve().len());
        assert!(p.curve().windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(p.occupied(), 10_000);
    }
}
