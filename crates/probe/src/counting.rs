//! Per-event-kind counters that reconcile with `MachineReport`.

use crate::{DegradationStep, Event, EventKind, InjectedFault, Probe};
use dsa_core::ids::Words;

/// Counts every event kind (and the word quantities events carry).
///
/// The integration tests assert that, for every appendix-machine
/// preset, these totals equal the corresponding `MachineReport` fields:
/// the probe stream and the report are two views of one execution and
/// must never disagree.
#[derive(Clone, Debug, Default)]
pub struct CountingProbe {
    pub touches: u64,
    pub writes: u64,
    pub faults: u64,
    pub fetch_starts: u64,
    pub fetches: u64,
    pub fetched_words: Words,
    pub evictions: u64,
    pub dirty_evictions: u64,
    pub evicted_words: Words,
    pub writebacks: u64,
    pub writeback_words: Words,
    pub allocs: u64,
    pub alloc_words: Words,
    pub alloc_searched: u64,
    pub frees: u64,
    pub freed_words: Words,
    pub compactions: u64,
    pub compaction_moved_words: Words,
    pub advice: u64,
    pub prefetches: u64,
    pub prefetched_words: Words,
    pub bounds_traps: u64,
    pub map_lookups: u64,
    pub map_hits: u64,
    pub map_misses: u64,
    pub faults_injected: u64,
    pub transfer_errors_injected: u64,
    pub bad_frames_injected: u64,
    pub channel_delays_injected: u64,
    pub alloc_failures_injected: u64,
    pub shard_corruptions_injected: u64,
    pub retry_attempts: u64,
    pub frames_quarantined: u64,
    pub degradation_steps: u64,
    pub shed_loads: u64,
    pub quota_denials: u64,
    pub admission_rejects: u64,
    pub tenants_shed: u64,
    pub tenant_shed_words: Words,
    pub shards_quarantined: u64,
    pub shards_restored: u64,
    pub tenants_admitted: u64,
    pub tenants_deactivated: u64,
    pub deactivated_resident_pages: u64,
    pub ws_estimates: u64,
    pub ws_estimate_pages: u64,
}

impl CountingProbe {
    #[must_use]
    pub fn new() -> CountingProbe {
        CountingProbe::default()
    }

    /// Total number of events seen.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.touches
            + self.faults
            + self.fetch_starts
            + self.fetches
            + self.evictions
            + self.writebacks
            + self.allocs
            + self.frees
            + 2 * self.compactions
            + self.advice
            + self.prefetches
            + self.bounds_traps
            + self.map_lookups
            + self.faults_injected
            + self.retry_attempts
            + self.frames_quarantined
            + self.degradation_steps
            + self.quota_denials
            + self.admission_rejects
            + self.tenants_shed
            + self.shards_quarantined
            + self.shards_restored
            + self.tenants_admitted
            + self.tenants_deactivated
            + self.ws_estimates
    }

    /// Field-wise difference `self - earlier`: what happened in the
    /// interval between two snapshots of one counting sink.
    ///
    /// End-of-run totals hide phases; periodic deltas are how a live
    /// service reports *rates* (allocs/interval, faults/interval)
    /// without resetting its counters. Subtraction saturates, so a
    /// mismatched pair degrades to zeros instead of wrapping.
    #[must_use]
    pub fn delta(&self, earlier: &CountingProbe) -> CountingProbe {
        // A struct literal naming every field: adding a counter without
        // extending the delta fails to compile instead of silently
        // reporting stale intervals.
        macro_rules! sub_fields {
            ($($f:ident),* $(,)?) => {
                CountingProbe { $($f: self.$f.saturating_sub(earlier.$f)),* }
            };
        }
        sub_fields!(
            touches,
            writes,
            faults,
            fetch_starts,
            fetches,
            fetched_words,
            evictions,
            dirty_evictions,
            evicted_words,
            writebacks,
            writeback_words,
            allocs,
            alloc_words,
            alloc_searched,
            frees,
            freed_words,
            compactions,
            compaction_moved_words,
            advice,
            prefetches,
            prefetched_words,
            bounds_traps,
            map_lookups,
            map_hits,
            map_misses,
            faults_injected,
            transfer_errors_injected,
            bad_frames_injected,
            channel_delays_injected,
            alloc_failures_injected,
            shard_corruptions_injected,
            retry_attempts,
            frames_quarantined,
            degradation_steps,
            shed_loads,
            quota_denials,
            admission_rejects,
            tenants_shed,
            tenant_shed_words,
            shards_quarantined,
            shards_restored,
            tenants_admitted,
            tenants_deactivated,
            deactivated_resident_pages,
            ws_estimates,
            ws_estimate_pages,
        )
    }
}

impl Probe for CountingProbe {
    fn record(&mut self, event: &Event) {
        match event.kind {
            EventKind::Touch { write } => {
                self.touches += 1;
                if write {
                    self.writes += 1;
                }
            }
            EventKind::Fault => self.faults += 1,
            EventKind::FetchStart { .. } => self.fetch_starts += 1,
            EventKind::FetchDone { words } => {
                self.fetches += 1;
                self.fetched_words += words;
            }
            EventKind::Evict { dirty, words } => {
                self.evictions += 1;
                if dirty {
                    self.dirty_evictions += 1;
                }
                self.evicted_words += words;
            }
            EventKind::Writeback { words } => {
                self.writebacks += 1;
                self.writeback_words += words;
            }
            EventKind::Alloc { words, searched } => {
                self.allocs += 1;
                self.alloc_words += words;
                self.alloc_searched += searched;
            }
            EventKind::Free { words } => {
                self.frees += 1;
                self.freed_words += words;
            }
            EventKind::CompactionStart => {}
            EventKind::CompactionDone { moved_words } => {
                self.compactions += 1;
                self.compaction_moved_words += moved_words;
            }
            EventKind::Advice => self.advice += 1,
            EventKind::Prefetch { words } => {
                self.prefetches += 1;
                self.prefetched_words += words;
            }
            EventKind::BoundsTrap => self.bounds_traps += 1,
            EventKind::MapLookup { hit } => {
                self.map_lookups += 1;
                if hit {
                    self.map_hits += 1;
                } else {
                    self.map_misses += 1;
                }
            }
            EventKind::FaultInjected { fault } => {
                self.faults_injected += 1;
                match fault {
                    InjectedFault::TransferError => self.transfer_errors_injected += 1,
                    InjectedFault::BadFrame => self.bad_frames_injected += 1,
                    InjectedFault::ChannelDelay => self.channel_delays_injected += 1,
                    InjectedFault::AllocFailure => self.alloc_failures_injected += 1,
                    InjectedFault::ShardCorruption => self.shard_corruptions_injected += 1,
                }
            }
            EventKind::RetryAttempt { .. } => self.retry_attempts += 1,
            EventKind::FrameQuarantined => self.frames_quarantined += 1,
            EventKind::DegradationStep { step } => {
                self.degradation_steps += 1;
                if step == DegradationStep::ShedLoad {
                    self.shed_loads += 1;
                }
            }
            EventKind::QuotaDenied { .. } => self.quota_denials += 1,
            EventKind::AdmissionReject { .. } => self.admission_rejects += 1,
            EventKind::TenantShed { words, .. } => {
                self.tenants_shed += 1;
                self.tenant_shed_words += words;
            }
            EventKind::ShardQuarantined { .. } => self.shards_quarantined += 1,
            EventKind::ShardRestored { .. } => self.shards_restored += 1,
            EventKind::TenantAdmitted { .. } => self.tenants_admitted += 1,
            EventKind::TenantDeactivated { resident, .. } => {
                self.tenants_deactivated += 1;
                self.deactivated_resident_pages += u64::from(resident);
            }
            EventKind::WsEstimate { pages, .. } => {
                self.ws_estimates += 1;
                self.ws_estimate_pages += u64::from(pages);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stamp;

    #[test]
    fn every_kind_lands_in_its_counter() {
        let mut c = CountingProbe::new();
        let s = Stamp::vtime(0);
        c.emit(EventKind::Touch { write: true }, s);
        c.emit(EventKind::Touch { write: false }, s);
        c.emit(EventKind::Fault, s);
        c.emit(EventKind::FetchStart { words: 512 }, s);
        c.emit(EventKind::FetchDone { words: 512 }, s);
        c.emit(
            EventKind::Evict {
                dirty: true,
                words: 512,
            },
            s,
        );
        c.emit(EventKind::Writeback { words: 512 }, s);
        c.emit(
            EventKind::Alloc {
                words: 40,
                searched: 3,
            },
            s,
        );
        c.emit(EventKind::Free { words: 40 }, s);
        c.emit(EventKind::CompactionStart, s);
        c.emit(EventKind::CompactionDone { moved_words: 99 }, s);
        c.emit(EventKind::Advice, s);
        c.emit(EventKind::Prefetch { words: 512 }, s);
        c.emit(EventKind::BoundsTrap, s);
        c.emit(EventKind::MapLookup { hit: true }, s);
        c.emit(EventKind::MapLookup { hit: false }, s);
        c.emit(
            EventKind::FaultInjected {
                fault: InjectedFault::TransferError,
            },
            s,
        );
        c.emit(
            EventKind::FaultInjected {
                fault: InjectedFault::BadFrame,
            },
            s,
        );
        c.emit(EventKind::RetryAttempt { attempt: 1 }, s);
        c.emit(EventKind::FrameQuarantined, s);
        c.emit(
            EventKind::DegradationStep {
                step: DegradationStep::Compact,
            },
            s,
        );
        c.emit(
            EventKind::DegradationStep {
                step: DegradationStep::ShedLoad,
            },
            s,
        );
        c.emit(EventKind::QuotaDenied { tenant: 3 }, s);
        c.emit(EventKind::AdmissionReject { tenant: 4 }, s);
        c.emit(
            EventKind::TenantShed {
                tenant: 5,
                words: 256,
            },
            s,
        );
        c.emit(EventKind::ShardQuarantined { shard: 1 }, s);
        c.emit(EventKind::ShardRestored { shard: 1 }, s);
        c.emit(
            EventKind::TenantAdmitted {
                tenant: 6,
                frames: 12,
            },
            s,
        );
        c.emit(
            EventKind::TenantDeactivated {
                tenant: 6,
                resident: 7,
            },
            s,
        );
        c.emit(
            EventKind::WsEstimate {
                tenant: 6,
                pages: 9,
            },
            s,
        );
        c.emit(
            EventKind::FaultInjected {
                fault: InjectedFault::ShardCorruption,
            },
            s,
        );

        assert_eq!(c.touches, 2);
        assert_eq!(c.writes, 1);
        assert_eq!(c.faults, 1);
        assert_eq!(c.fetch_starts, 1);
        assert_eq!(c.fetches, 1);
        assert_eq!(c.fetched_words, 512);
        assert_eq!(c.evictions, 1);
        assert_eq!(c.dirty_evictions, 1);
        assert_eq!(c.evicted_words, 512);
        assert_eq!(c.writebacks, 1);
        assert_eq!(c.writeback_words, 512);
        assert_eq!(c.allocs, 1);
        assert_eq!(c.alloc_words, 40);
        assert_eq!(c.alloc_searched, 3);
        assert_eq!(c.frees, 1);
        assert_eq!(c.freed_words, 40);
        assert_eq!(c.compactions, 1);
        assert_eq!(c.compaction_moved_words, 99);
        assert_eq!(c.advice, 1);
        assert_eq!(c.prefetches, 1);
        assert_eq!(c.prefetched_words, 512);
        assert_eq!(c.bounds_traps, 1);
        assert_eq!(c.map_lookups, 2);
        assert_eq!(c.map_hits, 1);
        assert_eq!(c.map_misses, 1);
        assert_eq!(c.faults_injected, 3);
        assert_eq!(c.transfer_errors_injected, 1);
        assert_eq!(c.bad_frames_injected, 1);
        assert_eq!(c.channel_delays_injected, 0);
        assert_eq!(c.alloc_failures_injected, 0);
        assert_eq!(c.shard_corruptions_injected, 1);
        assert_eq!(c.retry_attempts, 1);
        assert_eq!(c.frames_quarantined, 1);
        assert_eq!(c.degradation_steps, 2);
        assert_eq!(c.shed_loads, 1);
        assert_eq!(c.quota_denials, 1);
        assert_eq!(c.admission_rejects, 1);
        assert_eq!(c.tenants_shed, 1);
        assert_eq!(c.tenant_shed_words, 256);
        assert_eq!(c.shards_quarantined, 1);
        assert_eq!(c.shards_restored, 1);
        assert_eq!(c.tenants_admitted, 1);
        assert_eq!(c.tenants_deactivated, 1);
        assert_eq!(c.deactivated_resident_pages, 7);
        assert_eq!(c.ws_estimates, 1);
        assert_eq!(c.ws_estimate_pages, 9);
        assert_eq!(c.total_events(), 31);
    }
}
