//! Bounded in-memory event recorder with JSONL export.

use crate::{Event, EventKind, InjectedFault, Probe};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Keeps the most recent `capacity` events in a ring buffer and
/// serializes them as JSON Lines — one object per event, e.g.
///
/// ```json
/// {"t_ns":123,"vt":45,"kind":"evict","dirty":true,"words":512}
/// ```
///
/// Serialization is hand-rolled: every field is a bool or an unsigned
/// integer, so no escaping or external dependency is needed. When the
/// buffer is full the oldest event is dropped and counted, so a bounded
/// recorder on an unbounded run keeps the tail of the trace.
#[derive(Clone, Debug)]
pub struct JsonlRecorder {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl JsonlRecorder {
    /// `capacity` bounds the retained events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> JsonlRecorder {
        JsonlRecorder {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events discarded because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained events as JSON Lines.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for e in &self.events {
            append_event(&mut out, e);
            out.push('\n');
        }
        out
    }

    /// Writes the JSONL trace to `path`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating or writing the file.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())?;
        f.flush()
    }
}

fn append_event(out: &mut String, e: &Event) {
    let _ = write!(out, "{{\"t_ns\":{},\"vt\":{}", e.cycles.as_nanos(), e.vtime);
    match e.kind {
        EventKind::Touch { write } => {
            let _ = write!(out, ",\"kind\":\"touch\",\"write\":{write}");
        }
        EventKind::Fault => out.push_str(",\"kind\":\"fault\""),
        EventKind::FetchStart { words } => {
            let _ = write!(out, ",\"kind\":\"fetch_start\",\"words\":{words}");
        }
        EventKind::FetchDone { words } => {
            let _ = write!(out, ",\"kind\":\"fetch_done\",\"words\":{words}");
        }
        EventKind::Evict { dirty, words } => {
            let _ = write!(
                out,
                ",\"kind\":\"evict\",\"dirty\":{dirty},\"words\":{words}"
            );
        }
        EventKind::Writeback { words } => {
            let _ = write!(out, ",\"kind\":\"writeback\",\"words\":{words}");
        }
        EventKind::Alloc { words, searched } => {
            let _ = write!(
                out,
                ",\"kind\":\"alloc\",\"words\":{words},\"searched\":{searched}"
            );
        }
        EventKind::Free { words } => {
            let _ = write!(out, ",\"kind\":\"free\",\"words\":{words}");
        }
        EventKind::CompactionStart => out.push_str(",\"kind\":\"compaction_start\""),
        EventKind::CompactionDone { moved_words } => {
            let _ = write!(
                out,
                ",\"kind\":\"compaction_done\",\"moved_words\":{moved_words}"
            );
        }
        EventKind::Advice => out.push_str(",\"kind\":\"advice\""),
        EventKind::Prefetch { words } => {
            let _ = write!(out, ",\"kind\":\"prefetch\",\"words\":{words}");
        }
        EventKind::BoundsTrap => out.push_str(",\"kind\":\"bounds_trap\""),
        EventKind::MapLookup { hit } => {
            let _ = write!(out, ",\"kind\":\"map_lookup\",\"hit\":{hit}");
        }
        EventKind::FaultInjected { fault } => {
            let mode = match fault {
                InjectedFault::TransferError => "transfer_error",
                InjectedFault::BadFrame => "bad_frame",
                InjectedFault::ChannelDelay => "channel_delay",
                InjectedFault::AllocFailure => "alloc_failure",
                InjectedFault::ShardCorruption => "shard_corruption",
            };
            let _ = write!(out, ",\"kind\":\"fault_injected\",\"fault\":\"{mode}\"");
        }
        EventKind::RetryAttempt { attempt } => {
            let _ = write!(out, ",\"kind\":\"retry_attempt\",\"attempt\":{attempt}");
        }
        EventKind::FrameQuarantined => out.push_str(",\"kind\":\"frame_quarantined\""),
        EventKind::DegradationStep { step } => {
            let _ = write!(
                out,
                ",\"kind\":\"degradation_step\",\"step\":\"{}\"",
                step.label()
            );
        }
        EventKind::QuotaDenied { tenant } => {
            let _ = write!(out, ",\"kind\":\"quota_denied\",\"tenant\":{tenant}");
        }
        EventKind::AdmissionReject { tenant } => {
            let _ = write!(out, ",\"kind\":\"admission_reject\",\"tenant\":{tenant}");
        }
        EventKind::TenantShed { tenant, words } => {
            let _ = write!(
                out,
                ",\"kind\":\"tenant_shed\",\"tenant\":{tenant},\"words\":{words}"
            );
        }
        EventKind::ShardQuarantined { shard } => {
            let _ = write!(out, ",\"kind\":\"shard_quarantined\",\"shard\":{shard}");
        }
        EventKind::ShardRestored { shard } => {
            let _ = write!(out, ",\"kind\":\"shard_restored\",\"shard\":{shard}");
        }
        EventKind::TenantAdmitted { tenant, frames } => {
            let _ = write!(
                out,
                ",\"kind\":\"tenant_admitted\",\"tenant\":{tenant},\"frames\":{frames}"
            );
        }
        EventKind::TenantDeactivated { tenant, resident } => {
            let _ = write!(
                out,
                ",\"kind\":\"tenant_deactivated\",\"tenant\":{tenant},\"resident\":{resident}"
            );
        }
        EventKind::WsEstimate { tenant, pages } => {
            let _ = write!(
                out,
                ",\"kind\":\"ws_estimate\",\"tenant\":{tenant},\"pages\":{pages}"
            );
        }
    }
    out.push('}');
}

impl Probe for JsonlRecorder {
    fn record(&mut self, event: &Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DegradationStep, Stamp};
    use dsa_core::clock::Cycles;

    #[test]
    fn serializes_every_kind_as_one_line() {
        let mut r = JsonlRecorder::new(32);
        let s = Stamp::at(Cycles::from_nanos(123), 45);
        r.emit(EventKind::Touch { write: false }, s);
        r.emit(EventKind::Fault, s);
        r.emit(EventKind::FetchStart { words: 512 }, s);
        r.emit(EventKind::FetchDone { words: 512 }, s);
        r.emit(
            EventKind::Evict {
                dirty: true,
                words: 512,
            },
            s,
        );
        r.emit(EventKind::Writeback { words: 512 }, s);
        r.emit(
            EventKind::Alloc {
                words: 7,
                searched: 2,
            },
            s,
        );
        r.emit(EventKind::Free { words: 7 }, s);
        r.emit(EventKind::CompactionStart, s);
        r.emit(EventKind::CompactionDone { moved_words: 3 }, s);
        r.emit(EventKind::Advice, s);
        r.emit(EventKind::Prefetch { words: 512 }, s);
        r.emit(EventKind::BoundsTrap, s);
        r.emit(EventKind::MapLookup { hit: false }, s);
        r.emit(
            EventKind::FaultInjected {
                fault: InjectedFault::TransferError,
            },
            s,
        );
        r.emit(EventKind::RetryAttempt { attempt: 2 }, s);
        r.emit(EventKind::FrameQuarantined, s);
        r.emit(
            EventKind::DegradationStep {
                step: DegradationStep::ShedLoad,
            },
            s,
        );
        let text = r.to_jsonl();
        assert_eq!(text.lines().count(), 18);
        assert!(text.contains(r#"{"t_ns":123,"vt":45,"kind":"evict","dirty":true,"words":512}"#));
        assert!(text.contains(r#""kind":"fault_injected","fault":"transfer_error""#));
        assert!(text.contains(r#""kind":"retry_attempt","attempt":2"#));
        assert!(text.contains(r#""kind":"degradation_step","step":"shed_load""#));
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            // Crude balance check in lieu of a JSON parser.
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert_eq!(line.matches('"').count() % 2, 0);
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = JsonlRecorder::new(2);
        for vt in 0..5u64 {
            r.emit(EventKind::Fault, Stamp::vtime(vt));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let kept: Vec<u64> = r.events().map(|e| e.vtime).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn writes_a_file() {
        let mut r = JsonlRecorder::new(4);
        r.emit(EventKind::Fault, Stamp::vtime(9));
        let path = std::env::temp_dir().join("dsa_probe_jsonl_test.jsonl");
        r.write_to(&path).expect("writable temp dir");
        let read = std::fs::read_to_string(&path).expect("just written");
        assert_eq!(read, r.to_jsonl());
        let _ = std::fs::remove_file(&path);
    }
}
