//! Fixed-width table rendering for experiment output.
//!
//! Every `exp_*` binary prints its results as rows of a plain-text table
//! so that EXPERIMENTS.md can quote them verbatim.

use core::fmt;

/// Alignment of a column's cells.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple fixed-width text table.
///
/// # Examples
///
/// ```
/// use dsa_metrics::table::Table;
///
/// let mut t = Table::new(&["policy", "faults"]);
/// t.row(&["LRU", "123"]);
/// t.row(&["FIFO", "154"]);
/// let s = t.to_string();
/// assert!(s.contains("policy"));
/// assert!(s.contains("154"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers. The first column is
    /// left-aligned, the rest right-aligned (the common label+numbers
    /// shape); use [`Table::with_aligns`] to override.
    #[must_use]
    pub fn new(headers: &[&str]) -> Table {
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            aligns,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Overrides per-column alignment.
    ///
    /// # Panics
    ///
    /// Panics if `aligns.len()` differs from the header count.
    #[must_use]
    pub fn with_aligns(mut self, aligns: &[Align]) -> Table {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Sets a title line printed above the table.
    #[must_use]
    pub fn with_title(mut self, title: &str) -> Table {
        self.title = Some(title.to_owned());
        self
    }

    /// Appends a row of preformatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows
            .push(cells.iter().map(|s| (*s).to_owned()).collect());
    }

    /// Appends a row of already-owned cells (convenient with `format!`).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
    }

    /// The column headers, in order.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, in insertion order.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The title, if one was set.
    #[must_use]
    pub fn title(&self) -> Option<&str> {
        self.title.as_deref()
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        if let Some(title) = &self.title {
            writeln!(f, "## {title}")?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..ncols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                match self.aligns[i] {
                    Align::Left => write!(f, "{:<width$}", cells[i], width = widths[i])?,
                    Align::Right => write!(f, "{:>width$}", cells[i], width = widths[i])?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer", "12345"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name    value");
        assert_eq!(lines[2], "a           1");
        assert_eq!(lines[3], "longer  12345");
    }

    #[test]
    fn title_is_printed() {
        let t = Table::new(&["x"]).with_title("E4 replacement");
        assert!(t.to_string().starts_with("## E4 replacement"));
    }

    #[test]
    fn row_owned_matches_row() {
        let mut a = Table::new(&["c1", "c2"]);
        a.row(&["x", "y"]);
        let mut b = Table::new(&["c1", "c2"]);
        b.row_owned(vec!["x".into(), "y".into()]);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn wrong_arity_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn custom_alignment() {
        let mut t = Table::new(&["n", "label"]).with_aligns(&[Align::Right, Align::Left]);
        t.row(&["1", "abc"]);
        t.row(&["10", "d"]);
        let s = t.to_string();
        assert!(s.contains(" 1  abc"), "{s}");
        assert!(s.contains("10  d"), "{s}");
    }

    #[test]
    fn emptiness() {
        let mut t = Table::new(&["a"]);
        assert!(t.is_empty());
        t.row(&["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
