//! Bucketed histograms with percentile queries.

use core::fmt;

/// How sample values are mapped to buckets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Bucketing {
    /// Equal-width buckets of `width` covering `[0, width * n)`.
    Linear { width: u64 },
    /// Power-of-two buckets: bucket *i* covers `[2^i, 2^(i+1))`, with
    /// bucket 0 covering `[0, 2)`.
    Log2,
}

/// A histogram over `u64` samples.
///
/// Samples beyond the last bucket are counted in an overflow bucket so
/// totals and means remain exact; percentiles saturate at the overflow
/// bucket's lower bound.
///
/// # Examples
///
/// ```
/// use dsa_metrics::histogram::Histogram;
///
/// let mut h = Histogram::linear(10, 10); // buckets [0,10), [10,20), ... [90,100)
/// for v in [1, 5, 15, 95, 250] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bucket_count(0), 2);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    bucketing: Bucketing,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `n` equal-width buckets of `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `n` is zero.
    #[must_use]
    pub fn linear(width: u64, n: usize) -> Histogram {
        assert!(width > 0, "bucket width must be positive");
        assert!(n > 0, "bucket count must be positive");
        Histogram {
            bucketing: Bucketing::Linear { width },
            buckets: vec![0; n],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Creates a histogram with `n` power-of-two buckets; bucket *i*
    /// covers `[2^i, 2^(i+1))` (bucket 0 covers `[0, 2)`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds 64.
    #[must_use]
    pub fn log2(n: usize) -> Histogram {
        assert!(n > 0 && n <= 64, "log2 bucket count must be in 1..=64");
        Histogram {
            bucketing: Bucketing::Log2,
            buckets: vec![0; n],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(&self, v: u64) -> Option<usize> {
        let idx = match self.bucketing {
            Bucketing::Linear { width } => (v / width) as usize,
            Bucketing::Log2 => {
                if v < 2 {
                    0
                } else {
                    (63 - v.leading_zeros()) as usize
                }
            }
        };
        (idx < self.buckets.len()).then_some(idx)
    }

    /// Lower bound of bucket `i`.
    #[must_use]
    pub fn bucket_low(&self, i: usize) -> u64 {
        match self.bucketing {
            Bucketing::Linear { width } => i as u64 * width,
            Bucketing::Log2 => {
                if i == 0 {
                    0
                } else {
                    1u64 << i
                }
            }
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        match self.bucket_of(v) {
            Some(i) => self.buckets[i] += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        match self.bucket_of(v) {
            Some(i) => self.buckets[i] += n,
            None => self.overflow += n,
        }
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
        self.max = self.max.max(v);
    }

    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean of all samples, or 0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen, or 0 if empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Number of samples in bucket `i`.
    #[must_use]
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of samples beyond the last bucket.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The lower bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`), or 0 if the histogram is empty. Saturates at the
    /// overflow region's lower bound.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bucket_low(i);
            }
        }
        // Target lies in the overflow region.
        self.bucket_low(self.buckets.len() - 1)
            + match self.bucketing {
                Bucketing::Linear { width } => width,
                Bucketing::Log2 => self.bucket_low(self.buckets.len() - 1),
            }
    }

    /// Iterates `(bucket_low, count)` over non-empty buckets.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_low(i), c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "n={} mean={:.1} max={}",
            self.count,
            self.mean(),
            self.max
        )?;
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (low, c) in self.nonempty_buckets() {
            let bar = "#".repeat((c * 40 / peak) as usize);
            writeln!(f, "{low:>10} | {bar} {c}")?;
        }
        if self.overflow > 0 {
            writeln!(f, "  overflow | {}", self.overflow)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_bucketing() {
        let mut h = Histogram::linear(10, 5);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(49);
        h.record(50); // overflow
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 118);
        assert_eq!(h.max(), 50);
    }

    #[test]
    fn log2_bucketing() {
        let mut h = Histogram::log2(8);
        for v in [0, 1, 2, 3, 4, 7, 8, 127, 128] {
            h.record(v);
        }
        assert_eq!(h.bucket_count(0), 2); // 0, 1
        assert_eq!(h.bucket_count(1), 2); // 2, 3
        assert_eq!(h.bucket_count(2), 2); // 4, 7
        assert_eq!(h.bucket_count(3), 1); // 8
        assert_eq!(h.bucket_count(6), 1); // 127
        assert_eq!(h.bucket_count(7), 1); // 128
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn log2_overflow() {
        let mut h = Histogram::log2(4); // covers up to [8,16)
        h.record(16);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::linear(1, 101);
        for v in 0..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn quantile_empty_is_zero() {
        let h = Histogram::linear(1, 4);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn record_n_equals_loop() {
        let mut a = Histogram::linear(10, 4);
        let mut b = Histogram::linear(10, 4);
        a.record_n(25, 7);
        for _ in 0..7 {
            b.record(25);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.bucket_count(2), b.bucket_count(2));
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::log2(10);
        h.record(3);
        h.record(5);
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_panics() {
        let _ = Histogram::linear(0, 4);
    }

    #[test]
    fn display_draws_bars() {
        let mut h = Histogram::linear(10, 4);
        h.record(5);
        h.record(5);
        h.record(35);
        let s = h.to_string();
        assert!(s.contains('#'), "{s}");
        assert!(s.contains("n=3"), "{s}");
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn quantile_saturates_in_overflow_region() {
        let mut h = Histogram::linear(10, 2); // covers [0, 20)
        h.record(5);
        h.record(500);
        h.record(600);
        // The 1.0-quantile lies among the overflowed samples; the
        // reported bound saturates at the overflow region's floor.
        assert_eq!(h.quantile(1.0), 20);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn log2_quantile_overflow_floor() {
        let mut h = Histogram::log2(3); // covers [0, 8)
        h.record(100);
        assert_eq!(h.quantile(0.5), 8);
    }
}
