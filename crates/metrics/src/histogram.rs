//! Bucketed histograms with percentile queries.

use core::fmt;

/// How sample values are mapped to buckets — the public, copyable
/// description of a histogram's geometry.
///
/// Two sinks built from the same `BucketSpec` are guaranteed to bucket
/// identically, which is what lets a relaxed-atomic accumulator
/// (`dsa-telemetry`'s `AtomicHistogram`) reassemble an ordinary
/// [`Histogram`] via [`Histogram::from_parts`] and answer percentile
/// queries through this crate's single [`Histogram::quantile`]
/// implementation instead of growing its own.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BucketSpec {
    /// `buckets` equal-width buckets of `width` covering
    /// `[0, width * buckets)`.
    Linear {
        /// Width of each bucket.
        width: u64,
        /// Number of buckets.
        buckets: usize,
    },
    /// `buckets` power-of-two buckets: bucket *i* covers
    /// `[2^i, 2^(i+1))`, with bucket 0 covering `[0, 2)`.
    Log2 {
        /// Number of buckets (at most 64).
        buckets: usize,
    },
}

impl BucketSpec {
    /// Number of buckets this spec describes.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        match *self {
            BucketSpec::Linear { buckets, .. } | BucketSpec::Log2 { buckets } => buckets,
        }
    }

    /// The bucket index of sample `v`, or `None` when it falls in the
    /// overflow region.
    #[must_use]
    pub fn index_of(&self, v: u64) -> Option<usize> {
        let idx = match *self {
            BucketSpec::Linear { width, .. } => (v / width) as usize,
            BucketSpec::Log2 { .. } => {
                if v < 2 {
                    0
                } else {
                    (63 - v.leading_zeros()) as usize
                }
            }
        };
        (idx < self.bucket_count()).then_some(idx)
    }

    /// Lower bound of bucket `i`.
    #[must_use]
    pub fn low(&self, i: usize) -> u64 {
        match *self {
            BucketSpec::Linear { width, .. } => i as u64 * width,
            BucketSpec::Log2 { .. } => {
                if i == 0 {
                    0
                } else {
                    1u64 << i
                }
            }
        }
    }

    fn validate(&self) {
        match *self {
            BucketSpec::Linear { width, buckets } => {
                assert!(width > 0, "bucket width must be positive");
                assert!(buckets > 0, "bucket count must be positive");
            }
            BucketSpec::Log2 { buckets } => {
                assert!(
                    buckets > 0 && buckets <= 64,
                    "log2 bucket count must be in 1..=64"
                );
            }
        }
    }
}

/// Shared histogram geometries: the one place the standard telemetry
/// distributions are shaped, so the sequential probes (`LatencyProbe`)
/// and the always-on atomic telemetry report percentiles over the exact
/// same buckets and can never diverge.
pub mod geometry {
    use super::BucketSpec;

    /// Fault-service latency in nanoseconds (log2, up to ~18 minutes).
    pub const FAULT_SERVICE_NS: BucketSpec = BucketSpec::Log2 { buckets: 40 };
    /// Inter-fault distance in references (log2, up to ~4e9 refs).
    pub const INTER_FAULT_REFS: BucketSpec = BucketSpec::Log2 { buckets: 32 };
    /// Free-list entries examined per allocation (exact up to 255).
    pub const SEARCH_LEN: BucketSpec = BucketSpec::Linear {
        width: 1,
        buckets: 256,
    };
    /// Allocation-request size in words (log2).
    pub const ALLOC_WORDS: BucketSpec = BucketSpec::Log2 { buckets: 32 };
}

/// A histogram over `u64` samples.
///
/// Samples beyond the last bucket are counted in an overflow bucket so
/// totals and means remain exact; percentiles saturate at the overflow
/// bucket's lower bound.
///
/// # Examples
///
/// ```
/// use dsa_metrics::histogram::Histogram;
///
/// let mut h = Histogram::linear(10, 10); // buckets [0,10), [10,20), ... [90,100)
/// for v in [1, 5, 15, 95, 250] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bucket_count(0), 2);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    spec: BucketSpec,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram with the given bucketing.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero width, zero buckets, or
    /// more than 64 log2 buckets).
    #[must_use]
    pub fn with_spec(spec: BucketSpec) -> Histogram {
        spec.validate();
        Histogram {
            spec,
            buckets: vec![0; spec.bucket_count()],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Creates a histogram with `n` equal-width buckets of `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `n` is zero.
    #[must_use]
    pub fn linear(width: u64, n: usize) -> Histogram {
        Histogram::with_spec(BucketSpec::Linear { width, buckets: n })
    }

    /// Creates a histogram with `n` power-of-two buckets; bucket *i*
    /// covers `[2^i, 2^(i+1))` (bucket 0 covers `[0, 2)`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds 64.
    #[must_use]
    pub fn log2(n: usize) -> Histogram {
        Histogram::with_spec(BucketSpec::Log2 { buckets: n })
    }

    /// Reassembles a histogram from externally accumulated parts — the
    /// bridge that lets an atomic accumulator freeze its relaxed
    /// counters into an ordinary histogram and answer quantile queries
    /// through the one implementation here.
    ///
    /// `buckets[i]` is the sample count of bucket `i` under `spec`;
    /// `overflow`, `sum` and `max` describe the same sample set.
    ///
    /// # Panics
    ///
    /// Panics if `buckets.len()` disagrees with the spec or the bucket
    /// counts plus overflow don't sum to `count`.
    #[must_use]
    pub fn from_parts(
        spec: BucketSpec,
        buckets: Vec<u64>,
        overflow: u64,
        sum: u128,
        max: u64,
    ) -> Histogram {
        spec.validate();
        assert_eq!(
            buckets.len(),
            spec.bucket_count(),
            "bucket vector disagrees with the spec"
        );
        let count = buckets.iter().sum::<u64>() + overflow;
        Histogram {
            spec,
            buckets,
            overflow,
            count,
            sum,
            max,
        }
    }

    /// This histogram's bucketing, for building a matching accumulator.
    #[must_use]
    pub fn spec(&self) -> BucketSpec {
        self.spec
    }

    fn bucket_of(&self, v: u64) -> Option<usize> {
        self.spec.index_of(v)
    }

    /// Lower bound of bucket `i`.
    #[must_use]
    pub fn bucket_low(&self, i: usize) -> u64 {
        self.spec.low(i)
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        match self.bucket_of(v) {
            Some(i) => self.buckets[i] += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        match self.bucket_of(v) {
            Some(i) => self.buckets[i] += n,
            None => self.overflow += n,
        }
        self.count += n;
        self.sum += u128::from(v) * u128::from(n);
        self.max = self.max.max(v);
    }

    /// Total number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean of all samples, or 0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen, or 0 if empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Number of samples in bucket `i`.
    #[must_use]
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of samples beyond the last bucket.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The lower bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`), or 0 if the histogram is empty. Saturates at the
    /// overflow region's lower bound.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bucket_low(i);
            }
        }
        // Target lies in the overflow region.
        self.bucket_low(self.buckets.len() - 1)
            + match self.spec {
                BucketSpec::Linear { width, .. } => width,
                BucketSpec::Log2 { .. } => self.bucket_low(self.buckets.len() - 1),
            }
    }

    /// Iterates `(bucket_low, count)` over non-empty buckets.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bucket_low(i), c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "n={} mean={:.1} max={}",
            self.count,
            self.mean(),
            self.max
        )?;
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (low, c) in self.nonempty_buckets() {
            let bar = "#".repeat((c * 40 / peak) as usize);
            writeln!(f, "{low:>10} | {bar} {c}")?;
        }
        if self.overflow > 0 {
            writeln!(f, "  overflow | {}", self.overflow)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_bucketing() {
        let mut h = Histogram::linear(10, 5);
        h.record(0);
        h.record(9);
        h.record(10);
        h.record(49);
        h.record(50); // overflow
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 118);
        assert_eq!(h.max(), 50);
    }

    #[test]
    fn log2_bucketing() {
        let mut h = Histogram::log2(8);
        for v in [0, 1, 2, 3, 4, 7, 8, 127, 128] {
            h.record(v);
        }
        assert_eq!(h.bucket_count(0), 2); // 0, 1
        assert_eq!(h.bucket_count(1), 2); // 2, 3
        assert_eq!(h.bucket_count(2), 2); // 4, 7
        assert_eq!(h.bucket_count(3), 1); // 8
        assert_eq!(h.bucket_count(6), 1); // 127
        assert_eq!(h.bucket_count(7), 1); // 128
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn log2_overflow() {
        let mut h = Histogram::log2(4); // covers up to [8,16)
        h.record(16);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::linear(1, 101);
        for v in 0..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn quantile_empty_is_zero() {
        let h = Histogram::linear(1, 4);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn record_n_equals_loop() {
        let mut a = Histogram::linear(10, 4);
        let mut b = Histogram::linear(10, 4);
        a.record_n(25, 7);
        for _ in 0..7 {
            b.record(25);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.bucket_count(2), b.bucket_count(2));
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::log2(10);
        h.record(3);
        h.record(5);
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_panics() {
        let _ = Histogram::linear(0, 4);
    }

    #[test]
    fn display_draws_bars() {
        let mut h = Histogram::linear(10, 4);
        h.record(5);
        h.record(5);
        h.record(35);
        let s = h.to_string();
        assert!(s.contains('#'), "{s}");
        assert!(s.contains("n=3"), "{s}");
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn from_parts_reassembles_exactly() {
        let mut direct = Histogram::log2(8);
        for v in [0u64, 1, 3, 9, 200, 3000] {
            direct.record(v);
        }
        let rebuilt = Histogram::from_parts(
            direct.spec(),
            (0..8).map(|i| direct.bucket_count(i)).collect(),
            direct.overflow(),
            direct.sum(),
            direct.max(),
        );
        assert_eq!(rebuilt.count(), direct.count());
        assert_eq!(rebuilt.sum(), direct.sum());
        assert_eq!(rebuilt.max(), direct.max());
        for q in [0.0, 0.5, 0.9, 1.0] {
            assert_eq!(rebuilt.quantile(q), direct.quantile(q));
        }
    }

    #[test]
    fn spec_index_matches_recording() {
        for spec in [
            BucketSpec::Log2 { buckets: 10 },
            BucketSpec::Linear {
                width: 7,
                buckets: 12,
            },
        ] {
            let mut h = Histogram::with_spec(spec);
            for v in [0u64, 1, 6, 7, 13, 63, 64, 90, 1000] {
                h.record(v);
                if let Some(i) = spec.index_of(v) {
                    assert!(h.bucket_count(i) > 0, "{spec:?} value {v} bucket {i}");
                    assert!(spec.low(i) <= v);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "disagrees with the spec")]
    fn from_parts_checks_bucket_arity() {
        let _ = Histogram::from_parts(BucketSpec::Log2 { buckets: 4 }, vec![0; 3], 0, 0, 0);
    }

    #[test]
    fn quantile_saturates_in_overflow_region() {
        let mut h = Histogram::linear(10, 2); // covers [0, 20)
        h.record(5);
        h.record(500);
        h.record(600);
        // The 1.0-quantile lies among the overflowed samples; the
        // reported bound saturates at the overflow region's floor.
        assert_eq!(h.quantile(1.0), 20);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn log2_quantile_overflow_floor() {
        let mut h = Histogram::log2(3); // covers [0, 8)
        h.record(100);
        assert_eq!(h.quantile(0.5), 8);
    }
}
