//! The space-time product of Figure 3.
//!
//! The paper argues that the significant measure of a fetch strategy is
//! not the amount of storage allocated but the *space-time product*: a
//! program awaiting the arrival of a page continues to occupy working
//! storage, so "if page fetching is a slow process, a large part of the
//! space-time product for a program may well be due to space occupied
//! while the program is inactive awaiting further pages". Figure 3 draws
//! exactly this: occupied space against real time, shaded by whether the
//! program is active or awaiting a page.
//!
//! [`SpaceTimeMeter`] integrates that figure: call [`SpaceTimeMeter::record`]
//! whenever occupancy or activity changes, and read off the integral
//! split into its active and waiting components.

use core::fmt;

use dsa_core::clock::Cycles;
use dsa_core::ids::Words;

/// What the program is doing during an interval.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Executing instructions.
    Active,
    /// Blocked awaiting the arrival of a page or segment.
    AwaitingFetch,
    /// Ready but not running (another program holds the processor).
    ReadyIdle,
}

/// Integrates occupied-words × time, split by [`Phase`].
///
/// # Examples
///
/// ```
/// use dsa_core::clock::Cycles;
/// use dsa_metrics::spacetime::{Phase, SpaceTimeMeter};
///
/// let mut m = SpaceTimeMeter::new();
/// // 100 words occupied, active, for 10 us.
/// m.record(Cycles::from_micros(0), 100, Phase::Active);
/// // Then a page wait of 40 us at 100 words.
/// m.record(Cycles::from_micros(10), 100, Phase::AwaitingFetch);
/// m.finish(Cycles::from_micros(50));
///
/// let r = m.report();
/// assert_eq!(r.active_word_nanos, 100 * 10_000);
/// assert_eq!(r.waiting_word_nanos, 100 * 40_000);
/// // 80% of this program's space-time is wait — Figure 3's point.
/// assert!((r.waiting_fraction() - 0.8).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SpaceTimeMeter {
    last_time: Option<Cycles>,
    cur_words: Words,
    cur_phase: Option<Phase>,
    active: u128,
    waiting: u128,
    ready_idle: u128,
}

/// The integrated space-time product, in word-nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SpaceTimeReport {
    /// Word-nanoseconds accumulated while executing.
    pub active_word_nanos: u128,
    /// Word-nanoseconds accumulated while awaiting a fetch.
    pub waiting_word_nanos: u128,
    /// Word-nanoseconds accumulated while ready but preempted.
    pub ready_idle_word_nanos: u128,
}

impl SpaceTimeReport {
    /// Total space-time product.
    #[must_use]
    pub fn total(&self) -> u128 {
        self.active_word_nanos + self.waiting_word_nanos + self.ready_idle_word_nanos
    }

    /// Fraction of the space-time product spent awaiting fetches, or 0
    /// if nothing was accumulated.
    #[must_use]
    pub fn waiting_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.waiting_word_nanos as f64 / t as f64
        }
    }

    /// Total expressed in word-milliseconds (the unit experiment tables
    /// print).
    #[must_use]
    pub fn total_word_millis(&self) -> f64 {
        self.total() as f64 / 1e6
    }
}

impl fmt::Display for SpaceTimeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "space-time {:.1} word-ms ({:.1}% waiting)",
            self.total_word_millis(),
            self.waiting_fraction() * 100.0
        )
    }
}

impl SpaceTimeMeter {
    /// Creates an empty meter.
    #[must_use]
    pub fn new() -> SpaceTimeMeter {
        SpaceTimeMeter::default()
    }

    fn accumulate(&mut self, until: Cycles) {
        if let (Some(t0), Some(phase)) = (self.last_time, self.cur_phase) {
            let dt = until.saturating_sub(t0).as_nanos();
            let wt = u128::from(dt) * u128::from(self.cur_words);
            match phase {
                Phase::Active => self.active += wt,
                Phase::AwaitingFetch => self.waiting += wt,
                Phase::ReadyIdle => self.ready_idle += wt,
            }
        }
    }

    /// Declares that from instant `now` the program occupies `words` of
    /// working storage in phase `phase`. The interval since the previous
    /// `record` is charged at the *previous* occupancy and phase.
    pub fn record(&mut self, now: Cycles, words: Words, phase: Phase) {
        self.accumulate(now);
        self.last_time = Some(now);
        self.cur_words = words;
        self.cur_phase = Some(phase);
    }

    /// Closes the final interval at instant `now`.
    pub fn finish(&mut self, now: Cycles) {
        self.accumulate(now);
        self.last_time = Some(now);
        self.cur_phase = None;
    }

    /// Reads the integral so far.
    #[must_use]
    pub fn report(&self) -> SpaceTimeReport {
        SpaceTimeReport {
            active_word_nanos: self.active,
            waiting_word_nanos: self.waiting,
            ready_idle_word_nanos: self.ready_idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_meter_reports_zero() {
        let m = SpaceTimeMeter::new();
        assert_eq!(m.report().total(), 0);
        assert_eq!(m.report().waiting_fraction(), 0.0);
    }

    #[test]
    fn intervals_charged_at_previous_state() {
        let mut m = SpaceTimeMeter::new();
        m.record(Cycles::from_nanos(0), 10, Phase::Active);
        m.record(Cycles::from_nanos(100), 50, Phase::Active); // 10 words for 100 ns
        m.finish(Cycles::from_nanos(200)); // 50 words for 100 ns
        let r = m.report();
        assert_eq!(r.active_word_nanos, 10 * 100 + 50 * 100);
        assert_eq!(r.waiting_word_nanos, 0);
    }

    #[test]
    fn phases_are_separated() {
        let mut m = SpaceTimeMeter::new();
        m.record(Cycles::from_nanos(0), 100, Phase::Active);
        m.record(Cycles::from_nanos(10), 100, Phase::AwaitingFetch);
        m.record(Cycles::from_nanos(30), 100, Phase::ReadyIdle);
        m.finish(Cycles::from_nanos(60));
        let r = m.report();
        assert_eq!(r.active_word_nanos, 1000);
        assert_eq!(r.waiting_word_nanos, 2000);
        assert_eq!(r.ready_idle_word_nanos, 3000);
        assert_eq!(r.total(), 6000);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut m = SpaceTimeMeter::new();
        m.record(Cycles::from_nanos(0), 10, Phase::Active);
        m.finish(Cycles::from_nanos(100));
        m.finish(Cycles::from_nanos(100));
        assert_eq!(m.report().total(), 1000);
    }

    #[test]
    fn out_of_order_times_do_not_underflow() {
        let mut m = SpaceTimeMeter::new();
        m.record(Cycles::from_nanos(100), 10, Phase::Active);
        m.record(Cycles::from_nanos(50), 10, Phase::Active); // earlier: charged as 0
        m.finish(Cycles::from_nanos(60));
        assert_eq!(m.report().active_word_nanos, 100);
    }

    #[test]
    fn display_mentions_waiting_share() {
        let mut m = SpaceTimeMeter::new();
        m.record(Cycles::from_micros(0), 1000, Phase::AwaitingFetch);
        m.finish(Cycles::from_micros(10));
        let s = m.report().to_string();
        assert!(s.contains("100.0% waiting"), "{s}");
    }
}
