//! Measurement utilities shared by the experiment harnesses.
//!
//! The paper's arguments are quantitative even where it prints no
//! numbers: the space-time product of Figure 3, storage-utilization
//! levels "shown by analysis or experimentation" (Wald), fragmentation
//! comparisons, and addressing-overhead claims. This crate provides the
//! small, dependency-free measurement kit those experiments need:
//!
//! * [`stats::RunningStats`] — streaming mean/variance/min/max;
//! * [`histogram::Histogram`] — linear- or log-bucketed histograms with
//!   percentile queries;
//! * [`spacetime::SpaceTimeMeter`] — the space-time integral of Figure 3,
//!   split into *active* and *page-wait* components;
//! * [`table::Table`] — fixed-width table rendering so every experiment
//!   binary prints paper-style rows;
//! * [`mod@sparkline`] — one-line curve rendering so sweep shapes (the
//!   U-curves of E6) can be read at a glance.

pub mod histogram;
pub mod spacetime;
pub mod sparkline;
pub mod stats;
pub mod table;

pub use histogram::{BucketSpec, Histogram};
pub use spacetime::{SpaceTimeMeter, SpaceTimeReport};
pub use sparkline::{labelled_sparkline, sparkline};
pub use stats::RunningStats;
pub use table::Table;
