//! One-line sparkline rendering for experiment curves.
//!
//! Several experiments sweep a parameter and produce a curve (the
//! U-shapes of E6, the utilization ramp of E2); a sparkline under the
//! table lets the shape be read at a glance in plain terminal output.

/// Renders `values` as a one-line bar sparkline using eighth-block
/// characters, scaled to the data range.
///
/// Empty input renders to an empty string; a constant series renders at
/// mid height.
///
/// # Examples
///
/// ```
/// use dsa_metrics::sparkline::sparkline;
///
/// let s = sparkline(&[1.0, 2.0, 4.0, 8.0, 4.0, 2.0, 1.0]);
/// assert_eq!(s.chars().count(), 7);
/// ```
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            let idx = if span <= f64::EPSILON {
                3
            } else {
                (((v - lo) / span) * 7.0).round() as usize
            };
            BARS[idx.min(7)]
        })
        .collect()
}

/// Renders `values` with a label and the numeric range, e.g.
/// `waste  ▁▂▅█▃  [12 .. 900]`.
#[must_use]
pub fn labelled_sparkline(label: &str, values: &[f64]) -> String {
    if values.is_empty() {
        return format!("{label}  (no data)");
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    format!("{label}  {}  [{lo:.3} .. {hi:.3}]", sparkline(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_matches_input() {
        assert_eq!(sparkline(&[]).chars().count(), 0);
        assert_eq!(sparkline(&[1.0]).chars().count(), 1);
        assert_eq!(sparkline(&[0.0, 1.0, 2.0]).chars().count(), 3);
    }

    #[test]
    fn extremes_hit_the_end_bars() {
        let s: Vec<char> = sparkline(&[0.0, 10.0]).chars().collect();
        assert_eq!(s[0], '▁');
        assert_eq!(s[1], '█');
    }

    #[test]
    fn constant_series_is_flat_mid() {
        let s: Vec<char> = sparkline(&[5.0, 5.0, 5.0]).chars().collect();
        assert!(s.iter().all(|&c| c == s[0]));
        assert_eq!(s[0], '▄');
    }

    #[test]
    fn u_shape_reads_as_u() {
        let s: Vec<char> = sparkline(&[9.0, 4.0, 1.0, 4.0, 9.0]).chars().collect();
        assert_eq!(s[0], '█');
        assert_eq!(s[2], '▁');
        assert_eq!(s[4], '█');
        assert!(s[1] < s[0] && s[1] > s[2]);
    }

    #[test]
    fn monotone_series_is_monotone() {
        let s: Vec<char> = sparkline(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
            .chars()
            .collect();
        for w in s.windows(2) {
            assert!(w[0] <= w[1], "{s:?}");
        }
    }

    #[test]
    fn labelled_includes_range() {
        let s = labelled_sparkline("waste", &[1.0, 2.0]);
        assert!(s.starts_with("waste"), "{s}");
        assert!(s.contains("[1.000 .. 2.000]"), "{s}");
        assert_eq!(labelled_sparkline("x", &[]), "x  (no data)");
    }
}
