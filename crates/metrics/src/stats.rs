//! Streaming summary statistics.

use core::fmt;

/// Streaming count/mean/variance/min/max over `f64` samples.
///
/// Uses Welford's algorithm, so it is numerically stable over the long
/// runs our simulations produce.
///
/// # Examples
///
/// ```
/// use dsa_metrics::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> RunningStats {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (dividing by *n*), or 0 if empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (dividing by *n − 1*), or 0 with fewer than two
    /// samples.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest sample, or `+inf` if empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, or `-inf` if empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Merges another accumulator into this one (parallel-combine form
    /// of Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn matches_direct_computation() {
        let xs: Vec<f64> = (1..=100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.population_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.7).collect();
        let ys: Vec<f64> = (0..70).map(|i| 100.0 - i as f64).collect();
        let mut all = RunningStats::new();
        for &x in xs.iter().chain(&ys) {
            all.push(x);
        }
        let mut a = RunningStats::new();
        for &x in &xs {
            a.push(x);
        }
        let mut b = RunningStats::new();
        for &y in &ys {
            b.push(y);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        b.push(1.0);
        b.push(2.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        let empty = RunningStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn display_contains_fields() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(2.0);
        let txt = s.to_string();
        assert!(txt.contains("n=2"), "{txt}");
        assert!(txt.contains("mean=1.500"), "{txt}");
    }
}
