//! The seed-driven fault source.

use dsa_core::clock::Cycles;
use dsa_trace::rng::Rng64;

use crate::config::FaultConfig;

/// Deterministically decides, at each hazard site, whether a simulated
/// hardware failure occurs.
///
/// Each decision consumes randomness from one [`Rng64`] stream in the
/// order the hazard sites are reached, so a run is bit-identical for the
/// same `(seed, config, workload)` triple — the property the
/// `properties_faults` suite pins down.
///
/// The injector only *decides*; it never touches storage state. The
/// caller (machine driver, segment store, paging engine) performs the
/// recovery and emits the probe events.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: Rng64,
    config: FaultConfig,
    /// Remaining forced failures of the current transfer-error burst.
    burst_left: u32,
    injected: u64,
}

impl FaultInjector {
    /// Creates an injector for `config`, seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64, config: FaultConfig) -> FaultInjector {
        FaultInjector {
            rng: Rng64::new(seed),
            config,
            burst_left: 0,
            injected: 0,
        }
    }

    /// The configuration this injector rolls against.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Total failures injected so far, across all modes.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Rolls one transfer attempt: `true` means the transfer failed and
    /// must be retried. Honours the configured burst pattern: once an
    /// error fires, the next `burst_len - 1` rolls fail as well.
    pub fn transfer_error(&mut self) -> bool {
        if self.burst_left > 0 {
            self.burst_left -= 1;
            self.injected += 1;
            return true;
        }
        if self.config.transfer_error_rate > 0.0 && self.rng.chance(self.config.transfer_error_rate)
        {
            self.burst_left = self.config.burst_len.saturating_sub(1);
            self.injected += 1;
            return true;
        }
        false
    }

    /// Rolls one demand load: `true` means the destination frame is bad
    /// and must be quarantined.
    pub fn frame_bad(&mut self) -> bool {
        if self.config.bad_frame_rate > 0.0 && self.rng.chance(self.config.bad_frame_rate) {
            self.injected += 1;
            return true;
        }
        false
    }

    /// Rolls one transfer for channel congestion, returning the stall to
    /// charge if the channel is delayed.
    pub fn channel_delay(&mut self) -> Option<Cycles> {
        if self.config.channel_delay_rate > 0.0 && self.rng.chance(self.config.channel_delay_rate) {
            self.injected += 1;
            return Some(self.config.channel_delay);
        }
        None
    }

    /// Rolls one allocation request: `true` means the request is refused
    /// outright (the storage-exhaustion path is exercised even when the
    /// store has room).
    pub fn alloc_failure(&mut self) -> bool {
        if self.config.alloc_fail_rate > 0.0 && self.rng.chance(self.config.alloc_fail_rate) {
            self.injected += 1;
            return true;
        }
        false
    }

    /// Rolls one shard-corruption hazard: `true` means a shard's free
    /// list is corrupted in place and must be quarantined and rebuilt.
    pub fn shard_corruption(&mut self) -> bool {
        if self.config.shard_corruption_rate > 0.0
            && self.rng.chance(self.config.shard_corruption_rate)
        {
            self.injected += 1;
            return true;
        }
        false
    }

    /// Draws a uniform value in `[0, n)` from this injector's stream —
    /// used to pick deterministic fault *targets* (which shard to
    /// corrupt) from the same schedule that decided the fault fires.
    pub fn roll_below(&mut self, n: u64) -> u64 {
        self.rng.below(n.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_never_fires_and_consumes_no_randomness() {
        let mut a = FaultInjector::new(7, FaultConfig::off());
        for _ in 0..1000 {
            assert!(!a.transfer_error());
            assert!(!a.frame_bad());
            assert!(a.channel_delay().is_none());
            assert!(!a.alloc_failure());
        }
        assert_eq!(a.injected(), 0);
        // The stream was untouched: a fresh generator agrees.
        assert_eq!(a.rng.next_u64(), Rng64::new(7).next_u64());
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig::transfer_errors(0.1).with_bad_frames(0.05);
        let mut a = FaultInjector::new(42, cfg);
        let mut b = FaultInjector::new(42, cfg);
        for _ in 0..10_000 {
            assert_eq!(a.transfer_error(), b.transfer_error());
            assert_eq!(a.frame_bad(), b.frame_bad());
        }
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0, "rates this high must fire");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let mut inj = FaultInjector::new(3, FaultConfig::transfer_errors(0.01));
        let fired = (0..100_000).filter(|_| inj.transfer_error()).count();
        assert!((500..2000).contains(&fired), "{fired} of 100000 at 1%");
    }

    #[test]
    fn bursts_cluster_errors() {
        let mut inj = FaultInjector::new(5, FaultConfig::transfer_errors(0.01).with_burst(4));
        let mut run = 0u32;
        let mut longest = 0u32;
        for _ in 0..100_000 {
            if inj.transfer_error() {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        assert!(longest >= 4, "a full burst must appear, saw {longest}");
    }

    #[test]
    fn channel_delay_returns_the_configured_stall() {
        let mut inj = FaultInjector::new(
            1,
            FaultConfig::off().with_channel_delays(1.0, Cycles::from_micros(9)),
        );
        assert_eq!(inj.channel_delay(), Some(Cycles::from_micros(9)));
        assert_eq!(inj.injected(), 1);
    }
}
