//! End-of-run recovery accounting.

use core::fmt;

use dsa_core::clock::Cycles;

/// What the recovery machinery did during one run.
///
/// Every field mirrors a probe event one-for-one, so the totals here
/// reconcile exactly with a `CountingProbe` attached to the same run:
/// `faults_injected` with `FaultInjected` events (and the per-mode
/// fields with the event's mode payload), `retry_attempts` with
/// `RetryAttempt`, `frames_quarantined` with `FrameQuarantined`,
/// `degradation_steps` (and `shed_loads` within it) with
/// `DegradationStep`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Failures injected, across all modes.
    pub faults_injected: u64,
    /// Transfer attempts that failed with a simulated transfer error.
    pub transfer_errors: u64,
    /// Bad frames injected at demand loads.
    pub bad_frames: u64,
    /// Channel-congestion delays injected.
    pub channel_delays: u64,
    /// Allocation requests refused by the injector.
    pub forced_alloc_failures: u64,
    /// Shard free lists corrupted in place by the injector (the
    /// quarantine-and-rebuild path's trigger).
    pub shard_corruptions: u64,
    /// Transfer retries performed.
    pub retry_attempts: u64,
    /// Transfers whose retry budget ran out (completed from the duplexed
    /// backing copy; counted, never panicked on).
    pub retries_exhausted: u64,
    /// Frames retired permanently after a bad-frame injection.
    pub frames_quarantined: u64,
    /// Degradation rungs climbed under storage pressure (including
    /// shed-load rungs).
    pub degradation_steps: u64,
    /// Shed-load rungs: the load controller gave up speculative or
    /// pinned claims to let a demand through.
    pub shed_loads: u64,
    /// Simulated time spent in retry backoff and re-driven transfers.
    pub retry_time: Cycles,
    /// Simulated time lost to injected channel delays.
    pub delay_time: Cycles,
}

impl RecoveryReport {
    /// True when nothing was injected and no recovery ran.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        *self == RecoveryReport::default()
    }

    /// Adds another report's counts into this one (used when a machine
    /// aggregates sub-component recovery).
    pub fn absorb(&mut self, other: &RecoveryReport) {
        self.faults_injected += other.faults_injected;
        self.transfer_errors += other.transfer_errors;
        self.bad_frames += other.bad_frames;
        self.channel_delays += other.channel_delays;
        self.forced_alloc_failures += other.forced_alloc_failures;
        self.shard_corruptions += other.shard_corruptions;
        self.retry_attempts += other.retry_attempts;
        self.retries_exhausted += other.retries_exhausted;
        self.frames_quarantined += other.frames_quarantined;
        self.degradation_steps += other.degradation_steps;
        self.shed_loads += other.shed_loads;
        self.retry_time += other.retry_time;
        self.delay_time += other.delay_time;
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} injected ({} xfer / {} frame / {} delay / {} alloc / {} corrupt), \
             {} retries ({} exhausted), {} quarantined, {} degradations ({} shed)",
            self.faults_injected,
            self.transfer_errors,
            self.bad_frames,
            self.channel_delays,
            self.forced_alloc_failures,
            self.shard_corruptions,
            self.retry_attempts,
            self.retries_exhausted,
            self.frames_quarantined,
            self.degradation_steps,
            self.shed_loads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_by_default() {
        assert!(RecoveryReport::default().is_quiet());
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = RecoveryReport {
            faults_injected: 2,
            transfer_errors: 1,
            retry_attempts: 3,
            retry_time: Cycles::from_micros(10),
            ..RecoveryReport::default()
        };
        let b = RecoveryReport {
            faults_injected: 1,
            bad_frames: 1,
            frames_quarantined: 1,
            retry_time: Cycles::from_micros(5),
            ..RecoveryReport::default()
        };
        a.absorb(&b);
        assert_eq!(a.faults_injected, 3);
        assert_eq!(a.bad_frames, 1);
        assert_eq!(a.frames_quarantined, 1);
        assert_eq!(a.retry_time, Cycles::from_micros(15));
        assert!(!a.is_quiet());
    }

    #[test]
    fn display_is_informative() {
        let r = RecoveryReport {
            faults_injected: 4,
            transfer_errors: 4,
            retry_attempts: 5,
            ..RecoveryReport::default()
        };
        let s = r.to_string();
        assert!(s.contains("4 injected") && s.contains("5 retries"), "{s}");
    }
}
