//! The graceful-degradation ladder: one vocabulary for every climber.
//!
//! Two subsystems climb degradation ladders under storage pressure: the
//! single-threaded machine drivers (coalesce → compact → evict → shed
//! load, PR 2) and the concurrent arena service's `OverloadGuard`
//! (retry-with-backoff → coalesce the pressured shard → steal-then-
//! coalesce globally → shed lowest-priority tenants). They used to keep
//! separate step enums; this module is the shared vocabulary, so one
//! `DegradationStep` probe event covers both and the reconciliation
//! rules are written once.
//!
//! The ladder *ordering* is policy, not vocabulary: each climber
//! declares its own rung sequence ([`MACHINE_LADDER`],
//! [`ARENA_LADDER`]) over the shared steps.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// One rung of a graceful-degradation ladder a system climbs under
/// storage pressure before giving up with a typed error.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DegradationStep {
    /// The failed operation was retried after an exponential backoff.
    RetryBackoff,
    /// Adjacent free blocks were combined.
    Coalesce,
    /// Allocated blocks were slid together to consolidate free storage.
    Compact,
    /// Resident units were evicted to make room.
    EvictVictims,
    /// Every shard was compacted and the overflow steal rotation was
    /// re-driven against the consolidated holes.
    StealGlobal,
    /// The load controller shed speculative/pinned claims on storage.
    ShedLoad,
    /// A lower-priority tenant's allocations were shed to admit a
    /// higher-priority demand.
    ShedTenant,
}

impl DegradationStep {
    /// Stable lowercase label, used by renderers and exporters.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            DegradationStep::RetryBackoff => "retry_backoff",
            DegradationStep::Coalesce => "coalesce",
            DegradationStep::Compact => "compact",
            DegradationStep::EvictVictims => "evict_victims",
            DegradationStep::StealGlobal => "steal_global",
            DegradationStep::ShedLoad => "shed_load",
            DegradationStep::ShedTenant => "shed_tenant",
        }
    }
}

/// The machine drivers' rung order (PR 2): local consolidation first,
/// then eviction, then the scheduler's slack.
pub const MACHINE_LADDER: [DegradationStep; 4] = [
    DegradationStep::Coalesce,
    DegradationStep::Compact,
    DegradationStep::EvictVictims,
    DegradationStep::ShedLoad,
];

/// The concurrent arena's rung order: cheapest and least disruptive
/// first — transient failures retry, then the pressured shard is
/// consolidated, then every shard, and only then is another tenant's
/// storage taken.
pub const ARENA_LADDER: [DegradationStep; 4] = [
    DegradationStep::RetryBackoff,
    DegradationStep::Coalesce,
    DegradationStep::StealGlobal,
    DegradationStep::ShedTenant,
];

/// A bounded budget of shed rungs per run.
///
/// Shedding is the rung where one party's storage is surrendered for
/// another's demand; an unbounded shedder can livelock a pathological
/// workload (shed, refill, shed again). The budget bounds how many
/// times a run may fall back on it before failures are surfaced.
#[derive(Clone, Copy, Debug)]
pub struct ShedBudget {
    /// Sheds still permitted.
    remaining: u32,
    /// Sheds performed.
    sheds: u64,
}

impl ShedBudget {
    /// A budget allowing at most `max_sheds` shed rungs per run.
    #[must_use]
    pub fn new(max_sheds: u32) -> ShedBudget {
        ShedBudget {
            remaining: max_sheds,
            sheds: 0,
        }
    }

    /// Attempts to take a shed rung. Returns `true` (and counts it)
    /// while the budget lasts; after that the caller must surface the
    /// failure.
    pub fn try_shed(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        self.sheds += 1;
        true
    }

    /// Shed rungs taken so far.
    #[must_use]
    pub fn sheds(&self) -> u64 {
        self.sheds
    }
}

/// [`ShedBudget`] semantics behind atomics, shared by every worker
/// thread of a concurrent service.
///
/// `try_shed` is a compare-exchange loop on the remaining budget, so
/// exactly `max_sheds` claims succeed across all threads no matter how
/// the races fall — the count of granted sheds reconciles exactly with
/// the `DegradationStep { step: ShedTenant }` events emitted, one per
/// granted claim.
#[derive(Debug)]
pub struct AtomicShedBudget {
    remaining: AtomicU32,
    sheds: AtomicU64,
}

impl AtomicShedBudget {
    /// A shared budget allowing at most `max_sheds` shed rungs.
    #[must_use]
    pub fn new(max_sheds: u32) -> AtomicShedBudget {
        AtomicShedBudget {
            remaining: AtomicU32::new(max_sheds),
            sheds: AtomicU64::new(0),
        }
    }

    /// Attempts to take a shed rung; thread-safe, never over-grants.
    pub fn try_shed(&self) -> bool {
        let mut cur = self.remaining.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return false;
            }
            match self.remaining.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.sheds.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Shed rungs granted so far.
    #[must_use]
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Rungs still available.
    #[must_use]
    pub fn remaining(&self) -> u32 {
        self.remaining.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(DegradationStep::Coalesce.label(), "coalesce");
        assert_eq!(DegradationStep::ShedTenant.label(), "shed_tenant");
    }

    #[test]
    fn ladders_share_the_vocabulary() {
        assert!(MACHINE_LADDER.contains(&DegradationStep::ShedLoad));
        assert!(ARENA_LADDER.contains(&DegradationStep::ShedTenant));
        assert!(ARENA_LADDER.contains(&DegradationStep::Coalesce));
    }

    #[test]
    fn shed_budget_is_bounded() {
        let mut b = ShedBudget::new(2);
        assert!(b.try_shed());
        assert!(b.try_shed());
        assert!(!b.try_shed());
        assert_eq!(b.sheds(), 2);
    }

    #[test]
    fn atomic_budget_never_over_grants() {
        let b = AtomicShedBudget::new(5);
        let granted: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..100).filter(|_| b.try_shed()).count()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(granted, 5);
        assert_eq!(b.sheds(), 5);
        assert_eq!(b.remaining(), 0);
    }
}
