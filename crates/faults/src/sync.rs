//! Thread-safe fault injection for the concurrent allocation path.
//!
//! The plain [`FaultInjector`] owns one `Rng64` stream and is `&mut` —
//! fine for the single-threaded machine drivers, useless inside
//! `std::thread::scope` workers. [`SyncFaultInjector`] is the shared
//! factory: it holds the master seed, the [`FaultConfig`], and one set
//! of relaxed atomic tallies; each worker asks for a
//! [`WorkerInjector`] keyed by its **stream id** (not its OS thread).
//!
//! Determinism at any `--jobs`: the per-stream seed is a SplitMix64
//! finalizer over `(master seed, stream id)`, so stream *k* rolls the
//! identical fault schedule whether one thread runs all streams or
//! eight threads run them in parallel. The shared tallies are
//! commutative sums, so the merged [`RecoveryReport`] is byte-identical
//! at 1, 2, or 8 worker threads — the `properties_faults` suite pins
//! this down.

use std::sync::atomic::{AtomicU64, Ordering};

use dsa_core::clock::Cycles;

use crate::config::FaultConfig;
use crate::injector::FaultInjector;
use crate::report::RecoveryReport;

/// SplitMix64 finalizer: the avalanche stage used to derive independent
/// per-stream seeds from `(master, stream)`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shared injection tallies, bumped relaxed from every worker.
#[derive(Debug, Default)]
struct Tally {
    faults_injected: AtomicU64,
    transfer_errors: AtomicU64,
    bad_frames: AtomicU64,
    channel_delays: AtomicU64,
    forced_alloc_failures: AtomicU64,
    shard_corruptions: AtomicU64,
}

/// A `Sync` fault-injector factory for `std::thread::scope` workers.
///
/// One per run; workers call [`SyncFaultInjector::worker`] with their
/// deterministic stream id and roll hazards on the returned
/// [`WorkerInjector`]. Injection counts merge into one
/// [`RecoveryReport`] via [`SyncFaultInjector::report`].
#[derive(Debug)]
pub struct SyncFaultInjector {
    seed: u64,
    config: FaultConfig,
    tally: Tally,
}

impl SyncFaultInjector {
    /// A factory for `config`, seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64, config: FaultConfig) -> SyncFaultInjector {
        SyncFaultInjector {
            seed,
            config,
            tally: Tally::default(),
        }
    }

    /// The configuration every worker stream rolls against.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The injector for one deterministic stream.
    ///
    /// `stream` must identify the logical work stream (worker index of
    /// a deterministic partition, grid-cell index, …), never the OS
    /// thread: the schedule of stream `k` is a pure function of
    /// `(seed, config, k)`.
    #[must_use]
    pub fn worker(&self, stream: u64) -> WorkerInjector<'_> {
        WorkerInjector {
            inner: FaultInjector::new(mix(self.seed ^ mix(stream)), self.config),
            tally: &self.tally,
        }
    }

    /// Total failures injected so far across all workers.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.tally.faults_injected.load(Ordering::Relaxed)
    }

    /// The merged injection accounting: commutative sums over every
    /// worker stream, so the report is identical at any thread count.
    /// Recovery-side fields (retries, quarantines, degradations) belong
    /// to the component doing the recovering and stay zero here.
    #[must_use]
    pub fn report(&self) -> RecoveryReport {
        let delays = self.tally.channel_delays.load(Ordering::Relaxed);
        RecoveryReport {
            faults_injected: self.tally.faults_injected.load(Ordering::Relaxed),
            transfer_errors: self.tally.transfer_errors.load(Ordering::Relaxed),
            bad_frames: self.tally.bad_frames.load(Ordering::Relaxed),
            channel_delays: delays,
            forced_alloc_failures: self.tally.forced_alloc_failures.load(Ordering::Relaxed),
            shard_corruptions: self.tally.shard_corruptions.load(Ordering::Relaxed),
            // The per-delay stall is a config constant, so the total is
            // exact arithmetic, not a racy accumulation.
            delay_time: self.config.channel_delay * delays,
            ..RecoveryReport::default()
        }
    }
}

/// One worker's deterministic hazard stream, tallying into the shared
/// [`SyncFaultInjector`].
///
/// Mirrors the [`FaultInjector`] rolls and adds the concurrent-path
/// hazard: [`WorkerInjector::shard_corruption`].
#[derive(Debug)]
pub struct WorkerInjector<'a> {
    inner: FaultInjector,
    tally: &'a Tally,
}

impl WorkerInjector<'_> {
    /// Rolls one transfer attempt; `true` means it failed.
    pub fn transfer_error(&mut self) -> bool {
        let fired = self.inner.transfer_error();
        if fired {
            self.count(&self.tally.transfer_errors);
        }
        fired
    }

    /// Rolls one demand load; `true` means the frame is bad.
    pub fn frame_bad(&mut self) -> bool {
        let fired = self.inner.frame_bad();
        if fired {
            self.count(&self.tally.bad_frames);
        }
        fired
    }

    /// Rolls one transfer for channel congestion; the returned stall is
    /// charged by the caller.
    pub fn channel_delay(&mut self) -> Option<Cycles> {
        let delay = self.inner.channel_delay();
        if delay.is_some() {
            self.count(&self.tally.channel_delays);
        }
        delay
    }

    /// Rolls one allocation request; `true` means it is refused
    /// outright.
    pub fn alloc_failure(&mut self) -> bool {
        let fired = self.inner.alloc_failure();
        if fired {
            self.count(&self.tally.forced_alloc_failures);
        }
        fired
    }

    /// Rolls one shard-corruption hazard; `true` means a shard's free
    /// list is about to be corrupted and must be healed.
    pub fn shard_corruption(&mut self) -> bool {
        let fired = self.inner.shard_corruption();
        if fired {
            self.count(&self.tally.shard_corruptions);
        }
        fired
    }

    /// The deterministic target shard for a corruption that just fired
    /// (uniform over `shards`, drawn from this stream).
    pub fn corruption_target(&mut self, shards: u32) -> u32 {
        self.inner.roll_below(u64::from(shards.max(1))) as u32
    }

    /// Failures this worker's stream injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.inner.injected()
    }

    fn count(&self, field: &AtomicU64) {
        self.tally.faults_injected.fetch_add(1, Ordering::Relaxed);
        field.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_independent_and_deterministic() {
        let cfg = FaultConfig::transfer_errors(0.2).with_alloc_failures(0.1);
        let a = SyncFaultInjector::new(11, cfg);
        let b = SyncFaultInjector::new(11, cfg);
        for stream in 0..4 {
            let mut wa = a.worker(stream);
            let mut wb = b.worker(stream);
            for _ in 0..1000 {
                assert_eq!(wa.transfer_error(), wb.transfer_error());
                assert_eq!(wa.alloc_failure(), wb.alloc_failure());
            }
        }
        assert_eq!(a.report(), b.report());
        assert!(a.injected() > 0);
    }

    #[test]
    fn distinct_streams_differ() {
        let f = SyncFaultInjector::new(7, FaultConfig::transfer_errors(0.5));
        let roll = |mut w: WorkerInjector<'_>| -> Vec<bool> {
            (0..64).map(|_| w.transfer_error()).collect()
        };
        assert_ne!(roll(f.worker(0)), roll(f.worker(1)));
    }

    #[test]
    fn report_merges_commutatively_across_threads() {
        let cfg = FaultConfig::transfer_errors(0.1)
            .with_alloc_failures(0.05)
            .with_channel_delays(0.02, Cycles::from_micros(3))
            .with_shard_corruption(0.01);
        let totals = |threads: usize| -> RecoveryReport {
            let f = SyncFaultInjector::new(99, cfg);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let f = &f;
                        s.spawn(move || {
                            // Each OS thread runs a fixed partition of the
                            // 8 logical streams.
                            for stream in (t as u64..8).step_by(threads) {
                                let mut w = f.worker(stream);
                                for _ in 0..500 {
                                    w.transfer_error();
                                    w.alloc_failure();
                                    w.channel_delay();
                                    if w.shard_corruption() {
                                        w.corruption_target(4);
                                    }
                                }
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            });
            f.report()
        };
        let one = totals(1);
        assert_eq!(one, totals(2));
        assert_eq!(one, totals(8));
        assert!(one.faults_injected > 0);
        assert_eq!(one.delay_time, Cycles::from_micros(3) * one.channel_delays);
    }
}
