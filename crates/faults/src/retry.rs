//! Bounded retry with exponential backoff, in simulated cycles.

use dsa_core::clock::Cycles;

/// How transient transfer errors are retried.
///
/// Attempt `n` (1-based) of a failed transfer waits
/// `base_backoff * multiplier^(n-1)` simulated cycles before the
/// channel is re-driven. After `max_attempts` retries the error is
/// declared permanent: the caller stops retrying, counts the
/// exhaustion, and completes the transfer from the duplexed copy the
/// paper's drum systems kept (the simulation stays total — no words are
/// lost — but the exhaustion is visible in the `RecoveryReport`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries per transfer (0 disables retrying).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Cycles,
    /// Backoff growth factor per further retry.
    pub multiplier: u32,
}

impl RetryPolicy {
    /// Three retries backing off 10 µs, 20 µs, 40 µs — a sensible
    /// default against drum-latency-scale transfers.
    #[must_use]
    pub const fn default_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Cycles::from_micros(10),
            multiplier: 2,
        }
    }

    /// The backoff charged before retry `attempt` (1-based). Attempts
    /// beyond `max_attempts` saturate at the final backoff.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Cycles {
        let capped = attempt.clamp(1, self.max_attempts.max(1));
        let factor = u64::from(self.multiplier).pow(capped - 1);
        self.base_backoff * factor
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::default_policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles() {
        let p = RetryPolicy::default_policy();
        assert_eq!(p.backoff(1), Cycles::from_micros(10));
        assert_eq!(p.backoff(2), Cycles::from_micros(20));
        assert_eq!(p.backoff(3), Cycles::from_micros(40));
        // Saturates at the final rung.
        assert_eq!(p.backoff(9), Cycles::from_micros(40));
    }

    #[test]
    fn zero_attempts_is_safe() {
        let p = RetryPolicy {
            max_attempts: 0,
            base_backoff: Cycles::from_micros(1),
            multiplier: 2,
        };
        assert_eq!(p.backoff(1), Cycles::from_micros(1));
    }
}
