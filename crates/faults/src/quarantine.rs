//! The permanent-frame quarantine book of record.

use std::collections::BTreeSet;

use dsa_core::ids::FrameNo;

/// Frames found bad and retired from service.
///
/// Quarantine is permanent for the life of the machine: a frame whose
/// storage failed parity is never trusted again, so the working-store
/// pool shrinks and the replacement policy runs over the survivors.
/// (A `BTreeSet` keeps iteration order deterministic for reporting.)
#[derive(Clone, Debug, Default)]
pub struct FrameQuarantine {
    frames: BTreeSet<FrameNo>,
}

impl FrameQuarantine {
    /// An empty quarantine.
    #[must_use]
    pub fn new() -> FrameQuarantine {
        FrameQuarantine::default()
    }

    /// Records `frame` as bad. Returns `false` if it was already
    /// quarantined.
    pub fn quarantine(&mut self, frame: FrameNo) -> bool {
        self.frames.insert(frame)
    }

    /// Whether `frame` is quarantined.
    #[must_use]
    pub fn contains(&self, frame: FrameNo) -> bool {
        self.frames.contains(&frame)
    }

    /// Number of quarantined frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no frame has been quarantined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The quarantined frames, in ascending order.
    pub fn frames(&self) -> impl Iterator<Item = FrameNo> + '_ {
        self.frames.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarantine_is_idempotent_and_ordered() {
        let mut q = FrameQuarantine::new();
        assert!(q.is_empty());
        assert!(q.quarantine(FrameNo(5)));
        assert!(q.quarantine(FrameNo(2)));
        assert!(!q.quarantine(FrameNo(5)), "already quarantined");
        assert_eq!(q.len(), 2);
        assert!(q.contains(FrameNo(2)));
        assert!(!q.contains(FrameNo(3)));
        let order: Vec<FrameNo> = q.frames().collect();
        assert_eq!(order, vec![FrameNo(2), FrameNo(5)]);
    }
}
