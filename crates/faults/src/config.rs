//! Per-level fault rates and burst patterns.

use dsa_core::clock::Cycles;

/// Rates and shapes for one injector.
///
/// Each rate is a probability in `[0, 1]` rolled at the corresponding
/// hazard site: `transfer_error_rate` per transfer attempt (including
/// retries — a retried transfer can fail again), `bad_frame_rate` per
/// demand load into a frame, `channel_delay_rate` per transfer, and
/// `alloc_fail_rate` per allocation request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability a backing-storage transfer fails (parity/transfer
    /// error) and must be retried.
    pub transfer_error_rate: f64,
    /// Probability the frame a page was just loaded into is found bad,
    /// forcing quarantine and a refetch elsewhere.
    pub bad_frame_rate: f64,
    /// Probability a transfer is delayed by channel congestion.
    pub channel_delay_rate: f64,
    /// The stall charged when a channel delay fires.
    pub channel_delay: Cycles,
    /// Probability an allocation request is refused outright.
    pub alloc_fail_rate: f64,
    /// Probability (rolled per chaos batch) that one shard's free list
    /// is corrupted in place, forcing quarantine and a rebuild from the
    /// live-allocation snapshot.
    pub shard_corruption_rate: f64,
    /// When a transfer error fires, the `burst_len - 1` following
    /// transfer-error rolls also fail — drum errors cluster (a speck on
    /// the surface ruins consecutive sectors). `1` means independent
    /// errors.
    pub burst_len: u32,
}

impl FaultConfig {
    /// No faults at all — the happy-path simulator of PRs 0–1.
    #[must_use]
    pub const fn off() -> FaultConfig {
        FaultConfig {
            transfer_error_rate: 0.0,
            bad_frame_rate: 0.0,
            channel_delay_rate: 0.0,
            channel_delay: Cycles::ZERO,
            alloc_fail_rate: 0.0,
            shard_corruption_rate: 0.0,
            burst_len: 1,
        }
    }

    /// Only transfer errors, at `rate` per transfer attempt — the knob
    /// the `exp_06_faults` degradation curves sweep.
    #[must_use]
    pub fn transfer_errors(rate: f64) -> FaultConfig {
        FaultConfig {
            transfer_error_rate: rate,
            ..FaultConfig::off()
        }
    }

    /// Sets the bad-frame rate.
    #[must_use]
    pub fn with_bad_frames(mut self, rate: f64) -> FaultConfig {
        self.bad_frame_rate = rate;
        self
    }

    /// Sets the channel-delay rate and stall length.
    #[must_use]
    pub fn with_channel_delays(mut self, rate: f64, delay: Cycles) -> FaultConfig {
        self.channel_delay_rate = rate;
        self.channel_delay = delay;
        self
    }

    /// Sets the forced-allocation-failure rate.
    #[must_use]
    pub fn with_alloc_failures(mut self, rate: f64) -> FaultConfig {
        self.alloc_fail_rate = rate;
        self
    }

    /// Sets the shard-corruption rate.
    #[must_use]
    pub fn with_shard_corruption(mut self, rate: f64) -> FaultConfig {
        self.shard_corruption_rate = rate;
        self
    }

    /// Sets the transfer-error burst length.
    #[must_use]
    pub fn with_burst(mut self, burst_len: u32) -> FaultConfig {
        self.burst_len = burst_len.max(1);
        self
    }

    /// True when every rate is zero (the injector will never fire).
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.transfer_error_rate == 0.0
            && self.bad_frame_rate == 0.0
            && self.channel_delay_rate == 0.0
            && self.alloc_fail_rate == 0.0
            && self.shard_corruption_rate == 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_off() {
        assert!(FaultConfig::off().is_off());
        assert!(!FaultConfig::transfer_errors(0.01).is_off());
    }

    #[test]
    fn builders_compose() {
        let c = FaultConfig::transfer_errors(0.1)
            .with_bad_frames(0.2)
            .with_channel_delays(0.3, Cycles::from_micros(5))
            .with_alloc_failures(0.4)
            .with_shard_corruption(0.05)
            .with_burst(3);
        assert_eq!(c.transfer_error_rate, 0.1);
        assert_eq!(c.bad_frame_rate, 0.2);
        assert_eq!(c.channel_delay_rate, 0.3);
        assert_eq!(c.channel_delay, Cycles::from_micros(5));
        assert_eq!(c.alloc_fail_rate, 0.4);
        assert_eq!(c.shard_corruption_rate, 0.05);
        assert_eq!(c.burst_len, 3);
        assert!(!FaultConfig::off().with_shard_corruption(0.1).is_off());
    }

    #[test]
    fn burst_is_clamped_to_one() {
        assert_eq!(FaultConfig::off().with_burst(0).burst_len, 1);
    }
}
