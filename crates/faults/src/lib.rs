//! Deterministic fault injection and recovery policies.
//!
//! The paper's systems assume hardware that fails and traps: parity and
//! transfer errors on drum and disc channels, invalid-access trapping
//! (special hardware facility (v)), storage exhaustion that ATLAS and
//! the M44/44X had to survive rather than crash on. This crate makes
//! those failures first-class, injectable, and recoverable:
//!
//! * [`FaultInjector`] — a seed-driven source of simulated hardware
//!   failures: failed transfers, bad page frames, stalled channels, and
//!   refused allocations, with per-mode rates and burst patterns
//!   ([`FaultConfig`]). Same seed, same schedule — every run is exactly
//!   reproducible.
//! * [`RetryPolicy`] — bounded retry with exponential backoff, in
//!   simulated cycles, for transient transfer errors.
//! * [`FrameQuarantine`] — the permanent-frame book of record: frames
//!   found bad are retired from service and never reused.
//! * [`RecoveryReport`] — end-of-run accounting of every injection and
//!   every recovery action, reconciling exactly with the probe layer's
//!   `CountingProbe` totals.
//!
//! The graceful-degradation ladder itself (coalesce → compact → evict →
//! shed load → typed error) lives where the storage is: the segment
//! store and paging engine climb the rungs; this crate defines the
//! vocabulary ([`ladder::DegradationStep`], the shared rung enum both
//! the machine drivers and the concurrent arena's overload guard report
//! through) and the accounting. For `std::thread::scope` workers the
//! [`SyncFaultInjector`] hands out deterministic per-stream
//! [`WorkerInjector`]s whose merged report is identical at any thread
//! count.

pub mod config;
pub mod injector;
pub mod ladder;
pub mod quarantine;
pub mod report;
pub mod retry;
pub mod sync;

pub use config::FaultConfig;
pub use injector::FaultInjector;
pub use ladder::{AtomicShedBudget, DegradationStep, ShedBudget};
pub use quarantine::FrameQuarantine;
pub use report::RecoveryReport;
pub use retry::RetryPolicy;
pub use sync::{SyncFaultInjector, WorkerInjector};
