//! A real allocator built from the workspace's concurrent primitives.
//!
//! Every other crate in this workspace *simulates* dynamic storage
//! allocation: addresses are words in an imaginary core store, and the
//! experiments measure policies against each other. This crate closes
//! the loop and runs the same machinery as an actual Rust heap:
//!
//! 1. **Size-class slab heap** ([`DsaHeap`]) — a ladder of lock-free
//!    [`dsa_arena::FixedSlab`]s (one per jemalloc-style size class from
//!    the shared [`dsa_core::sizeclass`] geometry, 8..=2048 bytes) over
//!    pages carved from a backing [`dsa_arena::ShardedArena`]. Small
//!    allocations are a single tagged-CAS pop; frees a single push.
//! 2. **Per-thread magazine caches** ([`ThreadCache`]) — Bonwick's
//!    two-magazine scheme: each thread holds a *loaded* and a
//!    *previous* magazine per class, so the common alloc/free path
//!    touches no shared state at all. When both run dry (or full) the
//!    thread swaps a magazine with a per-class depot under a short
//!    lock, amortizing one lock acquisition over a whole magazine of
//!    operations.
//! 3. **Sharded large path** — requests past the ladder go through the
//!    [`dsa_arena::ShardedArena`] proper (first-fit shards, overflow
//!    stealing, quick lists), with a striped side table mapping the
//!    returned pointer back to its arena id on free.
//!
//! [`GlobalDsa`] packages the three layers behind
//! [`core::alloc::GlobalAlloc`], so the whole thing can be installed
//! with `#[global_allocator]`; the `nightly` feature additionally
//! implements the unstable `core::alloc::Allocator` trait. The heap's
//! own bookkeeping (shard maps, depot vectors, the large side table)
//! routes to [`std::alloc::System`] through a reentrancy guard, which
//! is what makes self-hosting safe.
//!
//! Telemetry is not bolted on: every backend operation (slab pop/push,
//! arena alloc/free) flows through the crate's
//! [`dsa_telemetry::TelemetryProbe`], and
//! [`DsaHeap::check_reconciliation`] proves the probe's ledger equals
//! the heap's — the same books-must-balance discipline the simulators
//! enforce, now over real memory.

#![cfg_attr(feature = "nightly", feature(allocator_api))]

mod global;
mod heap;
mod magazine;

pub use global::GlobalDsa;
pub use heap::{DsaHeap, HeapConfig, HeapStats};
pub use magazine::{ThreadCache, MAG_MAX};
