//! Per-thread magazine caches, after Bonwick's vmem/slab design.
//!
//! A *magazine* is a fixed-capacity stack of object pointers. Each
//! thread keeps two per size class — *loaded* and *previous* — and
//! serves allocations by popping the loaded magazine and frees by
//! pushing it: no atomics, no locks, no shared cache lines on the
//! common path. The protocol on exhaustion is Bonwick's:
//!
//! * **alloc, loaded empty**: if the previous magazine has objects,
//!   swap the two and pop (still lock-free). Otherwise exchange an
//!   empty magazine for a full one at the per-class *depot* under a
//!   short lock; if the depot is dry, take one object straight from
//!   the slab — magazines fill up on the free side.
//! * **free, loaded full**: if the previous magazine is empty, swap
//!   and push. Otherwise hand a full magazine to the depot, take an
//!   empty one, and push.
//!
//! The depot bounds its stock ([`crate::DsaHeap`] drains overflow back
//! to the slab), so parked memory per class is capped at
//! `(DEPOT_MAX_FULL + 2 × threads) × depth` objects.
//!
//! Accounting: magazine hits are counted in plain (non-atomic)
//! thread-local counters and folded into the heap's [`HeapStats`] on
//! flush and thread exit. The telemetry probe never sees a magazine
//! hit — it tracks backend traffic, and an object parked in a magazine
//! is still backend-live. That is what keeps
//! [`DsaHeap::check_reconciliation`] exact without quiescing threads.

use std::alloc::Layout;

use crate::heap::DsaHeap;
#[allow(unused_imports)] // doc links
use crate::heap::HeapStats;

/// Hard capacity of a magazine; the runtime depth
/// ([`crate::HeapConfig::magazine_depth`]) may be anything up to this.
pub const MAG_MAX: usize = 64;

/// A fixed stack of cached object pointers for one size class.
pub(crate) struct Magazine {
    ptrs: [*mut u8; MAG_MAX],
    len: usize,
}

// SAFETY: the pointers are cached heap objects whose ownership moves
// with the magazine; a magazine is only ever touched by one thread at
// a time (its owner, or a depot holder under the depot lock).
unsafe impl Send for Magazine {}

impl Magazine {
    pub(crate) const EMPTY: Magazine = Magazine {
        ptrs: [std::ptr::null_mut(); MAG_MAX],
        len: 0,
    };

    pub(crate) fn push(&mut self, p: *mut u8) {
        debug_assert!(self.len < MAG_MAX);
        self.ptrs[self.len] = p;
        self.len += 1;
    }

    pub(crate) fn pop(&mut self) -> Option<*mut u8> {
        if self.len == 0 {
            None
        } else {
            self.len -= 1;
            Some(self.ptrs[self.len])
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

/// The per-class exchange point: full magazines waiting for hungry
/// threads, empty shells waiting for full ones.
#[derive(Default)]
pub(crate) struct Depot {
    pub(crate) full: Vec<Magazine>,
    pub(crate) empty: Vec<Magazine>,
}

impl Depot {
    /// Objects parked in this depot's full magazines.
    pub(crate) fn parked(&self) -> usize {
        self.full.iter().map(Magazine::len).sum()
    }
}

/// The loaded/previous pair for one size class.
struct ClassMags {
    loaded: Magazine,
    prev: Magazine,
}

/// A per-thread front-end for a [`DsaHeap`].
///
/// Not `Send`/`Sync` (it owns raw cached pointers): create one per
/// thread. Dropping the cache flushes every parked object back to the
/// heap and folds the hit counters in, so books balance at thread
/// exit.
pub struct ThreadCache<'h> {
    heap: &'h DsaHeap,
    depth: usize,
    mags: Vec<ClassMags>,
    local_allocs: u64,
    local_frees: u64,
}

impl<'h> ThreadCache<'h> {
    /// A cache with the heap's configured magazine depth.
    #[must_use]
    pub fn new(heap: &'h DsaHeap) -> ThreadCache<'h> {
        ThreadCache::with_depth(heap, heap.config().magazine_depth)
    }

    /// A cache with an explicit magazine depth (the depth-sweep
    /// experiments use this).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= depth <= `[`MAG_MAX`].
    #[must_use]
    pub fn with_depth(heap: &'h DsaHeap, depth: usize) -> ThreadCache<'h> {
        assert!(
            (1..=MAG_MAX).contains(&depth),
            "depth must be 1..={MAG_MAX}"
        );
        let mags = (0..heap.classes().count())
            .map(|_| ClassMags {
                loaded: Magazine::EMPTY,
                prev: Magazine::EMPTY,
            })
            .collect();
        ThreadCache {
            heap,
            depth,
            mags,
            local_allocs: 0,
            local_frees: 0,
        }
    }

    /// The heap this cache fronts (identity check for global installs).
    #[must_use]
    pub fn heap_ptr(&self) -> *const DsaHeap {
        self.heap
    }

    /// Objects currently parked in this cache's magazines.
    #[must_use]
    pub fn parked(&self) -> usize {
        self.mags
            .iter()
            .map(|m| m.loaded.len() + m.prev.len())
            .sum()
    }

    /// Allocates a block for `layout`. Ladder sizes go through the
    /// magazines; larger (or hyper-aligned) requests pass straight to
    /// the heap's large path. Null only if the final `System` fallback
    /// fails.
    #[must_use]
    pub fn alloc(&mut self, layout: Layout) -> *mut u8 {
        let Some(class) = self.heap.small_class(layout) else {
            return self.heap.large_alloc(layout);
        };
        let m = &mut self.mags[class];
        if let Some(p) = m.loaded.pop() {
            self.local_allocs += 1;
            return p;
        }
        if m.prev.len() > 0 {
            std::mem::swap(&mut m.loaded, &mut m.prev);
            if let Some(p) = m.loaded.pop() {
                self.local_allocs += 1;
                return p;
            }
        }
        self.alloc_slow(class, layout)
    }

    /// Frees a block allocated with `layout`.
    ///
    /// # Safety
    ///
    /// `ptr` must be live and must have been allocated from this
    /// cache's heap (any thread) with the same `layout`.
    pub unsafe fn dealloc(&mut self, ptr: *mut u8, layout: Layout) {
        if let Some(class) = self.heap.small_class(layout) {
            if self.heap.in_class_slab(class, ptr) {
                let m = &mut self.mags[class];
                if m.loaded.len() < self.depth {
                    m.loaded.push(ptr);
                    self.local_frees += 1;
                    return;
                }
                if m.prev.len() == 0 {
                    std::mem::swap(&mut m.loaded, &mut m.prev);
                    m.loaded.push(ptr);
                    self.local_frees += 1;
                    return;
                }
                self.dealloc_slow(class, ptr);
                return;
            }
        }
        // SAFETY: forwarded caller contract.
        unsafe { self.heap.dealloc_outside_slab(ptr, layout) }
    }

    /// Returns every parked object to the heap and folds the hit
    /// counters into [`HeapStats`]. The cache stays usable.
    pub fn flush(&mut self) {
        for class in 0..self.mags.len() {
            loop {
                let p = {
                    let m = &mut self.mags[class];
                    m.loaded.pop().or_else(|| m.prev.pop())
                };
                let Some(p) = p else { break };
                self.heap.slab_push(class, p);
            }
        }
        self.heap
            .fold_magazine_counters(self.local_allocs, self.local_frees);
        self.local_allocs = 0;
        self.local_frees = 0;
    }

    /// Cold alloc path: depot exchange, then the raw slab, then the
    /// large path (slab exhausted).
    fn alloc_slow(&mut self, class: usize, layout: Layout) -> *mut u8 {
        let exchanged = {
            let mut depot = self.heap.depot(class);
            if let Some(full) = depot.full.pop() {
                let shell = std::mem::replace(&mut self.mags[class].loaded, full);
                depot.empty.push(shell);
                true
            } else {
                false
            }
        };
        if exchanged {
            self.heap.after_depot_exchange(class);
            if let Some(p) = self.mags[class].loaded.pop() {
                self.local_allocs += 1;
                return p;
            }
        }
        // Depot dry: serve one object straight from the slab. Magazines
        // fill on the free side — pre-filling here would just move the
        // miss cost around.
        self.heap
            .slab_pop(class)
            .unwrap_or_else(|| self.heap.large_alloc(layout))
    }

    /// Cold free path: trade the full loaded magazine for an empty one
    /// at the depot, then push.
    fn dealloc_slow(&mut self, class: usize, ptr: *mut u8) {
        {
            let mut depot = self.heap.depot(class);
            let shell = depot.empty.pop().unwrap_or(Magazine::EMPTY);
            let full = std::mem::replace(&mut self.mags[class].loaded, shell);
            depot.full.push(full);
        }
        self.heap.after_depot_exchange(class);
        self.mags[class].loaded.push(ptr);
        self.local_frees += 1;
    }
}

impl Drop for ThreadCache<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::HeapConfig;

    fn layout(size: usize) -> Layout {
        Layout::from_size_align(size, 8).unwrap()
    }

    #[test]
    fn magazine_is_a_lifo_stack() {
        let mut m = Magazine::EMPTY;
        assert_eq!(m.pop(), None);
        m.push(8 as *mut u8);
        m.push(16 as *mut u8);
        assert_eq!(m.len(), 2);
        assert_eq!(m.pop(), Some(16 as *mut u8));
        assert_eq!(m.pop(), Some(8 as *mut u8));
        assert_eq!(m.pop(), None);
    }

    #[test]
    fn cached_roundtrip_reconciles_after_flush() {
        let heap = DsaHeap::new(HeapConfig::small());
        let mut cache = ThreadCache::new(&heap);
        let l = layout(40);
        let mut ptrs: Vec<*mut u8> = (0..100).map(|_| cache.alloc(l)).collect();
        assert!(ptrs.iter().all(|p| !p.is_null()));
        // Books balance even with objects parked in the magazines.
        heap.check_reconciliation();
        for p in ptrs.drain(..) {
            unsafe { cache.dealloc(p, l) };
        }
        heap.check_reconciliation();
        drop(cache);
        heap.flush_depots();
        heap.check_reconciliation();
        let s = heap.stats();
        assert!(s.magazine_allocs + s.magazine_frees > 0);
        assert_eq!(s.bad_frees, 0);
    }

    #[test]
    fn magazine_hits_dominate_after_warmup() {
        let heap = DsaHeap::new(HeapConfig::small());
        let mut cache = ThreadCache::new(&heap);
        let l = layout(64);
        // Warm the magazines, then churn.
        let warm: Vec<*mut u8> = (0..16).map(|_| cache.alloc(l)).collect();
        for p in warm {
            unsafe { cache.dealloc(p, l) };
        }
        for _ in 0..1000 {
            let p = cache.alloc(l);
            unsafe { cache.dealloc(p, l) };
        }
        cache.flush();
        let s = heap.stats();
        assert!(
            s.magazine_allocs >= 1000,
            "expected magazine hits, got {s:?}"
        );
        drop(cache);
        heap.flush_depots();
        heap.check_reconciliation();
    }

    #[test]
    fn cross_thread_free_through_the_depot() {
        let heap = DsaHeap::new(HeapConfig::small());
        let l = layout(96);
        // Producer allocates, consumer frees: objects come back via the
        // consumer's magazines and the shared depot.
        std::thread::scope(|scope| {
            let (tx, rx) = std::sync::mpsc::channel::<usize>();
            let heap_ref = &heap;
            scope.spawn(move || {
                let mut producer = ThreadCache::new(heap_ref);
                for _ in 0..500 {
                    tx.send(producer.alloc(l) as usize).unwrap();
                }
            });
            scope.spawn(move || {
                let mut consumer = ThreadCache::new(heap_ref);
                for p in rx {
                    unsafe { consumer.dealloc(p as *mut u8, l) };
                }
            });
        });
        heap.flush_depots();
        heap.check_reconciliation();
        assert_eq!(heap.stats().bad_frees, 0);
    }

    #[test]
    fn depth_one_cache_still_balances() {
        let heap = DsaHeap::new(HeapConfig::small());
        let mut cache = ThreadCache::with_depth(&heap, 1);
        let l = layout(8);
        let ptrs: Vec<*mut u8> = (0..50).map(|_| cache.alloc(l)).collect();
        for p in ptrs {
            unsafe { cache.dealloc(p, l) };
        }
        drop(cache);
        heap.flush_depots();
        heap.check_reconciliation();
    }
}
