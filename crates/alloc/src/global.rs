//! The `GlobalAlloc` front-end: install the heap as the process
//! allocator.
//!
//! ```ignore
//! use dsa_alloc::{GlobalDsa, HeapConfig};
//!
//! #[global_allocator]
//! static HEAP: GlobalDsa = GlobalDsa::new(HeapConfig::DEFAULT);
//! ```
//!
//! Two problems make a self-hosted allocator interesting, and both are
//! solved here rather than in the heap:
//!
//! * **Reentrancy.** The heap's own bookkeeping (shard maps, depot
//!   vectors, the large side table) allocates. If those allocations
//!   re-entered the heap they would deadlock on the locks already
//!   held. A thread-local depth guard routes every nested allocation
//!   to [`System`]; on the free side pointers route by address (region
//!   pointers to the heap, everything else to `System`), so the split
//!   heals itself.
//! * **Thread teardown.** The per-thread [`ThreadCache`] lives in TLS
//!   and flushes its magazines on thread exit; allocations that happen
//!   *during* teardown (or before TLS is ready) fall back to the
//!   heap's direct path or to `System`, both of which are
//!   TLS-independent.
//!
//! With the `nightly` feature, [`GlobalDsa`] also implements the
//! unstable [`core::alloc::Allocator`] trait so it can back individual
//! collections without being the global allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::sync::OnceLock;

use crate::heap::{DsaHeap, HeapConfig};
use crate::magazine::ThreadCache;

thread_local! {
    /// Reentrancy depth. Non-zero means an allocator frame is already
    /// on this thread's stack: nested allocations go to `System`.
    /// `Cell<usize>` has no destructor, so the guard stays readable
    /// even while other TLS destructors run.
    static DEPTH: Cell<usize> = const { Cell::new(0) };

    /// The per-thread magazine cache. Built lazily on first use (the
    /// `Box` itself routes to `System` through the depth guard);
    /// dropped at thread exit, which flushes the magazines.
    static CACHE: RefCell<Option<Box<ThreadCache<'static>>>> = const { RefCell::new(None) };
}

/// A lazily-initialized [`DsaHeap`] behind [`GlobalAlloc`].
///
/// `const`-constructible so it can be a `static`; the heap itself is
/// built on first allocation.
///
/// # Safety contract
///
/// A `GlobalDsa` used through [`GlobalAlloc`] (or the nightly
/// `Allocator` impl) must live for the rest of the process — in
/// practice: be a `static`, as the `#[global_allocator]` attribute
/// requires. The thread caches borrow the heap at `'static`.
pub struct GlobalDsa {
    config: HeapConfig,
    heap: OnceLock<DsaHeap>,
}

impl GlobalDsa {
    /// A global allocator with the given heap geometry.
    #[must_use]
    pub const fn new(config: HeapConfig) -> GlobalDsa {
        GlobalDsa {
            config,
            heap: OnceLock::new(),
        }
    }

    /// The heap, building it on first call. Construction runs under
    /// the depth guard: if this allocator is already installed
    /// globally, the heap's own setup allocations route to `System`
    /// instead of re-entering the initializing `OnceLock`.
    pub fn heap(&self) -> &DsaHeap {
        self.heap.get_or_init(|| {
            let _guard = DepthGuard::enter();
            DsaHeap::new(self.config)
        })
    }

    /// Flushes the calling thread's magazine cache back to the heap
    /// (for quiescing before [`DsaHeap::check_reconciliation`] — not
    /// needed for correctness, the books include parked objects).
    pub fn flush_current_thread(&self) {
        let _ = CACHE.try_with(|slot| {
            if let Ok(mut slot) = slot.try_borrow_mut() {
                if let Some(cache) = slot.as_mut() {
                    cache.flush();
                }
            }
        });
    }

    /// The heap with its lifetime extended to `'static`.
    ///
    /// SAFETY: callers uphold the type's safety contract (the value is
    /// a `static`); `OnceLock` never moves its contents.
    #[allow(clippy::mut_from_ref)]
    fn static_heap(&self) -> &'static DsaHeap {
        let heap: &DsaHeap = self.heap();
        // SAFETY: see above.
        unsafe { &*std::ptr::from_ref(heap) }
    }
}

/// RAII depth guard for heap code that allocates on its own behalf
/// *outside* an allocator frame — introspection (snapshots, invariant
/// sweeps) and lazy heap construction. While held, any allocation that
/// re-enters an installed [`GlobalDsa`] routes to `System`, so reading
/// the books cannot mutate the books. A no-op when a frame is already
/// active or the allocator is not installed.
pub(crate) struct DepthGuard {
    entered: bool,
}

impl DepthGuard {
    pub(crate) fn enter() -> DepthGuard {
        DepthGuard { entered: enter() }
    }
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        if self.entered {
            leave();
        }
    }
}

/// Enters an allocator frame. `false` means one is already active (or
/// TLS is gone) — the caller must take the `System`/direct route.
fn enter() -> bool {
    DEPTH
        .try_with(|d| {
            if d.get() == 0 {
                d.set(1);
                true
            } else {
                false
            }
        })
        .unwrap_or(false)
}

fn leave() {
    let _ = DEPTH.try_with(|d| d.set(0));
}

/// Runs `f` against the thread's cache, building it on first use;
/// falls back to `direct` when TLS is unavailable (thread teardown) or
/// the cache belongs to a different heap.
fn with_cache<R>(
    heap: &'static DsaHeap,
    f: impl FnOnce(&mut ThreadCache<'static>) -> R,
    direct: impl FnOnce(&DsaHeap) -> R,
) -> R {
    let run = CACHE.try_with(|slot| {
        let Ok(mut slot) = slot.try_borrow_mut() else {
            return None;
        };
        let cache = slot.get_or_insert_with(|| Box::new(ThreadCache::new(heap)));
        if std::ptr::eq(cache.heap_ptr(), heap) {
            Some(f(cache))
        } else {
            None
        }
    });
    match run {
        Ok(Some(r)) => r,
        _ => direct(heap),
    }
}

// SAFETY: the three layers of `DsaHeap` uphold `GlobalAlloc`'s
// contract — live blocks are disjoint, suitably aligned, and stable —
// and the depth guard keeps the allocator's own footprint on `System`.
unsafe impl GlobalAlloc for GlobalDsa {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if !enter() {
            // Nested frame: this is the heap allocating for itself.
            // SAFETY: caller contract (non-zero layout).
            return unsafe { System.alloc(layout) };
        }
        let heap = self.static_heap();
        let p = with_cache(
            heap,
            |cache| cache.alloc(layout),
            |h| h.alloc_direct(layout),
        );
        leave();
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if !enter() {
            // Nested frees can only see `System` pointers (everything
            // allocated under the guard came from `System`), but route
            // defensively by address: region pointers must go home.
            if let Some(heap) = self.heap.get() {
                if heap.contains(ptr) {
                    // SAFETY: caller contract.
                    unsafe { heap.dealloc_direct(ptr, layout) };
                    return;
                }
            }
            // SAFETY: caller contract; non-region pointers are
            // `System`'s.
            unsafe { System.dealloc(ptr, layout) };
            return;
        }
        let heap = self.static_heap();
        if heap.contains(ptr) {
            with_cache(
                heap,
                // SAFETY: caller contract.
                |cache| unsafe { cache.dealloc(ptr, layout) },
                // SAFETY: caller contract.
                |h| unsafe { h.dealloc_direct(ptr, layout) },
            );
        } else {
            // Allocated before the heap existed, under the guard, or by
            // the exhaustion fallback.
            // SAFETY: caller contract.
            unsafe { System.dealloc(ptr, layout) };
        }
        leave();
    }
}

#[cfg(feature = "nightly")]
// SAFETY: blocks from `allocate` are valid for `deallocate` until
// freed; clones of the (zero-sized borrow of the) allocator are
// interchangeable.
unsafe impl core::alloc::Allocator for &GlobalDsa {
    fn allocate(&self, layout: Layout) -> Result<std::ptr::NonNull<[u8]>, std::alloc::AllocError> {
        if layout.size() == 0 {
            let dangling = layout.align() as *mut u8;
            return match std::ptr::NonNull::new(dangling) {
                Some(p) => Ok(std::ptr::NonNull::slice_from_raw_parts(p, 0)),
                None => Err(std::alloc::AllocError),
            };
        }
        // SAFETY: layout is non-zero.
        let p = unsafe { GlobalAlloc::alloc(*self, layout) };
        match std::ptr::NonNull::new(p) {
            Some(p) => Ok(std::ptr::NonNull::slice_from_raw_parts(p, layout.size())),
            None => Err(std::alloc::AllocError),
        }
    }

    unsafe fn deallocate(&self, ptr: std::ptr::NonNull<u8>, layout: Layout) {
        if layout.size() == 0 {
            return;
        }
        // SAFETY: forwarded caller contract.
        unsafe { GlobalAlloc::dealloc(*self, ptr.as_ptr(), layout) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as #[global_allocator] here (tests must not hijack
    // the test harness's heap); exercised through the trait instead.
    // The example binary and the E21 experiment install it for real.
    static HEAP: GlobalDsa = GlobalDsa::new(HeapConfig::small());

    #[test]
    fn trait_roundtrip_small_and_large() {
        let l_small = Layout::from_size_align(48, 8).unwrap();
        let l_large = Layout::from_size_align(1 << 14, 16).unwrap();
        unsafe {
            let a = HEAP.alloc(l_small);
            let b = HEAP.alloc(l_large);
            assert!(!a.is_null() && !b.is_null());
            a.write_bytes(0x11, 48);
            b.write_bytes(0x22, 1 << 14);
            assert_eq!(*a, 0x11);
            assert_eq!(*b.add((1 << 14) - 1), 0x22);
            HEAP.dealloc(a, l_small);
            HEAP.dealloc(b, l_large);
        }
        HEAP.flush_current_thread();
        HEAP.heap().flush_depots();
        HEAP.heap().check_reconciliation();
    }

    #[test]
    fn reentrant_frames_route_to_system() {
        // Simulate the heap allocating for itself: under the guard,
        // pointers must come from System (outside the region).
        let l = Layout::from_size_align(64, 8).unwrap();
        assert!(enter());
        let p = unsafe { HEAP.alloc(l) };
        assert!(!HEAP.heap().contains(p));
        unsafe { HEAP.dealloc(p, l) };
        leave();
    }

    #[test]
    fn foreign_pointers_take_the_system_path() {
        // A block allocated straight from System must round-trip
        // through GlobalDsa::dealloc by address routing.
        let l = Layout::from_size_align(256, 8).unwrap();
        let p = unsafe { System.alloc(l) };
        assert!(!HEAP.heap().contains(p));
        unsafe { HEAP.dealloc(p, l) };
    }
}
