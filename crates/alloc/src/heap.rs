//! The size-class slab heap: real memory behind the simulated books.
//!
//! A [`DsaHeap`] owns one contiguous region obtained from
//! [`std::alloc::System`] (page-aligned, sized in words like every
//! arena in this workspace) and splits it two ways:
//!
//! * **Slab pages.** At construction, one span per size class is carved
//!   out of the backing [`ShardedArena`] and handed to a lock-free
//!   [`FixedSlab`]. Each span's base is rounded up to a 4096-byte
//!   boundary inside the region, so every power-of-two class is
//!   naturally aligned — that is how over-aligned small requests are
//!   served without headers.
//! * **The large path.** Everything past the ladder (or overflowing an
//!   exhausted slab) is allocated from the arena directly, id-keyed,
//!   with a striped side table mapping the returned pointer's word
//!   offset back to its arena id for the free side.
//!
//! Nothing in the region carries a header: small frees recompute the
//! class from the caller's `Layout` and the slab's span answers "is
//! this mine"; large frees hit the side table. A pointer outside the
//! region belongs to [`System`] (the fallback of last resort, and the
//! destination of the heap's own bookkeeping allocations when used
//! through [`crate::GlobalDsa`]).
//!
//! The probe discipline mirrors the simulators: every *backend*
//! operation — slab pop/push, arena alloc/free — emits
//! `Alloc { words, searched }` / `Free { words }` into the heap's
//! [`TelemetryProbe`]. Magazine hits are invisible here by design (they
//! are the fast path being fast); [`DsaHeap::check_reconciliation`]
//! proves the probe's net ledger equals slab-live plus arena-live
//! words, magazines included, because a magazine-parked object is
//! backend-live.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use dsa_arena::{FixedSlab, ShardedArena};
use dsa_core::ids::Words;
use dsa_core::sizeclass::SizeClasses;
use dsa_freelist::freelist::Placement;
use dsa_probe::{EventKind, Probe, Stamp};
use dsa_telemetry::TelemetryProbe;

use crate::magazine::{Depot, MAG_MAX};

/// Bytes per storage word, the unit the backing arena accounts in.
pub(crate) const BYTES_PER_WORD: u64 = 8;

/// Slab spans are based at multiples of this many words (4096 bytes),
/// so power-of-two unit sizes are naturally aligned.
const PAGE_ALIGN_WORDS: u64 = 512;

/// Alignment of the backing region itself, in bytes.
const REGION_ALIGN: usize = 4096;

/// Stripes of the large-pointer side table.
const LARGE_STRIPES: usize = 16;

/// Arena ids at and above this are slab-span carves (one per class);
/// ids below are large allocations, issued sequentially from 1.
const CARVE_ID_BASE: u64 = 1 << 60;

/// Full magazines a depot retains per class before overflow is flushed
/// back to the slab.
const DEPOT_MAX_FULL: usize = 8;

/// Quick-list geometry for the large path (see `ShardedArena`): blocks
/// up to this many words ride the per-shard LIFO caches.
const QUICK_MAX_WORDS: Words = 256;
const QUICK_DEPTH: usize = 16;

/// Construction parameters for a [`DsaHeap`].
///
/// `const`-constructible so a [`crate::GlobalDsa`] can be a `static`.
#[derive(Clone, Copy, Debug)]
pub struct HeapConfig {
    /// Backing region size in words (bytes = `arena_words * 8`). Must
    /// be divisible by `shards`.
    pub arena_words: Words,
    /// Shards of the backing arena (large-path concurrency).
    pub shards: u32,
    /// Units per size-class slab.
    pub class_units: u32,
    /// Objects per magazine, `1..=`[`MAG_MAX`].
    pub magazine_depth: usize,
    /// Arm the arena's per-shard quick lists for the large path.
    pub quick_lists: bool,
}

impl HeapConfig {
    /// The default geometry: a 32 MiB region, 8 shards, 1024 units per
    /// class (~13 MiB of slab pages), 32-object magazines.
    pub const DEFAULT: HeapConfig = HeapConfig {
        arena_words: 4 << 20,
        shards: 8,
        class_units: 1024,
        magazine_depth: 32,
        quick_lists: true,
    };

    /// A small geometry for tests: a 2 MiB region, 4 shards, 64 units
    /// per class, 8-object magazines.
    #[must_use]
    pub const fn small() -> HeapConfig {
        HeapConfig {
            arena_words: 1 << 18,
            shards: 4,
            class_units: 64,
            magazine_depth: 8,
            quick_lists: true,
        }
    }
}

impl Default for HeapConfig {
    fn default() -> HeapConfig {
        HeapConfig::DEFAULT
    }
}

/// The backing region: one `System` allocation the whole heap lives in.
struct Region {
    base: *mut u8,
    bytes: usize,
    layout: Layout,
}

/// One size class: a lock-free slab over a span of the region.
struct ClassSlab {
    slab: FixedSlab,
    /// Word offset of unit 0 within the region (multiple of
    /// [`PAGE_ALIGN_WORDS`]).
    base_words: u64,
    /// Words the units cover (`class_units * unit_words`).
    span_words: u64,
}

/// Operation counters, snapshotted with [`DsaHeap::stats`].
///
/// Magazine counters are accumulated thread-locally and folded in when
/// a cache flushes (depot overflow, explicit flush, thread exit), so
/// they trail the instantaneous truth by up to one magazine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Small allocations served from a thread's magazines (no atomics).
    pub magazine_allocs: u64,
    /// Small frees absorbed by a thread's magazines (no atomics).
    pub magazine_frees: u64,
    /// Magazine exchanges with a per-class depot.
    pub depot_exchanges: u64,
    /// Small allocations that fell to the large path because the class
    /// slab was exhausted.
    pub slab_exhausted: u64,
    /// Allocations served by the arena's large path.
    pub large_allocs: u64,
    /// Frees returned to the arena's large path.
    pub large_frees: u64,
    /// Allocations passed through to [`System`] (arena exhausted).
    pub system_allocs: u64,
    /// Frees passed through to [`System`].
    pub system_frees: u64,
    /// Frees of pointers the heap does not recognize.
    pub bad_frees: u64,
}

#[derive(Default)]
struct Counters {
    magazine_allocs: AtomicU64,
    magazine_frees: AtomicU64,
    depot_exchanges: AtomicU64,
    slab_exhausted: AtomicU64,
    large_allocs: AtomicU64,
    large_frees: AtomicU64,
    system_allocs: AtomicU64,
    system_frees: AtomicU64,
    bad_frees: AtomicU64,
}

/// The three-layer heap. See the [module docs](self) for the layout.
///
/// All methods take `&self`; the slab layer is lock-free, the large
/// path locks one arena shard plus one side-table stripe, and the
/// magazine depots lock per class. [`crate::ThreadCache`] sits on top
/// and removes even the atomics from the common path.
pub struct DsaHeap {
    config: HeapConfig,
    classes: SizeClasses,
    region: Region,
    arena: ShardedArena,
    slabs: Vec<ClassSlab>,
    depots: Vec<Mutex<Depot>>,
    /// Large side table: word offset of the returned pointer -> arena
    /// id, striped by offset.
    large: Vec<Mutex<HashMap<u64, u64>>>,
    next_large_id: AtomicU64,
    clock: AtomicU64,
    telemetry: TelemetryProbe,
    counters: Counters,
}

// SAFETY: the raw region pointer is owned exclusively by the heap; all
// access to the memory behind it is mediated by the lock-free slabs,
// the shard locks, and the side-table stripes.
unsafe impl Send for DsaHeap {}
// SAFETY: as above — `&DsaHeap` exposes only atomic/locked operations.
unsafe impl Sync for DsaHeap {}

impl DsaHeap {
    /// Builds the heap: maps the region, carves one aligned slab span
    /// per size class out of the backing arena, and arms the quick
    /// lists.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (`arena_words` not
    /// divisible by `shards`, zero or oversized `magazine_depth`) or
    /// too small for the slab spans to fit, and aborts via
    /// [`std::alloc::handle_alloc_error`] if the system refuses the
    /// region.
    #[must_use]
    pub fn new(config: HeapConfig) -> DsaHeap {
        assert!(config.shards > 0, "need at least one shard");
        assert!(
            config.arena_words % u64::from(config.shards) == 0,
            "arena_words must divide evenly into shards"
        );
        assert!(
            (1..=MAG_MAX).contains(&config.magazine_depth),
            "magazine_depth must be 1..={MAG_MAX}"
        );
        assert!(config.class_units > 0, "need at least one unit per class");
        let classes = SizeClasses::jemalloc(BYTES_PER_WORD, 2048);

        let bytes = usize::try_from(config.arena_words * BYTES_PER_WORD)
            .unwrap_or_else(|_| panic!("region too large for this platform"));
        let Ok(layout) = Layout::from_size_align(bytes, REGION_ALIGN) else {
            panic!("degenerate region layout ({bytes} bytes)");
        };
        // SAFETY: `layout` has non-zero size (arena_words >= shards > 0).
        let base = unsafe { System.alloc(layout) };
        if base.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        let region = Region {
            base,
            bytes,
            layout,
        };

        let arena = ShardedArena::new(
            config.shards,
            config.arena_words / u64::from(config.shards),
            Placement::FirstFit,
        );
        if config.quick_lists {
            arena.enable_quick_lists(QUICK_MAX_WORDS, QUICK_DEPTH);
        }
        let telemetry = TelemetryProbe::new();

        // Carve one span per class, with enough slack to round the base
        // up to a page boundary. The carves stay live for the heap's
        // lifetime and are part of the probe ledger.
        let mut slabs = Vec::with_capacity(classes.count());
        let mut depots = Vec::with_capacity(classes.count());
        let mut clock = 0u64;
        for (c, &class_bytes) in classes.classes().iter().enumerate() {
            let unit_words = class_bytes / BYTES_PER_WORD;
            let span_words = unit_words * u64::from(config.class_units);
            let carve = span_words + PAGE_ALIGN_WORDS;
            let mut probe = &telemetry;
            let addr = arena
                .alloc_probed(
                    CARVE_ID_BASE + c as u64,
                    carve,
                    Stamp::vtime(clock),
                    &mut probe,
                )
                .unwrap_or_else(|e| {
                    panic!("arena too small for the class-{class_bytes} slab span: {e}")
                });
            clock += 1;
            let base_words = addr.0.next_multiple_of(PAGE_ALIGN_WORDS);
            debug_assert!(base_words + span_words <= addr.0 + carve);
            slabs.push(ClassSlab {
                slab: FixedSlab::new(config.class_units, unit_words),
                base_words,
                span_words,
            });
            depots.push(Mutex::new(Depot::default()));
        }

        DsaHeap {
            config,
            classes,
            region,
            arena,
            slabs,
            depots,
            large: (0..LARGE_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            next_large_id: AtomicU64::new(1),
            clock: AtomicU64::new(clock),
            telemetry,
            counters: Counters::default(),
        }
    }

    /// The configuration the heap was built with.
    #[must_use]
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// The size-class ladder (sizes in bytes).
    #[must_use]
    pub fn classes(&self) -> &SizeClasses {
        &self.classes
    }

    /// The live telemetry probe every backend operation flows through.
    #[must_use]
    pub fn telemetry(&self) -> &TelemetryProbe {
        &self.telemetry
    }

    /// Is `ptr` inside the heap's backing region?
    #[must_use]
    pub fn contains(&self, ptr: *const u8) -> bool {
        let p = ptr as usize;
        let b = self.region.base as usize;
        p >= b && p < b + self.region.bytes
    }

    /// Snapshot of the operation counters.
    #[must_use]
    pub fn stats(&self) -> HeapStats {
        let c = &self.counters;
        HeapStats {
            magazine_allocs: c.magazine_allocs.load(Ordering::Relaxed),
            magazine_frees: c.magazine_frees.load(Ordering::Relaxed),
            depot_exchanges: c.depot_exchanges.load(Ordering::Relaxed),
            slab_exhausted: c.slab_exhausted.load(Ordering::Relaxed),
            large_allocs: c.large_allocs.load(Ordering::Relaxed),
            large_frees: c.large_frees.load(Ordering::Relaxed),
            system_allocs: c.system_allocs.load(Ordering::Relaxed),
            system_frees: c.system_frees.load(Ordering::Relaxed),
            bad_frees: c.bad_frees.load(Ordering::Relaxed),
        }
    }

    /// Words live in the backend: arena-allocated (slab spans + large
    /// blocks) plus slab-live units. Objects parked in magazines and
    /// depots count as live — the backend has handed them out.
    #[must_use]
    pub fn live_words(&self) -> Words {
        // Keep the arena snapshot's own vector out of the books when
        // this heap is the global allocator (see check_reconciliation).
        let _guard = crate::global::DepthGuard::enter();
        let slab_live: Words = self
            .slabs
            .iter()
            .map(|s| s.slab.live_units() * s.slab.unit_words())
            .sum();
        self.arena.snapshot().allocated_words() + slab_live
    }

    /// Objects currently parked in full depot magazines, per class sum.
    #[must_use]
    pub fn depot_parked(&self) -> u64 {
        (0..self.depots.len())
            .map(|c| self.depot(c).parked() as u64)
            .sum()
    }

    // ---- allocation paths -------------------------------------------------

    /// The size class a layout routes to, or `None` for the large path.
    /// Over-aligned small requests map to the covering power-of-two
    /// class (naturally aligned in the page-aligned spans).
    #[must_use]
    pub(crate) fn small_class(&self, layout: Layout) -> Option<usize> {
        let size = layout.size() as u64;
        let align = layout.align() as u64;
        if align <= BYTES_PER_WORD {
            self.classes.class_of(size)
        } else {
            self.classes.aligned_class_of(size, align)
        }
    }

    /// Does `ptr` fall inside class `c`'s slab span?
    #[must_use]
    pub(crate) fn in_class_slab(&self, c: usize, ptr: *const u8) -> bool {
        let Some(off) = self.word_off_of(ptr) else {
            return false;
        };
        let cs = &self.slabs[c];
        off >= cs.base_words && off < cs.base_words + cs.span_words
    }

    /// Pops one unit from class `c`'s slab, emitting `Alloc` to the
    /// probe. `None` when the slab is exhausted (caller falls to the
    /// large path).
    pub(crate) fn slab_pop(&self, c: usize) -> Option<*mut u8> {
        let cs = &self.slabs[c];
        match cs.slab.alloc() {
            Ok(unit) => {
                let mut probe = &self.telemetry;
                probe.emit(
                    EventKind::Alloc {
                        words: cs.slab.unit_words(),
                        searched: u64::from(unit.attempts),
                    },
                    self.stamp(),
                );
                Some(self.ptr_at(cs.base_words + unit.addr.0))
            }
            Err(_) => {
                self.counters.slab_exhausted.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Pushes a unit back onto class `c`'s slab, emitting `Free`.
    /// Misrouted pointers (not on a unit boundary of this span) are
    /// counted, not freed.
    pub(crate) fn slab_push(&self, c: usize, ptr: *mut u8) {
        let cs = &self.slabs[c];
        let Some(off) = self.word_off_of(ptr) else {
            self.counters.bad_frees.fetch_add(1, Ordering::Relaxed);
            return;
        };
        debug_assert!(off >= cs.base_words && off < cs.base_words + cs.span_words);
        let rel = off - cs.base_words;
        debug_assert_eq!(rel % cs.slab.unit_words(), 0);
        #[allow(clippy::cast_possible_truncation)] // units fit u32 by construction
        let unit = (rel / cs.slab.unit_words()) as u32;
        if cs.slab.free(unit).is_ok() {
            let mut probe = &self.telemetry;
            probe.emit(
                EventKind::Free {
                    words: cs.slab.unit_words(),
                },
                self.stamp(),
            );
        } else {
            self.counters.bad_frees.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Allocates via the arena's large path (side table keyed by the
    /// returned pointer), falling back to [`System`] when the arena is
    /// exhausted. Never returns null unless `System` does.
    pub(crate) fn large_alloc(&self, layout: Layout) -> *mut u8 {
        let bytes = layout.size().max(1) as u64;
        let align = layout.align() as u64;
        // Over-aligned blocks get `align` slack bytes so the aligned
        // pointer always fits (arena addresses are only word-aligned).
        let extra = if align > BYTES_PER_WORD { align } else { 0 };
        let words = (bytes + extra).div_ceil(BYTES_PER_WORD);
        let id = self.next_large_id.fetch_add(1, Ordering::Relaxed);
        let mut probe = &self.telemetry;
        match self.arena.alloc_probed(id, words, self.stamp(), &mut probe) {
            Ok(addr) => {
                let raw = self.ptr_at(addr.0) as usize;
                let aligned = if align > BYTES_PER_WORD {
                    (raw + (layout.align() - 1)) & !(layout.align() - 1)
                } else {
                    raw
                };
                let key = ((aligned - self.region.base as usize) as u64) / BYTES_PER_WORD;
                self.large_stripe(key).insert(key, id);
                self.counters.large_allocs.fetch_add(1, Ordering::Relaxed);
                aligned as *mut u8
            }
            Err(_) => {
                // Roll back the id is unnecessary — ids are only
                // uniqueness tokens. Hand the request to the system.
                self.counters.system_allocs.fetch_add(1, Ordering::Relaxed);
                // SAFETY: the layout is padded to non-zero size.
                unsafe { System.alloc(nonzero(layout)) }
            }
        }
    }

    /// Frees a pointer that is not a live slab unit: large-path blocks
    /// by side-table lookup, anything outside the region via
    /// [`System`].
    ///
    /// # Safety
    ///
    /// `ptr` must have been returned by this heap (or `System` through
    /// it) with the same `layout`, and not freed since.
    pub(crate) unsafe fn dealloc_outside_slab(&self, ptr: *mut u8, layout: Layout) {
        if let Some(off) = self.word_off_of(ptr) {
            let id = self.large_stripe(off).remove(&off);
            match id {
                Some(id) => {
                    let mut probe = &self.telemetry;
                    if self.arena.free_probed(id, self.stamp(), &mut probe).is_ok() {
                        self.counters.large_frees.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.counters.bad_frees.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => {
                    self.counters.bad_frees.fetch_add(1, Ordering::Relaxed);
                }
            }
        } else {
            self.counters.system_frees.fetch_add(1, Ordering::Relaxed);
            // SAFETY: outside the region means the block came from
            // `System` with this (padded) layout — the caller's
            // contract.
            unsafe { System.dealloc(ptr, nonzero(layout)) }
        }
    }

    /// Allocates without a thread cache: slab pop for ladder sizes
    /// (large-path overflow when exhausted), large path otherwise.
    ///
    /// This is the "no-magazine" baseline the benchmarks compare the
    /// cached path against, and the fallback when thread-local storage
    /// is unavailable.
    #[must_use]
    pub fn alloc_direct(&self, layout: Layout) -> *mut u8 {
        match self.small_class(layout) {
            Some(c) => self.slab_pop(c).unwrap_or_else(|| self.large_alloc(layout)),
            None => self.large_alloc(layout),
        }
    }

    /// Frees a block from [`DsaHeap::alloc_direct`] (or any heap path —
    /// routing is by layout and region geometry, not by who allocated).
    ///
    /// # Safety
    ///
    /// `ptr` must be live and have been allocated with `layout` from
    /// this heap.
    pub unsafe fn dealloc_direct(&self, ptr: *mut u8, layout: Layout) {
        if let Some(c) = self.small_class(layout) {
            if self.in_class_slab(c, ptr) {
                self.slab_push(c, ptr);
                return;
            }
        }
        // SAFETY: forwarded caller contract.
        unsafe { self.dealloc_outside_slab(ptr, layout) }
    }

    // ---- magazine support -------------------------------------------------

    /// Locks class `c`'s depot (poison rides out — the books are
    /// guarded by their own invariants, not by lock cleanliness).
    pub(crate) fn depot(&self, c: usize) -> MutexGuard<'_, Depot> {
        match self.depots[c].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Records a depot exchange and, when the depot holds more than
    /// [`DEPOT_MAX_FULL`] full magazines, drains the overflow back to
    /// the slab (bounding parked memory).
    pub(crate) fn after_depot_exchange(&self, c: usize) {
        self.counters
            .depot_exchanges
            .fetch_add(1, Ordering::Relaxed);
        loop {
            let overflow = {
                let mut depot = self.depot(c);
                if depot.full.len() > DEPOT_MAX_FULL {
                    depot.full.pop()
                } else {
                    None
                }
            };
            let Some(mut mag) = overflow else { break };
            while let Some(p) = mag.pop() {
                self.slab_push(c, p);
            }
            self.depot(c).empty.push(mag);
        }
    }

    /// Folds a cache's local magazine counters into the heap's.
    pub(crate) fn fold_magazine_counters(&self, allocs: u64, frees: u64) {
        self.counters
            .magazine_allocs
            .fetch_add(allocs, Ordering::Relaxed);
        self.counters
            .magazine_frees
            .fetch_add(frees, Ordering::Relaxed);
    }

    /// Drains every depot's full magazines back to the slabs. Parked
    /// *thread* magazines are untouched — flush those via their caches.
    pub fn flush_depots(&self) {
        for c in 0..self.depots.len() {
            loop {
                let mag = self.depot(c).full.pop();
                let Some(mut mag) = mag else { break };
                while let Some(p) = mag.pop() {
                    self.slab_push(c, p);
                }
                self.depot(c).empty.push(mag);
            }
        }
    }

    // ---- verification -----------------------------------------------------

    /// Proves the books balance: the probe's net ledger (allocs minus
    /// frees, in operations and in words) must equal what the backend
    /// holds live — the class carves, live slab units, and live large
    /// blocks. Objects parked in magazines or depots are backend-live
    /// and therefore *included*; the identity holds at any quiescent
    /// point without flushing caches.
    ///
    /// Also replays the arena's and every slab's own invariant checks.
    ///
    /// # Panics
    ///
    /// Panics if any ledger disagrees.
    pub fn check_reconciliation(&self) {
        // Self-hosting hazard: this method's own allocations (the arena
        // snapshot's vector, the invariant sweeps' scratch) would land
        // in the books between the ledger read and the backend reads if
        // they went through an installed `GlobalDsa`. The depth guard
        // routes them to `System` so reading the books cannot move them.
        let _guard = crate::global::DepthGuard::enter();
        let c = self.telemetry.counters();
        let arena_allocated = self.arena.snapshot().allocated_words();
        let slab_live_words: Words = self
            .slabs
            .iter()
            .map(|s| s.slab.live_units() * s.slab.unit_words())
            .sum();
        let slab_live_units: u64 = self.slabs.iter().map(|s| s.slab.live_units()).sum();
        let large_live: u64 = (0..LARGE_STRIPES)
            .map(|s| self.large_stripe_by_index(s).len() as u64)
            .sum();
        assert_eq!(
            c.alloc_words - c.freed_words,
            arena_allocated + slab_live_words,
            "probe word ledger diverged from backend-live words \
             (allocs {} frees {} alloc_words {} freed_words {} arena {} \
             slab_words {} slab_units {} large_live {})",
            c.allocs,
            c.frees,
            c.alloc_words,
            c.freed_words,
            arena_allocated,
            slab_live_words,
            slab_live_units,
            large_live,
        );
        assert_eq!(
            c.allocs - c.frees,
            self.slabs.len() as u64 + slab_live_units + large_live,
            "probe operation ledger diverged from backend-live blocks \
             (allocs {} frees {} slab_units {} large_live {})",
            c.allocs,
            c.frees,
            slab_live_units,
            large_live,
        );
        self.arena.check_invariants();
        for s in &self.slabs {
            s.slab.check_invariants();
        }
    }

    // ---- internals --------------------------------------------------------

    fn stamp(&self) -> Stamp {
        Stamp::vtime(self.clock.fetch_add(1, Ordering::Relaxed))
    }

    fn ptr_at(&self, word_off: u64) -> *mut u8 {
        debug_assert!(((word_off * BYTES_PER_WORD) as usize) < self.region.bytes);
        // SAFETY: word_off is inside the region by construction.
        unsafe { self.region.base.add((word_off * BYTES_PER_WORD) as usize) }
    }

    /// The word offset of `ptr` within the region, or `None` outside.
    fn word_off_of(&self, ptr: *const u8) -> Option<u64> {
        let p = ptr as usize;
        let b = self.region.base as usize;
        if p >= b && p < b + self.region.bytes {
            Some(((p - b) as u64) / BYTES_PER_WORD)
        } else {
            None
        }
    }

    fn large_stripe(&self, key: u64) -> MutexGuard<'_, HashMap<u64, u64>> {
        self.large_stripe_by_index((key as usize) % LARGE_STRIPES)
    }

    fn large_stripe_by_index(&self, s: usize) -> MutexGuard<'_, HashMap<u64, u64>> {
        match self.large[s].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl Drop for DsaHeap {
    fn drop(&mut self) {
        // SAFETY: the region was allocated with exactly this layout in
        // `new`. Outstanding pointers into the region dangle after
        // this — the heap must outlive its allocations (a
        // `GlobalDsa` static never drops).
        unsafe { System.dealloc(self.region.base, self.region.layout) }
    }
}

/// `System` refuses zero-size layouts; pad them to one aligned unit.
/// Used symmetrically on the alloc and dealloc fallbacks.
fn nonzero(layout: Layout) -> Layout {
    if layout.size() == 0 {
        Layout::from_size_align(layout.align(), layout.align()).unwrap_or(layout)
    } else {
        layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(size: usize, align: usize) -> Layout {
        Layout::from_size_align(size, align).unwrap()
    }

    #[test]
    fn direct_roundtrip_reconciles() {
        let heap = DsaHeap::new(HeapConfig::small());
        heap.check_reconciliation();
        let l = layout(24, 8);
        let p = heap.alloc_direct(l);
        assert!(!p.is_null());
        assert!(heap.contains(p));
        // The block is writable real memory.
        unsafe {
            p.write_bytes(0xAB, 24);
            assert_eq!(*p, 0xAB);
        }
        heap.check_reconciliation();
        unsafe { heap.dealloc_direct(p, l) };
        heap.check_reconciliation();
    }

    #[test]
    fn small_sizes_hit_their_class_slab() {
        let heap = DsaHeap::new(HeapConfig::small());
        for size in [1usize, 8, 9, 100, 2048] {
            let l = layout(size, 8);
            let c = heap.small_class(l).unwrap();
            assert!(heap.classes().size_of(c) >= size as u64);
            let p = heap.alloc_direct(l);
            assert!(heap.in_class_slab(c, p), "size {size} missed its slab");
            unsafe { heap.dealloc_direct(p, l) };
        }
        heap.check_reconciliation();
    }

    #[test]
    fn large_sizes_take_the_arena_path() {
        let heap = DsaHeap::new(HeapConfig::small());
        let l = layout(4096, 8);
        assert!(heap.small_class(l).is_none());
        let p = heap.alloc_direct(l);
        assert!(heap.contains(p));
        unsafe {
            p.write_bytes(0xCD, 4096);
        }
        assert_eq!(heap.stats().large_allocs, 1);
        heap.check_reconciliation();
        unsafe { heap.dealloc_direct(p, l) };
        assert_eq!(heap.stats().large_frees, 1);
        heap.check_reconciliation();
    }

    #[test]
    fn over_aligned_requests_are_actually_aligned() {
        let heap = DsaHeap::new(HeapConfig::small());
        for (size, align) in [(24usize, 64usize), (100, 256), (10, 2048), (100, 4096)] {
            let l = layout(size, align);
            let p = heap.alloc_direct(l);
            assert!(!p.is_null());
            assert_eq!(p as usize % align, 0, "{size}/{align} misaligned");
            unsafe { heap.dealloc_direct(p, l) };
        }
        heap.check_reconciliation();
    }

    #[test]
    fn slab_exhaustion_overflows_to_the_large_path() {
        let heap = DsaHeap::new(HeapConfig::small());
        let l = layout(8, 8);
        let units = heap.config().class_units as usize;
        let mut ptrs: Vec<*mut u8> = (0..units + 10).map(|_| heap.alloc_direct(l)).collect();
        assert!(ptrs.iter().all(|p| !p.is_null()));
        let s = heap.stats();
        assert!(s.slab_exhausted >= 10);
        heap.check_reconciliation();
        for p in ptrs.drain(..) {
            unsafe { heap.dealloc_direct(p, l) };
        }
        heap.check_reconciliation();
        assert_eq!(heap.stats().bad_frees, 0);
    }

    #[test]
    fn distinct_pointers_until_freed() {
        let heap = DsaHeap::new(HeapConfig::small());
        let l = layout(64, 8);
        let a = heap.alloc_direct(l);
        let b = heap.alloc_direct(l);
        assert_ne!(a, b);
        unsafe {
            heap.dealloc_direct(a, l);
            heap.dealloc_direct(b, l);
        }
        heap.check_reconciliation();
    }

    #[test]
    fn zero_size_requests_are_served() {
        let heap = DsaHeap::new(HeapConfig::small());
        let l = layout(0, 1);
        let p = heap.alloc_direct(l);
        assert!(!p.is_null());
        unsafe { heap.dealloc_direct(p, l) };
        heap.check_reconciliation();
    }
}
