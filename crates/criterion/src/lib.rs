//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, exposing exactly the API surface this workspace's benches
//! use: `Criterion` with `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function`, `benchmark_group` (+ `bench_with_input` and
//! `BenchmarkId::from_parameter`), `Bencher::iter`/`iter_with_setup`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Timing is wall-clock (`std::time::Instant`): each benchmark is warmed
//! up, then run for `sample_size` samples and the median ns/iter is
//! printed. That is enough to compare two in-tree implementations (the
//! probe-overhead acceptance bench) without any network dependency; it
//! does not attempt criterion's statistical machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement configuration plus the entry points benches call.
#[derive(Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `DSA_BENCH_SMOKE=1` degrades every benchmark to a single
        // unwarmed sample — CI's "does the harness still run" gate, not
        // a measurement.
        if std::env::var_os("DSA_BENCH_SMOKE").is_some() {
            return Criterion {
                sample_size: 1,
                warm_up: Duration::ZERO,
                measurement: Duration::ZERO,
            };
        }
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

/// True when the smoke-mode env var pins every benchmark to one sample.
fn smoke_mode() -> bool {
    std::env::var_os("DSA_BENCH_SMOKE").is_some()
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        if !smoke_mode() {
            self.sample_size = n.max(1);
        }
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        if !smoke_mode() {
            self.warm_up = d;
        }
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        if !smoke_mode() {
            self.measurement = d;
        }
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.warm_up, self.measurement);
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// Identifies one benchmark inside a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Runs the measured routine and records per-iteration timing.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Median ns per iteration, filled in by `iter`/`iter_with_setup`.
    median_ns: Option<f64>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up: Duration, measurement: Duration) -> Self {
        Bencher {
            sample_size,
            warm_up,
            measurement,
            median_ns: None,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.run_samples(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed()
        });
    }

    pub fn iter_with_setup<S, O, FS, F>(&mut self, mut setup: FS, mut routine: F)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        self.run_samples(|iters| {
            let mut timed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                timed += start.elapsed();
            }
            timed
        });
    }

    /// Warm up, pick an iteration count that fills roughly one sample
    /// slice, then take `sample_size` timed samples and keep the median.
    fn run_samples<F: FnMut(u64) -> Duration>(&mut self, mut sample: F) {
        // Warm-up: keep running single iterations until the budget is
        // spent, and use the observations to size the measured samples.
        let mut warm_iters: u64 = 0;
        let mut warm_spent = Duration::ZERO;
        while warm_spent < self.warm_up {
            warm_spent += sample(1);
            warm_iters += 1;
        }
        let est_per_iter = warm_spent.as_secs_f64() / warm_iters.max(1) as f64;
        let slice = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((slice / est_per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let elapsed = sample(iters_per_sample);
            per_iter_ns.push(elapsed.as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        // Invariant: timings are finite elapsed durations, never NaN.
        #[allow(clippy::expect_used)]
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.median_ns = Some(per_iter_ns[per_iter_ns.len() / 2]);
    }

    fn report(&self, name: &str) {
        match self.median_ns {
            Some(ns) => println!("  {name}: median {ns:.1} ns/iter"),
            None => println!("  {name}: no measurement taken"),
        }
    }
}

/// Declares a function that runs the listed benchmark targets with a
/// shared `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
    }

    #[test]
    fn groups_and_inputs_compose() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(4u64), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.bench_function("setup", |b| b.iter_with_setup(|| vec![1u8; 8], |v| v.len()));
        g.finish();
    }
}
