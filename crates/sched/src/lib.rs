//! Multiprogramming and the space-time product.
//!
//! §Fetch Strategies: "A program which is awaiting arrival of a further
//! page will, unless extra page transmission is introduced, continue to
//! occupy working storage. Thus the space-time product will be affected
//! by the time taken to fetch pages ... A large space-time product will
//! not overly affect the performance (as opposed to utilization) of a
//! system if the time spent on fetching pages can normally be overlapped
//! with the execution of other programs." Figure 3 draws the
//! single-program picture; the M44/44X appendix describes the
//! round-robin overlap that rescues it.
//!
//! [`sim::MultiprogramSim`] is a discrete-event simulator of exactly
//! that setting: one processor, a round-robin ready queue, per-job
//! demand-paged working sets with local replacement, and a page-fetch
//! latency during which other jobs run. It reports per-job space-time
//! products split into active/waiting/ready components and overall CPU
//! utilization — everything experiment E2 needs to regenerate Figure 3
//! and its multiprogrammed rescue.
//!
//! [`load_control::GlobalMultiprogramSim`] goes one step further for the
//! paper's conclusion (i): admitted jobs page against a *shared* frame
//! pool, and the admission policy is the integration point between
//! processor scheduling and storage allocation — admit everything and
//! thrash, or admit by working-set estimate and run in shifts
//! (experiment E16).
//!
//! [`event::EventSim`] is the population-scale version of the same
//! story: an event-driven rebuild that jumps blocked time through a
//! binary-heap event queue, keeps per-tenant state compact (stream
//! recipes and LRU summaries instead of materialized traces and full
//! paging engines), and layers load control on top — working-set
//! admission ([`admission`]), online allotments from one-pass success
//! curves, and the degradation ladder's swap-out as the final rung. It
//! scales to 100k+ tenants (experiment E22) while staying
//! report-identical to [`sim::MultiprogramSim`] in
//! [`admission::AdmissionPolicy::Fixed`] mode.

pub mod admission;
pub mod event;
pub mod load_control;
pub mod sim;
pub mod sweep;
pub mod tenant;
pub mod vclock;

pub use admission::{estimate_ws, pick_allotment, AdmissionPolicy, LoadControlCfg};
pub use event::{EventReport, EventSim, TenantReport};
pub use load_control::{Admission, GlobalJobSpec, GlobalMultiprogramSim, GlobalReport};
pub use sim::{JobReport, JobSpec, MultiprogramSim, SimConfig, SimReport};
pub use sweep::{admission_sweep, level_sweep, tenant_sweep, SweepCell, SweepPoint};
pub use tenant::{TenantSpec, TraceSpec};
pub use vclock::VClock;
