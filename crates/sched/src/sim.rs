//! The discrete-event multiprogramming simulator.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use dsa_core::clock::{Cycles, VirtualTime};
use dsa_core::error::CoreError;
use dsa_core::ids::{JobId, PageNo, Words};
use dsa_metrics::spacetime::{Phase, SpaceTimeMeter, SpaceTimeReport};
use dsa_paging::paged::PagedMemory;
use dsa_paging::replacement::Replacer;

/// One job of the multiprogrammed mix.
pub struct JobSpec {
    /// Identifier used in the report.
    pub id: JobId,
    /// Page-granular reference string.
    pub trace: Vec<PageNo>,
    /// Page frames allotted to this job (local replacement).
    pub frames: usize,
    /// The replacement strategy for this job's frames.
    pub replacer: Box<dyn Replacer>,
}

/// Simulator parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Machine time per reference while executing.
    pub instr_time: Cycles,
    /// Time to fetch one page from backing storage (page transfers are
    /// assumed to proceed in parallel with execution and with each
    /// other — a drum with ample channel capacity; queueing at the
    /// device is out of scope, as in the paper's discussion).
    pub fetch_time: Cycles,
    /// Page size in words (used only to express occupancy in words).
    pub page_size: Words,
    /// References per scheduling quantum (round robin, as on the M44).
    pub quantum_refs: u32,
    /// Number of page-transfer channels; `None` models ample channel
    /// capacity (every fetch proceeds immediately), `Some(k)` makes
    /// fetches queue for one of `k` channels — the device contention the
    /// paper's "unless extra page transmission is introduced" hints at.
    pub fetch_channels: Option<usize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            instr_time: Cycles::from_micros(10),
            fetch_time: Cycles::from_millis(8),
            page_size: 512,
            quantum_refs: 50,
            fetch_channels: None,
        }
    }
}

/// Per-job results.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The job.
    pub id: JobId,
    /// References executed.
    pub references: u64,
    /// Page faults taken.
    pub faults: u64,
    /// Completion time.
    pub finished_at: Cycles,
    /// The space-time integral, split by phase.
    pub space_time: SpaceTimeReport,
}

/// Whole-run results.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-job reports, in job order.
    pub jobs: Vec<JobReport>,
    /// Total time the processor executed references.
    pub cpu_busy: Cycles,
    /// Time the last job finished.
    pub makespan: Cycles,
}

impl SimReport {
    /// Fraction of the makespan the processor was executing.
    #[must_use]
    pub fn cpu_utilization(&self) -> f64 {
        if self.makespan == Cycles::ZERO {
            0.0
        } else {
            self.cpu_busy.as_nanos() as f64 / self.makespan.as_nanos() as f64
        }
    }

    /// Sum of all jobs' space-time products.
    #[must_use]
    pub fn total_space_time(&self) -> SpaceTimeReport {
        let mut total = SpaceTimeReport::default();
        for j in &self.jobs {
            total.active_word_nanos += j.space_time.active_word_nanos;
            total.waiting_word_nanos += j.space_time.waiting_word_nanos;
            total.ready_idle_word_nanos += j.space_time.ready_idle_word_nanos;
        }
        total
    }
}

struct JobState {
    spec_id: JobId,
    trace: Vec<PageNo>,
    pos: usize,
    memory: PagedMemory,
    meter: SpaceTimeMeter,
    faults_seen: u64,
    finished_at: Option<Cycles>,
}

impl JobState {
    fn resident_words(&self, page_size: Words) -> Words {
        self.memory.resident_count() as Words * page_size
    }
}

/// One processor, a round-robin ready queue, and overlapped page
/// fetches.
pub struct MultiprogramSim {
    cfg: SimConfig,
    jobs: Vec<JobState>,
}

impl MultiprogramSim {
    /// Builds the simulator.
    #[must_use]
    pub fn new(cfg: SimConfig, specs: Vec<JobSpec>) -> MultiprogramSim {
        let jobs = specs
            .into_iter()
            .map(|s| JobState {
                spec_id: s.id,
                trace: s.trace,
                pos: 0,
                memory: PagedMemory::new(s.frames.max(1), s.replacer),
                meter: SpaceTimeMeter::new(),
                faults_seen: 0,
                finished_at: None,
            })
            .collect();
        MultiprogramSim { cfg, jobs }
    }

    /// Runs all jobs to completion.
    ///
    /// # Errors
    ///
    /// Propagates paging errors (impossible without pinning).
    pub fn run(mut self) -> Result<SimReport, CoreError> {
        let cfg = self.cfg;
        let mut clock = Cycles::ZERO;
        let mut cpu_busy = Cycles::ZERO;
        let mut ready: VecDeque<usize> = (0..self.jobs.len())
            .filter(|&i| !self.jobs[i].trace.is_empty())
            .collect();
        // Jobs whose page fetch completes at the keyed instant.
        let mut blocked: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        // Next-free instants of the transfer channels (empty = ample).
        let mut channels: Vec<u64> = vec![0; cfg.fetch_channels.unwrap_or(0)];
        // Finished-empty jobs complete at time zero.
        for job in self.jobs.iter_mut().filter(|j| j.trace.is_empty()) {
            job.finished_at = Some(Cycles::ZERO);
        }
        for &i in &ready {
            let words = self.jobs[i].resident_words(cfg.page_size);
            self.jobs[i].meter.record(clock, words, Phase::ReadyIdle);
        }

        loop {
            // If nothing is ready, advance to the next fetch completion.
            if ready.is_empty() {
                let Some(&Reverse((wake, _))) = blocked.peek() else {
                    break; // all jobs finished
                };
                clock = Cycles::from_nanos(wake);
                while let Some(&Reverse((w, j))) = blocked.peek() {
                    if w <= clock.as_nanos() {
                        blocked.pop();
                        let words = self.jobs[j].resident_words(cfg.page_size);
                        self.jobs[j].meter.record(clock, words, Phase::ReadyIdle);
                        ready.push_back(j);
                    } else {
                        break;
                    }
                }
                continue;
            }
            // Invariant: the empty-ready case continued above.
            #[allow(clippy::expect_used)]
            let i = ready.pop_front().expect("checked non-empty");
            {
                let words = self.jobs[i].resident_words(cfg.page_size);
                self.jobs[i].meter.record(clock, words, Phase::Active);
            }
            let mut blocked_now = false;
            for _ in 0..cfg.quantum_refs {
                let job = &mut self.jobs[i];
                let Some(&page) = job.trace.get(job.pos) else {
                    break;
                };
                let now = job.pos as VirtualTime;
                let outcome = job.memory.touch(page, false, now)?;
                if outcome.is_fault() {
                    job.faults_seen += 1;
                    // The faulting instruction is re-executed once the
                    // page arrives (pos is not advanced); occupancy
                    // already includes the incoming page's frame.
                    let words = job.resident_words(cfg.page_size);
                    job.meter.record(clock, words, Phase::AwaitingFetch);
                    // Queue for a transfer channel if capacity is
                    // limited: the fetch starts when the least-loaded
                    // channel frees.
                    let start = match channels.iter_mut().min() {
                        Some(slot) => {
                            let start = (*slot).max(clock.as_nanos());
                            *slot = start + cfg.fetch_time.as_nanos();
                            Cycles::from_nanos(start)
                        }
                        None => clock,
                    };
                    let wake = start + cfg.fetch_time;
                    blocked.push(Reverse((wake.as_nanos(), i)));
                    blocked_now = true;
                    break;
                }
                clock += cfg.instr_time;
                cpu_busy += cfg.instr_time;
                job.pos += 1;
            }
            // Wake any fetches that completed while this job ran.
            while let Some(&Reverse((w, j))) = blocked.peek() {
                if w <= clock.as_nanos() {
                    blocked.pop();
                    let words = self.jobs[j].resident_words(cfg.page_size);
                    self.jobs[j].meter.record(clock, words, Phase::ReadyIdle);
                    ready.push_back(j);
                } else {
                    break;
                }
            }
            let job = &mut self.jobs[i];
            if blocked_now {
                continue;
            }
            if job.pos >= job.trace.len() {
                job.finished_at = Some(clock);
                job.meter.finish(clock);
            } else {
                let words = job.resident_words(cfg.page_size);
                job.meter.record(clock, words, Phase::ReadyIdle);
                ready.push_back(i);
            }
        }

        let makespan = clock;
        let jobs = self
            .jobs
            .into_iter()
            .map(|mut j| {
                j.meter.finish(makespan);
                JobReport {
                    id: j.spec_id,
                    references: j.pos as u64,
                    faults: j.faults_seen,
                    finished_at: j.finished_at.unwrap_or(makespan),
                    space_time: j.meter.report(),
                }
            })
            .collect();
        Ok(SimReport {
            jobs,
            cpu_busy,
            makespan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_paging::replacement::lru::LruRepl;

    fn pages(xs: &[u64]) -> Vec<PageNo> {
        xs.iter().map(|&x| PageNo(x)).collect()
    }

    fn job(id: u32, trace: Vec<PageNo>, frames: usize) -> JobSpec {
        JobSpec {
            id: JobId(id),
            trace,
            frames,
            replacer: Box::new(LruRepl::new()),
        }
    }

    fn cfg() -> SimConfig {
        SimConfig {
            instr_time: Cycles::from_micros(10),
            fetch_time: Cycles::from_millis(1),
            page_size: 512,
            quantum_refs: 4,
            fetch_channels: None,
        }
    }

    #[test]
    fn single_job_all_hits_after_cold_start() {
        // One page referenced 10 times: 1 fault, 9 executed references.
        let trace = pages(&[1; 10]);
        let sim = MultiprogramSim::new(cfg(), vec![job(0, trace, 2)]);
        let r = sim.run().unwrap();
        assert_eq!(r.jobs[0].faults, 1);
        assert_eq!(r.jobs[0].references, 10);
        // CPU busy = 10 refs x 10us (the faulting one re-executes).
        assert_eq!(r.cpu_busy, Cycles::from_micros(100));
        assert!(r.makespan >= Cycles::from_millis(1), "fetch time elapses");
    }

    #[test]
    fn space_time_is_wait_dominated_when_fetch_is_slow() {
        // Alternate between 3 pages with only 1 frame: fault storm.
        let trace = pages(&[1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3]);
        let sim = MultiprogramSim::new(cfg(), vec![job(0, trace, 1)]);
        let r = sim.run().unwrap();
        let st = &r.jobs[0].space_time;
        assert!(
            st.waiting_fraction() > 0.9,
            "waiting fraction {}",
            st.waiting_fraction()
        );
    }

    #[test]
    fn fast_fetch_shrinks_waiting_share() {
        let trace = pages(&[1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3]);
        let slow = MultiprogramSim::new(cfg(), vec![job(0, trace.clone(), 1)])
            .run()
            .unwrap();
        let mut fast_cfg = cfg();
        fast_cfg.fetch_time = Cycles::from_micros(20);
        let fast = MultiprogramSim::new(fast_cfg, vec![job(0, trace, 1)])
            .run()
            .unwrap();
        assert!(
            fast.jobs[0].space_time.waiting_fraction() < slow.jobs[0].space_time.waiting_fraction()
        );
        assert!(fast.makespan < slow.makespan);
    }

    #[test]
    fn multiprogramming_overlaps_fetch_with_execution() {
        // Job 0 faults a lot; job 1 never faults after its cold start
        // (single page). With both running, CPU utilization must beat
        // job 0 alone.
        let faulty = pages(&[1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3]);
        let steady = pages(&[7; 2000]);
        let alone = MultiprogramSim::new(cfg(), vec![job(0, faulty.clone(), 1)])
            .run()
            .unwrap();
        let mixed = MultiprogramSim::new(cfg(), vec![job(0, faulty, 1), job(1, steady, 2)])
            .run()
            .unwrap();
        assert!(
            mixed.cpu_utilization() > 2.0 * alone.cpu_utilization(),
            "mixed {} vs alone {}",
            mixed.cpu_utilization(),
            alone.cpu_utilization()
        );
        // Job 0's own fault count is unchanged by the company.
        assert_eq!(mixed.jobs[0].faults, alone.jobs[0].faults);
    }

    #[test]
    fn round_robin_shares_the_processor() {
        // Two identical non-faulting jobs (after cold start) must finish
        // near each other, not serially.
        let t = pages(&[1; 400]);
        let r = MultiprogramSim::new(cfg(), vec![job(0, t.clone(), 1), job(1, t, 1)])
            .run()
            .unwrap();
        let f0 = r.jobs[0].finished_at.as_nanos() as f64;
        let f1 = r.jobs[1].finished_at.as_nanos() as f64;
        assert!((f0 - f1).abs() / f0.max(f1) < 0.05, "{f0} vs {f1}");
    }

    #[test]
    fn empty_and_no_jobs() {
        let r = MultiprogramSim::new(cfg(), vec![]).run().unwrap();
        assert_eq!(r.makespan, Cycles::ZERO);
        assert_eq!(r.cpu_utilization(), 0.0);
        let r = MultiprogramSim::new(cfg(), vec![job(0, vec![], 1)])
            .run()
            .unwrap();
        assert_eq!(r.jobs[0].references, 0);
        assert_eq!(r.jobs[0].finished_at, Cycles::ZERO);
    }

    #[test]
    fn total_space_time_sums_jobs() {
        let t = pages(&[1, 2, 1, 2]);
        let r = MultiprogramSim::new(cfg(), vec![job(0, t.clone(), 2), job(1, t, 2)])
            .run()
            .unwrap();
        let total = r.total_space_time();
        let sum: u128 = r.jobs.iter().map(|j| j.space_time.total()).sum();
        assert_eq!(total.total(), sum);
        assert!(total.total() > 0);
    }
}

#[cfg(test)]
mod channel_tests {
    use super::*;
    use dsa_paging::replacement::lru::LruRepl;

    fn pages(xs: &[u64]) -> Vec<PageNo> {
        xs.iter().map(|&x| PageNo(x)).collect()
    }

    fn cfg(channels: Option<usize>) -> SimConfig {
        SimConfig {
            instr_time: Cycles::from_micros(10),
            fetch_time: Cycles::from_millis(1),
            page_size: 512,
            quantum_refs: 4,
            fetch_channels: channels,
        }
    }

    fn faulty_jobs(n: usize) -> Vec<JobSpec> {
        (0..n)
            .map(|i| JobSpec {
                id: JobId(i as u32),
                trace: pages(&[1, 2, 3, 1, 2, 3, 1, 2, 3]),
                frames: 1,
                replacer: Box::new(LruRepl::new()),
            })
            .collect()
    }

    #[test]
    fn single_channel_serializes_fetches() {
        let ample = MultiprogramSim::new(cfg(None), faulty_jobs(4))
            .run()
            .unwrap();
        let narrow = MultiprogramSim::new(cfg(Some(1)), faulty_jobs(4))
            .run()
            .unwrap();
        assert!(
            narrow.makespan.as_nanos() > 2 * ample.makespan.as_nanos(),
            "queueing at one channel must stretch the run: {} vs {}",
            narrow.makespan,
            ample.makespan
        );
        // Fault counts are untouched by channel capacity.
        for (a, b) in ample.jobs.iter().zip(&narrow.jobs) {
            assert_eq!(a.faults, b.faults);
        }
    }

    #[test]
    fn enough_channels_equal_ample_capacity() {
        let ample = MultiprogramSim::new(cfg(None), faulty_jobs(3))
            .run()
            .unwrap();
        let wide = MultiprogramSim::new(cfg(Some(3)), faulty_jobs(3))
            .run()
            .unwrap();
        assert_eq!(ample.makespan, wide.makespan);
        assert_eq!(ample.cpu_busy, wide.cpu_busy);
    }

    #[test]
    fn channel_queueing_lowers_utilization() {
        // A compute-heavy job plus faulty jobs: with one channel the
        // faulty jobs stay blocked longer, but total CPU work is equal,
        // so utilization (busy/makespan) falls.
        let mut jobs = faulty_jobs(3);
        jobs.push(JobSpec {
            id: JobId(9),
            trace: pages(&[7; 500]),
            frames: 2,
            replacer: Box::new(LruRepl::new()),
        });
        let ample = MultiprogramSim::new(cfg(None), faulty_jobs(3))
            .run()
            .unwrap();
        let narrow = MultiprogramSim::new(cfg(Some(1)), faulty_jobs(3))
            .run()
            .unwrap();
        assert!(narrow.cpu_utilization() <= ample.cpu_utilization() + 1e-12);
        let _ = jobs;
    }
}
