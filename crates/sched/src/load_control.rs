//! Integrated scheduling and storage allocation: load control.
//!
//! Conclusion (i) of the paper: "Storage allocation strategies must be
//! fully integrated with the overall strategies for allocating and
//! scheduling the use of computer system resources. For example, a
//! system in which entirely independent decisions are taken as to
//! processor scheduling and storage allocation is unlikely to perform
//! acceptably in any but the most undemanding of environments."
//!
//! [`GlobalMultiprogramSim`] makes the claim testable. Unlike
//! [`crate::sim::MultiprogramSim`] (private per-job allotments), every
//! admitted job here pages against **one shared pool of frames** under a
//! global replacement policy. The scheduler's admission decision is the
//! integration point:
//!
//! * [`Admission::All`] — the "entirely independent decisions" case: the
//!   processor scheduler admits every job at once and lets the storage
//!   allocator cope. Past saturation the jobs steal frames from each
//!   other and the system thrashes.
//! * [`Admission::WorkingSet`] — integrated: a job is admitted only
//!   while the sum of admitted jobs' estimated working sets fits in the
//!   pool; the rest wait in a backlog and enter as earlier jobs finish.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use dsa_core::clock::{Cycles, VirtualTime};
use dsa_core::error::CoreError;
use dsa_core::ids::{JobId, PageNo};
use dsa_paging::paged::PagedMemory;
use dsa_paging::replacement::Replacer;

use crate::sim::SimConfig;

/// One job of the mix, with an estimate of its storage appetite.
pub struct GlobalJobSpec {
    /// Identifier used in the report.
    pub id: JobId,
    /// Page-granular reference string (pages are per-job; they are
    /// namespaced internally so jobs never share pages).
    pub trace: Vec<PageNo>,
    /// The job's estimated working-set size in pages — what an
    /// integrated scheduler believes the job needs to run without
    /// thrashing (measure it with
    /// [`dsa_paging::replacement::ws::working_set_sim`]).
    pub est_working_set: usize,
}

/// The shed-load rung of a machine's graceful-degradation ladder.
///
/// Conclusion (i) again, seen from the failure side: when working
/// storage is exhausted even after coalescing, compaction, and
/// eviction, the *scheduler* is the component with slack left — it can
/// surrender advisory claims (pins, prefetches) it granted earlier and
/// let the demand through. The shedder bounds how many times a run may
/// fall back on that before allocation failures are surfaced to the
/// program, so a pathological workload degrades instead of livelocking.
///
/// The mechanics now live in `dsa-faults` as
/// [`dsa_faults::ladder::ShedBudget`], the one shed-budget type shared
/// by the machine drivers and the concurrent arena's overload guard
/// (which uses the atomic form); this alias keeps the scheduling-side
/// name.
pub use dsa_faults::ladder::ShedBudget as LoadShedder;

/// The admission policy: the scheduler/allocator integration knob.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Admission {
    /// Admit every job immediately (independent decisions).
    All,
    /// Admit a job only while the admitted jobs' working-set estimates
    /// sum to at most the frame pool.
    WorkingSet,
}

/// Whole-run results.
#[derive(Clone, Debug)]
pub struct GlobalReport {
    /// Per-job `(id, references, faults, finished_at)`.
    pub jobs: Vec<(JobId, u64, u64, Cycles)>,
    /// Total processor-busy time.
    pub cpu_busy: Cycles,
    /// Completion time of the last job.
    pub makespan: Cycles,
    /// Total demand faults.
    pub faults: u64,
    /// Peak number of concurrently admitted jobs.
    pub peak_admitted: usize,
}

impl GlobalReport {
    /// Processor utilization over the makespan.
    #[must_use]
    pub fn cpu_utilization(&self) -> f64 {
        if self.makespan == Cycles::ZERO {
            0.0
        } else {
            self.cpu_busy.as_nanos() as f64 / self.makespan.as_nanos() as f64
        }
    }

    /// Jobs completed per simulated second.
    #[must_use]
    pub fn throughput_per_second(&self) -> f64 {
        if self.makespan == Cycles::ZERO {
            0.0
        } else {
            self.jobs.len() as f64 / (self.makespan.as_nanos() as f64 / 1e9)
        }
    }
}

struct JobState {
    id: JobId,
    trace: Vec<PageNo>,
    pos: usize,
    est_ws: usize,
    faults: u64,
    finished_at: Option<Cycles>,
}

/// A shared frame pool under a global policy, with admission control.
pub struct GlobalMultiprogramSim {
    cfg: SimConfig,
    memory: PagedMemory,
    admission: Admission,
    jobs: Vec<JobState>,
}

impl GlobalMultiprogramSim {
    /// Builds the simulator over `frames` shared frames.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    #[must_use]
    pub fn new(
        cfg: SimConfig,
        frames: usize,
        replacer: Box<dyn Replacer>,
        admission: Admission,
        specs: Vec<GlobalJobSpec>,
    ) -> GlobalMultiprogramSim {
        let jobs = specs
            .into_iter()
            .map(|s| JobState {
                id: s.id,
                trace: s.trace,
                pos: 0,
                est_ws: s.est_working_set.max(1),
                faults: 0,
                finished_at: None,
            })
            .collect();
        GlobalMultiprogramSim {
            cfg,
            memory: PagedMemory::new(frames, replacer),
            admission,
            jobs,
        }
    }

    fn namespaced(job: usize, page: PageNo) -> PageNo {
        PageNo(((job as u64) << 40) | page.0)
    }

    /// Runs all jobs to completion.
    ///
    /// # Errors
    ///
    /// Propagates paging errors (impossible without pinning).
    pub fn run(mut self) -> Result<GlobalReport, CoreError> {
        let cfg = self.cfg;
        let frames = self.memory.frame_count();
        let mut clock = Cycles::ZERO;
        let mut cpu_busy = Cycles::ZERO;
        let mut vt: VirtualTime = 0;

        // Backlog in arrival order; the admission policy moves jobs from
        // backlog to the ready queue.
        let mut backlog: VecDeque<usize> = (0..self.jobs.len())
            .filter(|&i| !self.jobs[i].trace.is_empty())
            .collect();
        for job in self.jobs.iter_mut().filter(|j| j.trace.is_empty()) {
            job.finished_at = Some(Cycles::ZERO);
        }
        let mut ready: VecDeque<usize> = VecDeque::new();
        let mut blocked: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        // Next-free instants of the transfer channels (empty = ample).
        let mut channels: Vec<u64> = vec![0; cfg.fetch_channels.unwrap_or(0)];
        let mut admitted_ws = 0usize;
        let mut admitted: Vec<bool> = vec![false; self.jobs.len()];
        let mut peak_admitted = 0usize;

        loop {
            // Admission: move backlog jobs in while the policy allows.
            while let Some(&cand) = backlog.front() {
                let fits = match self.admission {
                    Admission::All => true,
                    Admission::WorkingSet => {
                        admitted_ws == 0 || admitted_ws + self.jobs[cand].est_ws <= frames
                    }
                };
                if fits {
                    backlog.pop_front();
                    admitted[cand] = true;
                    admitted_ws += self.jobs[cand].est_ws;
                    ready.push_back(cand);
                } else {
                    break;
                }
            }
            peak_admitted = peak_admitted.max(admitted.iter().filter(|&&a| a).count());

            if ready.is_empty() {
                let Some(&Reverse((wake, _))) = blocked.peek() else {
                    if backlog.is_empty() {
                        break;
                    }
                    // Admission refused everything while nothing runs:
                    // force one in to preserve progress.
                    // Invariant: the surrounding branch checked the
                    // backlog is non-empty.
                    #[allow(clippy::expect_used)]
                    let cand = backlog.pop_front().expect("non-empty");
                    admitted[cand] = true;
                    admitted_ws += self.jobs[cand].est_ws;
                    ready.push_back(cand);
                    continue;
                };
                clock = Cycles::from_nanos(wake);
                while let Some(&Reverse((w, j))) = blocked.peek() {
                    if w <= clock.as_nanos() {
                        blocked.pop();
                        ready.push_back(j);
                    } else {
                        break;
                    }
                }
                continue;
            }

            // Invariant: the empty-ready case continued above.
            #[allow(clippy::expect_used)]
            let i = ready.pop_front().expect("checked non-empty");
            let mut blocked_now = false;
            for _ in 0..cfg.quantum_refs {
                let Some(&page) = self.jobs[i].trace.get(self.jobs[i].pos) else {
                    break;
                };
                vt += 1;
                let global = Self::namespaced(i, page);
                let outcome = self.memory.touch(global, false, vt)?;
                if outcome.is_fault() {
                    self.jobs[i].faults += 1;
                    let start = match channels.iter_mut().min() {
                        Some(slot) => {
                            let start = (*slot).max(clock.as_nanos());
                            *slot = start + cfg.fetch_time.as_nanos();
                            Cycles::from_nanos(start)
                        }
                        None => clock,
                    };
                    blocked.push(Reverse(((start + cfg.fetch_time).as_nanos(), i)));
                    blocked_now = true;
                    break;
                }
                clock += cfg.instr_time;
                cpu_busy += cfg.instr_time;
                self.jobs[i].pos += 1;
            }
            while let Some(&Reverse((w, j))) = blocked.peek() {
                if w <= clock.as_nanos() {
                    blocked.pop();
                    ready.push_back(j);
                } else {
                    break;
                }
            }
            if blocked_now {
                continue;
            }
            if self.jobs[i].pos >= self.jobs[i].trace.len() {
                self.jobs[i].finished_at = Some(clock);
                admitted[i] = false;
                admitted_ws -= self.jobs[i].est_ws;
            } else {
                ready.push_back(i);
            }
        }

        let makespan = clock;
        let faults = self.jobs.iter().map(|j| j.faults).sum();
        Ok(GlobalReport {
            jobs: self
                .jobs
                .into_iter()
                .map(|j| {
                    (
                        j.id,
                        j.pos as u64,
                        j.faults,
                        j.finished_at.unwrap_or(makespan),
                    )
                })
                .collect(),
            cpu_busy,
            makespan,
            faults,
            peak_admitted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_paging::replacement::lru::LruRepl;
    use dsa_trace::refstring::RefStringCfg;
    use dsa_trace::rng::Rng64;

    #[test]
    fn load_shedder_enforces_its_budget() {
        let mut s = LoadShedder::new(2);
        assert!(s.try_shed());
        assert!(s.try_shed());
        assert!(!s.try_shed(), "budget spent");
        assert!(!s.try_shed(), "stays spent");
        assert_eq!(s.sheds(), 2);
    }

    fn cfg() -> SimConfig {
        SimConfig {
            instr_time: Cycles::from_micros(10),
            fetch_time: Cycles::from_millis(2),
            page_size: 512,
            quantum_refs: 20,
            // One drum channel: fetches queue, so thrash hurts wall
            // clock, not just fault counts.
            fetch_channels: Some(1),
        }
    }

    fn jobs(n: usize, pages: u64, refs: usize) -> Vec<GlobalJobSpec> {
        (0..n)
            .map(|i| GlobalJobSpec {
                id: JobId(i as u32),
                // Phase-structured: a genuine working set of 8 pages.
                trace: RefStringCfg::WorkingSetPhases {
                    pages,
                    set: 8,
                    phase_len: 400,
                }
                .generate_pages(refs, &mut Rng64::new(i as u64 + 1)),
                est_working_set: 10,
            })
            .collect()
    }

    fn run(admission: Admission, n: usize, frames: usize) -> GlobalReport {
        GlobalMultiprogramSim::new(
            cfg(),
            frames,
            Box::new(LruRepl::new()),
            admission,
            jobs(n, 24, 3000),
        )
        .run()
        .expect("no pinning")
    }

    #[test]
    fn all_jobs_complete_under_both_policies() {
        for admission in [Admission::All, Admission::WorkingSet] {
            let r = run(admission, 6, 30);
            assert_eq!(r.jobs.len(), 6);
            for &(_, refs, _, finished) in &r.jobs {
                assert_eq!(refs, 3000, "{admission:?}");
                assert!(finished <= r.makespan);
            }
        }
    }

    #[test]
    fn over_admission_thrashes_load_control_does_not() {
        // 8 jobs of ~12-page working sets over 24 frames: admitting all
        // floods the pool; working-set admission runs ~2 at a time.
        let all = run(Admission::All, 8, 24);
        let ws = run(Admission::WorkingSet, 8, 24);
        assert!(ws.peak_admitted < all.peak_admitted);
        assert!(
            ws.faults * 2 < all.faults,
            "load control must cut faults sharply: {} vs {}",
            ws.faults,
            all.faults
        );
        assert!(
            ws.makespan < all.makespan,
            "finishing jobs in shifts beats thrashing: {} vs {}",
            ws.makespan,
            all.makespan
        );
    }

    #[test]
    fn ample_storage_makes_the_policies_agree() {
        let all = run(Admission::All, 4, 200);
        let ws = run(Admission::WorkingSet, 4, 200);
        assert_eq!(
            all.faults, ws.faults,
            "no pressure, no difference in faults"
        );
    }

    #[test]
    fn oversized_single_job_is_still_admitted() {
        // A job whose estimate exceeds the pool must not deadlock the
        // backlog.
        let spec = GlobalJobSpec {
            id: JobId(0),
            trace: RefStringCfg::SequentialSweep { pages: 8 }
                .generate_pages(100, &mut Rng64::new(1)),
            est_working_set: 1000,
        };
        let r = GlobalMultiprogramSim::new(
            cfg(),
            16,
            Box::new(LruRepl::new()),
            Admission::WorkingSet,
            vec![spec],
        )
        .run()
        .expect("no pinning");
        assert_eq!(r.jobs[0].1, 100);
    }

    #[test]
    fn empty_mix_reports_zero() {
        let r =
            GlobalMultiprogramSim::new(cfg(), 8, Box::new(LruRepl::new()), Admission::All, vec![])
                .run()
                .expect("no pinning");
        assert_eq!(r.makespan, Cycles::ZERO);
        assert_eq!(r.throughput_per_second(), 0.0);
    }
}
