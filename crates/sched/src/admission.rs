//! The load-control layer: working-set admission and online allotments.
//!
//! Denning's working-set argument, applied to the paper's conclusion
//! (i): a tenant should be activated only if its *working set* fits in
//! the frames the pool still has free, because a tenant running with
//! less than its working set faults continuously and converts processor
//! time into drum queueing for everyone. The controller therefore
//! estimates each tenant's appetite from a short trace sample before
//! activation:
//!
//! * [`estimate_ws`] — the windowed working-set size (mean resident set
//!   under a window of `tau` references, via
//!   [`dsa_paging::replacement::ws::working_set_sim`]);
//! * [`pick_allotment`] — the frame allotment actually granted, chosen
//!   online from the one-pass LRU success function
//!   ([`dsa_stackdist::lru::lru_success`]): the smallest frame count
//!   whose predicted fault rate meets the target, capped by the
//!   working-set estimate and the tenant's quota.
//!
//! Both are pure functions of the sample, so admission decisions are a
//! deterministic function of the tenant population — the property the
//! parallel sweep's byte-identity rests on.

use dsa_core::ids::PageNo;
use dsa_paging::replacement::ws::working_set_sim;
use dsa_stackdist::lru::lru_success;

/// How tenants are activated against the shared frame pool.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdmissionPolicy {
    /// Admit every tenant at time zero; the pool is equipartitioned
    /// (each tenant gets `frames / population`, floor one). The
    /// "entirely independent decisions" case: past saturation the
    /// population thrashes.
    Open,
    /// Admit a tenant only while the granted allotments fit the pool;
    /// the rest wait in a priority-ordered backlog and enter as earlier
    /// tenants finish or are swapped out. Allotments come from
    /// [`pick_allotment`].
    WorkingSet,
    /// Admit every tenant at time zero with its full quota as the
    /// allotment and no pool accounting. This reproduces
    /// [`crate::sim::MultiprogramSim`]'s private-allotment semantics
    /// exactly — the parity mode the property tests compare against
    /// the reference stepper.
    Fixed,
}

/// Load-controller tuning.
#[derive(Clone, Copy, Debug)]
pub struct LoadControlCfg {
    /// Working-set window `tau`, in references.
    pub ws_window: u64,
    /// References sampled from the head of each trace for estimation.
    pub ws_sample: u64,
    /// Target fault rate the allotment picker aims for on the sampled
    /// success curve.
    pub target_fault_rate: f64,
    /// References between thrash checks on an active tenant.
    pub thrash_refs: u32,
    /// Fault rate (over the last `thrash_refs` references) above which
    /// the degradation ladder is climbed for the tenant.
    pub thrash_fault_rate: f64,
    /// Total swap-outs (`ShedLoad` rungs) the run may take before the
    /// ladder stops deactivating — the same bounded-shed discipline as
    /// [`dsa_faults::ladder::ShedBudget`].
    pub shed_budget: u64,
}

impl Default for LoadControlCfg {
    fn default() -> Self {
        LoadControlCfg {
            ws_window: 128,
            ws_sample: 256,
            target_fault_rate: 0.05,
            thrash_refs: 64,
            thrash_fault_rate: 0.5,
            shed_budget: 1024,
        }
    }
}

/// Windowed working-set size estimate: the mean resident set under a
/// window of `tau` references over `sample`, rounded up, plus one frame
/// of slack for phase transitions. At least 1.
#[must_use]
pub fn estimate_ws(sample: &[PageNo], tau: u64) -> usize {
    if sample.is_empty() {
        return 1;
    }
    let report = working_set_sim(sample, tau.max(1));
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let mean = report.mean_resident.ceil() as usize;
    mean.saturating_add(1).max(1)
}

/// The frame allotment granted to a tenant: the smallest frame count
/// whose fault rate on the sampled LRU success curve is at or below
/// `target_fault_rate`, capped by the working-set estimate `est_ws` and
/// by `quota`, floor 1.
///
/// The success function comes from one Mattson pass over the sample, so
/// the whole curve costs one traversal — the reason the controller can
/// afford a per-tenant curve at population scale.
#[must_use]
pub fn pick_allotment(
    sample: &[PageNo],
    est_ws: usize,
    quota: usize,
    target_fault_rate: f64,
) -> usize {
    let cap = est_ws.max(1).min(quota.max(1));
    if sample.is_empty() {
        return cap;
    }
    let success = lru_success(sample);
    let limit = cap.min(success.saturation_frames().max(1));
    for frames in 1..=limit {
        if success.fault_rate(frames) <= target_fault_rate {
            return frames;
        }
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(xs: &[u64]) -> Vec<PageNo> {
        xs.iter().map(|&x| PageNo(x)).collect()
    }

    #[test]
    fn estimate_tracks_the_loop_size() {
        // A tight 3-page loop: mean resident ~3, estimate 4.
        let sample = p(&[1, 2, 3].repeat(50));
        let est = estimate_ws(&sample, 64);
        assert!((3..=4).contains(&est), "estimate {est}");
        assert_eq!(estimate_ws(&[], 64), 1);
    }

    #[test]
    fn allotment_meets_the_target_on_the_curve() {
        // 3-page loop: at 3 frames LRU stops faulting entirely.
        let sample = p(&[1, 2, 3].repeat(50));
        let a = pick_allotment(&sample, 10, 10, 0.05);
        assert_eq!(a, 3);
    }

    #[test]
    fn allotment_is_capped_by_estimate_and_quota() {
        // A sweep over 20 pages never meets the target below 20 frames;
        // the cap wins.
        let sweep: Vec<u64> = (0..200).map(|i| i % 20).collect();
        let sample = p(&sweep);
        assert_eq!(pick_allotment(&sample, 6, 100, 0.01), 6);
        assert_eq!(pick_allotment(&sample, 100, 4, 0.01), 4);
        assert_eq!(pick_allotment(&[], 5, 3, 0.01), 3);
    }

    #[test]
    fn single_page_tenant_needs_one_frame() {
        let sample = p(&[9; 100]);
        assert_eq!(estimate_ws(&sample, 32), 2);
        assert_eq!(pick_allotment(&sample, 2, 8, 0.05), 1);
    }
}
