//! The one virtual clock every probe emission reads.
//!
//! The simulators juggle three time-advancing mechanisms: executed
//! references (`clock += instr_time`), fetch-channel queueing (a fetch
//! *starts* when a channel frees, which may be later than the fault),
//! and degradation-ladder interventions (which happen "now", between
//! references). When each site hand-stamps its own `Cycles`, the
//! streams drift: a `FetchStart` stamped at fault time but queued a
//! millisecond behind the drum makes `LatencyProbe`'s inter-fault
//! percentiles disagree with the event queue's own chronology.
//!
//! [`VClock`] closes the gap by being the *only* source of stamps: the
//! event loop advances it, the channel assignment reads and returns
//! times through it, and every probe emission converts through
//! [`VClock::stamp`]. Reconciliation then holds by construction — an
//! event's `cycles` is the queue's time at the instant the event was
//! scheduled, never a site-local guess.

use dsa_core::clock::{Cycles, VirtualTime};
use dsa_probe::Stamp;

/// A monotone virtual clock in simulated nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    nanos: u64,
}

impl VClock {
    /// A clock at time zero.
    #[must_use]
    pub const fn new() -> VClock {
        VClock { nanos: 0 }
    }

    /// The current simulated instant.
    #[must_use]
    pub const fn now(&self) -> Cycles {
        Cycles::from_nanos(self.nanos)
    }

    /// Current time in nanoseconds (the event queue's key domain).
    #[must_use]
    pub const fn nanos(&self) -> u64 {
        self.nanos
    }

    /// Advances by `d` (executed references, service times).
    pub fn advance(&mut self, d: Cycles) {
        self.nanos += d.as_nanos();
    }

    /// Jumps forward to `t` if `t` is in the future; never moves
    /// backwards (the event queue may deliver same-instant events).
    pub fn advance_to(&mut self, t: Cycles) {
        self.nanos = self.nanos.max(t.as_nanos());
    }

    /// A probe stamp at the clock's current instant.
    #[must_use]
    pub const fn stamp(&self, vtime: VirtualTime) -> Stamp {
        Stamp::at(Cycles::from_nanos(self.nanos), vtime)
    }

    /// A probe stamp at an explicit instant *derived from this clock*
    /// (a queued fetch's start or completion time). Taking it through
    /// the clock keeps every emission site on one time base.
    #[must_use]
    pub const fn stamp_at(&self, t: Cycles, vtime: VirtualTime) -> Stamp {
        Stamp::at(t, vtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_stamps() {
        let mut c = VClock::new();
        c.advance(Cycles::from_micros(5));
        assert_eq!(c.now(), Cycles::from_micros(5));
        let s = c.stamp(42);
        assert_eq!(s.cycles, Cycles::from_micros(5));
        assert_eq!(s.vtime, 42);
    }

    #[test]
    fn advance_to_never_rewinds() {
        let mut c = VClock::new();
        c.advance(Cycles::from_millis(2));
        c.advance_to(Cycles::from_millis(1));
        assert_eq!(c.now(), Cycles::from_millis(2));
        c.advance_to(Cycles::from_millis(3));
        assert_eq!(c.now(), Cycles::from_millis(3));
    }
}
