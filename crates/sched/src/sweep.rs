//! Parallel sweep entry points for the multiprogramming simulators.
//!
//! Experiment drivers sweep the simulators over grids — batch size ×
//! admission policy for [`GlobalMultiprogramSim`], multiprogramming
//! level for [`MultiprogramSim`] — and
//! every point of such a grid is an independent simulation. These entry
//! points put that independence on the [`dsa_exec`] engine: each point
//! is built and run on a worker, and the reports come back in grid
//! order, so a sweep's results are a pure function of its grid no
//! matter how many workers executed it.

use crate::admission::{AdmissionPolicy, LoadControlCfg};
use crate::event::{EventReport, EventSim};
use crate::load_control::{Admission, GlobalMultiprogramSim, GlobalReport};
use crate::sim::{MultiprogramSim, SimConfig, SimReport};
use crate::tenant::TenantSpec;
use dsa_core::error::CoreError;
use dsa_exec::SimGrid;
use dsa_probe::NullProbe;

/// Runs one [`GlobalMultiprogramSim`] per `(batch size, admission)`
/// point across `jobs` workers; `build` constructs the simulator for a
/// point on the worker that runs it. Reports return in grid order.
pub fn admission_sweep(
    jobs: usize,
    points: Vec<(usize, Admission)>,
    build: impl Fn(usize, Admission) -> GlobalMultiprogramSim + Sync,
) -> Vec<Result<GlobalReport, CoreError>> {
    SimGrid::new(points).run(jobs, |_, &(n, admission)| build(n, admission).run())
}

/// Runs one [`MultiprogramSim`] per
/// multiprogramming level across `jobs` workers. Reports return in
/// level order.
pub fn level_sweep(
    jobs: usize,
    levels: Vec<usize>,
    build: impl Fn(usize) -> MultiprogramSim + Sync,
) -> Vec<Result<SimReport, CoreError>> {
    SimGrid::new(levels).run(jobs, |_, &level| build(level).run())
}

/// One point of a tenant-population sweep: a population size, a frame
/// pool, and the admission policy that arbitrates between them.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SweepPoint {
    /// Number of tenants in the population.
    pub tenants: usize,
    /// Page frames in the shared pool.
    pub frames: usize,
    /// How tenants are admitted against the pool.
    pub policy: AdmissionPolicy,
}

/// One finished point of a tenant sweep: the point plus its report.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// The grid point.
    pub point: SweepPoint,
    /// The population's report.
    pub report: EventReport,
}

/// Runs one [`EventSim`] per sweep point across `jobs` workers.
/// `specs` builds a point's tenant population on the worker that runs
/// it. Results return in grid order, and every build is a pure
/// function of its point, so the sweep's output is byte-identical at
/// any `jobs` — the property `exp_22_tenant_sweep`'s golden gauntlet
/// entry pins.
pub fn tenant_sweep(
    jobs: usize,
    points: Vec<SweepPoint>,
    cfg: SimConfig,
    lc: LoadControlCfg,
    specs: impl Fn(SweepPoint) -> Vec<TenantSpec> + Sync,
) -> Vec<Result<SweepCell, CoreError>> {
    SimGrid::new(points).run(jobs, |_, &point| {
        let sim = EventSim::new(cfg, point.frames, point.policy, lc, specs(point));
        sim.run(&mut NullProbe)
            .map(|report| SweepCell { point, report })
    })
}
