//! Parallel sweep entry points for the multiprogramming simulators.
//!
//! Experiment drivers sweep the simulators over grids — batch size ×
//! admission policy for [`GlobalMultiprogramSim`], multiprogramming
//! level for [`MultiprogramSim`] — and
//! every point of such a grid is an independent simulation. These entry
//! points put that independence on the [`dsa_exec`] engine: each point
//! is built and run on a worker, and the reports come back in grid
//! order, so a sweep's results are a pure function of its grid no
//! matter how many workers executed it.

use crate::load_control::{Admission, GlobalMultiprogramSim, GlobalReport};
use crate::sim::{MultiprogramSim, SimReport};
use dsa_core::error::CoreError;
use dsa_exec::SimGrid;

/// Runs one [`GlobalMultiprogramSim`] per `(batch size, admission)`
/// point across `jobs` workers; `build` constructs the simulator for a
/// point on the worker that runs it. Reports return in grid order.
pub fn admission_sweep(
    jobs: usize,
    points: Vec<(usize, Admission)>,
    build: impl Fn(usize, Admission) -> GlobalMultiprogramSim + Sync,
) -> Vec<Result<GlobalReport, CoreError>> {
    SimGrid::new(points).run(jobs, |_, &(n, admission)| build(n, admission).run())
}

/// Runs one [`MultiprogramSim`] per
/// multiprogramming level across `jobs` workers. Reports return in
/// level order.
pub fn level_sweep(
    jobs: usize,
    levels: Vec<usize>,
    build: impl Fn(usize) -> MultiprogramSim + Sync,
) -> Vec<Result<SimReport, CoreError>> {
    SimGrid::new(levels).run(jobs, |_, &level| build(level).run())
}
