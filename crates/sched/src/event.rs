//! The event-driven population-scale multiprogramming simulator.
//!
//! [`crate::sim::MultiprogramSim`] steps one reference at a time and
//! carries a full paging engine and a space-time meter per job; at a
//! handful of jobs that is the right fidelity, at 100k+ tenants it is
//! the bottleneck. [`EventSim`] keeps the *semantics* of the reference
//! stepper — round-robin quanta, demand faults that re-execute the
//! faulting reference, fetches overlapped with execution, finite
//! transfer channels that queue — but reorganizes the run around a
//! [`BinaryHeap`] event queue keyed by virtual time:
//!
//! * blocked time is never stepped through: a fault schedules one
//!   `FetchDone` event at its completion instant (queueing delay
//!   included), and an idle processor jumps the clock straight to the
//!   next event;
//! * per-tenant state is compact ([`crate::tenant::TenantSpec`] recipes
//!   and stream cursors instead of materialized traces,
//!   [`dsa_paging::compact::CompactLru`] summaries instead of the full
//!   engine), so a 100k-tenant population is tens of megabytes, not
//!   gigabytes;
//! * every probe emission is stamped through one [`crate::vclock::VClock`]
//!   — fetch-channel queueing and degradation-ladder interventions
//!   read the same clock the event queue is keyed by, so
//!   `LatencyProbe` percentiles reconcile with the queue's chronology
//!   by construction.
//!
//! On top sits the load-control layer of [`crate::admission`]: working-set
//! admission gates activation, per-tenant allotments are picked online
//! from one-pass success-function curves, and a thrashing tenant is
//! walked down PR 2's degradation ladder
//! (coalesce → compact → evict-victims → shed-load), the final rung
//! being deactivation — the swap-out that converts a thrashing
//! population into one that runs in shifts.
//!
//! In [`AdmissionPolicy::Fixed`] mode the simulator reproduces
//! [`crate::sim::MultiprogramSim`] report-for-report (the property
//! tests in `tests/properties_sched.rs` pin the two together across
//! every registry replacement policy and channel configuration); the
//! reference stepper stays in-tree as the oracle.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use dsa_core::clock::{Cycles, VirtualTime};
use dsa_core::error::CoreError;
use dsa_core::ids::PageNo;
use dsa_faults::ladder::{DegradationStep, ShedBudget, MACHINE_LADDER};
use dsa_paging::compact::CompactLru;
use dsa_paging::paged::PagedMemory;
use dsa_paging::replacement::Replacer;
use dsa_probe::{EventKind, Probe, Stamp};

use crate::admission::{estimate_ws, pick_allotment, AdmissionPolicy, LoadControlCfg};
use crate::sim::SimConfig;
use crate::tenant::{TenantSpec, TraceCursor, TraceSpec};
use crate::vclock::VClock;

/// A tenant's resident-set representation.
enum Memory {
    /// Not yet activated, or already finished (state released).
    Idle,
    /// The compact LRU summary — the population-scale default.
    Compact(CompactLru),
    /// The full paging engine under an arbitrary replacement policy —
    /// parity mode ([`EventSim::with_full_memory`]).
    Full(Box<PagedMemory>),
}

impl Memory {
    /// References `page` at reference time `vt`; `Ok(true)` on a fault.
    fn touch(&mut self, page: PageNo, vt: VirtualTime) -> Result<bool, CoreError> {
        match self {
            Memory::Idle => Ok(true),
            Memory::Compact(m) => Ok(m.touch(page)),
            Memory::Full(m) => Ok(m.touch(page, false, vt)?.is_fault()),
        }
    }

    fn resident_count(&self) -> usize {
        match self {
            Memory::Idle => 0,
            Memory::Compact(m) => m.resident_count(),
            Memory::Full(m) => m.resident_count(),
        }
    }
}

/// Live state of one tenant: a few hundred bytes, streams included.
struct TenantState {
    id: u32,
    quota: u32,
    priority: u8,
    /// The trace recipe; taken when the cursor is built at first
    /// activation.
    spec: Option<TraceSpec>,
    cursor: Option<TraceCursor>,
    /// A faulted reference awaiting re-execution after its fetch.
    pending: Option<PageNo>,
    memory: Memory,
    /// Parity-mode replacement policy; taken at first activation.
    replacer: Option<Box<dyn Replacer>>,
    len: u64,
    executed: u64,
    faults: u64,
    finished_at: Option<Cycles>,
    /// Cached working-set estimate (pages) from the admission sample.
    est_ws: Option<u32>,
    /// The allotment granted at (re-)admission.
    allot_base: u32,
    /// The current allotment (the ladder may have shrunk it).
    allot: u32,
    active: bool,
    rejected_once: bool,
    ladder_pos: u8,
    recent_refs: u32,
    recent_faults: u32,
}

/// Per-tenant results.
#[derive(Clone, Copy, Debug)]
pub struct TenantReport {
    /// The tenant.
    pub id: u32,
    /// References executed.
    pub references: u64,
    /// Demand faults taken.
    pub faults: u64,
    /// Completion time.
    pub finished_at: Cycles,
}

/// Whole-run results.
#[derive(Clone, Debug)]
pub struct EventReport {
    /// Per-tenant reports, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Total time the processor executed references.
    pub cpu_busy: Cycles,
    /// Time the last tenant finished.
    pub makespan: Cycles,
    /// References executed across the population.
    pub references: u64,
    /// Demand faults across the population.
    pub faults: u64,
    /// Peak number of concurrently active tenants.
    pub peak_active: usize,
    /// Activations (re-admissions after swap-out included).
    pub admissions: u64,
    /// Tenants the working-set gate deferred at least once.
    pub admission_rejects: u64,
    /// Swap-outs taken by the degradation ladder's shed-load rung.
    pub deactivations: u64,
    /// Degradation-ladder rungs climbed in total.
    pub ladder_steps: u64,
    /// Mean working-set estimate over the tenants the controller
    /// sampled (0 when no estimates were taken).
    pub mean_ws_estimate: f64,
}

impl EventReport {
    /// Fraction of the makespan the processor was executing.
    #[must_use]
    pub fn cpu_utilization(&self) -> f64 {
        if self.makespan == Cycles::ZERO {
            0.0
        } else {
            self.cpu_busy.as_nanos() as f64 / self.makespan.as_nanos() as f64
        }
    }

    /// References executed per simulated second — the population's
    /// virtual throughput (this is what collapses under thrashing).
    #[must_use]
    pub fn refs_per_second(&self) -> f64 {
        if self.makespan == Cycles::ZERO {
            0.0
        } else {
            self.references as f64 / (self.makespan.as_nanos() as f64 / 1e9)
        }
    }

    /// Faults per executed reference.
    #[must_use]
    pub fn fault_rate(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.faults as f64 / self.references as f64
        }
    }
}

/// The event-driven simulator. Construct, then [`EventSim::run`].
pub struct EventSim {
    cfg: SimConfig,
    policy: AdmissionPolicy,
    lc: LoadControlCfg,
    frames: usize,
    tenants: Vec<TenantState>,
}

impl EventSim {
    /// Builds the simulator over `frames` pooled page frames with
    /// compact per-tenant resident sets (LRU).
    #[must_use]
    pub fn new(
        cfg: SimConfig,
        frames: usize,
        policy: AdmissionPolicy,
        lc: LoadControlCfg,
        specs: Vec<TenantSpec>,
    ) -> EventSim {
        Self::build(cfg, frames, policy, lc, specs, None::<fn(&TenantSpec) -> _>)
    }

    /// Parity-mode constructor: every tenant pages through a full
    /// [`PagedMemory`] whose replacement policy `build` supplies —
    /// the configuration the property tests run against
    /// [`crate::sim::MultiprogramSim`] under [`AdmissionPolicy::Fixed`].
    #[must_use]
    pub fn with_full_memory(
        cfg: SimConfig,
        frames: usize,
        policy: AdmissionPolicy,
        lc: LoadControlCfg,
        specs: Vec<TenantSpec>,
        build: impl Fn(&TenantSpec) -> Box<dyn Replacer>,
    ) -> EventSim {
        Self::build(cfg, frames, policy, lc, specs, Some(build))
    }

    fn build(
        cfg: SimConfig,
        frames: usize,
        policy: AdmissionPolicy,
        lc: LoadControlCfg,
        specs: Vec<TenantSpec>,
        replacers: Option<impl Fn(&TenantSpec) -> Box<dyn Replacer>>,
    ) -> EventSim {
        let tenants = specs
            .into_iter()
            .map(|s| {
                let replacer = replacers.as_ref().map(|f| f(&s));
                let len = s.trace.len();
                TenantState {
                    id: s.id,
                    quota: s.quota.max(1) as u32,
                    priority: s.priority,
                    spec: Some(s.trace),
                    cursor: None,
                    pending: None,
                    memory: Memory::Idle,
                    replacer,
                    len,
                    executed: 0,
                    faults: 0,
                    finished_at: None,
                    est_ws: None,
                    allot_base: 0,
                    allot: 0,
                    active: false,
                    rejected_once: false,
                    ladder_pos: 0,
                    recent_refs: 0,
                    recent_faults: 0,
                }
            })
            .collect();
        EventSim {
            cfg,
            policy,
            lc,
            frames: frames.max(1),
            tenants,
        }
    }

    /// Runs the population to completion, emitting probe events into
    /// `probe` (pass a `NullProbe` for a silent run).
    ///
    /// # Errors
    ///
    /// Propagates paging errors from full-memory tenants (impossible
    /// without pinning); compact resident sets cannot fail.
    #[allow(clippy::too_many_lines)]
    pub fn run<P: Probe>(mut self, probe: &mut P) -> Result<EventReport, CoreError> {
        let cfg = self.cfg;
        let lc = self.lc;
        let policy = self.policy;
        let frames = self.frames;

        let mut clock = VClock::new();
        let mut cpu_busy = Cycles::ZERO;
        // Global reference time: executed references across tenants.
        let mut gvt: VirtualTime = 0;
        let mut ready: VecDeque<u32> = VecDeque::new();
        // THE event queue: `FetchDone` completions keyed by (virtual
        // time in nanoseconds, tenant) — the only future the simulator
        // ever has to wait for, so idle time is one heap pop, not a
        // step loop.
        let mut events: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        // Next-free instants of the transfer channels (empty = ample).
        let mut channels: Vec<u64> = vec![0; cfg.fetch_channels.unwrap_or(0)];
        let mut shed = ShedBudget::new(u32::try_from(lc.shed_budget).unwrap_or(u32::MAX));

        let mut pool_used: usize = 0;
        let mut active_count: usize = 0;
        let mut peak_active: usize = 0;
        let mut admissions: u64 = 0;
        let mut rejects: u64 = 0;
        let mut deactivations: u64 = 0;
        let mut ladder_steps: u64 = 0;
        let mut ws_est_sum: u64 = 0;
        let mut ws_est_count: u64 = 0;

        for t in self.tenants.iter_mut().filter(|t| t.len == 0) {
            t.finished_at = Some(Cycles::ZERO);
        }
        // Backlog: higher priority first, ties in tenant order.
        let mut order: Vec<u32> = (0..self.tenants.len() as u32)
            .filter(|&i| self.tenants[i as usize].len > 0)
            .collect();
        order.sort_by_key(|&i| (Reverse(self.tenants[i as usize].priority), i));
        let mut backlog: VecDeque<u32> = order.into();
        // Open admission equipartitions the pool across the population.
        let equi = match policy {
            AdmissionPolicy::Open => (frames / backlog.len().max(1)).max(1),
            _ => 0,
        };

        loop {
            // Admission review: move backlog tenants in while the
            // policy allows.
            while let Some(&cand) = backlog.front() {
                let ci = cand as usize;
                let allot = match policy {
                    AdmissionPolicy::Fixed => self.tenants[ci].quota as usize,
                    AdmissionPolicy::Open => equi.min(self.tenants[ci].quota as usize),
                    AdmissionPolicy::WorkingSet => {
                        let allot = grant(&mut self.tenants[ci], &lc, probe, clock.stamp(gvt));
                        if pool_used + allot > frames && pool_used > 0 {
                            let t = &mut self.tenants[ci];
                            if !t.rejected_once {
                                t.rejected_once = true;
                                rejects += 1;
                                probe.emit(
                                    EventKind::AdmissionReject { tenant: t.id },
                                    clock.stamp(gvt),
                                );
                            }
                            break;
                        }
                        allot
                    }
                };
                backlog.pop_front();
                let t = &mut self.tenants[ci];
                if let Some(est) = t.est_ws {
                    if !t.active && t.allot == 0 {
                        // First activation of a sampled tenant:
                        // account its estimate in the report mean.
                        ws_est_sum += u64::from(est);
                        ws_est_count += 1;
                    }
                }
                activate(t, allot, probe, clock.stamp(gvt));
                pool_used += allot;
                active_count += 1;
                admissions += 1;
                peak_active = peak_active.max(active_count);
                ready.push_back(cand);
            }

            if ready.is_empty() {
                if let Some(&Reverse((wake, _))) = events.peek() {
                    // Idle processor: jump straight to the next event.
                    clock.advance_to(Cycles::from_nanos(wake));
                    while let Some(&Reverse((w, j))) = events.peek() {
                        if w <= clock.nanos() {
                            events.pop();
                            ready.push_back(j);
                        } else {
                            break;
                        }
                    }
                    continue;
                }
                if backlog.is_empty() {
                    break; // population drained
                }
                // Admission refused everything while nothing runs:
                // force the front tenant in to preserve progress.
                // Invariant: the surrounding branch checked non-empty.
                #[allow(clippy::expect_used)]
                let cand = backlog.pop_front().expect("non-empty backlog");
                let ci = cand as usize;
                let allot = match policy {
                    AdmissionPolicy::Fixed => self.tenants[ci].quota as usize,
                    AdmissionPolicy::Open => equi.min(self.tenants[ci].quota as usize),
                    AdmissionPolicy::WorkingSet => {
                        grant(&mut self.tenants[ci], &lc, probe, clock.stamp(gvt))
                    }
                };
                activate(&mut self.tenants[ci], allot, probe, clock.stamp(gvt));
                pool_used += allot;
                active_count += 1;
                admissions += 1;
                peak_active = peak_active.max(active_count);
                ready.push_back(cand);
                continue;
            }

            // Invariant: the empty-ready case continued above.
            #[allow(clippy::expect_used)]
            let i = ready.pop_front().expect("checked non-empty");
            let ii = i as usize;

            // Load control: a tenant whose recent fault rate says it is
            // thrashing climbs the degradation ladder at dispatch.
            if policy == AdmissionPolicy::WorkingSet
                && self.tenants[ii].recent_refs >= lc.thrash_refs
            {
                let t = &mut self.tenants[ii];
                let rate = f64::from(t.recent_faults) / f64::from(t.recent_refs.max(1));
                t.recent_refs = 0;
                t.recent_faults = 0;
                if rate > lc.thrash_fault_rate && !backlog.is_empty() {
                    let rung =
                        MACHINE_LADDER[(t.ladder_pos as usize).min(MACHINE_LADDER.len() - 1)];
                    ladder_steps += 1;
                    probe.emit(EventKind::DegradationStep { step: rung }, clock.stamp(gvt));
                    match rung {
                        DegradationStep::EvictVictims => {
                            // Halve the allotment; freed frames return
                            // to the pool.
                            let new_allot = (t.allot / 2).max(1);
                            let freed = (t.allot - new_allot) as usize;
                            t.allot = new_allot;
                            pool_used -= freed;
                            if let Memory::Compact(ref mut m) = t.memory {
                                m.resize(new_allot as usize);
                            }
                            t.ladder_pos += 1;
                        }
                        DegradationStep::ShedLoad => {
                            if shed.try_shed() {
                                // Swap the tenant out entirely.
                                let resident = t.memory.resident_count() as u32;
                                if let Memory::Compact(ref mut m) = t.memory {
                                    m.clear();
                                }
                                probe.emit(
                                    EventKind::TenantDeactivated {
                                        tenant: t.id,
                                        resident,
                                    },
                                    clock.stamp(gvt),
                                );
                                deactivations += 1;
                                pool_used -= t.allot as usize;
                                t.allot = 0;
                                t.active = false;
                                t.ladder_pos = 0;
                                active_count -= 1;
                                backlog.push_back(i);
                                continue;
                            }
                        }
                        // Coalesce and Compact have nothing to give
                        // back in a paged pool; they mark the climb.
                        _ => t.ladder_pos += 1,
                    }
                }
            }

            // One round-robin quantum.
            let mut blocked_now = false;
            for _ in 0..cfg.quantum_refs {
                let t = &mut self.tenants[ii];
                let page = match t.pending {
                    Some(p) => p,
                    None => {
                        if t.executed >= t.len {
                            break;
                        }
                        match t.cursor.as_mut().and_then(TraceCursor::next_page) {
                            Some(p) => p,
                            None => break,
                        }
                    }
                };
                let vt = t.executed;
                let fault = t.memory.touch(page, vt)?;
                if fault {
                    t.faults += 1;
                    t.recent_faults += 1;
                    // The faulting reference re-executes once the page
                    // arrives; the page is already installed.
                    t.pending = Some(page);
                    probe.emit(EventKind::Fault, clock.stamp(gvt));
                    // Queue for a transfer channel if capacity is
                    // limited: the fetch starts when the least-loaded
                    // channel frees.
                    let start = match channels.iter_mut().min() {
                        Some(slot) => {
                            let start = (*slot).max(clock.nanos());
                            *slot = start + cfg.fetch_time.as_nanos();
                            Cycles::from_nanos(start)
                        }
                        None => clock.now(),
                    };
                    let wake = start + cfg.fetch_time;
                    probe.emit(
                        EventKind::FetchStart {
                            words: cfg.page_size,
                        },
                        clock.stamp_at(start, gvt),
                    );
                    probe.emit(
                        EventKind::FetchDone {
                            words: cfg.page_size,
                        },
                        clock.stamp_at(wake, gvt),
                    );
                    events.push(Reverse((wake.as_nanos(), i)));
                    blocked_now = true;
                    break;
                }
                t.pending = None;
                t.executed += 1;
                t.recent_refs += 1;
                gvt += 1;
                clock.advance(cfg.instr_time);
                cpu_busy += cfg.instr_time;
            }

            // Deliver any fetch completions that arrived while this
            // tenant's quantum ran.
            while let Some(&Reverse((w, j))) = events.peek() {
                if w <= clock.nanos() {
                    events.pop();
                    ready.push_back(j);
                } else {
                    break;
                }
            }
            if blocked_now {
                continue;
            }
            let t = &mut self.tenants[ii];
            if t.executed >= t.len && t.pending.is_none() {
                t.finished_at = Some(clock.now());
                // Release the tenant's state and its pool share.
                t.memory = Memory::Idle;
                t.cursor = None;
                t.active = false;
                pool_used -= t.allot as usize;
                t.allot = 0;
                active_count -= 1;
            } else {
                ready.push_back(i);
            }
        }

        let makespan = clock.now();
        let mut references = 0u64;
        let mut faults = 0u64;
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                references += t.executed;
                faults += t.faults;
                TenantReport {
                    id: t.id,
                    references: t.executed,
                    faults: t.faults,
                    finished_at: t.finished_at.unwrap_or(makespan),
                }
            })
            .collect();
        Ok(EventReport {
            tenants,
            cpu_busy,
            makespan,
            references,
            faults,
            peak_active,
            admissions,
            admission_rejects: rejects,
            deactivations,
            ladder_steps,
            mean_ws_estimate: if ws_est_count == 0 {
                0.0
            } else {
                ws_est_sum as f64 / ws_est_count as f64
            },
        })
    }
}

/// Computes (once) and returns the tenant's granted allotment under
/// working-set admission, emitting the `WsEstimate` probe event at
/// first computation.
fn grant<P: Probe>(t: &mut TenantState, lc: &LoadControlCfg, probe: &mut P, at: Stamp) -> usize {
    if t.est_ws.is_none() {
        let sample = t
            .spec
            .as_ref()
            .map(|s| s.sample(lc.ws_sample))
            .unwrap_or_default();
        let est = estimate_ws(&sample, lc.ws_window);
        let allot = pick_allotment(&sample, est, t.quota as usize, lc.target_fault_rate);
        t.est_ws = Some(u32::try_from(est).unwrap_or(u32::MAX));
        t.allot_base = u32::try_from(allot).unwrap_or(u32::MAX);
        probe.emit(
            EventKind::WsEstimate {
                tenant: t.id,
                pages: u32::try_from(est).unwrap_or(u32::MAX),
            },
            at,
        );
    }
    (t.allot_base as usize).max(1)
}

/// Activates a tenant with `allot` frames: builds its cursor and
/// resident set on first activation, resizes them on re-admission, and
/// emits the `TenantAdmitted` probe event.
fn activate<P: Probe>(t: &mut TenantState, allot: usize, probe: &mut P, at: Stamp) {
    let allot = allot.max(1);
    t.allot = u32::try_from(allot).unwrap_or(u32::MAX);
    if t.allot_base == 0 {
        t.allot_base = t.allot;
    }
    if t.cursor.is_none() {
        if let Some(spec) = t.spec.take() {
            t.cursor = Some(spec.into_cursor());
        }
    }
    match t.memory {
        Memory::Idle => {
            t.memory = match t.replacer.take() {
                Some(r) => Memory::Full(Box::new(PagedMemory::new(allot, r))),
                None => Memory::Compact(CompactLru::new(allot)),
            };
        }
        Memory::Compact(ref mut m) => {
            m.resize(allot);
        }
        Memory::Full(_) => {}
    }
    t.active = true;
    t.ladder_pos = 0;
    t.recent_refs = 0;
    t.recent_faults = 0;
    probe.emit(
        EventKind::TenantAdmitted {
            tenant: t.id,
            frames: t.allot,
        },
        at,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_probe::{CountingProbe, NullProbe};
    use dsa_trace::refstring::RefStringCfg;

    fn cfg(channels: Option<usize>) -> SimConfig {
        SimConfig {
            instr_time: Cycles::from_micros(10),
            fetch_time: Cycles::from_millis(2),
            page_size: 512,
            quantum_refs: 20,
            fetch_channels: channels,
        }
    }

    fn stream_tenants(n: u32, refs: u64) -> Vec<TenantSpec> {
        (0..n)
            .map(|i| {
                TenantSpec::new(
                    i,
                    TraceSpec::Stream {
                        cfg: RefStringCfg::WorkingSetPhases {
                            pages: 16,
                            set: 6,
                            phase_len: 200,
                        },
                        write_fraction: 0.0,
                        seed: u64::from(i) + 1,
                        len: refs,
                    },
                    16,
                )
            })
            .collect()
    }

    fn run(policy: AdmissionPolicy, n: u32, frames: usize) -> EventReport {
        EventSim::new(
            cfg(Some(2)),
            frames,
            policy,
            LoadControlCfg::default(),
            stream_tenants(n, 800),
        )
        .run(&mut NullProbe)
        .expect("compact sets cannot fail")
    }

    #[test]
    fn every_tenant_completes_under_both_policies() {
        for policy in [AdmissionPolicy::Open, AdmissionPolicy::WorkingSet] {
            let r = run(policy, 12, 48);
            assert_eq!(r.tenants.len(), 12);
            for t in &r.tenants {
                assert_eq!(t.references, 800, "{policy:?} tenant {}", t.id);
                assert!(t.finished_at <= r.makespan);
            }
            assert_eq!(r.references, 12 * 800);
        }
    }

    #[test]
    fn working_set_admission_beats_open_under_overcommit() {
        // 16 tenants of ~7-page working sets over 24 frames: open
        // admission gives everyone 1 frame and thrashes; the gate runs
        // a few at a time.
        let open = run(AdmissionPolicy::Open, 16, 24);
        let ws = run(AdmissionPolicy::WorkingSet, 16, 24);
        assert!(ws.peak_active < open.peak_active);
        assert!(
            ws.faults * 2 < open.faults,
            "admission control must cut faults sharply: {} vs {}",
            ws.faults,
            open.faults
        );
        assert!(
            ws.refs_per_second() > 2.0 * open.refs_per_second(),
            "throughput must collapse without the gate: {} vs {}",
            ws.refs_per_second(),
            open.refs_per_second()
        );
    }

    #[test]
    fn ample_frames_make_the_policies_agree_on_faults() {
        let open = run(AdmissionPolicy::Open, 6, 6 * 16);
        let ws = run(AdmissionPolicy::WorkingSet, 6, 6 * 16);
        // With a full quota each under Open and estimates under WS,
        // neither regime steals frames; both see only per-phase faults.
        assert!(open.fault_rate() < 0.2);
        assert!(ws.fault_rate() < 0.2);
    }

    #[test]
    fn probe_events_reconcile_with_the_report() {
        let mut probe = CountingProbe::new();
        let r = EventSim::new(
            cfg(Some(2)),
            24,
            AdmissionPolicy::WorkingSet,
            LoadControlCfg::default(),
            stream_tenants(10, 600),
        )
        .run(&mut probe)
        .expect("compact sets cannot fail");
        assert_eq!(probe.faults, r.faults);
        assert_eq!(probe.fetch_starts, r.faults);
        assert_eq!(probe.fetches, r.faults);
        assert_eq!(probe.tenants_admitted, r.admissions);
        assert_eq!(probe.tenants_deactivated, r.deactivations);
        assert_eq!(probe.degradation_steps, r.ladder_steps);
        assert!(probe.ws_estimates >= 1);
    }

    #[test]
    fn oversized_tenant_is_force_admitted() {
        // One tenant whose estimate exceeds the pool must still run.
        let specs = stream_tenants(1, 300);
        let r = EventSim::new(
            cfg(None),
            2,
            AdmissionPolicy::WorkingSet,
            LoadControlCfg::default(),
            specs,
        )
        .run(&mut NullProbe)
        .expect("compact sets cannot fail");
        assert_eq!(r.tenants[0].references, 300);
    }

    #[test]
    fn empty_population_and_empty_traces() {
        let r = EventSim::new(
            cfg(None),
            8,
            AdmissionPolicy::Open,
            LoadControlCfg::default(),
            vec![],
        )
        .run(&mut NullProbe)
        .expect("compact sets cannot fail");
        assert_eq!(r.makespan, Cycles::ZERO);
        assert_eq!(r.refs_per_second(), 0.0);

        let empty = TenantSpec::new(0, TraceSpec::Pages(vec![]), 4);
        let r = EventSim::new(
            cfg(None),
            8,
            AdmissionPolicy::Open,
            LoadControlCfg::default(),
            vec![empty],
        )
        .run(&mut NullProbe)
        .expect("compact sets cannot fail");
        assert_eq!(r.tenants[0].references, 0);
        assert_eq!(r.tenants[0].finished_at, Cycles::ZERO);
    }

    #[test]
    fn quota_capped_thrashers_walk_the_ladder_to_swap_out() {
        // Quota 1 pins every allotment below the ~7-page working set,
        // so admitted tenants thrash no matter what admission decided;
        // with a standing backlog the dispatcher must climb the ladder
        // and reach the shed-load rung (swap-out), and the swapped
        // tenants must still finish after re-admission.
        let specs: Vec<TenantSpec> = (0..10)
            .map(|i| {
                TenantSpec::new(
                    i,
                    TraceSpec::Stream {
                        cfg: RefStringCfg::WorkingSetPhases {
                            pages: 16,
                            set: 6,
                            phase_len: 200,
                        },
                        write_fraction: 0.0,
                        seed: u64::from(i) + 1,
                        len: 600,
                    },
                    1,
                )
            })
            .collect();
        let mut probe = CountingProbe::new();
        let r = EventSim::new(
            cfg(Some(2)),
            4,
            AdmissionPolicy::WorkingSet,
            LoadControlCfg::default(),
            specs,
        )
        .run(&mut probe)
        .expect("compact sets cannot fail");
        assert!(
            r.ladder_steps > 0,
            "thrashing tenants must climb the ladder"
        );
        assert!(r.deactivations > 0, "the final rung must swap tenants out");
        assert_eq!(probe.tenants_deactivated, r.deactivations);
        assert!(
            r.admissions > 10,
            "swapped-out tenants re-admit: {} admissions",
            r.admissions
        );
        for t in &r.tenants {
            assert_eq!(t.references, 600, "tenant {} must finish", t.id);
        }
    }

    #[test]
    fn priorities_admit_high_before_low() {
        // Pool fits one tenant at a time; the high-priority tenant must
        // finish first even though it has the higher id.
        let mut specs = stream_tenants(2, 400);
        specs[1].priority = 9;
        let r = EventSim::new(
            cfg(None),
            8,
            AdmissionPolicy::WorkingSet,
            LoadControlCfg::default(),
            specs,
        )
        .run(&mut NullProbe)
        .expect("compact sets cannot fail");
        assert!(
            r.tenants[1].finished_at <= r.tenants[0].finished_at,
            "priority 9 should finish no later: {} vs {}",
            r.tenants[1].finished_at,
            r.tenants[0].finished_at
        );
    }
}
