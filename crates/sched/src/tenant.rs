//! Compact per-tenant state for the population-scale simulator.
//!
//! [`crate::sim::MultiprogramSim`] carries a materialized
//! `Vec<PageNo>` trace, a full [`dsa_paging::paged::PagedMemory`], and
//! a space-time meter per job — fine for a mix of ten, fatal for a
//! population of 100k. A [`TenantSpec`] instead names its reference
//! string by *recipe* ([`TraceSpec::Stream`]: a seedable
//! [`RefStringCfg`] plus a length, drawn one reference at a time in
//! constant memory through `dsa-trace`'s exact-replay streams), and the
//! running state ([`TraceCursor`] plus a
//! [`dsa_paging::compact::CompactLru`] resident-set summary) is a few
//! hundred bytes. Backlogged tenants hold only the spec; the cursor is
//! built at first activation.

use dsa_core::ids::PageNo;
use dsa_trace::refstring::RefStringCfg;
use dsa_trace::stream::{RefStream, RefStringStream};

/// Where a tenant's reference string comes from.
#[derive(Clone, Debug)]
pub enum TraceSpec {
    /// A materialized page-granular trace (small mixes, parity tests).
    Pages(Vec<PageNo>),
    /// A stream recipe: `len` references drawn from
    /// `cfg.stream(write_fraction, seed)`. Constant memory at any
    /// length.
    Stream {
        /// The reference-string model.
        cfg: RefStringCfg,
        /// Write fraction passed to the stream (reads vs writes do not
        /// affect scheduling, but the draw is part of the replay
        /// contract).
        write_fraction: f64,
        /// Stream seed.
        seed: u64,
        /// References in the trace.
        len: u64,
    },
}

impl TraceSpec {
    /// References in the trace.
    #[must_use]
    pub fn len(&self) -> u64 {
        match self {
            TraceSpec::Pages(t) => t.len() as u64,
            TraceSpec::Stream { len, .. } => *len,
        }
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first `n` references, materialized — the sample the load
    /// controller feeds to the working-set estimator and the success
    /// curve. Cheap: `n` is a few hundred, not the trace length.
    #[must_use]
    pub fn sample(&self, n: u64) -> Vec<PageNo> {
        match self {
            TraceSpec::Pages(t) => t[..t.len().min(n as usize)].to_vec(),
            TraceSpec::Stream {
                cfg,
                write_fraction,
                seed,
                len,
            } => cfg
                .stream(*write_fraction, *seed)
                .pages()
                .take((*len).min(n) as usize)
                .collect(),
        }
    }

    /// Builds the draw cursor, consuming the spec's trace storage.
    #[must_use]
    pub(crate) fn into_cursor(self) -> TraceCursor {
        match self {
            TraceSpec::Pages(trace) => TraceCursor::Pages { trace, pos: 0 },
            TraceSpec::Stream {
                cfg,
                write_fraction,
                seed,
                len,
            } => TraceCursor::Stream {
                stream: cfg.stream(write_fraction, seed),
                len,
            },
        }
    }
}

/// One tenant of the population.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Identifier used in reports and probe events.
    pub id: u32,
    /// The tenant's reference string.
    pub trace: TraceSpec,
    /// Upper bound on the tenant's frame allotment.
    pub quota: usize,
    /// Admission priority: higher admits first (ties by id).
    pub priority: u8,
}

impl TenantSpec {
    /// A default-priority tenant.
    #[must_use]
    pub fn new(id: u32, trace: TraceSpec, quota: usize) -> TenantSpec {
        TenantSpec {
            id,
            trace,
            quota: quota.max(1),
            priority: 0,
        }
    }
}

/// The position within a tenant's reference string. Holds either the
/// materialized trace or the live stream; either way `next` yields the
/// reference at the cursor and advances it.
#[derive(Clone, Debug)]
pub(crate) enum TraceCursor {
    Pages { trace: Vec<PageNo>, pos: usize },
    Stream { stream: RefStringStream, len: u64 },
}

impl TraceCursor {
    /// The next reference, or `None` at end of trace.
    pub(crate) fn next_page(&mut self) -> Option<PageNo> {
        match self {
            TraceCursor::Pages { trace, pos } => {
                let p = trace.get(*pos).copied();
                if p.is_some() {
                    *pos += 1;
                }
                p
            }
            TraceCursor::Stream { stream, len } => {
                if RefStream::position(stream) >= *len {
                    return None;
                }
                stream.next().map(|a| PageNo(a.name.value()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_spec_and_pages_spec_agree() {
        let cfg = RefStringCfg::Uniform { pages: 8 };
        let spec = TraceSpec::Stream {
            cfg: cfg.clone(),
            write_fraction: 0.0,
            seed: 7,
            len: 50,
        };
        let materialized: Vec<PageNo> = cfg.stream(0.0, 7).pages().take(50).collect();
        assert_eq!(spec.len(), 50);
        assert_eq!(spec.sample(10), materialized[..10]);
        let mut cursor = spec.into_cursor();
        let mut drawn = Vec::new();
        while let Some(p) = cursor.next_page() {
            drawn.push(p);
        }
        assert_eq!(drawn, materialized);
    }

    #[test]
    fn pages_cursor_stops_at_end() {
        let spec = TraceSpec::Pages(vec![PageNo(1), PageNo(2)]);
        let mut c = spec.into_cursor();
        assert_eq!(c.next_page(), Some(PageNo(1)));
        assert_eq!(c.next_page(), Some(PageNo(2)));
        assert_eq!(c.next_page(), None);
        assert_eq!(c.next_page(), None);
    }

    #[test]
    fn sample_is_clamped_to_the_trace() {
        let spec = TraceSpec::Pages(vec![PageNo(3); 4]);
        assert_eq!(spec.sample(100).len(), 4);
        assert!(!spec.is_empty());
    }
}
