//! The Fenwick order-statistics pass against a naive O(n²) explicit
//! LRU stack, on random and adversarial (cyclic-sweep) reference
//! strings — the distance vector must agree element for element.

use dsa_core::ids::PageNo;
use dsa_stackdist::{lru_distances, Fenwick, INFINITE};
use dsa_trace::refstring::RefStringCfg;
use dsa_trace::rng::Rng64;
use proptest::prelude::*;

/// The textbook implementation the Fenwick pass replaces: keep the
/// stack explicitly, search it linearly, move-to-front on every
/// reference.
fn naive_distances(trace: &[PageNo]) -> Vec<u64> {
    let mut stack: Vec<PageNo> = Vec::new();
    let mut dist = Vec::with_capacity(trace.len());
    for &p in trace {
        match stack.iter().position(|&q| q == p) {
            Some(depth) => {
                dist.push(depth as u64 + 1);
                stack.remove(depth);
            }
            None => dist.push(INFINITE),
        }
        stack.insert(0, p);
    }
    dist
}

proptest! {
    #[test]
    fn fenwick_pass_matches_explicit_stack_on_random_strings(
        raw in prop::collection::vec(0u64..40, 0..1200),
    ) {
        let trace: Vec<PageNo> = raw.into_iter().map(PageNo).collect();
        let got = lru_distances(&trace);
        prop_assert_eq!(got.distances(), &naive_distances(&trace)[..]);
    }

    #[test]
    fn fenwick_pass_matches_explicit_stack_on_cyclic_sweeps(
        pages in 1u64..64,
        len in 1usize..2000,
    ) {
        // The adversarial case: every re-reference sits at maximum
        // depth, so the range count spans almost the whole window.
        let trace = RefStringCfg::SequentialSweep { pages }
            .generate_pages(len, &mut Rng64::new(pages ^ len as u64));
        let got = lru_distances(&trace);
        prop_assert_eq!(got.distances(), &naive_distances(&trace)[..]);
    }

    #[test]
    fn fenwick_prefix_matches_a_counting_array(
        ops in prop::collection::vec((0usize..64, any::<bool>()), 0..300),
    ) {
        // Order-statistics bookkeeping against a plain array: marks and
        // clears in arbitrary interleaving, prefix counts at every step.
        let mut tree = Fenwick::new(64);
        let mut marks = [0u64; 64];
        for (pos, set) in ops {
            if set {
                tree.mark(pos);
                marks[pos] += 1;
            } else if marks[pos] > 0 {
                tree.clear(pos);
                marks[pos] -= 1;
            }
        }
        let mut running = 0;
        for (pos, &m) in marks.iter().enumerate() {
            running += m;
            prop_assert_eq!(tree.prefix(pos), running, "prefix at {}", pos);
        }
    }
}
