//! One-pass Mattson stack-distance evaluation.
//!
//! Belady-style studies — fault rate as a function of core size, the
//! curves of §Replacement Strategies — naively cost one full trace
//! replay per `(policy, frame count)` cell. For *stack algorithms* the
//! whole size axis collapses into a single traversal: a policy has the
//! **inclusion property** when the memory content at `C` frames is
//! always a subset of the content at `C + 1` frames, so the resident
//! sets at every size form a single nested *stack* and each reference
//! has one well-defined **stack distance** — the smallest memory size at
//! which it would have hit. A reference faults at `C` frames iff its
//! distance exceeds `C`, so the histogram of distances *is* the entire
//! faults-vs-size curve (Mattson, Gecsei, Slutz & Traiger 1970).
//!
//! Two exact engines:
//!
//! * [`lru::lru_distances`] — LRU distance is the number of distinct
//!   pages touched since the previous reference to the same page,
//!   computed in O(log n) per reference with a [`fenwick::Fenwick`]
//!   order-statistics tree over reference stamps;
//! * [`opt::opt_distances`] — Belady's MIN/OPT is also a stack
//!   algorithm (priority = next use time, precomputed by
//!   [`dsa_paging::replacement::min::next_use_times`]); the stack is
//!   repaired top-down by priority on every reference.
//!
//! For traces too long to materialize, [`streaming::StreamingLru`]
//! computes the same LRU curve from any page iterator in O(distinct
//! pages) memory (stamp compaction keeps the Fenwick tree bounded);
//! OPT stays batch-only, since its priorities need a backward pass.
//!
//! Which of this workspace's policies qualify: LRU and MIN do. FIFO and
//! Clock do **not** (no inclusion — Belady's anomaly, reproduced in the
//! `dsa-paging` tests, is the proof by counterexample), Random and
//! class-random are stochastic, the ATLAS learning program's period
//! estimates depend on its own eviction history, and aged LFU's
//! periodic halving ties its frequency ranks to fault timing. Those
//! policies keep their one-run-per-size sweeps.
//!
//! The result of a pass is a [`success::StackDistances`] (per-reference
//! distances, so fault *positions* at any size can be replayed into
//! probes) and its [`success::SuccessFunction`] — exact fault counts
//! for **all** frame counts simultaneously. Parity with the
//! `PagedMemory` simulator, fault count for fault count at every size,
//! is property-tested in `tests/properties_stackdist.rs`.

pub mod fenwick;
pub mod lru;
pub mod opt;
pub mod streaming;
pub mod success;

pub use fenwick::Fenwick;
pub use lru::{lru_distances, lru_success};
pub use opt::{opt_distances, opt_success};
pub use streaming::{lru_success_streamed, StreamingLru};
pub use success::{StackDistances, SuccessFunction, INFINITE};
