//! A Fenwick (binary-indexed) tree used as an order-statistics
//! structure over reference stamps.
//!
//! The LRU distance pass marks, for every currently-seen page, the
//! position of its most recent reference; the stack depth of a
//! re-reference is then a *range count* of marks between the previous
//! and the current position. A Fenwick tree holds those marks and
//! answers prefix counts in O(log n), which is what turns the
//! per-reference distance into a one-pass O(n log n) sweep.

/// A binary-indexed tree over `n` positions holding small counts.
#[derive(Clone, Debug)]
pub struct Fenwick {
    /// 1-based implicit tree; `tree[i]` covers `lowbit(i)` positions.
    tree: Vec<u64>,
}

impl Fenwick {
    /// An all-zero tree over positions `0..n`.
    #[must_use]
    pub fn new(n: usize) -> Fenwick {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Zeroes the tree and resizes it to cover positions `0..n`,
    /// reusing the existing buffer. Equivalent to `*self =
    /// Fenwick::new(n)` without the allocation when `n` fits the
    /// buffer's capacity — the streaming engine calls this on every
    /// stamp compaction, so the rebuild is a memset, not a malloc.
    pub fn reset(&mut self, n: usize) {
        self.tree.clear();
        self.tree.resize(n + 1, 0);
    }

    /// Number of positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Whether the tree covers no positions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Marks position `pos` (increments its count).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn mark(&mut self, pos: usize) {
        let mut i = pos + 1;
        while i < self.tree.len() {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Unmarks position `pos` (decrements its count).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, via underflow) if the position was not
    /// marked; callers only ever clear marks they set.
    pub fn clear(&mut self, pos: usize) {
        let mut i = pos + 1;
        while i < self.tree.len() {
            self.tree[i] -= 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Count of marks at positions `0..=pos`.
    #[must_use]
    pub fn prefix(&self, pos: usize) -> u64 {
        let mut i = (pos + 1).min(self.tree.len() - 1);
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Count of marks at positions strictly between `lo` and `hi`
    /// (exclusive on both ends).
    #[must_use]
    pub fn between(&self, lo: usize, hi: usize) -> u64 {
        if hi <= lo + 1 {
            return 0;
        }
        self.prefix(hi - 1) - self.prefix(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_counts_marks() {
        let mut f = Fenwick::new(10);
        assert_eq!(f.len(), 10);
        assert!(!f.is_empty());
        for pos in [0, 3, 7, 9] {
            f.mark(pos);
        }
        assert_eq!(f.prefix(0), 1);
        assert_eq!(f.prefix(2), 1);
        assert_eq!(f.prefix(3), 2);
        assert_eq!(f.prefix(9), 4);
        f.clear(3);
        assert_eq!(f.prefix(9), 3);
        assert_eq!(f.prefix(3), 1);
    }

    #[test]
    fn between_is_exclusive_on_both_ends() {
        let mut f = Fenwick::new(8);
        for pos in 0..8 {
            f.mark(pos);
        }
        assert_eq!(f.between(2, 6), 3); // positions 3, 4, 5
        assert_eq!(f.between(2, 3), 0);
        assert_eq!(f.between(2, 2), 0);
        assert_eq!(f.between(0, 7), 6);
    }

    #[test]
    fn reset_clears_marks_and_resizes_in_place() {
        let mut f = Fenwick::new(8);
        for pos in 0..8 {
            f.mark(pos);
        }
        f.reset(16);
        assert_eq!(f.len(), 16);
        assert_eq!(f.prefix(15), 0);
        f.mark(12);
        assert_eq!(f.prefix(15), 1);
        // Shrinking works too and behaves like a fresh tree.
        f.reset(4);
        assert_eq!(f.len(), 4);
        assert_eq!(f.prefix(3), 0);
    }

    #[test]
    fn empty_tree_is_empty() {
        let f = Fenwick::new(0);
        assert!(f.is_empty());
        assert_eq!(f.prefix(0), 0);
    }
}
