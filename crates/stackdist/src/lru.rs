//! One-pass LRU stack distances.
//!
//! LRU's stack at any instant is the pages in recency order, so the
//! stack depth of a re-reference to page *p* is the number of distinct
//! pages touched since *p*'s previous reference, counting *p* itself.
//! The classic one-pass formulation (Bennett & Kruskal) marks each
//! currently-seen page at the position of its most recent reference;
//! the depth is then one plus the number of marks strictly between the
//! previous and the current reference of *p*, which the
//! [`Fenwick`] order-statistics tree counts in O(log n).

use std::collections::HashMap;

use dsa_core::ids::PageNo;

use crate::fenwick::Fenwick;
use crate::success::{StackDistances, SuccessFunction, INFINITE};

/// Computes the LRU stack distance of every reference in one pass.
#[must_use]
pub fn lru_distances(trace: &[PageNo]) -> StackDistances {
    let mut marks = Fenwick::new(trace.len());
    let mut last: HashMap<PageNo, usize> = HashMap::new();
    let mut dist = Vec::with_capacity(trace.len());
    for (i, &p) in trace.iter().enumerate() {
        match last.insert(p, i) {
            Some(prev) => {
                // Marks strictly between `prev` and `i` are exactly the
                // pages whose most recent reference falls in that window
                // — the pages above *p* in the LRU stack — plus *p*.
                dist.push(marks.between(prev, i) + 1);
                marks.clear(prev);
            }
            None => dist.push(INFINITE),
        }
        marks.mark(i);
    }
    StackDistances::new(dist)
}

/// [`lru_distances`] collapsed to the success function.
#[must_use]
pub fn lru_success(trace: &[PageNo]) -> SuccessFunction {
    lru_distances(trace).success()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(xs: &[u64]) -> Vec<PageNo> {
        xs.iter().map(|&x| PageNo(x)).collect()
    }

    #[test]
    fn textbook_distances() {
        // a b c b a: the stack is [c b a] at the fourth reference, so
        // b re-enters at depth 2 and a at depth 3.
        let d = lru_distances(&pages(&[0, 1, 2, 1, 0]));
        assert_eq!(d.distances(), &[INFINITE, INFINITE, INFINITE, 2, 3][..]);
    }

    #[test]
    fn immediate_rereference_has_distance_one() {
        let d = lru_distances(&pages(&[5, 5, 5]));
        assert_eq!(d.distances(), &[INFINITE, 1, 1][..]);
    }

    #[test]
    fn classic_trace_curve_matches_hand_counts() {
        // 1 2 3 4 1 2 5 1 2 3 4 5 — LRU faults: 3 frames -> 10,
        // 4 frames -> 8, 5 frames -> 5 (all distinct = compulsory).
        let s = lru_success(&pages(&[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]));
        assert_eq!(s.faults(3), 10);
        assert_eq!(s.faults(4), 8);
        assert_eq!(s.faults(5), 5);
        assert_eq!(s.compulsory(), 5);
    }

    #[test]
    fn cyclic_sweep_thrashes_below_capacity() {
        // Sweep of 4 pages under LRU: every reference past the first
        // round has distance 4 — fault everywhere below 4 frames, hit
        // at 4 and above.
        let trace: Vec<PageNo> = (0..20u64).map(|i| PageNo(i % 4)).collect();
        let s = lru_success(&trace);
        assert_eq!(s.faults(3), 20);
        assert_eq!(s.faults(4), 4);
    }
}
