//! Streaming LRU stack distances in memory bounded by the page
//! universe, not the trace length.
//!
//! [`crate::lru::lru_distances`] sizes its [`Fenwick`] tree by the
//! trace length — each reference gets a permanent stamp — so a
//! 10⁸-reference pass costs 800 MB of tree before the distance vector
//! is even counted. But at any instant only the *most recent* stamp of
//! each distinct page is marked: the live marks number at most the
//! page universe. [`StreamingLru`] exploits this with periodic stamp
//! **compaction**: when the stamp cursor reaches the tree's capacity,
//! the live `(page, stamp)` pairs are renumbered `0..live` in stamp
//! order (preserving every between-count) and the tree is rebuilt at
//! `max(128, 2 × live)` — so compaction amortizes to O(1) per
//! reference and the whole engine is O(distinct pages) space.
//!
//! Distances are accumulated directly into a histogram (finite
//! distances never exceed the page universe) and collapsed via
//! [`SuccessFunction::from_histogram`], which is exactly
//! [`SuccessFunction::from_distances`] minus the materialized vector.
//! What is *lost* relative to the batch pass is the per-reference
//! distance vector — fault positions at a chosen size cannot be
//! replayed afterwards. OPT stays batch-only: its priority is next
//! *use* time, which only a backward pass over a materialized trace
//! can know.

use std::collections::HashMap;

use dsa_core::ids::PageNo;

use crate::fenwick::Fenwick;
use crate::success::{SuccessFunction, INFINITE};

/// Minimum Fenwick capacity, so tiny traces don't compact every few
/// references.
const MIN_CAPACITY: usize = 128;

/// A one-pass LRU stack-distance engine with O(distinct pages) memory.
///
/// # Examples
///
/// ```
/// use dsa_core::ids::PageNo;
/// use dsa_stackdist::streaming::StreamingLru;
/// use dsa_stackdist::lru::lru_success;
///
/// let trace: Vec<PageNo> = (0..1000u64).map(|i| PageNo(i % 7)).collect();
/// let mut s = StreamingLru::new();
/// for &p in &trace {
///     s.record(p);
/// }
/// let batch = lru_success(&trace);
/// assert_eq!(s.success().curve(&[1, 4, 7]), batch.curve(&[1, 4, 7]));
/// ```
#[derive(Clone, Debug)]
pub struct StreamingLru {
    /// Marks over *stamps*: bit set at a page's most recent stamp.
    marks: Fenwick,
    /// Most recent stamp of each page seen so far.
    last: HashMap<PageNo, usize>,
    /// Next stamp to assign (== stamps consumed since last compaction).
    cursor: usize,
    /// `hist[d]` = references at finite distance `d`.
    hist: Vec<u64>,
    /// First touches.
    compulsory: u64,
    /// Total references recorded.
    references: u64,
    /// Scratch for compaction's live `(page, stamp)` pairs, reused
    /// across compactions so the steady state allocates nothing.
    scratch: Vec<(PageNo, usize)>,
}

impl Default for StreamingLru {
    fn default() -> StreamingLru {
        StreamingLru::new()
    }
}

impl StreamingLru {
    /// A fresh engine (no references recorded).
    #[must_use]
    pub fn new() -> StreamingLru {
        StreamingLru {
            marks: Fenwick::new(MIN_CAPACITY),
            last: HashMap::new(),
            cursor: 0,
            hist: Vec::new(),
            compulsory: 0,
            references: 0,
            scratch: Vec::new(),
        }
    }

    /// Records one reference and returns its LRU stack distance
    /// ([`INFINITE`] for a first touch) — identical, reference for
    /// reference, to what [`crate::lru::lru_distances`] reports.
    pub fn record(&mut self, p: PageNo) -> u64 {
        if self.cursor == self.marks.len() {
            self.compact();
        }
        let i = self.cursor;
        self.cursor += 1;
        self.references += 1;
        let d = match self.last.insert(p, i) {
            Some(prev) => {
                // Marks strictly between the previous and current
                // stamps are the pages above `p` in the LRU stack.
                let d = self.marks.between(prev, i) + 1;
                self.marks.clear(prev);
                if self.hist.len() <= d as usize {
                    self.hist.resize(d as usize + 1, 0);
                }
                self.hist[d as usize] += 1;
                d
            }
            None => {
                self.compulsory += 1;
                INFINITE
            }
        };
        self.marks.mark(i);
        d
    }

    /// Renumbers the live stamps `0..live` in stamp order and rebuilds
    /// the tree at `max(128, 2 × live)`. Order-preserving renumbering
    /// keeps every future between-count exact; doubling headroom makes
    /// the rebuild amortized O(1) per reference.
    ///
    /// Both compaction buffers are reused: the live pairs land in a
    /// scratch vector that keeps its capacity, and the tree is
    /// [`Fenwick::reset`] in place. Steady-state compaction therefore
    /// allocates nothing, which is most of the streaming engine's
    /// former overhead over the batch pass.
    fn compact(&mut self) {
        self.scratch.clear();
        self.scratch.extend(self.last.iter().map(|(&p, &s)| (p, s)));
        self.scratch.sort_unstable_by_key(|&(_, s)| s);
        let capacity = MIN_CAPACITY.max(2 * self.scratch.len());
        self.marks.reset(capacity);
        for (rank, &(p, _)) in self.scratch.iter().enumerate() {
            self.last.insert(p, rank);
            self.marks.mark(rank);
        }
        self.cursor = self.last.len();
    }

    /// References recorded so far.
    #[must_use]
    pub fn references(&self) -> u64 {
        self.references
    }

    /// Distinct pages seen so far — the memory bound.
    #[must_use]
    pub fn distinct_pages(&self) -> usize {
        self.last.len()
    }

    /// Compulsory (first-touch) faults so far.
    #[must_use]
    pub fn compulsory(&self) -> u64 {
        self.compulsory
    }

    /// The success function over everything recorded so far. Callable
    /// mid-stream: the curve is exact for the prefix consumed.
    #[must_use]
    pub fn success(&self) -> SuccessFunction {
        SuccessFunction::from_histogram(&self.hist, self.compulsory)
    }
}

/// Drains `pages` through a [`StreamingLru`] and returns the curve —
/// the streaming twin of [`crate::lru::lru_success`].
#[must_use]
pub fn lru_success_streamed<I: IntoIterator<Item = PageNo>>(pages: I) -> SuccessFunction {
    let mut s = StreamingLru::new();
    for p in pages {
        s.record(p);
    }
    s.success()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::{lru_distances, lru_success};

    fn pages(xs: &[u64]) -> Vec<PageNo> {
        xs.iter().map(|&x| PageNo(x)).collect()
    }

    #[test]
    fn per_reference_distances_match_batch() {
        let trace = pages(&[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]);
        let batch = lru_distances(&trace);
        let mut s = StreamingLru::new();
        let streamed: Vec<u64> = trace.iter().map(|&p| s.record(p)).collect();
        assert_eq!(streamed, batch.distances());
    }

    #[test]
    fn success_function_matches_batch_across_compactions() {
        // Long enough to force many compactions at MIN_CAPACITY=128.
        let mut x = 12345u64;
        let trace: Vec<PageNo> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                PageNo(x % 97)
            })
            .collect();
        let batch = lru_success(&trace);
        let streamed = lru_success_streamed(trace.iter().copied());
        assert_eq!(streamed.references(), batch.references());
        assert_eq!(streamed.compulsory(), batch.compulsory());
        assert_eq!(streamed.saturation_frames(), batch.saturation_frames());
        for c in 0..=batch.saturation_frames() + 2 {
            assert_eq!(streamed.faults(c), batch.faults(c), "at {c} frames");
        }
    }

    #[test]
    fn memory_is_bounded_by_the_page_universe() {
        let mut s = StreamingLru::new();
        for i in 0..1_000_000u64 {
            s.record(PageNo(i % 50));
        }
        assert_eq!(s.distinct_pages(), 50);
        assert!(
            s.marks.len() <= MIN_CAPACITY.max(100),
            "tree grew to {} stamps",
            s.marks.len()
        );
        // Cyclic sweep of 50 pages: steady-state distance is 50.
        let f = s.success();
        assert_eq!(f.faults(49), 1_000_000);
        assert_eq!(f.faults(50), 50);
    }

    #[test]
    fn mid_stream_curve_is_exact_for_the_prefix() {
        let trace = pages(&[0, 1, 2, 1, 0, 3, 2, 0]);
        let mut s = StreamingLru::new();
        for (i, &p) in trace.iter().enumerate() {
            s.record(p);
            let batch = lru_success(&trace[..=i]);
            assert_eq!(s.success().curve(&[1, 2, 3, 4]), batch.curve(&[1, 2, 3, 4]));
        }
    }
}
