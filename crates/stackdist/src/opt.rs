//! One-pass OPT (Belady MIN) stack distances.
//!
//! MIN is a *priority* stack algorithm: at any instant the page kept in
//! a memory of every size is governed by one priority — the time of
//! next use, sooner is better — so the inclusion property holds and a
//! single priority-ordered stack captures all sizes at once (Mattson,
//! Gecsei, Slutz & Traiger 1970). On a reference to the page at depth
//! Δ the stack is repaired top-down: the referenced page moves to the
//! top, and at each level the candidate needed sooner stays while the
//! other — the page a memory of exactly that size would have evicted —
//! falls toward the hole at Δ.
//!
//! Priorities are the absolute next-use times precomputed by
//! [`dsa_paging::replacement::min::next_use_times`] — the same
//! machinery [`dsa_paging::replacement::min::MinRepl`] simulates with —
//! and they stay valid while a page sits in the stack: a resident
//! page's next use cannot pass without that very reference re-stamping
//! it. Pages never used again carry [`VirtualTime::MAX`]; the
//! tie-break among them is arbitrary *and irrelevant to fault counts*,
//! since a dead page can never cause a future fault, which is also why
//! the curve matches `PagedMemory` + `MinRepl` at every size no matter
//! which dead page that simulation happens to evict.
//!
//! Cost: O(Δ) per reference (O(n·m) worst case over m distinct pages)
//! — the stack repair itself visits every level above the hole, so a
//! sublinear index would not change the bound.

use dsa_core::clock::VirtualTime;
use dsa_core::ids::PageNo;
use dsa_paging::replacement::min::next_use_times;

use crate::success::{StackDistances, SuccessFunction, INFINITE};

/// Computes the OPT stack distance of every reference in one pass over
/// the trace (plus the backward next-use precomputation).
#[must_use]
pub fn opt_distances(trace: &[PageNo]) -> StackDistances {
    let next = next_use_times(trace);
    // Top of stack = index 0. Each entry: (page, its next use time).
    let mut stack: Vec<(PageNo, VirtualTime)> = Vec::new();
    let mut dist = Vec::with_capacity(trace.len());
    for (i, &p) in trace.iter().enumerate() {
        let depth = stack.iter().position(|&(q, _)| q == p);
        let pr = next[i];
        match depth {
            Some(0) => {
                dist.push(1);
                stack[0].1 = pr;
            }
            Some(d) => {
                dist.push(d as u64 + 1);
                repair(&mut stack, (p, pr), d);
            }
            None => {
                dist.push(INFINITE);
                if stack.is_empty() {
                    stack.push((p, pr));
                } else {
                    // Grow by one slot; the repair cascade fills it with
                    // the page every size would have evicted last.
                    let d = stack.len();
                    stack.push((p, VirtualTime::MAX));
                    repair(&mut stack, (p, pr), d);
                }
            }
        }
    }
    StackDistances::new(dist)
}

/// Places `top` at the stack top and repairs levels `1..hole` by
/// priority: at each level the sooner-needed candidate stays, the
/// later-needed one falls; the final faller fills the hole at `hole`
/// (the referenced page's old slot, or the fresh bottom slot on a
/// first touch).
fn repair(stack: &mut [(PageNo, VirtualTime)], top: (PageNo, VirtualTime), hole: usize) {
    let mut falling = stack[0];
    stack[0] = top;
    for level in stack.iter_mut().take(hole).skip(1) {
        // A memory of exactly this size keeps the page needed sooner
        // and evicts the other; `falling` carries the running victim.
        if level.1 >= falling.1 {
            std::mem::swap(level, &mut falling);
        }
    }
    stack[hole] = falling;
}

/// [`opt_distances`] collapsed to the success function.
#[must_use]
pub fn opt_success(trace: &[PageNo]) -> SuccessFunction {
    opt_distances(trace).success()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(xs: &[u64]) -> Vec<PageNo> {
        xs.iter().map(|&x| PageNo(x)).collect()
    }

    #[test]
    fn belady_published_optimum_on_the_classic_trace() {
        // 1 2 3 4 1 2 5 1 2 3 4 5: OPT faults 7 at 3 frames, 6 at 4.
        let s = opt_success(&pages(&[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]));
        assert_eq!(s.faults(3), 7);
        assert_eq!(s.faults(4), 6);
        assert_eq!(s.faults(5), 5);
        assert_eq!(s.compulsory(), 5);
    }

    #[test]
    fn opt_never_exceeds_lru_at_any_size() {
        use crate::lru::lru_success;
        let trace: Vec<PageNo> = (0..500u64).map(|i| PageNo((i * 17 + i / 7) % 23)).collect();
        let opt = opt_success(&trace);
        let lru = lru_success(&trace);
        for c in 1..=24 {
            assert!(
                opt.faults(c) <= lru.faults(c),
                "OPT beat by LRU at {c} frames"
            );
        }
    }

    #[test]
    fn sweep_curve_decreases_with_size_under_opt() {
        // Cyclic sweep over 4 pages: OPT holds sweep faults to the
        // minimum — with C frames it faults only on (pages - C + 1) of
        // the pages per lap, hitting on the rest.
        let trace: Vec<PageNo> = (0..24u64).map(|i| PageNo(i % 4)).collect();
        let s = opt_success(&trace);
        // 3 frames: one fault per lap after warm-up plus compulsory.
        assert_eq!(s.faults(4), 4);
        assert!(s.faults(3) < s.faults(2));
        assert!(s.faults(2) < s.faults(1));
    }

    #[test]
    fn hit_at_top_of_stack_keeps_distance_one() {
        let s = opt_distances(&pages(&[7, 7, 7]));
        assert_eq!(s.distances(), &[INFINITE, 1, 1][..]);
    }
}
