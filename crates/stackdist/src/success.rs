//! Results of a stack-distance pass: per-reference distances and the
//! success function they induce.

use dsa_core::clock::VirtualTime;

/// The stack distance of a first touch: no memory size hits it.
pub const INFINITE: u64 = u64::MAX;

/// Per-reference stack distances, in trace order.
///
/// Distance `d` means the reference hits in any memory of at least `d`
/// frames and faults in any smaller one; [`INFINITE`] marks first
/// touches (compulsory faults at every size). Keeping the full vector
/// — not just its histogram — lets callers recover the exact fault
/// *positions* at any size ([`StackDistances::fault_times`]), e.g. to
/// replay the fault stream of a chosen size into a latency probe.
#[derive(Clone, Debug)]
pub struct StackDistances {
    dist: Vec<u64>,
}

impl StackDistances {
    /// Wraps a distance vector (one entry per reference).
    #[must_use]
    pub fn new(dist: Vec<u64>) -> StackDistances {
        StackDistances { dist }
    }

    /// Number of references.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// Whether the trace was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// The distances, in trace order.
    #[must_use]
    pub fn distances(&self) -> &[u64] {
        &self.dist
    }

    /// Reference times (= trace positions) that fault in a memory of
    /// `frames` frames: exactly those with distance `> frames`.
    pub fn fault_times(&self, frames: usize) -> impl Iterator<Item = VirtualTime> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter(move |&(_, &d)| d > frames as u64)
            .map(|(i, _)| i as VirtualTime)
    }

    /// Collapses the distances into the success function.
    #[must_use]
    pub fn success(&self) -> SuccessFunction {
        SuccessFunction::from_distances(&self.dist)
    }
}

/// Exact fault counts for **all** frame counts at once — Mattson's
/// success function, stored as a cumulative fault curve.
#[derive(Clone, Debug)]
pub struct SuccessFunction {
    references: u64,
    /// `faults_at[c]` = faults in a memory of `c` frames, for
    /// `c <= max_finite_distance`; beyond the table only compulsory
    /// faults remain.
    faults_at: Vec<u64>,
    /// First touches: faults at every size.
    compulsory: u64,
}

impl SuccessFunction {
    /// Builds the curve from per-reference distances ([`INFINITE`] for
    /// first touches).
    #[must_use]
    pub fn from_distances(dist: &[u64]) -> SuccessFunction {
        let mut compulsory = 0u64;
        let max_finite = dist
            .iter()
            .filter(|&&d| d != INFINITE)
            .max()
            .copied()
            .unwrap_or(0) as usize;
        // hist[d] = references at finite distance d (1-based).
        let mut hist = vec![0u64; max_finite + 1];
        for &d in dist {
            if d == INFINITE {
                compulsory += 1;
            } else {
                hist[d as usize] += 1;
            }
        }
        // faults(c) = compulsory + #{finite d > c}: a suffix sum.
        let mut faults_at = vec![0u64; max_finite + 1];
        let mut beyond = 0u64;
        for c in (0..=max_finite).rev() {
            faults_at[c] = compulsory + beyond;
            beyond += hist[c];
        }
        SuccessFunction {
            references: dist.len() as u64,
            faults_at,
            compulsory,
        }
    }

    /// Builds the curve from a distance *histogram* (`hist[d]` =
    /// references at finite distance `d`) plus the compulsory count —
    /// the shape a streaming pass accumulates without ever holding the
    /// per-reference vector. Trailing zero buckets are ignored, so the
    /// result is identical to [`SuccessFunction::from_distances`] over
    /// the distances the histogram summarizes.
    #[must_use]
    pub fn from_histogram(hist: &[u64], compulsory: u64) -> SuccessFunction {
        let max_finite = hist.iter().rposition(|&n| n > 0).unwrap_or(0);
        let mut faults_at = vec![0u64; max_finite + 1];
        let mut beyond = 0u64;
        for c in (0..=max_finite).rev() {
            faults_at[c] = compulsory + beyond;
            beyond += hist.get(c).copied().unwrap_or(0);
        }
        SuccessFunction {
            references: compulsory + hist.iter().sum::<u64>(),
            faults_at,
            compulsory,
        }
    }

    /// References in the trace.
    #[must_use]
    pub fn references(&self) -> u64 {
        self.references
    }

    /// Compulsory (first-touch) faults — the floor of the curve.
    #[must_use]
    pub fn compulsory(&self) -> u64 {
        self.compulsory
    }

    /// Smallest frame count at which only compulsory faults remain.
    #[must_use]
    pub fn saturation_frames(&self) -> usize {
        self.faults_at.len().saturating_sub(1)
    }

    /// Exact fault count in a memory of `frames` frames.
    #[must_use]
    pub fn faults(&self, frames: usize) -> u64 {
        match self.faults_at.get(frames) {
            Some(&f) => f,
            // Beyond the largest finite distance every reference after
            // its first touch hits.
            None => self.compulsory,
        }
    }

    /// Faults per reference at `frames` frames, matching
    /// `PagingStats::fault_rate` (0 on an empty trace).
    #[must_use]
    pub fn fault_rate(&self, frames: usize) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.faults(frames) as f64 / self.references as f64
        }
    }

    /// The fault curve sampled at `frame_counts`.
    #[must_use]
    pub fn curve(&self, frame_counts: &[usize]) -> Vec<u64> {
        frame_counts.iter().map(|&c| self.faults(c)).collect()
    }

    /// The fault-rate curve sampled at `frame_counts`.
    #[must_use]
    pub fn rate_curve(&self, frame_counts: &[usize]) -> Vec<f64> {
        frame_counts.iter().map(|&c| self.fault_rate(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_a_suffix_sum_over_the_histogram() {
        // Distances: 1, 2, 2, 3, ∞, ∞.
        let d = vec![1, 2, 2, 3, INFINITE, INFINITE];
        let s = SuccessFunction::from_distances(&d);
        assert_eq!(s.references(), 6);
        assert_eq!(s.compulsory(), 2);
        assert_eq!(s.faults(0), 6);
        assert_eq!(s.faults(1), 5);
        assert_eq!(s.faults(2), 3);
        assert_eq!(s.faults(3), 2);
        assert_eq!(s.faults(100), 2);
        assert_eq!(s.curve(&[1, 2, 3]), vec![5, 3, 2]);
        assert_eq!(s.saturation_frames(), 3);
    }

    #[test]
    fn fault_rate_divides_by_references() {
        let s = SuccessFunction::from_distances(&[1, INFINITE]);
        assert!((s.fault_rate(1) - 0.5).abs() < 1e-12);
        let empty = SuccessFunction::from_distances(&[]);
        assert_eq!(empty.fault_rate(4), 0.0);
        assert_eq!(empty.faults(4), 0);
    }

    #[test]
    fn fault_times_are_positions_with_larger_distance() {
        let sd = StackDistances::new(vec![INFINITE, 1, 3, 2, INFINITE]);
        assert_eq!(sd.fault_times(2).collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(sd.fault_times(3).collect::<Vec<_>>(), vec![0, 4]);
        assert_eq!(sd.len(), 5);
        assert!(!sd.is_empty());
        assert_eq!(sd.success().faults(2), 3);
    }
}
