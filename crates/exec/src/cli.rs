//! The shared experiment-binary flags.
//!
//! Every `exp_*` binary accepts `--jobs N` (or `--jobs=N`): the number
//! of worker threads the grid fans across. The default is all hardware
//! threads; `--jobs 1` forces the inline sequential path, whose output
//! every parallel width must reproduce byte for byte.
//!
//! The binaries that can dump a probe event stream (E4, E5) share
//! `--trace-out <path>` (or `--trace-out=<path>`) the same way, so no
//! binary hand-rolls its own flag loop.

use std::path::PathBuf;

use crate::pool::available_jobs;

/// Extracts a `--jobs` value from an argument list, ignoring every
/// other argument (binaries parse their own flags).
///
/// Returns `Ok(None)` when the flag is absent.
///
/// # Errors
///
/// Returns a message when the flag is present without a value, the
/// value is not a number, or the value is zero.
pub fn parse_jobs<I>(args: I) -> Result<Option<usize>, String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let value = if a == "--jobs" {
            args.next()
                .ok_or_else(|| "--jobs requires a value".to_owned())?
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            v.to_owned()
        } else {
            continue;
        };
        let n: usize = value
            .parse()
            .map_err(|_| format!("--jobs: not a number: {value}"))?;
        if n == 0 {
            return Err("--jobs must be at least 1".to_owned());
        }
        return Ok(Some(n));
    }
    Ok(None)
}

/// The `--jobs` value from the process arguments, defaulting to all
/// hardware threads. Exits with status 2 on a malformed flag, like the
/// binaries' other flag parsers.
#[must_use]
pub fn jobs_from_env() -> usize {
    match parse_jobs(std::env::args().skip(1)) {
        Ok(explicit) => explicit.unwrap_or_else(available_jobs),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// Extracts a `--trace-out` path from an argument list, ignoring every
/// other argument.
///
/// Returns `Ok(None)` when the flag is absent.
///
/// # Errors
///
/// Returns a message when the flag is present without a path.
pub fn parse_trace_out<I>(args: I) -> Result<Option<PathBuf>, String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let value = if a == "--trace-out" {
            args.next()
                .ok_or_else(|| "--trace-out requires a path".to_owned())?
        } else if let Some(v) = a.strip_prefix("--trace-out=") {
            if v.is_empty() {
                return Err("--trace-out requires a path".to_owned());
            }
            v.to_owned()
        } else {
            continue;
        };
        return Ok(Some(PathBuf::from(value)));
    }
    Ok(None)
}

/// The `--trace-out` path from the process arguments, if given. Exits
/// with status 2 on a malformed flag, like [`jobs_from_env`].
#[must_use]
pub fn trace_out_from_env() -> Option<PathBuf> {
    match parse_trace_out(std::env::args().skip(1)) {
        Ok(path) => path,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn absent_flag_is_none() {
        assert_eq!(parse_jobs(strings(&[])), Ok(None));
        assert_eq!(parse_jobs(strings(&["--trace-out", "x.jsonl"])), Ok(None));
    }

    #[test]
    fn both_spellings_parse() {
        assert_eq!(parse_jobs(strings(&["--jobs", "4"])), Ok(Some(4)));
        assert_eq!(parse_jobs(strings(&["--jobs=16"])), Ok(Some(16)));
        assert_eq!(
            parse_jobs(strings(&["--trace-out", "t", "--jobs", "2"])),
            Ok(Some(2))
        );
    }

    #[test]
    fn malformed_values_error() {
        assert!(parse_jobs(strings(&["--jobs"])).is_err());
        assert!(parse_jobs(strings(&["--jobs", "zero"])).is_err());
        assert!(parse_jobs(strings(&["--jobs", "0"])).is_err());
        assert!(parse_jobs(strings(&["--jobs="])).is_err());
    }

    #[test]
    fn trace_out_both_spellings_parse() {
        assert_eq!(parse_trace_out(strings(&[])), Ok(None));
        assert_eq!(parse_trace_out(strings(&["--jobs", "4"])), Ok(None));
        assert_eq!(
            parse_trace_out(strings(&["--trace-out", "t.jsonl"])),
            Ok(Some(PathBuf::from("t.jsonl")))
        );
        assert_eq!(
            parse_trace_out(strings(&["--jobs", "2", "--trace-out=x/y.jsonl"])),
            Ok(Some(PathBuf::from("x/y.jsonl")))
        );
    }

    #[test]
    fn trace_out_without_a_path_errors() {
        assert!(parse_trace_out(strings(&["--trace-out"])).is_err());
        assert!(parse_trace_out(strings(&["--trace-out="])).is_err());
    }
}
