//! The shared experiment-binary flags.
//!
//! Every `exp_*` binary accepts `--jobs N` (or `--jobs=N`): the number
//! of worker threads the grid fans across. The default is all hardware
//! threads; `--jobs 1` forces the inline sequential path, whose output
//! every parallel width must reproduce byte for byte.
//!
//! The binaries that can dump a probe event stream (E4, E5) share
//! `--trace-out <path>` (or `--trace-out=<path>`) the same way, and
//! the concurrency experiment (E18) shares `--shards N`, so no binary
//! hand-rolls its own flag loop.
//!
//! Binaries declare which of these flags they accept via
//! [`enforce_known_flags`], which rejects anything unrecognized with a
//! usage message on stderr and exit status 2 — a misspelled flag must
//! never be silently ignored (a `--shrads 8` that quietly runs the
//! default sweep is worse than an error).

use std::path::PathBuf;

use crate::pool::available_jobs;

/// One flag a binary accepts: its name, its value placeholder (if it
/// takes one), and a help line for the usage message.
#[derive(Clone, Copy, Debug)]
pub struct FlagSpec {
    /// The flag itself, e.g. `--jobs`.
    pub name: &'static str,
    /// The value placeholder (`Some("N")` for `--jobs N`), or `None`
    /// for a bare switch.
    pub value: Option<&'static str>,
    /// One help line for the usage message.
    pub help: &'static str,
}

/// The `--jobs N` flag every experiment binary accepts.
pub const JOBS: FlagSpec = FlagSpec {
    name: "--jobs",
    value: Some("N"),
    help: "worker threads for the simulation grid (default: all hardware threads)",
};

/// The `--trace-out PATH` flag of the probe-dumping binaries.
pub const TRACE_OUT: FlagSpec = FlagSpec {
    name: "--trace-out",
    value: Some("PATH"),
    help: "write the probe event stream to PATH as JSONL",
};

/// The `--shards N` flag of the concurrency experiment.
pub const SHARDS: FlagSpec = FlagSpec {
    name: "--shards",
    value: Some("N"),
    help: "largest shard count in the scaling sweep (default: 8)",
};

/// The `--chaos` switch of the overload experiment: run the
/// deterministic fault-injection section on top of the overload grid.
pub const CHAOS: FlagSpec = FlagSpec {
    name: "--chaos",
    value: None,
    help: "also run the deterministic chaos-injection section",
};

/// Whether a bare switch (a [`FlagSpec`] with no value) is present in
/// the process arguments.
#[must_use]
pub fn switch_from_env(flag: FlagSpec) -> bool {
    std::env::args().skip(1).any(|a| a == flag.name)
}

/// The `--metrics-out PATH` flag every experiment binary accepts: dump
/// end-of-run metrics to PATH (`.json` for JSON, anything else for
/// Prometheus text exposition format).
pub const METRICS_OUT: FlagSpec = FlagSpec {
    name: "--metrics-out",
    value: Some("PATH"),
    help: "write end-of-run metrics to PATH (.json for JSON, else Prometheus text)",
};

/// The `--flight-recorder N` flag every experiment binary accepts:
/// attach a lock-free flight recorder retaining the last N probe
/// events per thread for postmortem dumps.
pub const FLIGHT_RECORDER: FlagSpec = FlagSpec {
    name: "--flight-recorder",
    value: Some("N"),
    help: "retain the last N probe events per thread for postmortem dumps",
};

/// The `--quick-lists` switch every experiment binary accepts: arm the
/// arena's per-shard quick lists (Knuth's exercise 2.5-6 fast LIFO
/// caches for recurring small sizes) where the experiment builds one.
/// Binaries that take the flag but build no arena simply ignore it;
/// the ones that honor it say so on stderr, never stdout — golden
/// output is byte-identical with and without the switch.
pub const QUICK_LISTS: FlagSpec = FlagSpec {
    name: "--quick-lists",
    value: None,
    help: "arm per-shard quick lists on the experiment's arenas (stderr note only)",
};

/// The flags *every* experiment binary accepts: `--jobs`,
/// `--metrics-out`, `--flight-recorder`, `--quick-lists`. One
/// registry, so adding a universal flag is a one-line change that
/// reaches all binaries (and the `--help` test that checks each one).
#[must_use]
pub fn standard_flags() -> Vec<FlagSpec> {
    vec![JOBS, METRICS_OUT, FLIGHT_RECORDER, QUICK_LISTS]
}

/// Whether `--quick-lists` is present in the process arguments.
#[must_use]
pub fn quick_lists_from_env() -> bool {
    switch_from_env(QUICK_LISTS)
}

/// [`enforce_known_flags`] with the standard registry prepended:
/// binaries pass only their extra flags (empty for most).
pub fn enforce_standard_flags(bin: &str, extra: &[FlagSpec]) {
    let mut known = standard_flags();
    known.extend_from_slice(extra);
    enforce_known_flags(bin, &known);
}

/// Renders the usage message for a binary and its accepted flags.
#[must_use]
pub fn usage(bin: &str, known: &[FlagSpec]) -> String {
    let mut out = format!("usage: {bin}");
    for f in known {
        match f.value {
            Some(v) => {
                out.push_str(&format!(" [{} {v}]", f.name));
            }
            None => out.push_str(&format!(" [{}]", f.name)),
        }
    }
    out.push('\n');
    for f in known {
        let head = match f.value {
            Some(v) => format!("{} {v}", f.name),
            None => f.name.to_owned(),
        };
        out.push_str(&format!("  {head:<18} {}\n", f.help));
    }
    out
}

/// Checks that every argument is a flag from `known` (in either the
/// `--flag value` or `--flag=value` spelling).
///
/// Value well-formedness is *not* checked here — that stays with the
/// flag's own parser (`parse_jobs` etc.); this pass only refuses
/// arguments no parser would ever look at.
///
/// # Errors
///
/// Returns `"unrecognized argument: <arg>"` for the first argument
/// matching no known flag.
pub fn check_known<I>(args: I, known: &[FlagSpec]) -> Result<(), String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let spec = known.iter().find(|f| {
            a == f.name
                || (f.value.is_some()
                    && a.starts_with(f.name)
                    && a.as_bytes().get(f.name.len()) == Some(&b'='))
        });
        match spec {
            Some(f) => {
                if f.value.is_some() && a == f.name {
                    // Consume the value slot; a missing value is the
                    // flag parser's error to report.
                    let _ = args.next();
                }
            }
            None => return Err(format!("unrecognized argument: {a}")),
        }
    }
    Ok(())
}

/// Rejects unrecognized process arguments: prints the offending
/// argument and the usage message on stderr and exits with status 2.
/// `--help`/`-h` print the usage on stdout and exit 0.
///
/// Call this first in every binary's `main`, naming the flags the
/// binary accepts.
pub fn enforce_known_flags(bin: &str, known: &[FlagSpec]) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage(bin, known));
        std::process::exit(0);
    }
    if let Err(msg) = check_known(args, known) {
        eprintln!("{msg}");
        eprint!("{}", usage(bin, known));
        std::process::exit(2);
    }
}

/// Extracts a `name <n>` / `name=<n>` positive-count flag from an
/// argument list, ignoring every other argument.
fn parse_count<I>(args: I, name: &str) -> Result<Option<usize>, String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let value = if a == name {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))?
        } else if let Some(v) = a.strip_prefix(name).and_then(|rest| rest.strip_prefix('=')) {
            v.to_owned()
        } else {
            continue;
        };
        let n: usize = value
            .parse()
            .map_err(|_| format!("{name}: not a number: {value}"))?;
        if n == 0 {
            return Err(format!("{name} must be at least 1"));
        }
        return Ok(Some(n));
    }
    Ok(None)
}

/// Extracts a `--jobs` value from an argument list, ignoring every
/// other argument (binaries parse their own flags).
///
/// Returns `Ok(None)` when the flag is absent.
///
/// # Errors
///
/// Returns a message when the flag is present without a value, the
/// value is not a number, or the value is zero.
pub fn parse_jobs<I>(args: I) -> Result<Option<usize>, String>
where
    I: IntoIterator<Item = String>,
{
    parse_count(args, "--jobs")
}

/// Extracts a `--shards` value from an argument list, ignoring every
/// other argument.
///
/// Returns `Ok(None)` when the flag is absent.
///
/// # Errors
///
/// As [`parse_jobs`], for `--shards`.
pub fn parse_shards<I>(args: I) -> Result<Option<usize>, String>
where
    I: IntoIterator<Item = String>,
{
    parse_count(args, "--shards")
}

/// The `--shards` value from the process arguments, if given. Exits
/// with status 2 on a malformed flag, like [`jobs_from_env`].
#[must_use]
pub fn shards_from_env() -> Option<usize> {
    match parse_shards(std::env::args().skip(1)) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// The `--shards` value from the process arguments, or `default` when
/// the flag is absent — the one place the experiment binaries derive
/// their shard count. Exits with status 2 on a malformed flag, like
/// [`jobs_from_env`].
#[must_use]
pub fn shards_or(default: usize) -> usize {
    shards_from_env().unwrap_or(default)
}

/// A binary-local positive-count flag (a [`FlagSpec`] with a value)
/// read from the process arguments, `None` when absent. Exits with
/// status 2 on a malformed flag, like [`jobs_from_env`].
#[must_use]
pub fn count_flag_from_env(flag: FlagSpec) -> Option<usize> {
    match parse_count(std::env::args().skip(1), flag.name) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// The standard sweep axis of the scaling experiments: powers of two
/// `1, 2, 4, …` up to `max`, with `max` itself appended when it is not
/// a power of two. Empty when `max` is zero.
#[must_use]
pub fn doubling_sweep(max: usize) -> Vec<usize> {
    let mut points = Vec::new();
    let mut n = 1;
    while n < max {
        points.push(n);
        n *= 2;
    }
    if max > 0 {
        points.push(max);
    }
    points
}

/// The `--jobs` value from the process arguments, defaulting to all
/// hardware threads. Exits with status 2 on a malformed flag, like the
/// binaries' other flag parsers.
#[must_use]
pub fn jobs_from_env() -> usize {
    match parse_jobs(std::env::args().skip(1)) {
        Ok(explicit) => explicit.unwrap_or_else(available_jobs),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// Extracts a `name <path>` / `name=<path>` flag from an argument
/// list, ignoring every other argument.
fn parse_path<I>(args: I, name: &str) -> Result<Option<PathBuf>, String>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        let value = if a == name {
            args.next()
                .ok_or_else(|| format!("{name} requires a path"))?
        } else if let Some(v) = a.strip_prefix(name).and_then(|rest| rest.strip_prefix('=')) {
            if v.is_empty() {
                return Err(format!("{name} requires a path"));
            }
            v.to_owned()
        } else {
            continue;
        };
        return Ok(Some(PathBuf::from(value)));
    }
    Ok(None)
}

/// Extracts a `--trace-out` path from an argument list, ignoring every
/// other argument.
///
/// Returns `Ok(None)` when the flag is absent.
///
/// # Errors
///
/// Returns a message when the flag is present without a path.
pub fn parse_trace_out<I>(args: I) -> Result<Option<PathBuf>, String>
where
    I: IntoIterator<Item = String>,
{
    parse_path(args, "--trace-out")
}

/// Extracts a `--metrics-out` path from an argument list, ignoring
/// every other argument.
///
/// Returns `Ok(None)` when the flag is absent.
///
/// # Errors
///
/// Returns a message when the flag is present without a path.
pub fn parse_metrics_out<I>(args: I) -> Result<Option<PathBuf>, String>
where
    I: IntoIterator<Item = String>,
{
    parse_path(args, "--metrics-out")
}

/// The `--metrics-out` path from the process arguments, if given.
/// Exits with status 2 on a malformed flag, like [`jobs_from_env`].
#[must_use]
pub fn metrics_out_from_env() -> Option<PathBuf> {
    match parse_metrics_out(std::env::args().skip(1)) {
        Ok(path) => path,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// Extracts a `--flight-recorder` per-thread event capacity from an
/// argument list, ignoring every other argument.
///
/// Returns `Ok(None)` when the flag is absent.
///
/// # Errors
///
/// As [`parse_jobs`], for `--flight-recorder`.
pub fn parse_flight_recorder<I>(args: I) -> Result<Option<usize>, String>
where
    I: IntoIterator<Item = String>,
{
    parse_count(args, "--flight-recorder")
}

/// The `--flight-recorder` capacity from the process arguments, if
/// given. Exits with status 2 on a malformed flag, like
/// [`jobs_from_env`].
#[must_use]
pub fn flight_recorder_from_env() -> Option<usize> {
    match parse_flight_recorder(std::env::args().skip(1)) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// The `--trace-out` path from the process arguments, if given. Exits
/// with status 2 on a malformed flag, like [`jobs_from_env`].
#[must_use]
pub fn trace_out_from_env() -> Option<PathBuf> {
    match parse_trace_out(std::env::args().skip(1)) {
        Ok(path) => path,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn absent_flag_is_none() {
        assert_eq!(parse_jobs(strings(&[])), Ok(None));
        assert_eq!(parse_jobs(strings(&["--trace-out", "x.jsonl"])), Ok(None));
    }

    #[test]
    fn both_spellings_parse() {
        assert_eq!(parse_jobs(strings(&["--jobs", "4"])), Ok(Some(4)));
        assert_eq!(parse_jobs(strings(&["--jobs=16"])), Ok(Some(16)));
        assert_eq!(
            parse_jobs(strings(&["--trace-out", "t", "--jobs", "2"])),
            Ok(Some(2))
        );
    }

    #[test]
    fn malformed_values_error() {
        assert!(parse_jobs(strings(&["--jobs"])).is_err());
        assert!(parse_jobs(strings(&["--jobs", "zero"])).is_err());
        assert!(parse_jobs(strings(&["--jobs", "0"])).is_err());
        assert!(parse_jobs(strings(&["--jobs="])).is_err());
    }

    #[test]
    fn trace_out_both_spellings_parse() {
        assert_eq!(parse_trace_out(strings(&[])), Ok(None));
        assert_eq!(parse_trace_out(strings(&["--jobs", "4"])), Ok(None));
        assert_eq!(
            parse_trace_out(strings(&["--trace-out", "t.jsonl"])),
            Ok(Some(PathBuf::from("t.jsonl")))
        );
        assert_eq!(
            parse_trace_out(strings(&["--jobs", "2", "--trace-out=x/y.jsonl"])),
            Ok(Some(PathBuf::from("x/y.jsonl")))
        );
    }

    #[test]
    fn trace_out_without_a_path_errors() {
        assert!(parse_trace_out(strings(&["--trace-out"])).is_err());
        assert!(parse_trace_out(strings(&["--trace-out="])).is_err());
    }

    #[test]
    fn shards_parse_like_jobs() {
        assert_eq!(parse_shards(strings(&[])), Ok(None));
        assert_eq!(parse_shards(strings(&["--shards", "8"])), Ok(Some(8)));
        assert_eq!(parse_shards(strings(&["--shards=2"])), Ok(Some(2)));
        assert!(parse_shards(strings(&["--shards", "0"])).is_err());
        assert!(parse_shards(strings(&["--shards"])).is_err());
    }

    #[test]
    fn known_flags_pass_both_spellings() {
        let known = [JOBS, TRACE_OUT];
        assert_eq!(check_known(strings(&[]), &known), Ok(()));
        assert_eq!(check_known(strings(&["--jobs", "4"]), &known), Ok(()));
        assert_eq!(check_known(strings(&["--jobs=4"]), &known), Ok(()));
        assert_eq!(
            check_known(strings(&["--trace-out", "t.jsonl", "--jobs", "2"]), &known),
            Ok(())
        );
    }

    #[test]
    fn unknown_arguments_are_rejected() {
        let known = [JOBS];
        assert!(check_known(strings(&["--shrads", "8"]), &known).is_err());
        assert!(check_known(strings(&["--trace-out", "t"]), &known).is_err());
        assert!(check_known(strings(&["stray"]), &known).is_err());
        // `--jobs=4x` is a known flag with a bad value: the value
        // parser owns that error, not the unknown-argument check.
        assert_eq!(check_known(strings(&["--jobs=4x"]), &known), Ok(()));
        // A prefix collision is still unknown.
        assert!(check_known(strings(&["--jobsx=4"]), &known).is_err());
    }

    #[test]
    fn trailing_valueless_flag_is_left_to_the_value_parser() {
        assert_eq!(check_known(strings(&["--jobs"]), &[JOBS]), Ok(()));
        assert!(parse_jobs(strings(&["--jobs"])).is_err());
    }

    #[test]
    fn usage_lists_every_flag() {
        let u = usage("exp_99_demo", &[JOBS, SHARDS]);
        assert!(u.starts_with("usage: exp_99_demo [--jobs N] [--shards N]"));
        assert!(u.contains("worker threads"));
        assert!(u.contains("shard count"));
    }

    #[test]
    fn metrics_out_parses_like_trace_out() {
        assert_eq!(parse_metrics_out(strings(&[])), Ok(None));
        assert_eq!(
            parse_metrics_out(strings(&["--metrics-out", "m.prom"])),
            Ok(Some(PathBuf::from("m.prom")))
        );
        assert_eq!(
            parse_metrics_out(strings(&["--jobs", "2", "--metrics-out=m.json"])),
            Ok(Some(PathBuf::from("m.json")))
        );
        assert!(parse_metrics_out(strings(&["--metrics-out"])).is_err());
        assert!(parse_metrics_out(strings(&["--metrics-out="])).is_err());
    }

    #[test]
    fn flight_recorder_parses_like_jobs() {
        assert_eq!(parse_flight_recorder(strings(&[])), Ok(None));
        assert_eq!(
            parse_flight_recorder(strings(&["--flight-recorder", "256"])),
            Ok(Some(256))
        );
        assert_eq!(
            parse_flight_recorder(strings(&["--flight-recorder=64"])),
            Ok(Some(64))
        );
        assert!(parse_flight_recorder(strings(&["--flight-recorder", "0"])).is_err());
        assert!(parse_flight_recorder(strings(&["--flight-recorder"])).is_err());
    }

    #[test]
    fn standard_flags_cover_the_universal_registry() {
        let flags = standard_flags();
        let names: Vec<&str> = flags.iter().map(|f| f.name).collect();
        assert_eq!(
            names,
            vec![
                "--jobs",
                "--metrics-out",
                "--flight-recorder",
                "--quick-lists"
            ]
        );
        let u = usage("exp_00", &flags);
        assert!(u.contains("--metrics-out PATH"), "{u}");
        assert!(u.contains("--flight-recorder N"), "{u}");
        assert!(u.contains("--quick-lists"), "{u}");
        // The standard set accepts its own flags in both spellings.
        assert_eq!(
            check_known(
                strings(&["--metrics-out=m.json", "--flight-recorder", "32"]),
                &flags
            ),
            Ok(())
        );
        // The bare switch is accepted anywhere in the argument list.
        assert_eq!(
            check_known(strings(&["--quick-lists", "--jobs", "2"]), &flags),
            Ok(())
        );
    }

    #[test]
    fn doubling_sweep_covers_powers_of_two_and_the_max() {
        assert_eq!(doubling_sweep(0), Vec::<usize>::new());
        assert_eq!(doubling_sweep(1), vec![1]);
        assert_eq!(doubling_sweep(8), vec![1, 2, 4, 8]);
        assert_eq!(doubling_sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(doubling_sweep(13), vec![1, 2, 4, 8, 13]);
    }
}
