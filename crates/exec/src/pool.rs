//! The work-stealing fan-out.
//!
//! A grid of independent cells is distributed to workers through one
//! [`AtomicUsize`] cursor: each worker claims the next unclaimed index,
//! computes that cell, and keeps its `(index, result)` pairs locally
//! until the scope joins. Claiming by index (rather than chunking up
//! front) is what makes the pool self-balancing — a worker stuck on an
//! expensive cell simply claims fewer cells — and keeping results
//! keyed by index is what makes it deterministic: the merged vector is
//! in grid order no matter which worker computed what, so downstream
//! formatting is bit-identical to the sequential run.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hardware threads available to this process, with a floor
/// of one. The default for `--jobs`.
#[must_use]
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every element of `items`, using up to `jobs` worker
/// threads, and returns the results in input order.
///
/// `f` receives `(index, &item)`; cells must be independent of each
/// other (they run concurrently and in no particular order). With
/// `jobs <= 1` (or fewer than two items) everything runs inline on the
/// calling thread — byte-for-byte the sequential program, with no
/// threads spawned.
///
/// # Panics
///
/// Propagates the first panic raised by `f` on any worker.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = jobs.min(items.len());
    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut claimed = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        claimed.push((i, f(i, item)));
                    }
                    claimed
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(claimed) => buckets.push(claimed),
                // Surface a worker's panic on the caller, like the
                // sequential path would.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    // Merge in grid order: every index was claimed exactly once.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    let merged: Vec<R> = slots.into_iter().flatten().collect();
    assert_eq!(merged.len(), items.len(), "every cell computed once");
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_input_order_at_any_width() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = par_map(jobs, &items, |_, &x| x * x);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items: Vec<u64> = (100..200).collect();
        let got = par_map(4, &items, |i, &x| (i as u64, x));
        for (i, &(gi, gx)) in got.iter().enumerate() {
            assert_eq!(gi, i as u64);
            assert_eq!(gx, items[i]);
        }
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let ran = AtomicU64::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let _ = par_map(8, &items, |_, _| ran.fetch_add(1, Ordering::Relaxed));
        assert_eq!(ran.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn empty_and_singleton_grids() {
        let none: Vec<u8> = vec![];
        assert!(par_map(8, &none, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_cell_costs_still_merge_in_order() {
        // Early cells are the slow ones: a chunked scheduler would give
        // them all to worker 0; the stealing cursor rebalances.
        let items: Vec<u64> = (0..32).collect();
        let got = par_map(4, &items, |_, &x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(got, items);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u64> = (0..64).collect();
        let r = std::panic::catch_unwind(|| {
            par_map(4, &items, |_, &x| {
                assert!(x != 40, "boom");
                x
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }
}
