//! The deterministic parallel simulation engine.
//!
//! Every experiment in this workspace is a *grid* of independent
//! simulation runs — preset × policy × page size × seed — and every
//! cell of the grid is a pure function of its coordinates: the
//! simulators share no mutable state and draw all randomness from
//! per-cell seeded generators. That independence is the whole license
//! for parallelism, and this crate is deliberately nothing more than
//! that license made executable:
//!
//! * [`pool::par_map`] fans the cells of a grid across
//!   `--jobs` worker threads ([`std::thread::scope`], no external
//!   dependencies) via an atomic work-stealing index, then merges the
//!   results *in grid order* — so the output of a run is a pure
//!   function of the grid, never of the scheduling. `--jobs 1` executes
//!   inline on the calling thread: the exact sequential program we had
//!   before the engine existed.
//! * [`grid::SimGrid`] names the grid itself, with cartesian-product
//!   builders for the common axes.
//! * [`cli::jobs_from_env`] gives every `exp_*` binary the same
//!   `--jobs N` flag (default: all hardware threads).
//!
//! What is *not* parallelized matters as much: a single simulated
//! machine is always stepped by one thread, because virtual time is a
//! serial dependency. The engine only ever runs *different* machines
//! (or the same machine under different parameters) side by side.

pub mod cli;
pub mod grid;
pub mod pool;

pub use cli::{
    enforce_known_flags, jobs_from_env, parse_jobs, parse_shards, parse_trace_out, shards_from_env,
    trace_out_from_env,
};
pub use grid::{product2, product3, product4, SimGrid};
pub use pool::{available_jobs, par_map};
