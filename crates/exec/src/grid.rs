//! The simulation grid: the unit of fan-out.
//!
//! A [`SimGrid`] is an ordered list of cells, each one the coordinates
//! of an independent simulation run. The order *is* the contract: rows
//! of every experiment table are emitted in grid order, so a grid run
//! at any `--jobs` width produces identical output.

use crate::pool::par_map;

/// An ordered grid of independent simulation cells.
#[derive(Clone, Debug)]
pub struct SimGrid<T> {
    cells: Vec<T>,
}

impl<T> SimGrid<T> {
    /// Wraps an ordered cell list.
    #[must_use]
    pub fn new(cells: Vec<T>) -> SimGrid<T> {
        SimGrid { cells }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cells, in grid order.
    #[must_use]
    pub fn cells(&self) -> &[T] {
        &self.cells
    }

    /// Consumes the grid, yielding its cells.
    #[must_use]
    pub fn into_cells(self) -> Vec<T> {
        self.cells
    }

    /// Runs `f` on every cell across `jobs` workers and returns results
    /// in grid order (see [`par_map`]).
    pub fn run<R, F>(&self, jobs: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        par_map(jobs, &self.cells, f)
    }
}

/// Cartesian product of two axes, first axis outermost — the order of
/// the classic nested sweep loop.
#[must_use]
pub fn product2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut cells = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            cells.push((x.clone(), y.clone()));
        }
    }
    cells
}

/// Cartesian product of three axes, first axis outermost.
#[must_use]
pub fn product3<A: Clone, B: Clone, C: Clone>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    let mut cells = Vec::with_capacity(a.len() * b.len() * c.len());
    for x in a {
        for y in b {
            for z in c {
                cells.push((x.clone(), y.clone(), z.clone()));
            }
        }
    }
    cells
}

/// Cartesian product of four axes (preset × policy × page size × seed),
/// first axis outermost.
#[must_use]
pub fn product4<A: Clone, B: Clone, C: Clone, D: Clone>(
    a: &[A],
    b: &[B],
    c: &[C],
    d: &[D],
) -> Vec<(A, B, C, D)> {
    let mut cells = Vec::with_capacity(a.len() * b.len() * c.len() * d.len());
    for x in a {
        for y in b {
            for z in c {
                for w in d {
                    cells.push((x.clone(), y.clone(), z.clone(), w.clone()));
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn products_enumerate_in_nested_loop_order() {
        let p = product2(&[0, 1], &['a', 'b', 'c']);
        assert_eq!(
            p,
            vec![(0, 'a'), (0, 'b'), (0, 'c'), (1, 'a'), (1, 'b'), (1, 'c')]
        );
        let q = product3(&[0, 1], &[10], &['x', 'y']);
        assert_eq!(
            q,
            vec![(0, 10, 'x'), (0, 10, 'y'), (1, 10, 'x'), (1, 10, 'y')]
        );
        let r = product4(&[1], &[2], &[3, 4], &[5]);
        assert_eq!(r, vec![(1, 2, 3, 5), (1, 2, 4, 5)]);
    }

    #[test]
    fn grid_run_matches_sequential_map() {
        let grid = SimGrid::new(product2(&[1u64, 2, 3], &[10u64, 20]));
        let seq: Vec<u64> = grid.cells().iter().map(|&(a, b)| a * b).collect();
        for jobs in [1, 2, 8] {
            assert_eq!(grid.run(jobs, |_, &(a, b)| a * b), seq, "jobs={jobs}");
        }
        assert_eq!(grid.len(), 6);
        assert!(!grid.is_empty());
        assert_eq!(grid.clone().into_cells().len(), 6);
    }
}
