//! The seven appendix machines, composed and runnable.
//!
//! "This brief survey of relevant aspects of several computer systems is
//! intended to illustrate the many combinations of functional
//! capability, underlying strategies, and special hardware facilities
//! that have been chosen by system designers" — Appendix. Each preset
//! here assembles the workspace's components into one of those
//! combinations, with the appendix's published parameters, behind a
//! common [`Machine`] interface that executes machine-independent
//! [`dsa_core::ProgramOp`] workloads. Experiment E9 runs one workload
//! across all seven and prints the survey as a measured table.
//!
//! | Preset | Name space | Mapping | Unit | Replacement |
//! |---|---|---|---|---|
//! | [`atlas`] | linear | frame-associative | 512-word pages | learning program, vacant reserve |
//! | [`m44_44x`] | linear | mapping store (block map) | 1024-word pages | class-random; advice instructions |
//! | [`b5000`] | symbolically segmented | PRT descriptors | variable (seg ≤ 1024) | cyclic |
//! | [`rice`] | segmented (codewords) | codewords | variable (chain) | Rice iterative |
//! | [`b8500`] | symbolically segmented | PRT + 44-word associative memory | variable | cyclic |
//! | [`multics`] | linearly segmented (used symbolically) | two-level + associative | 64/1024-word pages | class-random |
//! | [`model67`] | linearly segmented | two-level + 8-entry associative | 1024-word pages | class-random |

mod faults_rt;
pub mod linear;
pub mod multilevel;
pub mod presets;
pub mod report;
pub mod segmented;

pub use linear::LinearPagedMachine;
pub use multilevel::PagedSegmentedMachine;
pub use presets::{all_machines, atlas, b5000, b8500, favoured, m44_44x, model67, multics, rice};
pub use report::{Machine, MachineReport};
pub use segmented::SegmentedMachine;
