//! The common machine interface and its report.

use core::fmt;

use dsa_core::access::ProgramOp;
use dsa_core::clock::Cycles;
use dsa_core::error::CoreError;
use dsa_core::ids::Words;
use dsa_core::taxonomy::SystemCharacteristics;
use dsa_faults::RecoveryReport;
use dsa_probe::Probe;

/// What running a workload on a machine produced.
#[derive(Clone, Debug, Default)]
pub struct MachineReport {
    /// The machine's name.
    pub machine: String,
    /// Touch operations executed (including ones that faulted).
    pub touches: u64,
    /// Fetch faults serviced (page or segment, per the machine's unit).
    pub faults: u64,
    /// Words moved from backing storage into working storage.
    pub fetched_words: Words,
    /// Words written back to backing storage on eviction.
    pub writeback_words: Words,
    /// Total time spent waiting on fetches and write-backs.
    pub fetch_time: Cycles,
    /// Total time consumed by the addressing mechanism.
    pub map_time: Cycles,
    /// Illegal subscripts intercepted by limit checking.
    pub bounds_caught: u64,
    /// Wild touches that resolved to *some* location undetected — the
    /// fate of out-of-bounds subscripts on machines whose name space
    /// carries no per-array structure.
    pub wild_undetected: u64,
    /// Advisory directives acted upon.
    pub advice_ops: u64,
    /// Pages brought in by will-need prefetch.
    pub prefetches: u64,
    /// Prefetched pages that were later actually referenced.
    pub useful_prefetches: u64,
    /// Requests the machine could not satisfy (storage exhausted even
    /// after replacement).
    pub alloc_failures: u64,
    /// What the fault-injection recovery machinery did, when armed
    /// (all-zero otherwise). Its counts reconcile one for one with the
    /// `FaultInjected`/`RetryAttempt`/`FrameQuarantined`/
    /// `DegradationStep` events of the same run.
    pub recovery: RecoveryReport,
}

impl MachineReport {
    /// Faults per touch.
    #[must_use]
    pub fn fault_rate(&self) -> f64 {
        if self.touches == 0 {
            0.0
        } else {
            self.faults as f64 / self.touches as f64
        }
    }

    /// Mean addressing overhead per touch, in nanoseconds.
    #[must_use]
    pub fn mean_map_overhead_nanos(&self) -> f64 {
        if self.touches == 0 {
            0.0
        } else {
            self.map_time.as_nanos() as f64 / self.touches as f64
        }
    }
}

impl fmt::Display for MachineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} touches, {} faults ({:.2}%), {} words in / {} out, map {:.0} ns/touch, bounds {} caught / {} missed",
            self.machine,
            self.touches,
            self.faults,
            self.fault_rate() * 100.0,
            self.fetched_words,
            self.writeback_words,
            self.mean_map_overhead_nanos(),
            self.bounds_caught,
            self.wild_undetected,
        )
    }
}

/// A composed storage allocation system able to execute the portable
/// workload format.
///
/// `Send` is a supertrait so a boxed machine can be constructed in one
/// thread of the parallel simulation engine and run there.
pub trait Machine: Send {
    /// The machine's name (e.g. `"Ferranti ATLAS"`).
    fn name(&self) -> &'static str;

    /// Its position in the paper's four-axis design space.
    fn characteristics(&self) -> SystemCharacteristics;

    /// Executes a workload. Bounds violations and capacity failures are
    /// *counted*, not propagated; only configuration-level errors abort.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for unrecoverable conditions (a workload
    /// that cannot be expressed on this machine at all).
    fn run(&mut self, ops: &[ProgramOp]) -> Result<MachineReport, CoreError>;

    /// [`Machine::run`] with event emission: every touch, fault,
    /// transfer, eviction, advisory directive, and bounds trap is
    /// reported to `probe`, stamped with the machine's own clock and the
    /// workload's reference time. The returned report and the event
    /// stream are two views of one execution: the `CountingProbe` totals
    /// reconcile exactly with the report's fields.
    ///
    /// # Errors
    ///
    /// As [`Machine::run`].
    fn run_probed(
        &mut self,
        ops: &[ProgramOp],
        probe: &mut dyn Probe,
    ) -> Result<MachineReport, CoreError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty_report() {
        let r = MachineReport::default();
        assert_eq!(r.fault_rate(), 0.0);
        assert_eq!(r.mean_map_overhead_nanos(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let r = MachineReport {
            machine: "Test".into(),
            touches: 100,
            faults: 10,
            ..MachineReport::default()
        };
        let s = r.to_string();
        assert!(s.contains("Test") && s.contains("10 faults"), "{s}");
    }
}
