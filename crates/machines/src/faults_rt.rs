//! Shared fault-injection runtime for the machine drivers.
//!
//! Each driver optionally carries one [`FaultState`]: the seed-driven
//! injector, the retry policy for transfer errors, the shed-load budget,
//! and the [`RecoveryReport`] being accumulated for the current run.
//! The free functions here roll one hazard each against an
//! `Option<FaultState>`, so drivers without injection pay nothing and
//! drivers with it keep their borrow structure simple. Every recovery
//! action both counts in the report and emits the matching probe event,
//! one for one — that is what makes the end-of-run reconciliation exact.

use dsa_core::clock::Cycles;
use dsa_faults::ladder::ShedBudget;
use dsa_faults::{FaultConfig, FaultInjector, RecoveryReport, RetryPolicy};
use dsa_probe::{DegradationStep, EventKind, InjectedFault, Probe, Stamp};

/// Shed-load rungs a single machine may take per run before allocation
/// failures are surfaced to the program.
const SHED_BUDGET: u32 = 8;

/// The per-machine fault state carried when injection is armed.
pub(crate) struct FaultState {
    injector: FaultInjector,
    retry: RetryPolicy,
    shedder: ShedBudget,
    /// Recovery accounting for the current run (reset by `begin_run`).
    pub(crate) recovery: RecoveryReport,
}

impl FaultState {
    pub(crate) fn new(seed: u64, config: FaultConfig) -> FaultState {
        FaultState {
            injector: FaultInjector::new(seed, config),
            retry: RetryPolicy::default_policy(),
            shedder: ShedBudget::new(SHED_BUDGET),
            recovery: RecoveryReport::default(),
        }
    }

    /// Starts a fresh run: recovery accounting and the shed budget are
    /// per-run, while the injector's random stream continues so distinct
    /// runs of one machine see distinct fault schedules.
    pub(crate) fn begin_run(&mut self) {
        self.recovery = RecoveryReport::default();
        self.shedder = ShedBudget::new(SHED_BUDGET);
    }

    /// Rolls the hazards for one transfer whose base duration is
    /// `base`: a possible channel-congestion stall, then transfer
    /// errors retried with exponential backoff (each retry re-drives
    /// the transfer, charging `base` again). Returns the extra
    /// simulated time recovery consumed, to be added to the transfer's
    /// service time — fault-service latency is thus visible end to end
    /// in the `FetchStart`/`FetchDone` interval.
    fn transfer_hazard<P: Probe + ?Sized>(
        &mut self,
        base: Cycles,
        at: Stamp,
        probe: &mut P,
    ) -> Cycles {
        let mut extra = Cycles::ZERO;
        if let Some(delay) = self.injector.channel_delay() {
            self.recovery.faults_injected += 1;
            self.recovery.channel_delays += 1;
            self.recovery.delay_time += delay;
            probe.emit(
                EventKind::FaultInjected {
                    fault: InjectedFault::ChannelDelay,
                },
                at,
            );
            extra += delay;
        }
        let mut attempt = 0u32;
        while self.injector.transfer_error() {
            self.recovery.faults_injected += 1;
            self.recovery.transfer_errors += 1;
            probe.emit(
                EventKind::FaultInjected {
                    fault: InjectedFault::TransferError,
                },
                at,
            );
            if attempt >= self.retry.max_attempts {
                // Declared permanent: complete from the duplexed backing
                // copy (the simulation stays total), count the
                // exhaustion, stop rolling.
                self.recovery.retries_exhausted += 1;
                break;
            }
            attempt += 1;
            self.recovery.retry_attempts += 1;
            probe.emit(EventKind::RetryAttempt { attempt }, at);
            let pause = self.retry.backoff(attempt) + base;
            self.recovery.retry_time += pause;
            extra += pause;
        }
        extra
    }

    fn frame_hazard<P: Probe + ?Sized>(&mut self, at: Stamp, probe: &mut P) -> bool {
        if self.injector.frame_bad() {
            self.recovery.faults_injected += 1;
            self.recovery.bad_frames += 1;
            probe.emit(
                EventKind::FaultInjected {
                    fault: InjectedFault::BadFrame,
                },
                at,
            );
            true
        } else {
            false
        }
    }

    fn alloc_hazard<P: Probe + ?Sized>(&mut self, at: Stamp, probe: &mut P) -> bool {
        if self.injector.alloc_failure() {
            self.recovery.faults_injected += 1;
            self.recovery.forced_alloc_failures += 1;
            probe.emit(
                EventKind::FaultInjected {
                    fault: InjectedFault::AllocFailure,
                },
                at,
            );
            true
        } else {
            false
        }
    }
}

/// Extra service time for one transfer: channel stalls plus retried
/// re-drives. Zero when injection is off.
pub(crate) fn transfer_extra<P: Probe + ?Sized>(
    faults: &mut Option<FaultState>,
    base: Cycles,
    at: Stamp,
    probe: &mut P,
) -> Cycles {
    match faults.as_mut() {
        Some(fs) => fs.transfer_hazard(base, at, probe),
        None => Cycles::ZERO,
    }
}

/// Whether the frame a demand load just filled turned out bad.
pub(crate) fn frame_bad<P: Probe + ?Sized>(
    faults: &mut Option<FaultState>,
    at: Stamp,
    probe: &mut P,
) -> bool {
    match faults.as_mut() {
        Some(fs) => fs.frame_hazard(at, probe),
        None => false,
    }
}

/// Whether this allocation request is refused outright by the injector.
pub(crate) fn alloc_refused<P: Probe + ?Sized>(
    faults: &mut Option<FaultState>,
    at: Stamp,
    probe: &mut P,
) -> bool {
    match faults.as_mut() {
        Some(fs) => fs.alloc_hazard(at, probe),
        None => false,
    }
}

/// Records a successful quarantine (the caller already retired the
/// frame).
pub(crate) fn note_quarantined<P: Probe + ?Sized>(
    faults: &mut Option<FaultState>,
    at: Stamp,
    probe: &mut P,
) {
    if let Some(fs) = faults.as_mut() {
        fs.recovery.frames_quarantined += 1;
        probe.emit(EventKind::FrameQuarantined, at);
    }
}

/// Attempts the shed-load rung of the degradation ladder. `true` means
/// the caller should surrender advisory claims (unpin everything) and
/// retry the failed demand once.
pub(crate) fn try_shed<P: Probe + ?Sized>(
    faults: &mut Option<FaultState>,
    at: Stamp,
    probe: &mut P,
) -> bool {
    let Some(fs) = faults.as_mut() else {
        return false;
    };
    if !fs.shedder.try_shed() {
        return false;
    }
    fs.recovery.degradation_steps += 1;
    fs.recovery.shed_loads += 1;
    probe.emit(
        EventKind::DegradationStep {
            step: DegradationStep::ShedLoad,
        },
        at,
    );
    true
}
