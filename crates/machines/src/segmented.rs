//! Segment-allocated machines: B5000, Rice, B8500.
//!
//! On these machines the segment is the unit of allocation: fetched
//! whole on first reference, placed by a variable-unit allocator,
//! bounds-checked on every access through its descriptor (B5000/B8500
//! PRT entries) or codeword (Rice). The B5000 limits segments to 1024
//! words; "by virtue of the way the compiler implements multidimensional
//! arrays" a programmer may still declare larger objects, which the
//! compiler splits — our adapter performs the same split.

use std::collections::HashMap;

use dsa_core::access::ProgramOp;
use dsa_core::clock::Cycles;
use dsa_core::clock::VirtualTime;
use dsa_core::error::{AccessFault, AllocError, CoreError};
use dsa_core::ids::{SegId, Words};
use dsa_core::taxonomy::SystemCharacteristics;
use dsa_faults::FaultConfig;
use dsa_mapping::associative::{AssocMemory, AssocPolicy};
use dsa_mapping::cost::MapCosts;
use dsa_probe::{EventKind, NullProbe, Probe, Stamp};
use dsa_seg::store::SegmentStore;

use crate::faults_rt::{self, FaultState};
use crate::report::{Machine, MachineReport};

/// A segment-allocated machine.
pub struct SegmentedMachine {
    name: &'static str,
    chars: SystemCharacteristics,
    store: SegmentStore,
    costs: MapCosts,
    /// Optional descriptor cache (the B8500's 44-word thin-film
    /// associative memory retaining recently used PRT elements).
    descriptor_cache: Option<AssocMemory>,
    /// Per-word transfer time to/from backing storage plus latency,
    /// charged per fetched segment.
    backing_latency: Cycles,
    backing_word_time: Cycles,
    /// The compiler's segment-size ceiling (1024 on the B5000); larger
    /// declarations are split into chunks.
    split_at: Words,
    /// User segment -> (chunk ids, user-declared size).
    split_map: HashMap<SegId, (Vec<SegId>, Words)>,
    next_internal: u32,
    /// Whether advisory directives are honoured (the appendix machines
    /// in this family accept none; the authors' favoured design does).
    accepts_advice: bool,
    /// Fault injection and recovery, when armed.
    faults: Option<FaultState>,
}

impl SegmentedMachine {
    /// Assembles the machine.
    // Each argument is one hardware component of the appendix's spec;
    // a builder would only obscure that correspondence.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        name: &'static str,
        chars: SystemCharacteristics,
        store: SegmentStore,
        costs: MapCosts,
        descriptor_cache: Option<AssocMemory>,
        backing_latency: Cycles,
        backing_word_time: Cycles,
        split_at: Words,
    ) -> SegmentedMachine {
        SegmentedMachine {
            name,
            chars,
            store,
            costs,
            descriptor_cache,
            backing_latency,
            backing_word_time,
            split_at,
            split_map: HashMap::new(),
            next_internal: 0,
            accepts_advice: false,
            faults: None,
        }
    }

    /// Enables advisory directives (will-need prefetch, wont-need
    /// demotion, pin, release) — the authors' favoured configuration;
    /// none of the appendix's segment machines accepted any.
    #[must_use]
    pub fn with_advice(mut self) -> SegmentedMachine {
        self.accepts_advice = true;
        self
    }

    /// Arms deterministic fault injection with the given seed and
    /// configuration, and enables the store's graceful-degradation
    /// ladder (coalesce, compact, evict) so injected storage pressure is
    /// survived rather than surfaced.
    #[must_use]
    pub fn with_fault_injection(mut self, seed: u64, config: FaultConfig) -> SegmentedMachine {
        self.faults = Some(FaultState::new(seed, config));
        self.store.enable_degradation();
        self
    }

    /// Asserts the segment store's internal consistency. Panics on
    /// violation; intended for tests.
    pub fn check_invariants(&self) {
        self.store.check_invariants();
    }

    /// The B8500's 44-word associative memory, preconfigured.
    #[must_use]
    pub fn b8500_cache() -> AssocMemory {
        AssocMemory::new(44, AssocPolicy::Lru)
    }

    fn transfer_time(&self, words: Words) -> Cycles {
        self.backing_latency + self.backing_word_time * words
    }

    fn fresh_internal(&mut self) -> SegId {
        let id = SegId(self.next_internal);
        self.next_internal += 1;
        id
    }

    /// Charges the descriptor-access cost for one touch of `chunk`,
    /// consulting the descriptor cache if the machine has one. Emits one
    /// `MapLookup`: on a cached machine `hit` means the descriptor was
    /// in the associative memory; without a cache every PRT reference
    /// resolves directly and counts as a hit.
    fn charge_descriptor<P: Probe + ?Sized>(
        &mut self,
        chunk: SegId,
        report: &mut MachineReport,
        at: Stamp,
        probe: &mut P,
    ) -> Cycles {
        let (cost, hit) = match &mut self.descriptor_cache {
            Some(cache) => {
                if cache.lookup(u64::from(chunk.0)).is_some() {
                    (self.costs.assoc_search, true)
                } else {
                    cache.insert(u64::from(chunk.0), 0);
                    (self.costs.assoc_search + self.costs.table_ref, false)
                }
            }
            // A PRT reference in core.
            None => (self.costs.table_ref, true),
        };
        report.map_time += cost;
        probe.emit(EventKind::MapLookup { hit }, at);
        cost
    }

    fn define_user_segment(
        &mut self,
        seg: SegId,
        size: Words,
        report: &mut MachineReport,
    ) -> Result<(), CoreError> {
        let mut chunks = Vec::new();
        let mut remaining = size;
        while remaining > 0 {
            let chunk_size = remaining.min(self.split_at);
            let id = self.fresh_internal();
            match self.store.define(id, chunk_size) {
                Ok(()) => chunks.push(id),
                Err(CoreError::Alloc(AllocError::OutOfStorage { .. })) => {
                    report.alloc_failures += 1;
                    break;
                }
                Err(e) => return Err(e),
            }
            remaining -= chunk_size;
        }
        self.split_map.insert(seg, (chunks, size));
        Ok(())
    }

    fn delete_user_segment(&mut self, seg: SegId) -> Words {
        if let Some((chunks, size)) = self.split_map.remove(&seg) {
            for c in chunks {
                let _ = self.store.delete(c);
            }
            size
        } else {
            0
        }
    }

    /// [`Machine::run`] generically over any probe; `run` and
    /// `run_probed` both land here.
    ///
    /// # Errors
    ///
    /// As [`Machine::run`].
    pub fn run_with<P: Probe + ?Sized>(
        &mut self,
        ops: &[ProgramOp],
        probe: &mut P,
    ) -> Result<MachineReport, CoreError> {
        let mut clock = Cycles::ZERO;
        let mut now: VirtualTime = 0;
        let mut report = MachineReport {
            machine: self.name.to_owned(),
            ..MachineReport::default()
        };
        if let Some(fs) = self.faults.as_mut() {
            fs.begin_run();
        }
        // The store counts its own degradation rungs (coalesce, compact,
        // evict); fold this run's delta into the recovery report so it
        // reconciles with the `DegradationStep` events emitted below.
        let degradation_before = self.store.stats().degradation_steps;
        for op in ops {
            match *op {
                ProgramOp::Define { seg, size } => {
                    if faults_rt::alloc_refused(&mut self.faults, Stamp::at(clock, now), probe) {
                        report.alloc_failures += 1;
                        continue;
                    }
                    self.define_user_segment(seg, size, &mut report)?;
                    probe.emit(
                        EventKind::Alloc {
                            words: size,
                            searched: 0,
                        },
                        Stamp::at(clock, now),
                    );
                }
                ProgramOp::Resize { seg, size } => {
                    // Dynamic segments: re-declare at the new size.
                    self.delete_user_segment(seg);
                    self.define_user_segment(seg, size, &mut report)?;
                }
                ProgramOp::Delete { seg } => {
                    let freed = self.delete_user_segment(seg);
                    if freed > 0 {
                        probe.emit(EventKind::Free { words: freed }, Stamp::at(clock, now));
                    }
                }
                ProgramOp::Touch { seg, offset, kind } => {
                    let Some((chunks, user_size)) = self.split_map.get(&seg) else {
                        continue;
                    };
                    report.touches += 1;
                    now += 1;
                    probe.emit(
                        EventKind::Touch {
                            write: kind.is_write(),
                        },
                        Stamp::at(clock, now),
                    );
                    // The illegal-subscript interception the paper lists
                    // as segmentation advantage (iii): the *user's*
                    // declared bound is enforced by the chunk bounds.
                    if offset >= *user_size {
                        report.bounds_caught += 1;
                        probe.emit(EventKind::BoundsTrap, Stamp::at(clock, now));
                        continue;
                    }
                    let chunk_idx = (offset / self.split_at) as usize;
                    let within = offset % self.split_at;
                    let Some(&chunk) = chunks.get(chunk_idx) else {
                        // The chunk was never defined (alloc failure at
                        // define time).
                        report.alloc_failures += 1;
                        continue;
                    };
                    let cost =
                        self.charge_descriptor(chunk, &mut report, Stamp::at(clock, now), probe);
                    clock += cost;
                    let mut attempts = 0u32;
                    loop {
                        attempts += 1;
                        match self.store.touch_probed(
                            chunk,
                            within,
                            kind.is_write(),
                            Stamp::at(clock, now),
                            probe,
                        ) {
                            Ok(r) => {
                                if r.fetched {
                                    probe.emit(
                                        EventKind::FetchStart {
                                            words: r.fetched_words,
                                        },
                                        Stamp::at(clock, now),
                                    );
                                    if r.writeback_words > 0 {
                                        probe.emit(
                                            EventKind::Writeback {
                                                words: r.writeback_words,
                                            },
                                            Stamp::at(clock, now),
                                        );
                                        let base = self.transfer_time(r.writeback_words);
                                        let extra = faults_rt::transfer_extra(
                                            &mut self.faults,
                                            base,
                                            Stamp::at(clock, now),
                                            probe,
                                        );
                                        report.writeback_words += r.writeback_words;
                                        report.fetch_time += base + extra;
                                        clock += base + extra;
                                    }
                                    report.faults += 1;
                                    report.fetched_words += r.fetched_words;
                                    let base = self.transfer_time(r.fetched_words);
                                    let extra = faults_rt::transfer_extra(
                                        &mut self.faults,
                                        base,
                                        Stamp::at(clock, now),
                                        probe,
                                    );
                                    report.fetch_time += base + extra;
                                    clock += base + extra;
                                    probe.emit(
                                        EventKind::FetchDone {
                                            words: r.fetched_words,
                                        },
                                        Stamp::at(clock, now),
                                    );
                                }
                                break;
                            }
                            Err(CoreError::Access(AccessFault::BoundsViolation { .. })) => {
                                report.bounds_caught += 1;
                                probe.emit(EventKind::BoundsTrap, Stamp::at(clock, now));
                                break;
                            }
                            Err(CoreError::Alloc(AllocError::OutOfStorage { .. }))
                                if attempts == 1 =>
                            {
                                // The store's ladder (coalesce, compact,
                                // evict) is exhausted. Last rung: shed
                                // load — surrender every pin — and retry
                                // the demand once.
                                if faults_rt::try_shed(
                                    &mut self.faults,
                                    Stamp::at(clock, now),
                                    probe,
                                ) {
                                    self.store.unpin_all();
                                    continue;
                                }
                                report.alloc_failures += 1;
                                break;
                            }
                            Err(CoreError::Alloc(AllocError::OutOfStorage { .. })) => {
                                report.alloc_failures += 1;
                                break;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
                ProgramOp::Advise(advice) => {
                    if !self.accepts_advice {
                        continue;
                    }
                    // Only segment advice is meaningful; lower the user
                    // segment onto its chunks.
                    let dsa_core::advice::AdviceUnit::Segment(seg) = advice.unit() else {
                        continue;
                    };
                    let Some((chunks, _)) = self.split_map.get(&seg) else {
                        continue;
                    };
                    for &chunk in chunks.clone().iter() {
                        report.advice_ops += 1;
                        probe.emit(EventKind::Advice, Stamp::at(clock, now));
                        let unit = dsa_core::advice::AdviceUnit::Segment(chunk);
                        use dsa_core::advice::Advice as A;
                        let lowered = match advice {
                            A::WillNeed(_) => A::WillNeed(unit),
                            A::WontNeed(_) => A::WontNeed(unit),
                            A::Pin(_) => A::Pin(unit),
                            A::Unpin(_) => A::Unpin(unit),
                            A::Release(_) => A::Release(unit),
                        };
                        let before_fetched = self.store.stats().fetched_words;
                        let before_writeback = self.store.stats().writeback_words;
                        self.store
                            .advise_probed(lowered, Stamp::at(clock, now), probe);
                        // Evictions forced by a will-need fetch (and any
                        // release write-back) must be charged like the
                        // demand-path ones.
                        let wrote = self.store.stats().writeback_words - before_writeback;
                        if wrote > 0 {
                            probe
                                .emit(EventKind::Writeback { words: wrote }, Stamp::at(clock, now));
                            let base = self.transfer_time(wrote);
                            let extra = faults_rt::transfer_extra(
                                &mut self.faults,
                                base,
                                Stamp::at(clock, now),
                                probe,
                            );
                            report.writeback_words += wrote;
                            report.fetch_time += base + extra;
                            clock += base + extra;
                        }
                        let brought = self.store.stats().fetched_words - before_fetched;
                        if brought > 0 {
                            report.prefetches += 1;
                            report.fetched_words += brought;
                            probe.emit(
                                EventKind::FetchStart { words: brought },
                                Stamp::at(clock, now),
                            );
                            let base = self.transfer_time(brought);
                            let extra = faults_rt::transfer_extra(
                                &mut self.faults,
                                base,
                                Stamp::at(clock, now),
                                probe,
                            );
                            report.fetch_time += base + extra;
                            clock += base + extra;
                            probe.emit(
                                EventKind::FetchDone { words: brought },
                                Stamp::at(clock, now),
                            );
                        }
                    }
                }
                ProgramOp::Compute { .. } => {}
            }
        }
        if let Some(fs) = self.faults.as_mut() {
            fs.recovery.degradation_steps +=
                self.store.stats().degradation_steps - degradation_before;
            report.recovery = fs.recovery;
        }
        Ok(report)
    }
}

impl Machine for SegmentedMachine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn characteristics(&self) -> SystemCharacteristics {
        self.chars.clone()
    }

    fn run(&mut self, ops: &[ProgramOp]) -> Result<MachineReport, CoreError> {
        self.run_with(ops, &mut NullProbe)
    }

    fn run_probed(
        &mut self,
        ops: &[ProgramOp],
        probe: &mut dyn Probe,
    ) -> Result<MachineReport, CoreError> {
        self.run_with(ops, probe)
    }
}
