//! Machines with a linear name space over demand paging: ATLAS, M44/44X.
//!
//! Programs written for a linear name space must place their own
//! segments: the adapter here lays each declared segment out at the next
//! free names (no gaps — names are precious). The crucial consequence,
//! which experiment E13 measures, is that an out-of-bounds subscript
//! lands on the *neighbouring data's names* and resolves without any
//! trap: a linear name space carries no per-array structure for the
//! hardware to check.

use std::collections::HashMap;

use dsa_core::access::ProgramOp;
use dsa_core::advice::{Advice, AdviceUnit};
use dsa_core::clock::{Cycles, VirtualTime};
use dsa_core::error::{AccessFault, CoreError};
use dsa_core::ids::{PageNo, SegId, Words};
use dsa_core::taxonomy::SystemCharacteristics;
use dsa_faults::FaultConfig;
use dsa_mapping::associative::FrameAssociativeMap;
use dsa_mapping::block_map::BlockMap;
use dsa_mapping::{AddressMap, Translation};
use dsa_paging::paged::{PagedMemory, TouchOutcome};
use dsa_probe::{EventKind, NullProbe, Probe, Stamp};

use crate::faults_rt::{self, FaultState};
use crate::report::{Machine, MachineReport};

/// Which mapping hardware performs the name-to-address step.
pub enum LinearMapDevice {
    /// One page-address register per frame, searched associatively
    /// (ATLAS).
    FrameAssociative(FrameAssociativeMap),
    /// Indirect addressing through a mapping store (M44/44X) — the
    /// single-level table of Figure 2.
    MappingStore(BlockMap),
}

impl LinearMapDevice {
    fn translate(&mut self, name: u64) -> Translation {
        match self {
            LinearMapDevice::FrameAssociative(m) => m.translate(dsa_core::ids::Name(name)),
            LinearMapDevice::MappingStore(m) => m.translate(dsa_core::ids::Name(name)),
        }
    }

    fn load(&mut self, page: PageNo, frame: dsa_core::ids::FrameNo, page_size: Words) {
        match self {
            LinearMapDevice::FrameAssociative(m) => m.load(frame, page),
            LinearMapDevice::MappingStore(m) => {
                m.map_block(page.0, dsa_core::ids::PhysAddr(frame.0 * page_size));
            }
        }
    }

    fn unload(&mut self, page: PageNo, frame: dsa_core::ids::FrameNo) {
        match self {
            LinearMapDevice::FrameAssociative(m) => m.unload(frame),
            LinearMapDevice::MappingStore(m) => m.unmap_block(page.0),
        }
    }
}

/// A linear-name-space demand-paged machine.
pub struct LinearPagedMachine {
    name: &'static str,
    chars: SystemCharacteristics,
    page_size: Words,
    name_extent: Words,
    device: LinearMapDevice,
    memory: PagedMemory,
    /// Time to fetch one page from backing storage.
    page_fetch: Cycles,
    /// Whether the M44-style advice instructions exist.
    accepts_advice: bool,
    /// Segment layout in the linear space: seg -> (base name, size).
    layout: HashMap<SegId, (u64, Words)>,
    bump: u64,
    now: VirtualTime,
    /// Armed fault injection and its recovery state, if any.
    faults: Option<FaultState>,
}

impl LinearPagedMachine {
    /// Assembles the machine. The caller supplies components configured
    /// with the appendix's parameters (see `presets`).
    // Each argument is one hardware component of the appendix's spec;
    // a builder would only obscure that correspondence.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        name: &'static str,
        chars: SystemCharacteristics,
        page_size: Words,
        name_extent: Words,
        device: LinearMapDevice,
        memory: PagedMemory,
        page_fetch: Cycles,
        accepts_advice: bool,
    ) -> LinearPagedMachine {
        LinearPagedMachine {
            name,
            chars,
            page_size,
            name_extent,
            device,
            // Traced transfers must carry the machine's page size.
            memory: memory.with_words_per_page(page_size),
            page_fetch,
            accepts_advice,
            layout: HashMap::new(),
            bump: 0,
            now: 0,
            faults: None,
        }
    }

    /// Arms seed-driven fault injection for subsequent runs: transfer
    /// errors are retried with backoff, bad frames are quarantined with
    /// the page refetched elsewhere, and storage exhaustion degrades
    /// through shed-load instead of aborting the run. The per-run
    /// recovery accounting lands in [`MachineReport::recovery`].
    #[must_use]
    pub fn with_fault_injection(mut self, seed: u64, config: FaultConfig) -> LinearPagedMachine {
        self.faults = Some(FaultState::new(seed, config));
        self
    }

    /// Verifies the paging engine's internal invariants.
    ///
    /// # Panics
    ///
    /// Panics if frame bookkeeping is inconsistent (see
    /// [`PagedMemory::check_invariants`]).
    pub fn check_invariants(&self) {
        self.memory.check_invariants();
    }

    /// Pages spanned by segment `seg`, given its layout.
    fn pages_of(&self, base: u64, size: Words) -> impl Iterator<Item = PageNo> {
        let first = base / self.page_size;
        let last = (base + size.max(1) - 1) / self.page_size;
        (first..=last).map(PageNo)
    }

    fn service_fault<P: Probe + ?Sized>(
        &mut self,
        page: PageNo,
        write: bool,
        report: &mut MachineReport,
        clock: &mut Cycles,
        probe: &mut P,
    ) -> Result<(), CoreError> {
        // The engine emits `Fault` and per-victim `Evict`; the machine
        // owns the transfer events, because only it knows the channel
        // timing.
        let outcome = self
            .memory
            .touch_probed(page, write, Stamp::at(*clock, self.now), probe)?;
        match outcome {
            TouchOutcome::Fault { frame, evicted } => {
                probe.emit(
                    EventKind::FetchStart {
                        words: self.page_size,
                    },
                    Stamp::at(*clock, self.now),
                );
                if let Some(e) = evicted {
                    self.device.unload(e.page, e.frame);
                    if e.dirty {
                        probe.emit(
                            EventKind::Writeback {
                                words: self.page_size,
                            },
                            Stamp::at(*clock, self.now),
                        );
                        let extra = faults_rt::transfer_extra(
                            &mut self.faults,
                            self.page_fetch,
                            Stamp::at(*clock, self.now),
                            probe,
                        );
                        report.writeback_words += self.page_size;
                        report.fetch_time += self.page_fetch + extra;
                        *clock += self.page_fetch + extra;
                    }
                }
                self.device.load(page, frame, self.page_size);
                report.faults += 1;
                report.fetched_words += self.page_size;
                let extra = faults_rt::transfer_extra(
                    &mut self.faults,
                    self.page_fetch,
                    Stamp::at(*clock, self.now),
                    probe,
                );
                report.fetch_time += self.page_fetch + extra;
                *clock += self.page_fetch + extra;
                probe.emit(
                    EventKind::FetchDone {
                        words: self.page_size,
                    },
                    Stamp::at(*clock, self.now),
                );
                // The transfer may have filled a frame whose storage is
                // bad: quarantine it and refetch the page into a
                // surviving frame (remap-and-refetch). The recursive
                // service does the full accounting for the extra fetch.
                let bad =
                    faults_rt::frame_bad(&mut self.faults, Stamp::at(*clock, self.now), probe);
                if bad && self.memory.retire_frame(frame) {
                    faults_rt::note_quarantined(
                        &mut self.faults,
                        Stamp::at(*clock, self.now),
                        probe,
                    );
                    self.device.unload(page, frame);
                    self.service_fault(page, write, report, clock, probe)?;
                }
            }
            TouchOutcome::Hit { .. } => {
                // Raced with a prefetch; nothing more to do.
            }
        }
        Ok(())
    }

    /// [`Machine::run`] generically over any probe; `run` and
    /// `run_probed` both land here.
    ///
    /// # Errors
    ///
    /// As [`Machine::run`].
    pub fn run_with<P: Probe + ?Sized>(
        &mut self,
        ops: &[ProgramOp],
        probe: &mut P,
    ) -> Result<MachineReport, CoreError> {
        let mut clock = Cycles::ZERO;
        let mut report = MachineReport {
            machine: self.name.to_owned(),
            ..MachineReport::default()
        };
        if let Some(fs) = self.faults.as_mut() {
            fs.begin_run();
        }
        for op in ops {
            match *op {
                ProgramOp::Define { seg, size } => {
                    if faults_rt::alloc_refused(&mut self.faults, Stamp::at(clock, self.now), probe)
                    {
                        report.alloc_failures += 1;
                        continue;
                    }
                    // Lay the segment out at the next free names.
                    if self.bump + size > self.name_extent {
                        report.alloc_failures += 1;
                        continue;
                    }
                    self.layout.insert(seg, (self.bump, size));
                    self.bump += size;
                    probe.emit(
                        EventKind::Alloc {
                            words: size,
                            searched: 0,
                        },
                        Stamp::at(clock, self.now),
                    );
                }
                ProgramOp::Resize { seg, size } => {
                    // A linear space cannot grow in place: a grown
                    // segment must be re-laid at fresh names (the name
                    // allocation problem the paper says segmentation
                    // alleviates).
                    let Some(&(base, old)) = self.layout.get(&seg) else {
                        continue;
                    };
                    if size <= old {
                        self.layout.insert(seg, (base, size));
                    } else if self.bump + size <= self.name_extent {
                        self.layout.insert(seg, (self.bump, size));
                        self.bump += size;
                    } else {
                        report.alloc_failures += 1;
                    }
                }
                ProgramOp::Delete { seg } => {
                    // Names are not reclaimed (no dynamic name
                    // reallocation on these systems); the pages simply
                    // stop being referenced.
                    if let Some((_, size)) = self.layout.remove(&seg) {
                        probe.emit(EventKind::Free { words: size }, Stamp::at(clock, self.now));
                    }
                }
                ProgramOp::Touch { seg, offset, kind } => {
                    let Some(&(base, size)) = self.layout.get(&seg) else {
                        continue;
                    };
                    report.touches += 1;
                    self.now += 1;
                    probe.emit(
                        EventKind::Touch {
                            write: kind.is_write(),
                        },
                        Stamp::at(clock, self.now),
                    );
                    let name = base + offset;
                    if offset >= size && name < self.name_extent {
                        // An illegal subscript that lands on valid names:
                        // nothing traps. It is still executed below.
                        report.wild_undetected += 1;
                    }
                    let t = self.device.translate(name);
                    report.map_time += t.cost;
                    clock += t.cost;
                    probe.emit(
                        EventKind::MapLookup {
                            hit: t.outcome.is_ok(),
                        },
                        Stamp::at(clock, self.now),
                    );
                    match t.outcome {
                        Ok(_) => {
                            // Keep the paging engine's recency state in
                            // step with the hardware hit.
                            let page = PageNo(name / self.page_size);
                            self.memory.touch_probed(
                                page,
                                kind.is_write(),
                                Stamp::at(clock, self.now),
                                probe,
                            )?;
                        }
                        Err(AccessFault::MissingPage { page }) => {
                            match self.service_fault(
                                page,
                                kind.is_write(),
                                &mut report,
                                &mut clock,
                                probe,
                            ) {
                                Ok(()) => {}
                                Err(CoreError::Alloc(e)) => {
                                    // Everything pinned. Degradation:
                                    // shed load (surrender the pins) and
                                    // retry once; without injection this
                                    // aborts, as it always did.
                                    let shed = faults_rt::try_shed(
                                        &mut self.faults,
                                        Stamp::at(clock, self.now),
                                        probe,
                                    );
                                    if !shed {
                                        return Err(CoreError::Alloc(e));
                                    }
                                    self.memory.unpin_all();
                                    match self.service_fault(
                                        page,
                                        kind.is_write(),
                                        &mut report,
                                        &mut clock,
                                        probe,
                                    ) {
                                        Ok(()) => {}
                                        Err(CoreError::Alloc(_)) => report.alloc_failures += 1,
                                        Err(e) => return Err(e),
                                    }
                                }
                                Err(e) => return Err(e),
                            }
                        }
                        Err(AccessFault::InvalidName { .. }) => {
                            report.bounds_caught += 1;
                            probe.emit(EventKind::BoundsTrap, Stamp::at(clock, self.now));
                        }
                        Err(f) => return Err(f.into()),
                    }
                }
                ProgramOp::Advise(advice) => {
                    if !self.accepts_advice {
                        continue;
                    }
                    // The M44 instructions speak of pages; segment-level
                    // advice is lowered onto the segment's pages.
                    let advised: Vec<PageNo> = match advice.unit() {
                        AdviceUnit::Page(p) => vec![p],
                        AdviceUnit::Segment(seg) => match self.layout.get(&seg) {
                            Some(&(base, size)) => self.pages_of(base, size).take(16).collect(),
                            None => vec![],
                        },
                    };
                    for p in advised {
                        report.advice_ops += 1;
                        probe.emit(EventKind::Advice, Stamp::at(clock, self.now));
                        let lowered = match advice {
                            Advice::WillNeed(_) => Advice::WillNeed(AdviceUnit::Page(p)),
                            Advice::WontNeed(_) => Advice::WontNeed(AdviceUnit::Page(p)),
                            Advice::Pin(_) => Advice::Pin(AdviceUnit::Page(p)),
                            Advice::Unpin(_) => Advice::Unpin(AdviceUnit::Page(p)),
                            Advice::Release(_) => Advice::Release(AdviceUnit::Page(p)),
                        };
                        let outcome =
                            self.memory
                                .advise_probed(lowered, Stamp::at(clock, self.now), probe);
                        // Mirror what actually happened into the mapping
                        // device.
                        if let Some(e) = outcome.evicted {
                            self.device.unload(e.page, e.frame);
                            if e.dirty {
                                probe.emit(
                                    EventKind::Writeback {
                                        words: self.page_size,
                                    },
                                    Stamp::at(clock, self.now),
                                );
                                let extra = faults_rt::transfer_extra(
                                    &mut self.faults,
                                    self.page_fetch,
                                    Stamp::at(clock, self.now),
                                    probe,
                                );
                                report.writeback_words += self.page_size;
                                report.fetch_time += self.page_fetch + extra;
                                clock += self.page_fetch + extra;
                            }
                        }
                        if let Some((page, frame)) = outcome.loaded {
                            self.device.load(page, frame, self.page_size);
                            report.fetched_words += self.page_size;
                            probe.emit(
                                EventKind::FetchStart {
                                    words: self.page_size,
                                },
                                Stamp::at(clock, self.now),
                            );
                            let extra = faults_rt::transfer_extra(
                                &mut self.faults,
                                self.page_fetch,
                                Stamp::at(clock, self.now),
                                probe,
                            );
                            report.fetch_time += self.page_fetch + extra;
                            clock += self.page_fetch + extra;
                            probe.emit(
                                EventKind::FetchDone {
                                    words: self.page_size,
                                },
                                Stamp::at(clock, self.now),
                            );
                        }
                    }
                }
                ProgramOp::Compute { .. } => {}
            }
        }
        report.prefetches = self.memory.stats().prefetches;
        report.useful_prefetches = self.memory.stats().useful_prefetches;
        if let Some(fs) = self.faults.as_ref() {
            report.recovery = fs.recovery;
        }
        Ok(report)
    }
}

impl Machine for LinearPagedMachine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn characteristics(&self) -> SystemCharacteristics {
        self.chars.clone()
    }

    fn run(&mut self, ops: &[ProgramOp]) -> Result<MachineReport, CoreError> {
        self.run_with(ops, &mut NullProbe)
    }

    fn run_probed(
        &mut self,
        ops: &[ProgramOp],
        probe: &mut dyn Probe,
    ) -> Result<MachineReport, CoreError> {
        self.run_with(ops, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::access::AccessKind;
    use dsa_core::taxonomy::{AllocationUnit, Contiguity, NameSpaceKind, PredictiveInfo};
    use dsa_mapping::cost::MapCosts;
    use dsa_paging::replacement::lru::LruRepl;

    fn tiny_machine(frames: usize, advice: bool) -> LinearPagedMachine {
        let costs = MapCosts::for_core_cycle(Cycles::from_micros(1));
        let page_size = 16;
        let extent = 1024;
        LinearPagedMachine::new(
            "test-linear",
            SystemCharacteristics {
                name_space: NameSpaceKind::Linear { extent },
                predictive: if advice {
                    PredictiveInfo::Advisory
                } else {
                    PredictiveInfo::None
                },
                contiguity: Contiguity::Artificial,
                unit: AllocationUnit::Uniform { page_size },
            },
            page_size,
            extent,
            LinearMapDevice::MappingStore(BlockMap::new((extent / page_size) as usize, 4, costs)),
            PagedMemory::new(frames, Box::new(LruRepl::new())),
            Cycles::from_micros(100),
            advice,
        )
    }

    fn touch(seg: u32, offset: u64) -> ProgramOp {
        ProgramOp::Touch {
            seg: SegId(seg),
            offset,
            kind: AccessKind::Read,
        }
    }

    #[test]
    fn segments_are_laid_out_consecutively() {
        let mut m = tiny_machine(8, false);
        let ops = vec![
            ProgramOp::Define {
                seg: SegId(0),
                size: 20,
            },
            ProgramOp::Define {
                seg: SegId(1),
                size: 20,
            },
            // Wild touch of seg 0 at offset 25 lands in seg 1's names:
            // silently resolved.
            touch(0, 25),
        ];
        let r = m.run(&ops).unwrap();
        assert_eq!(r.wild_undetected, 1);
        assert_eq!(r.bounds_caught, 0);
    }

    #[test]
    fn name_space_exhaustion_counts_alloc_failures() {
        let mut m = tiny_machine(8, false);
        let ops = vec![
            ProgramOp::Define {
                seg: SegId(0),
                size: 1000,
            },
            ProgramOp::Define {
                seg: SegId(1),
                size: 100,
            }, // 1100 > 1024
        ];
        let r = m.run(&ops).unwrap();
        assert_eq!(r.alloc_failures, 1);
    }

    #[test]
    fn grow_moves_to_fresh_names_shrink_stays() {
        let mut m = tiny_machine(16, false);
        let ops = vec![
            ProgramOp::Define {
                seg: SegId(0),
                size: 32,
            },
            touch(0, 0),
            ProgramOp::Resize {
                seg: SegId(0),
                size: 16,
            }, // shrink in place
            touch(0, 0), // hit: same names
            ProgramOp::Resize {
                seg: SegId(0),
                size: 64,
            }, // grow: fresh names
            touch(0, 0), // fault: different page now
        ];
        let r = m.run(&ops).unwrap();
        // Faults: first touch (1), after shrink still resident (0),
        // after grow the new name is unmapped (1).
        assert_eq!(r.faults, 2);
    }

    #[test]
    fn out_of_extent_wild_touch_is_caught() {
        let mut m = tiny_machine(8, false);
        let ops = vec![
            ProgramOp::Define {
                seg: SegId(0),
                size: 1000,
            },
            touch(0, 1010), // 1010 >= extent 1024? no: 1010 < 1024, lands in names
            touch(0, 1030), // 1030 >= 1024: trapped by the name-space limit
        ];
        let r = m.run(&ops).unwrap();
        assert_eq!(r.wild_undetected, 1);
        assert_eq!(r.bounds_caught, 1);
    }

    #[test]
    fn advice_is_ignored_when_not_accepted() {
        use dsa_core::advice::{Advice, AdviceUnit};
        let mut m = tiny_machine(8, false);
        let ops = vec![
            ProgramOp::Define {
                seg: SegId(0),
                size: 32,
            },
            ProgramOp::Advise(Advice::WillNeed(AdviceUnit::Segment(SegId(0)))),
        ];
        let r = m.run(&ops).unwrap();
        assert_eq!(r.advice_ops, 0);
        assert_eq!(r.prefetches, 0);
    }

    #[test]
    fn prefetch_counts_words_and_is_useful() {
        use dsa_core::advice::{Advice, AdviceUnit};
        let mut m = tiny_machine(8, true);
        let ops = vec![
            ProgramOp::Define {
                seg: SegId(0),
                size: 32,
            }, // 2 pages
            ProgramOp::Advise(Advice::WillNeed(AdviceUnit::Segment(SegId(0)))),
            touch(0, 0),
            touch(0, 20),
        ];
        let r = m.run(&ops).unwrap();
        assert_eq!(r.prefetches, 2);
        assert_eq!(r.useful_prefetches, 2);
        assert_eq!(r.faults, 0, "prefetch absorbed both first touches");
        assert_eq!(r.fetched_words, 32);
    }

    #[test]
    fn eviction_keeps_device_in_step() {
        let mut m = tiny_machine(2, false); // 2 frames only
        let mut ops = vec![ProgramOp::Define {
            seg: SegId(0),
            size: 64,
        }]; // 4 pages
        for round in 0..3 {
            for page in 0..4u64 {
                let _ = round;
                ops.push(touch(0, page * 16));
            }
        }
        let r = m.run(&ops).unwrap();
        // 4-page cyclic sweep over 2 LRU frames: every touch faults.
        assert_eq!(r.faults, 12);
        assert_eq!(r.touches, 12);
    }
}
