//! The seven machines, with the appendix's published parameters.

use dsa_core::clock::Cycles;
use dsa_core::ids::Words;
use dsa_core::taxonomy::{
    AllocationUnit, Contiguity, NameSpaceKind, PredictiveInfo, SystemCharacteristics,
};
use dsa_freelist::freelist::{FreeListAllocator, Placement};
use dsa_freelist::rice::RiceAllocator;
use dsa_mapping::associative::{AssocPolicy, FrameAssociativeMap};
use dsa_mapping::block_map::BlockMap;
use dsa_mapping::cost::MapCosts;
use dsa_mapping::two_level::TwoLevelMap;
use dsa_paging::paged::PagedMemory;
use dsa_paging::replacement::atlas::AtlasLearning;
use dsa_paging::replacement::nru::ClassRandomRepl;
use dsa_seg::store::{SegReplacement, SegmentStore, StoreBackend};
use dsa_storage::level::presets as levels;

use crate::linear::{LinearMapDevice, LinearPagedMachine};
use crate::multilevel::{PagedSegmentedMachine, SegmentUse};
use crate::report::Machine;
use crate::segmented::SegmentedMachine;

/// Ferranti ATLAS (A.1): 16K-word core + 98K-word drum, 512-word pages,
/// frame-associative mapping, the learning-program replacement strategy
/// with one frame kept vacant. The first demand-paging machine.
#[must_use]
pub fn atlas() -> LinearPagedMachine {
    let core = levels::atlas_core();
    let drum = levels::atlas_drum();
    let page_size: Words = 512;
    let frames = (core.capacity / page_size) as usize; // 32
    let name_extent: Words = 1 << 20; // the one-level store's large linear space
    let costs = MapCosts::for_core_cycle(core.latency);
    LinearPagedMachine::new(
        "Ferranti ATLAS",
        SystemCharacteristics {
            name_space: NameSpaceKind::Linear {
                extent: name_extent,
            },
            predictive: PredictiveInfo::None,
            contiguity: Contiguity::Artificial,
            unit: AllocationUnit::Uniform { page_size },
        },
        page_size,
        name_extent,
        LinearMapDevice::FrameAssociative(FrameAssociativeMap::new(frames, 9, name_extent, costs)),
        PagedMemory::new(frames, Box::new(AtlasLearning::new())).with_vacant_reserve(),
        drum.transfer_time(page_size),
        false,
    )
}

/// IBM M44/44X (A.2): ~200K words of 8 µs core, IBM 1301 disk backing,
/// 2M-word virtual name space per 44X, mapping store, class-based random
/// replacement, and the two advice instructions.
#[must_use]
pub fn m44_44x() -> LinearPagedMachine {
    let core = levels::m44_core();
    let disk = levels::ibm1301_disk();
    let page_size: Words = 1024; // "may be varied at system start-up"
    let frames = (core.capacity / page_size) as usize; // 195
    let name_extent: Words = 2 * 1024 * 1024; // "approximately two million words"
    let costs = MapCosts::for_core_cycle(core.latency);
    LinearPagedMachine::new(
        "IBM M44/44X",
        SystemCharacteristics {
            name_space: NameSpaceKind::Linear {
                extent: name_extent,
            },
            predictive: PredictiveInfo::Advisory,
            contiguity: Contiguity::Artificial,
            unit: AllocationUnit::Uniform { page_size },
        },
        page_size,
        name_extent,
        LinearMapDevice::MappingStore(BlockMap::new((name_extent / page_size) as usize, 10, costs)),
        PagedMemory::new(frames, Box::new(ClassRandomRepl::new(44, 8))),
        disk.transfer_time(page_size),
        true,
    )
}

/// Burroughs B5000 (A.3): symbolically segmented, segments of at most
/// 1024 words allocated directly (best-fit — "choosing the smallest
/// available block of sufficient size"), cyclic replacement, fetch on
/// first reference.
#[must_use]
pub fn b5000() -> SegmentedMachine {
    let core = levels::b5000_core();
    let drum = levels::b5000_drum();
    let costs = MapCosts::for_core_cycle(core.latency);
    SegmentedMachine::new(
        "Burroughs B5000",
        SystemCharacteristics {
            name_space: NameSpaceKind::SymbolicallySegmented {
                max_segment_extent: 1024,
            },
            predictive: PredictiveInfo::None,
            contiguity: Contiguity::Physical,
            unit: AllocationUnit::Variable,
        },
        SegmentStore::new(
            StoreBackend::FreeList(FreeListAllocator::new(core.capacity, Placement::BestFit)),
            SegReplacement::Cyclic,
            1024,
        ),
        costs,
        None,
        drum.latency,
        drum.word_time,
        1024,
    )
}

/// Rice University Computer (A.4): codeword-characterized segments,
/// sequential placement with the inactive-block chain, deferred
/// combining, the iterative replacement algorithm — and only magnetic
/// tape behind working storage.
#[must_use]
pub fn rice() -> SegmentedMachine {
    let core = levels::rice_core();
    let tape = levels::tape();
    let costs = MapCosts::for_core_cycle(core.latency);
    SegmentedMachine::new(
        "Rice University Computer",
        SystemCharacteristics {
            name_space: NameSpaceKind::SymbolicallySegmented {
                max_segment_extent: core.capacity,
            },
            predictive: PredictiveInfo::None,
            contiguity: Contiguity::Physical,
            unit: AllocationUnit::Variable,
        },
        SegmentStore::new(
            StoreBackend::Rice(RiceAllocator::new(core.capacity)),
            SegReplacement::RiceIterative,
            core.capacity,
        ),
        costs,
        None,
        tape.latency,
        tape.word_time,
        core.capacity,
    )
}

/// Burroughs B8500 (A.5): the B5000 scheme with a 44-word thin-film
/// associative memory retaining recently used PRT elements, on a much
/// faster and larger machine.
#[must_use]
pub fn b8500() -> SegmentedMachine {
    let drum = levels::b5000_drum();
    let costs = MapCosts::for_core_cycle(Cycles::from_nanos(500));
    SegmentedMachine::new(
        "Burroughs B8500",
        SystemCharacteristics {
            name_space: NameSpaceKind::SymbolicallySegmented {
                max_segment_extent: 1024,
            },
            predictive: PredictiveInfo::None,
            contiguity: Contiguity::Physical,
            unit: AllocationUnit::Variable,
        },
        SegmentStore::new(
            StoreBackend::FreeList(FreeListAllocator::new(65_536, Placement::BestFit)),
            SegReplacement::Cyclic,
            1024,
        ),
        costs,
        Some(SegmentedMachine::b8500_cache()),
        drum.latency,
        drum.word_time,
        1024,
    )
}

/// MULTICS / GE 645 (A.6): the "small but useful" configuration — 128K
/// words of core, drum behind it; a linearly segmented name space used
/// symbolically; Figure 4 mapping with a small associative memory;
/// paged allocation; keep/fetch/release advice.
///
/// The machine is simulated with uniform 1024-word pages; the 64-word
/// small-page refinement is treated analytically in experiments E6/E11
/// (`dsa_freelist::frag::dual_size_waste`).
///
/// # Panics
///
/// Never panics; the configuration is statically valid.
// Invariant: the constructor's arguments are compile-time constants and
// the tests below exercise this preset; the expect cannot fire at runtime.
#[allow(clippy::expect_used)]
#[must_use]
pub fn multics() -> PagedSegmentedMachine {
    let core = levels::ge645_core();
    let drum = levels::ge645_drum();
    let page_size: Words = 1024;
    let frames = (core.capacity / page_size) as usize; // 128
    let costs = MapCosts::for_core_cycle(core.latency);
    PagedSegmentedMachine::new(
        "MULTICS (GE 645)",
        SystemCharacteristics {
            name_space: NameSpaceKind::LinearlySegmented {
                max_segments: 4096,
                max_segment_extent: 262_144, // 256K words
            },
            predictive: PredictiveInfo::Advisory,
            contiguity: Contiguity::Artificial,
            unit: AllocationUnit::MultiSize {
                sizes: vec![64, 1024],
            },
        },
        TwoLevelMap::new(4096, 262_144, 10, 16, AssocPolicy::Lru, costs),
        PagedMemory::new(frames, Box::new(ClassRandomRepl::new(645, 8))),
        page_size,
        drum.transfer_time(page_size),
        SegmentUse::PerObject,
        true,
    )
    .expect("static configuration is valid")
}

/// IBM System/360 Model 67 (A.7): 24-bit addressing — 16 segments of a
/// million bytes; two-level mapping with an 8-entry associative memory;
/// 4096-byte (1024-word) pages; independent programs packed into one
/// segment, so segmentation conveys no structure.
///
/// # Panics
///
/// Never panics; the configuration is statically valid.
// Invariant: the constructor's arguments are compile-time constants and
// the tests below exercise this preset; the expect cannot fire at runtime.
#[allow(clippy::expect_used)]
#[must_use]
pub fn model67() -> PagedSegmentedMachine {
    let core = levels::model67_core();
    let drum = levels::model67_drum();
    let page_size: Words = 1024;
    let frames = (core.capacity / page_size) as usize; // 192
    let seg_extent: Words = 262_144; // 1M bytes in 32-bit words
    let costs = MapCosts::for_core_cycle(core.latency);
    PagedSegmentedMachine::new(
        "IBM 360/67",
        SystemCharacteristics {
            name_space: NameSpaceKind::LinearlySegmented {
                max_segments: 16,
                max_segment_extent: seg_extent,
            },
            predictive: PredictiveInfo::None,
            contiguity: Contiguity::Artificial,
            unit: AllocationUnit::Uniform { page_size },
        },
        TwoLevelMap::new(16, seg_extent, 10, 8, AssocPolicy::Lru, costs),
        PagedMemory::new(frames, Box::new(ClassRandomRepl::new(67, 8))),
        page_size,
        drum.transfer_time(page_size),
        SegmentUse::PackedIntoOne { extent: seg_extent },
        false,
    )
    .expect("static configuration is valid")
}

/// All seven machines, in appendix order.
#[must_use]
pub fn all_machines() -> Vec<Box<dyn Machine>> {
    (0..machine_count()).map(machine_by_index).collect()
}

/// Number of appendix machines ([`machine_by_index`]'s domain).
#[must_use]
pub const fn machine_count() -> usize {
    7
}

/// Constructs appendix machine `index` (0-based, appendix order). Lets
/// a parallel sweep build each worker's machine on the worker itself
/// instead of shipping one pre-built list across threads.
///
/// # Panics
///
/// Panics if `index >= machine_count()`.
#[must_use]
pub fn machine_by_index(index: usize) -> Box<dyn Machine> {
    match index {
        0 => Box::new(atlas()),
        1 => Box::new(m44_44x()),
        2 => Box::new(b5000()),
        3 => Box::new(rice()),
        4 => Box::new(b8500()),
        5 => Box::new(multics()),
        6 => Box::new(model67()),
        _ => panic!("machine index {index} out of range"),
    }
}

/// The authors' own favoured combination (end of §Basic
/// Characteristics): "(i) a symbolically segmented name space; (ii)
/// provisions for accepting predictions about future use of segments;
/// (iii) artificial contiguity used if it is essential, to provide
/// large segments, but with use of the mapping device avoided in
/// accessing small segments; and (iv) nonuniform units of allocation,
/// corresponding closely to the size of small segments, but with large
/// segments if allowed, allocated using a set of separate blocks."
///
/// No 1967 machine built this point; our components compose it
/// directly: symbolic segments allocated request-sized, large segments
/// chunked into separate 4096-word blocks (the per-segment chunk map is
/// the "mapping device used only if essential"), a descriptor cache so
/// small-segment access avoids the table walk, and the full advisory
/// repertoire.
#[must_use]
pub fn favoured() -> SegmentedMachine {
    let drum = levels::ge645_drum();
    let costs = MapCosts::for_core_cycle(Cycles::from_micros(1));
    SegmentedMachine::new(
        "Favoured (Randell-Kuehner)",
        SystemCharacteristics {
            name_space: NameSpaceKind::SymbolicallySegmented {
                max_segment_extent: u64::MAX,
            },
            predictive: PredictiveInfo::Advisory,
            contiguity: Contiguity::Artificial,
            unit: AllocationUnit::Variable,
        },
        SegmentStore::new(
            StoreBackend::FreeList(FreeListAllocator::new(49_152, Placement::BestFit)),
            SegReplacement::RiceIterative,
            4096,
        ),
        costs,
        Some(SegmentedMachine::b8500_cache()),
        drum.latency,
        drum.word_time,
        4096,
    )
    .with_advice()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::access::{AccessKind, ProgramOp};
    use dsa_core::ids::SegId;
    use dsa_trace::program::ProgramCfg;
    use dsa_trace::rng::Rng64;

    fn tiny_program() -> Vec<ProgramOp> {
        vec![
            ProgramOp::Define {
                seg: SegId(0),
                size: 600,
            },
            ProgramOp::Define {
                seg: SegId(1),
                size: 1500,
            },
            ProgramOp::Touch {
                seg: SegId(0),
                offset: 10,
                kind: AccessKind::Read,
            },
            ProgramOp::Touch {
                seg: SegId(0),
                offset: 11,
                kind: AccessKind::Write,
            },
            ProgramOp::Touch {
                seg: SegId(1),
                offset: 1400,
                kind: AccessKind::Read,
            },
            ProgramOp::Touch {
                seg: SegId(1),
                offset: 2000,
                kind: AccessKind::Read,
            }, // wild
            ProgramOp::Delete { seg: SegId(0) },
            ProgramOp::Delete { seg: SegId(1) },
        ]
    }

    #[test]
    fn every_machine_runs_the_tiny_program() {
        for mut m in all_machines() {
            let r = m
                .run(&tiny_program())
                .unwrap_or_else(|_| panic!("{}", m.name()));
            assert_eq!(r.touches, 4, "{}", m.name());
            assert!(r.faults >= 1, "{} took no faults", m.name());
            assert!(
                r.bounds_caught + r.wild_undetected == 1,
                "{}: wild touch must be caught or counted as undetected",
                m.name()
            );
        }
    }

    #[test]
    fn segmented_machines_catch_the_wild_touch() {
        for mut m in [
            Box::new(b5000()) as Box<dyn Machine>,
            Box::new(rice()),
            Box::new(b8500()),
        ] {
            let r = m.run(&tiny_program()).unwrap();
            assert_eq!(r.bounds_caught, 1, "{}", m.name());
            assert_eq!(r.wild_undetected, 0, "{}", m.name());
        }
    }

    #[test]
    fn linear_machines_miss_the_wild_touch() {
        for mut m in [Box::new(atlas()) as Box<dyn Machine>, Box::new(m44_44x())] {
            let r = m.run(&tiny_program()).unwrap();
            assert_eq!(r.wild_undetected, 1, "{}", m.name());
            assert_eq!(r.bounds_caught, 0, "{}", m.name());
        }
    }

    #[test]
    fn multics_catches_but_model67_misses() {
        let r = multics().run(&tiny_program()).unwrap();
        assert_eq!(
            r.bounds_caught, 1,
            "MULTICS per-object segments check bounds"
        );
        let r = model67().run(&tiny_program()).unwrap();
        assert_eq!(r.wild_undetected, 1, "the packed 360/67 segment cannot");
    }

    #[test]
    fn characteristics_match_the_survey() {
        let a = atlas();
        assert!(!a.characteristics().name_space.is_segmented());
        assert_eq!(a.characteristics().predictive, PredictiveInfo::None);
        let m = m44_44x();
        assert_eq!(m.characteristics().predictive, PredictiveInfo::Advisory);
        let b = b5000();
        assert_eq!(b.characteristics().unit, AllocationUnit::Variable);
        assert_eq!(b.characteristics().contiguity, Contiguity::Physical);
        let mu = multics();
        assert!(matches!(
            mu.characteristics().unit,
            AllocationUnit::MultiSize { .. }
        ));
    }

    #[test]
    fn synthetic_program_runs_everywhere() {
        let mut rng = Rng64::new(9);
        let cfg = ProgramCfg {
            segments: 12,
            touches: 3000,
            ..ProgramCfg::default()
        };
        let program = cfg.generate(&mut rng);
        for mut m in all_machines() {
            let r = m
                .run(&program.ops)
                .unwrap_or_else(|_| panic!("{}", m.name()));
            assert_eq!(r.touches, 3000, "{}", m.name());
            assert!(r.faults > 0, "{}", m.name());
            assert!(r.fetched_words > 0, "{}", m.name());
        }
    }

    #[test]
    fn advice_machines_act_on_advice() {
        let mut rng = Rng64::new(10);
        let cfg = ProgramCfg {
            segments: 12,
            touches: 2000,
            advice_accuracy: Some(1.0),
            ..ProgramCfg::default()
        };
        let program = cfg.generate(&mut rng);
        let r = m44_44x().run(&program.ops).unwrap();
        assert!(r.advice_ops > 0, "M44 must act on advice");
        let r = multics().run(&program.ops).unwrap();
        assert!(r.advice_ops > 0, "MULTICS must act on advice");
        let r = atlas().run(&program.ops).unwrap();
        assert_eq!(r.advice_ops, 0, "ATLAS accepts no predictive information");
    }

    #[test]
    fn favoured_design_combines_the_virtues() {
        let mut rng = Rng64::new(12);
        let mut cfg = ProgramCfg {
            segments: 16,
            touches: 4000,
            advice_accuracy: Some(1.0),
            ..ProgramCfg::default()
        };
        cfg.wild_touch_prob = 0.01;
        let program = cfg.generate(&mut rng);
        let mut m = favoured();
        let r = m.run(&program.ops).unwrap();
        // Symbolic segmentation: every wild touch caught.
        assert_eq!(r.wild_undetected, 0);
        assert!(r.bounds_caught > 0);
        // Advisory: directives are honoured.
        assert!(r.advice_ops > 0);
        // Descriptor cache: mapping overhead in the associative range,
        // far below a raw table walk on a 1 us core.
        assert!(
            r.mean_map_overhead_nanos() < 1000.0,
            "{}",
            r.mean_map_overhead_nanos()
        );
        // Large segments work despite variable allocation.
        let chars = m.characteristics();
        assert!(matches!(
            chars.name_space,
            NameSpaceKind::SymbolicallySegmented {
                max_segment_extent: u64::MAX
            }
        ));
    }

    #[test]
    fn b5000_ignores_advice_but_favoured_acts() {
        let mut rng = Rng64::new(13);
        let cfg = ProgramCfg {
            segments: 12,
            touches: 2000,
            advice_accuracy: Some(1.0),
            ..ProgramCfg::default()
        };
        let program = cfg.generate(&mut rng);
        let r5 = b5000().run(&program.ops).unwrap();
        assert_eq!(r5.advice_ops, 0, "the real B5000 accepted no predictions");
        let rf = favoured().run(&program.ops).unwrap();
        assert!(rf.advice_ops > 0);
    }

    #[test]
    fn b8500_mapping_is_cheaper_than_b5000() {
        let mut rng = Rng64::new(11);
        let program = ProgramCfg {
            segments: 10,
            touches: 4000,
            ..ProgramCfg::default()
        }
        .generate(&mut rng);
        let r5000 = b5000().run(&program.ops).unwrap();
        let r8500 = b8500().run(&program.ops).unwrap();
        assert!(
            r8500.mean_map_overhead_nanos() < r5000.mean_map_overhead_nanos(),
            "associative memory must cut descriptor-access overhead: {} vs {}",
            r8500.mean_map_overhead_nanos(),
            r5000.mean_map_overhead_nanos()
        );
    }
}
