//! Paged-segment machines: MULTICS and the IBM 360/67.
//!
//! Both use the two-level mapping of Figure 4: a segment table and
//! per-segment page tables, fronted by a small associative memory. They
//! differ in how the segmented name space is *used*:
//!
//! * MULTICS gives each user object its own segment ("used as a
//!   symbolically segmented name space" by convention), so bounds are
//!   meaningful per object;
//! * the 24-bit 360/67 has only 16 large segments, so "it is necessary
//!   to pack, for example, several independent programs into the same
//!   segment. Therefore the segmentation is intended to reduce the
//!   number of page table entries ... and not normally to convey
//!   structural information" — our adapter packs every user segment
//!   into one machine segment, and out-of-bounds subscripts accordingly
//!   go undetected unless they cross the big segment's limit.

use std::collections::HashMap;

use dsa_core::access::ProgramOp;
use dsa_core::advice::{Advice, AdviceUnit};
use dsa_core::clock::{Cycles, VirtualTime};
use dsa_core::error::{AccessFault, CoreError};
use dsa_core::ids::{PageNo, SegId, Words};
use dsa_core::taxonomy::SystemCharacteristics;
use dsa_faults::FaultConfig;
use dsa_mapping::two_level::TwoLevelMap;
use dsa_paging::paged::{PagedMemory, TouchOutcome};
use dsa_probe::{EventKind, NullProbe, Probe, Stamp};

use crate::faults_rt::{self, FaultState};
use crate::report::{Machine, MachineReport};

/// How user segments map onto machine segments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SegmentUse {
    /// One machine segment per user segment (MULTICS).
    PerObject,
    /// All user objects packed into machine segment 0 (24-bit 360/67).
    PackedIntoOne {
        /// The big segment's extent in words.
        extent: Words,
    },
}

/// A machine with the Figure 4 two-level mapping over demand paging.
pub struct PagedSegmentedMachine {
    name: &'static str,
    chars: SystemCharacteristics,
    map: TwoLevelMap,
    memory: PagedMemory,
    page_size: Words,
    page_fetch: Cycles,
    seg_use: SegmentUse,
    accepts_advice: bool,
    /// For `PackedIntoOne`: user segment -> (offset within segment 0,
    /// user size). For `PerObject`: user segment -> its declared size
    /// (machine segment id equals user id).
    packed_layout: HashMap<SegId, (Words, Words)>,
    packed_bump: Words,
    now: VirtualTime,
    /// Armed fault injection and its recovery state, if any.
    faults: Option<FaultState>,
}

impl PagedSegmentedMachine {
    /// Assembles the machine. For [`SegmentUse::PackedIntoOne`] the big
    /// segment is created immediately.
    ///
    /// # Errors
    ///
    /// Returns a configuration error if the packed segment cannot be
    /// created.
    // Each argument is one hardware component of the appendix's spec;
    // a builder would only obscure that correspondence.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &'static str,
        chars: SystemCharacteristics,
        mut map: TwoLevelMap,
        memory: PagedMemory,
        page_size: Words,
        page_fetch: Cycles,
        seg_use: SegmentUse,
        accepts_advice: bool,
    ) -> Result<PagedSegmentedMachine, CoreError> {
        if let SegmentUse::PackedIntoOne { extent } = seg_use {
            map.create_segment(SegId(0), extent)
                .map_err(CoreError::Access)?;
        }
        Ok(PagedSegmentedMachine {
            name,
            chars,
            map,
            // Traced transfers must carry the machine's page size.
            memory: memory.with_words_per_page(page_size),
            page_size,
            page_fetch,
            seg_use,
            accepts_advice,
            packed_layout: HashMap::new(),
            packed_bump: 0,
            now: 0,
            faults: None,
        })
    }

    /// Arms seed-driven fault injection for subsequent runs: transfer
    /// errors are retried with backoff, bad frames are quarantined with
    /// the page refetched elsewhere, and storage exhaustion degrades
    /// through shed-load instead of aborting the run. The per-run
    /// recovery accounting lands in [`MachineReport::recovery`].
    #[must_use]
    pub fn with_fault_injection(mut self, seed: u64, config: FaultConfig) -> PagedSegmentedMachine {
        self.faults = Some(FaultState::new(seed, config));
        self
    }

    /// Verifies the paging engine's internal invariants.
    ///
    /// # Panics
    ///
    /// Panics if frame bookkeeping is inconsistent (see
    /// [`PagedMemory::check_invariants`]).
    pub fn check_invariants(&self) {
        self.memory.check_invariants();
    }

    /// Resolves a user touch to `(machine segment, offset, user size)`.
    fn locate(&self, seg: SegId, offset: Words) -> Option<(SegId, Words, Words)> {
        match self.seg_use {
            SegmentUse::PerObject => {
                let &(_, size) = self.packed_layout.get(&seg)?;
                Some((seg, offset, size))
            }
            SegmentUse::PackedIntoOne { .. } => {
                let &(base, size) = self.packed_layout.get(&seg)?;
                Some((SegId(0), base + offset, size))
            }
        }
    }

    fn service_fault<P: Probe + ?Sized>(
        &mut self,
        page: PageNo,
        write: bool,
        report: &mut MachineReport,
        clock: &mut Cycles,
        probe: &mut P,
    ) -> Result<(), CoreError> {
        let (mseg, index) = TwoLevelMap::decode_page(page);
        // The engine emits `Fault` and per-victim `Evict`; the machine
        // owns the transfer events, because only it knows the channel
        // timing.
        match self
            .memory
            .touch_probed(page, write, Stamp::at(*clock, self.now), probe)?
        {
            TouchOutcome::Fault { frame, evicted } => {
                probe.emit(
                    EventKind::FetchStart {
                        words: self.page_size,
                    },
                    Stamp::at(*clock, self.now),
                );
                if let Some(e) = evicted {
                    let (eseg, eindex) = TwoLevelMap::decode_page(e.page);
                    // The evicted page's segment may have been deleted.
                    let _ = self.map.unmap_page(eseg, eindex);
                    if e.dirty {
                        probe.emit(
                            EventKind::Writeback {
                                words: self.page_size,
                            },
                            Stamp::at(*clock, self.now),
                        );
                        let extra = faults_rt::transfer_extra(
                            &mut self.faults,
                            self.page_fetch,
                            Stamp::at(*clock, self.now),
                            probe,
                        );
                        report.writeback_words += self.page_size;
                        report.fetch_time += self.page_fetch + extra;
                        *clock += self.page_fetch + extra;
                    }
                }
                self.map
                    .map_page(mseg, index, frame)
                    .map_err(CoreError::Access)?;
                report.faults += 1;
                report.fetched_words += self.page_size;
                let extra = faults_rt::transfer_extra(
                    &mut self.faults,
                    self.page_fetch,
                    Stamp::at(*clock, self.now),
                    probe,
                );
                report.fetch_time += self.page_fetch + extra;
                *clock += self.page_fetch + extra;
                probe.emit(
                    EventKind::FetchDone {
                        words: self.page_size,
                    },
                    Stamp::at(*clock, self.now),
                );
                // The transfer may have filled a frame whose storage is
                // bad: quarantine it and refetch the page into a
                // surviving frame (remap-and-refetch). The recursive
                // service does the full accounting for the extra fetch.
                let bad =
                    faults_rt::frame_bad(&mut self.faults, Stamp::at(*clock, self.now), probe);
                if bad && self.memory.retire_frame(frame) {
                    faults_rt::note_quarantined(
                        &mut self.faults,
                        Stamp::at(*clock, self.now),
                        probe,
                    );
                    let _ = self.map.unmap_page(mseg, index);
                    self.service_fault(page, write, report, clock, probe)?;
                }
            }
            TouchOutcome::Hit { .. } => {}
        }
        Ok(())
    }

    /// Evicts every resident page of machine segment `mseg` from the
    /// paging engine (used on delete/release), tracing each `Evict`.
    fn drop_segment_pages<P: Probe + ?Sized>(&mut self, mseg: SegId, limit: Words, probe: &mut P) {
        let pages = limit.div_ceil(self.page_size);
        for index in 0..pages {
            let global = self.map.global_page(mseg, index);
            if self.memory.frame_of(global).is_some() {
                self.memory.advise_probed(
                    Advice::Release(AdviceUnit::Page(global)),
                    Stamp::vtime(self.now),
                    probe,
                );
            }
            let _ = self.map.unmap_page(mseg, index);
        }
    }

    /// [`Machine::run`] generically over any probe; `run` and
    /// `run_probed` both land here.
    ///
    /// # Errors
    ///
    /// As [`Machine::run`].
    pub fn run_with<P: Probe + ?Sized>(
        &mut self,
        ops: &[ProgramOp],
        probe: &mut P,
    ) -> Result<MachineReport, CoreError> {
        let mut clock = Cycles::ZERO;
        let mut report = MachineReport {
            machine: self.name.to_owned(),
            ..MachineReport::default()
        };
        if let Some(fs) = self.faults.as_mut() {
            fs.begin_run();
        }
        for op in ops {
            match *op {
                ProgramOp::Define { seg, size } => {
                    if faults_rt::alloc_refused(&mut self.faults, Stamp::at(clock, self.now), probe)
                    {
                        report.alloc_failures += 1;
                        continue;
                    }
                    match self.seg_use {
                        SegmentUse::PerObject => {
                            if self.map.create_segment(seg, size).is_ok() {
                                self.packed_layout.insert(seg, (0, size));
                                probe.emit(
                                    EventKind::Alloc {
                                        words: size,
                                        searched: 0,
                                    },
                                    Stamp::at(clock, self.now),
                                );
                            } else {
                                report.alloc_failures += 1;
                            }
                        }
                        SegmentUse::PackedIntoOne { extent } => {
                            if self.packed_bump + size > extent {
                                report.alloc_failures += 1;
                            } else {
                                self.packed_layout.insert(seg, (self.packed_bump, size));
                                self.packed_bump += size;
                                probe.emit(
                                    EventKind::Alloc {
                                        words: size,
                                        searched: 0,
                                    },
                                    Stamp::at(clock, self.now),
                                );
                            }
                        }
                    }
                }
                ProgramOp::Resize { seg, size } => match self.seg_use {
                    SegmentUse::PerObject => {
                        if self.map.resize_segment(seg, size).is_ok() {
                            self.packed_layout.insert(seg, (0, size));
                        }
                    }
                    SegmentUse::PackedIntoOne { extent } => {
                        let Some(&(base, old)) = self.packed_layout.get(&seg) else {
                            continue;
                        };
                        if size <= old {
                            self.packed_layout.insert(seg, (base, size));
                        } else if self.packed_bump + size <= extent {
                            self.packed_layout.insert(seg, (self.packed_bump, size));
                            self.packed_bump += size;
                        } else {
                            report.alloc_failures += 1;
                        }
                    }
                },
                ProgramOp::Delete { seg } => match self.seg_use {
                    SegmentUse::PerObject => {
                        if let Some(limit) = self.map.segment_limit(seg) {
                            self.drop_segment_pages(seg, limit, probe);
                        }
                        self.map.delete_segment(seg);
                        if let Some((_, size)) = self.packed_layout.remove(&seg) {
                            probe.emit(EventKind::Free { words: size }, Stamp::at(clock, self.now));
                        }
                    }
                    SegmentUse::PackedIntoOne { .. } => {
                        // Packed names are not reclaimed; the pages decay
                        // out of working storage by replacement.
                        if let Some((_, size)) = self.packed_layout.remove(&seg) {
                            probe.emit(EventKind::Free { words: size }, Stamp::at(clock, self.now));
                        }
                    }
                },
                ProgramOp::Touch { seg, offset, kind } => {
                    let Some((mseg, moffset, user_size)) = self.locate(seg, offset) else {
                        continue;
                    };
                    report.touches += 1;
                    self.now += 1;
                    probe.emit(
                        EventKind::Touch {
                            write: kind.is_write(),
                        },
                        Stamp::at(clock, self.now),
                    );
                    let wild = offset >= user_size;
                    let t = self.map.translate_pair_probed(
                        mseg,
                        moffset,
                        Stamp::at(clock, self.now),
                        probe,
                    );
                    report.map_time += t.cost;
                    clock += t.cost;
                    match t.outcome {
                        Ok(_) => {
                            if wild {
                                // Resolved fine inside someone else's
                                // names: undetected.
                                report.wild_undetected += 1;
                            }
                            let page = self.map.global_page(mseg, moffset / self.page_size);
                            self.memory.touch_probed(
                                page,
                                kind.is_write(),
                                Stamp::at(clock, self.now),
                                probe,
                            )?;
                        }
                        Err(AccessFault::MissingPage { page }) => {
                            if wild {
                                report.wild_undetected += 1;
                            }
                            match self.service_fault(
                                page,
                                kind.is_write(),
                                &mut report,
                                &mut clock,
                                probe,
                            ) {
                                Ok(()) => {}
                                Err(CoreError::Alloc(e)) => {
                                    // Everything pinned. Degradation:
                                    // shed load (surrender the pins) and
                                    // retry once; without injection this
                                    // aborts, as it always did.
                                    let shed = faults_rt::try_shed(
                                        &mut self.faults,
                                        Stamp::at(clock, self.now),
                                        probe,
                                    );
                                    if !shed {
                                        return Err(CoreError::Alloc(e));
                                    }
                                    self.memory.unpin_all();
                                    match self.service_fault(
                                        page,
                                        kind.is_write(),
                                        &mut report,
                                        &mut clock,
                                        probe,
                                    ) {
                                        Ok(()) => {}
                                        Err(CoreError::Alloc(_)) => report.alloc_failures += 1,
                                        Err(e) => return Err(e),
                                    }
                                }
                                Err(e) => return Err(e),
                            }
                        }
                        Err(AccessFault::BoundsViolation { .. }) => {
                            report.bounds_caught += 1;
                            probe.emit(EventKind::BoundsTrap, Stamp::at(clock, self.now));
                        }
                        Err(AccessFault::UnknownSegment { .. }) => {
                            report.alloc_failures += 1;
                        }
                        Err(f) => return Err(f.into()),
                    }
                }
                ProgramOp::Advise(advice) => {
                    if !self.accepts_advice {
                        continue;
                    }
                    let AdviceUnit::Segment(seg) = advice.unit() else {
                        continue;
                    };
                    let Some((mseg, base, size)) = self.locate(seg, 0) else {
                        continue;
                    };
                    let first = base / self.page_size;
                    let last = (base + size.max(1) - 1) / self.page_size;
                    for index in (first..=last).take(16) {
                        report.advice_ops += 1;
                        probe.emit(EventKind::Advice, Stamp::at(clock, self.now));
                        let global = self.map.global_page(mseg, index);
                        let unit = AdviceUnit::Page(global);
                        let lowered = match advice {
                            Advice::WillNeed(_) => Advice::WillNeed(unit),
                            Advice::WontNeed(_) => Advice::WontNeed(unit),
                            Advice::Pin(_) => Advice::Pin(unit),
                            Advice::Unpin(_) => Advice::Unpin(unit),
                            Advice::Release(_) => Advice::Release(unit),
                        };
                        let outcome =
                            self.memory
                                .advise_probed(lowered, Stamp::at(clock, self.now), probe);
                        if let Some(e) = outcome.evicted {
                            let (eseg, eindex) = TwoLevelMap::decode_page(e.page);
                            let _ = self.map.unmap_page(eseg, eindex);
                            if e.dirty {
                                probe.emit(
                                    EventKind::Writeback {
                                        words: self.page_size,
                                    },
                                    Stamp::at(clock, self.now),
                                );
                                let extra = faults_rt::transfer_extra(
                                    &mut self.faults,
                                    self.page_fetch,
                                    Stamp::at(clock, self.now),
                                    probe,
                                );
                                report.writeback_words += self.page_size;
                                report.fetch_time += self.page_fetch + extra;
                                clock += self.page_fetch + extra;
                            }
                        }
                        if let Some((_, frame)) = outcome.loaded {
                            if self.map.map_page(mseg, index, frame).is_ok() {
                                report.fetched_words += self.page_size;
                                probe.emit(
                                    EventKind::FetchStart {
                                        words: self.page_size,
                                    },
                                    Stamp::at(clock, self.now),
                                );
                                let extra = faults_rt::transfer_extra(
                                    &mut self.faults,
                                    self.page_fetch,
                                    Stamp::at(clock, self.now),
                                    probe,
                                );
                                report.fetch_time += self.page_fetch + extra;
                                clock += self.page_fetch + extra;
                                probe.emit(
                                    EventKind::FetchDone {
                                        words: self.page_size,
                                    },
                                    Stamp::at(clock, self.now),
                                );
                            }
                        }
                    }
                }
                ProgramOp::Compute { .. } => {}
            }
        }
        report.prefetches = self.memory.stats().prefetches;
        report.useful_prefetches = self.memory.stats().useful_prefetches;
        if let Some(fs) = self.faults.as_ref() {
            report.recovery = fs.recovery;
        }
        Ok(report)
    }
}

impl Machine for PagedSegmentedMachine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn characteristics(&self) -> SystemCharacteristics {
        self.chars.clone()
    }

    fn run(&mut self, ops: &[ProgramOp]) -> Result<MachineReport, CoreError> {
        self.run_with(ops, &mut NullProbe)
    }

    fn run_probed(
        &mut self,
        ops: &[ProgramOp],
        probe: &mut dyn Probe,
    ) -> Result<MachineReport, CoreError> {
        self.run_with(ops, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::access::AccessKind;
    use dsa_core::taxonomy::{AllocationUnit, Contiguity, NameSpaceKind, PredictiveInfo};
    use dsa_mapping::associative::AssocPolicy;
    use dsa_mapping::cost::MapCosts;
    use dsa_paging::replacement::lru::LruRepl;

    fn machine(seg_use: SegmentUse, frames: usize, advice: bool) -> PagedSegmentedMachine {
        let costs = MapCosts::for_core_cycle(Cycles::from_micros(1));
        PagedSegmentedMachine::new(
            "test-two-level",
            SystemCharacteristics {
                name_space: NameSpaceKind::LinearlySegmented {
                    max_segments: 8,
                    max_segment_extent: 4096,
                },
                predictive: if advice {
                    PredictiveInfo::Advisory
                } else {
                    PredictiveInfo::None
                },
                contiguity: Contiguity::Artificial,
                unit: AllocationUnit::Uniform { page_size: 64 },
            },
            TwoLevelMap::new(8, 4096, 6, 4, AssocPolicy::Lru, costs),
            PagedMemory::new(frames, Box::new(LruRepl::new())),
            64,
            Cycles::from_micros(100),
            seg_use,
            advice,
        )
        .expect("valid configuration")
    }

    fn touch(seg: u32, offset: u64) -> ProgramOp {
        ProgramOp::Touch {
            seg: SegId(seg),
            offset,
            kind: AccessKind::Read,
        }
    }

    #[test]
    fn per_object_catches_wild_packed_does_not() {
        let ops = vec![
            ProgramOp::Define {
                seg: SegId(1),
                size: 100,
            },
            ProgramOp::Define {
                seg: SegId(2),
                size: 100,
            },
            touch(1, 150), // wild
        ];
        let r = machine(SegmentUse::PerObject, 8, false).run(&ops).unwrap();
        assert_eq!(r.bounds_caught, 1);
        assert_eq!(r.wild_undetected, 0);
        let r = machine(SegmentUse::PackedIntoOne { extent: 4096 }, 8, false)
            .run(&ops)
            .unwrap();
        assert_eq!(r.bounds_caught, 0);
        assert_eq!(r.wild_undetected, 1, "lands in seg 2's packed names");
    }

    #[test]
    fn packed_segment_overflow_counts_failures() {
        let ops = vec![
            ProgramOp::Define {
                seg: SegId(1),
                size: 3000,
            },
            ProgramOp::Define {
                seg: SegId(2),
                size: 2000,
            }, // 5000 > 4096
        ];
        let r = machine(SegmentUse::PackedIntoOne { extent: 4096 }, 8, false)
            .run(&ops)
            .unwrap();
        assert_eq!(r.alloc_failures, 1);
    }

    #[test]
    fn delete_releases_pages_and_tlb() {
        let ops = vec![
            ProgramOp::Define {
                seg: SegId(1),
                size: 100,
            },
            touch(1, 0),
            touch(1, 70),
            ProgramOp::Delete { seg: SegId(1) },
            // Re-declared segment starts cold.
            ProgramOp::Define {
                seg: SegId(1),
                size: 100,
            },
            touch(1, 0),
        ];
        let r = machine(SegmentUse::PerObject, 8, false).run(&ops).unwrap();
        assert_eq!(r.faults, 3, "pages do not survive segment deletion");
    }

    #[test]
    fn dirty_pages_write_back_under_pressure() {
        let mut ops = vec![ProgramOp::Define {
            seg: SegId(1),
            size: 512,
        }]; // 8 pages
        for p in 0..8u64 {
            ops.push(ProgramOp::Touch {
                seg: SegId(1),
                offset: p * 64,
                kind: AccessKind::Write,
            });
        }
        // 2 frames: heavy eviction of dirty pages.
        let r = machine(SegmentUse::PerObject, 2, false).run(&ops).unwrap();
        assert_eq!(r.faults, 8);
        assert!(
            r.writeback_words >= 6 * 64,
            "{} written back",
            r.writeback_words
        );
    }

    #[test]
    fn advice_prefetch_maps_pages() {
        use dsa_core::advice::{Advice, AdviceUnit};
        let ops = vec![
            ProgramOp::Define {
                seg: SegId(1),
                size: 128,
            }, // 2 pages
            ProgramOp::Advise(Advice::WillNeed(AdviceUnit::Segment(SegId(1)))),
            touch(1, 0),
            touch(1, 70),
        ];
        let r = machine(SegmentUse::PerObject, 8, true).run(&ops).unwrap();
        assert_eq!(r.faults, 0, "prefetched pages must be mapped and hit");
        assert_eq!(r.prefetches, 2);
        let r = machine(SegmentUse::PerObject, 8, false).run(&ops).unwrap();
        assert_eq!(r.advice_ops, 0);
        assert_eq!(r.faults, 2);
    }

    #[test]
    fn resize_updates_limit_per_object() {
        let ops = vec![
            ProgramOp::Define {
                seg: SegId(1),
                size: 100,
            },
            ProgramOp::Resize {
                seg: SegId(1),
                size: 50,
            },
            touch(1, 80), // beyond the shrunk limit
        ];
        let r = machine(SegmentUse::PerObject, 8, false).run(&ops).unwrap();
        assert_eq!(r.bounds_caught, 1);
    }
}
