//! The flight recorder: last-N probe events, always on, lock-free.
//!
//! An aircraft flight recorder does not stream telemetry to the ground;
//! it keeps the recent past in a crash-survivable loop so the
//! investigation can replay the final minutes. This is the software
//! analogue for the allocation machines: every thread records its probe
//! events into its own fixed-capacity ring of fixed-width slots —
//! no locks, no allocation, a handful of relaxed atomic stores per
//! event — and when something goes wrong (`ArenaError::Exhausted`, an
//! injected fault, a degradation rung) the rings are merged into one
//! chronological tail and dumped as the postmortem.
//!
//! # Encoding
//!
//! Each event is packed into [`WORDS_PER_SLOT`] `u64` words: a global
//! sequence number, a `tag | flags` meta word, two payload words, and
//! the dual timestamp (cycles as nanoseconds, reference time). The
//! sequence number is drawn from one shared relaxed `fetch_add`, which
//! gives a total order over all threads' events that is consistent with
//! each thread's program order — that order *is* the chronology the
//! merged drain sorts by.
//!
//! # Ordering correctness
//!
//! A slot is written payload-first (relaxed), sequence-word last
//! (release), after first clearing the sequence word; the drain reads
//! the sequence word (acquire), then the payload, then re-reads the
//! sequence word and discards the slot if it changed — a per-slot
//! seqlock. Every access is an atomic, so a racing drain can *miss* an
//! event being overwritten but can never observe a torn one or invoke
//! undefined behaviour. After the emitting threads have joined (or from
//! the faulting thread itself, whose own ring is quiescent), the drain
//! is exact and lossless up to each ring's capacity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dsa_core::clock::Cycles;
use dsa_probe::{DegradationStep, Event, EventKind, InjectedFault, Probe};

/// `u64` words per encoded event: sequence, meta, two payloads, cycles
/// (ns), reference time.
pub const WORDS_PER_SLOT: usize = 6;

/// Compact tags for [`EventKind`]; flags ride in the meta word's second
/// byte.
mod tag {
    pub const TOUCH: u64 = 0;
    pub const FAULT: u64 = 1;
    pub const FETCH_START: u64 = 2;
    pub const FETCH_DONE: u64 = 3;
    pub const EVICT: u64 = 4;
    pub const WRITEBACK: u64 = 5;
    pub const ALLOC: u64 = 6;
    pub const FREE: u64 = 7;
    pub const COMPACTION_START: u64 = 8;
    pub const COMPACTION_DONE: u64 = 9;
    pub const ADVICE: u64 = 10;
    pub const PREFETCH: u64 = 11;
    pub const BOUNDS_TRAP: u64 = 12;
    pub const MAP_LOOKUP: u64 = 13;
    pub const FAULT_INJECTED: u64 = 14;
    pub const RETRY_ATTEMPT: u64 = 15;
    pub const FRAME_QUARANTINED: u64 = 16;
    pub const DEGRADATION_STEP: u64 = 17;
    pub const QUOTA_DENIED: u64 = 18;
    pub const ADMISSION_REJECT: u64 = 19;
    pub const TENANT_SHED: u64 = 20;
    pub const SHARD_QUARANTINED: u64 = 21;
    pub const SHARD_RESTORED: u64 = 22;
    pub const TENANT_ADMITTED: u64 = 23;
    pub const TENANT_DEACTIVATED: u64 = 24;
    pub const WS_ESTIMATE: u64 = 25;
}

/// Packs an event kind into `(meta, a, b)`.
fn encode(kind: EventKind) -> (u64, u64, u64) {
    let meta = |t: u64, flag: u64| t | (flag << 8);
    match kind {
        EventKind::Touch { write } => (meta(tag::TOUCH, u64::from(write)), 0, 0),
        EventKind::Fault => (meta(tag::FAULT, 0), 0, 0),
        EventKind::FetchStart { words } => (meta(tag::FETCH_START, 0), words, 0),
        EventKind::FetchDone { words } => (meta(tag::FETCH_DONE, 0), words, 0),
        EventKind::Evict { dirty, words } => (meta(tag::EVICT, u64::from(dirty)), words, 0),
        EventKind::Writeback { words } => (meta(tag::WRITEBACK, 0), words, 0),
        EventKind::Alloc { words, searched } => (meta(tag::ALLOC, 0), words, searched),
        EventKind::Free { words } => (meta(tag::FREE, 0), words, 0),
        EventKind::CompactionStart => (meta(tag::COMPACTION_START, 0), 0, 0),
        EventKind::CompactionDone { moved_words } => {
            (meta(tag::COMPACTION_DONE, 0), moved_words, 0)
        }
        EventKind::Advice => (meta(tag::ADVICE, 0), 0, 0),
        EventKind::Prefetch { words } => (meta(tag::PREFETCH, 0), words, 0),
        EventKind::BoundsTrap => (meta(tag::BOUNDS_TRAP, 0), 0, 0),
        EventKind::MapLookup { hit } => (meta(tag::MAP_LOOKUP, u64::from(hit)), 0, 0),
        EventKind::FaultInjected { fault } => {
            let f = match fault {
                InjectedFault::TransferError => 0,
                InjectedFault::BadFrame => 1,
                InjectedFault::ChannelDelay => 2,
                InjectedFault::AllocFailure => 3,
                InjectedFault::ShardCorruption => 4,
            };
            (meta(tag::FAULT_INJECTED, f), 0, 0)
        }
        EventKind::RetryAttempt { attempt } => (meta(tag::RETRY_ATTEMPT, 0), u64::from(attempt), 0),
        EventKind::FrameQuarantined => (meta(tag::FRAME_QUARANTINED, 0), 0, 0),
        EventKind::DegradationStep { step } => {
            let s = match step {
                DegradationStep::Coalesce => 0,
                DegradationStep::Compact => 1,
                DegradationStep::EvictVictims => 2,
                DegradationStep::ShedLoad => 3,
                DegradationStep::RetryBackoff => 4,
                DegradationStep::StealGlobal => 5,
                DegradationStep::ShedTenant => 6,
            };
            (meta(tag::DEGRADATION_STEP, s), 0, 0)
        }
        EventKind::QuotaDenied { tenant } => (meta(tag::QUOTA_DENIED, 0), u64::from(tenant), 0),
        EventKind::AdmissionReject { tenant } => {
            (meta(tag::ADMISSION_REJECT, 0), u64::from(tenant), 0)
        }
        EventKind::TenantShed { tenant, words } => {
            (meta(tag::TENANT_SHED, 0), u64::from(tenant), words)
        }
        EventKind::ShardQuarantined { shard } => {
            (meta(tag::SHARD_QUARANTINED, 0), u64::from(shard), 0)
        }
        EventKind::ShardRestored { shard } => (meta(tag::SHARD_RESTORED, 0), u64::from(shard), 0),
        EventKind::TenantAdmitted { tenant, frames } => (
            meta(tag::TENANT_ADMITTED, 0),
            u64::from(tenant),
            u64::from(frames),
        ),
        EventKind::TenantDeactivated { tenant, resident } => (
            meta(tag::TENANT_DEACTIVATED, 0),
            u64::from(tenant),
            u64::from(resident),
        ),
        EventKind::WsEstimate { tenant, pages } => (
            meta(tag::WS_ESTIMATE, 0),
            u64::from(tenant),
            u64::from(pages),
        ),
    }
}

/// Unpacks `(meta, a, b)` back into an event kind; `None` for a
/// corrupt tag (only reachable if a drain raced an overwrite that the
/// seqlock failed to catch — the record is dropped, never misread).
fn decode(meta: u64, a: u64, b: u64) -> Option<EventKind> {
    let flag = (meta >> 8) & 0xFF;
    Some(match meta & 0xFF {
        tag::TOUCH => EventKind::Touch { write: flag != 0 },
        tag::FAULT => EventKind::Fault,
        tag::FETCH_START => EventKind::FetchStart { words: a },
        tag::FETCH_DONE => EventKind::FetchDone { words: a },
        tag::EVICT => EventKind::Evict {
            dirty: flag != 0,
            words: a,
        },
        tag::WRITEBACK => EventKind::Writeback { words: a },
        tag::ALLOC => EventKind::Alloc {
            words: a,
            searched: b,
        },
        tag::FREE => EventKind::Free { words: a },
        tag::COMPACTION_START => EventKind::CompactionStart,
        tag::COMPACTION_DONE => EventKind::CompactionDone { moved_words: a },
        tag::ADVICE => EventKind::Advice,
        tag::PREFETCH => EventKind::Prefetch { words: a },
        tag::BOUNDS_TRAP => EventKind::BoundsTrap,
        tag::MAP_LOOKUP => EventKind::MapLookup { hit: flag != 0 },
        tag::FAULT_INJECTED => EventKind::FaultInjected {
            fault: match flag {
                0 => InjectedFault::TransferError,
                1 => InjectedFault::BadFrame,
                2 => InjectedFault::ChannelDelay,
                3 => InjectedFault::AllocFailure,
                _ => InjectedFault::ShardCorruption,
            },
        },
        tag::RETRY_ATTEMPT => EventKind::RetryAttempt { attempt: a as u32 },
        tag::FRAME_QUARANTINED => EventKind::FrameQuarantined,
        tag::DEGRADATION_STEP => EventKind::DegradationStep {
            step: match flag {
                0 => DegradationStep::Coalesce,
                1 => DegradationStep::Compact,
                2 => DegradationStep::EvictVictims,
                3 => DegradationStep::ShedLoad,
                4 => DegradationStep::RetryBackoff,
                5 => DegradationStep::StealGlobal,
                _ => DegradationStep::ShedTenant,
            },
        },
        tag::QUOTA_DENIED => EventKind::QuotaDenied { tenant: a as u32 },
        tag::ADMISSION_REJECT => EventKind::AdmissionReject { tenant: a as u32 },
        tag::TENANT_SHED => EventKind::TenantShed {
            tenant: a as u32,
            words: b,
        },
        tag::SHARD_QUARANTINED => EventKind::ShardQuarantined { shard: a as u32 },
        tag::SHARD_RESTORED => EventKind::ShardRestored { shard: a as u32 },
        tag::TENANT_ADMITTED => EventKind::TenantAdmitted {
            tenant: a as u32,
            frames: b as u32,
        },
        tag::TENANT_DEACTIVATED => EventKind::TenantDeactivated {
            tenant: a as u32,
            resident: b as u32,
        },
        tag::WS_ESTIMATE => EventKind::WsEstimate {
            tenant: a as u32,
            pages: b as u32,
        },
        _ => return None,
    })
}

/// One thread's ring: `capacity * WORDS_PER_SLOT` atomic words plus the
/// monotone write head. Written only by the owning handle; read by any
/// drain.
struct Ring {
    slots: Vec<AtomicU64>,
    head: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity * WORDS_PER_SLOT)
                .map(|_| AtomicU64::new(0))
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len() / WORDS_PER_SLOT
    }

    /// Writes one record; called only by the owning handle's thread.
    fn write(&self, seq: u64, event: &Event) {
        let cap = self.capacity();
        let head = self.head.load(Ordering::Relaxed);
        let base = (head as usize % cap) * WORDS_PER_SLOT;
        let (meta, a, b) = encode(event.kind);
        // Invalidate, fill payload, publish: a concurrent drain either
        // sees seq=0 (skips), the old record (re-check catches the
        // overwrite), or the complete new record.
        self.slots[base].store(0, Ordering::Release);
        self.slots[base + 1].store(meta, Ordering::Relaxed);
        self.slots[base + 2].store(a, Ordering::Relaxed);
        self.slots[base + 3].store(b, Ordering::Relaxed);
        self.slots[base + 4].store(event.cycles.as_nanos(), Ordering::Relaxed);
        self.slots[base + 5].store(event.vtime, Ordering::Relaxed);
        self.slots[base].store(seq, Ordering::Release);
        self.head.store(head + 1, Ordering::Relaxed);
    }

    /// Best-effort read of every retained record as `(seq, event)`.
    fn read_all(&self, out: &mut Vec<(u64, Event)>) {
        let cap = self.capacity();
        for slot in 0..cap {
            let base = slot * WORDS_PER_SLOT;
            let seq = self.slots[base].load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            let meta = self.slots[base + 1].load(Ordering::Relaxed);
            let a = self.slots[base + 2].load(Ordering::Relaxed);
            let b = self.slots[base + 3].load(Ordering::Relaxed);
            let cycles = self.slots[base + 4].load(Ordering::Relaxed);
            let vtime = self.slots[base + 5].load(Ordering::Relaxed);
            // Seqlock re-check: drop the slot if a writer moved under us.
            if self.slots[base].load(Ordering::Acquire) != seq {
                continue;
            }
            if let Some(kind) = decode(meta, a, b) {
                out.push((
                    seq,
                    Event {
                        kind,
                        cycles: Cycles::from_nanos(cycles),
                        vtime,
                    },
                ));
            }
        }
    }
}

/// The per-thread recording endpoint: a [`Probe`] that writes into its
/// own ring. Create one per emitting thread via
/// [`FlightRecorder::handle`]; the handle is `Send` and owns no lock.
pub struct FlightHandle {
    ring: Arc<Ring>,
    seq: Arc<AtomicU64>,
}

impl Probe for FlightHandle {
    fn record(&mut self, event: &Event) {
        // The +1 keeps 0 free as the "never written" marker.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.ring.write(seq, event);
    }
}

impl std::fmt::Debug for FlightHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightHandle")
            .field("capacity", &self.ring.capacity())
            .finish()
    }
}

/// The always-on last-N-events recorder: hands out per-thread
/// [`FlightHandle`]s and merges their rings chronologically on demand.
///
/// # Examples
///
/// ```
/// use dsa_probe::{EventKind, Probe, Stamp};
/// use dsa_telemetry::FlightRecorder;
///
/// let recorder = FlightRecorder::new(64);
/// let mut h = recorder.handle();
/// h.emit(EventKind::Fault, Stamp::vtime(10));
/// h.emit(EventKind::Advice, Stamp::vtime(11));
/// let tail = recorder.drain();
/// assert_eq!(tail.len(), 2);
/// assert_eq!(tail[0].kind, EventKind::Fault);
/// ```
pub struct FlightRecorder {
    rings: Mutex<Vec<Arc<Ring>>>,
    seq: Arc<AtomicU64>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder whose every per-thread ring retains the thread's last
    /// `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "a flight recorder needs at least one slot");
        FlightRecorder {
            rings: Mutex::new(Vec::new()),
            seq: Arc::new(AtomicU64::new(0)),
            capacity,
        }
    }

    /// Events each per-thread ring retains.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events recorded through all handles so far (including
    /// those already overwritten in their rings).
    #[must_use]
    pub fn events_seen(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Registers a new per-thread ring and returns its recording
    /// handle. The registry lock is taken here and in
    /// [`FlightRecorder::drain`] only — never on the event path.
    #[must_use]
    pub fn handle(&self) -> FlightHandle {
        let ring = Arc::new(Ring::new(self.capacity));
        self.rings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Arc::clone(&ring));
        FlightHandle {
            ring,
            seq: Arc::clone(&self.seq),
        }
    }

    /// Merges every ring's retained events into one chronological
    /// sequence (oldest first). Exact after the emitting threads have
    /// joined; best-effort (never torn) while they are still running.
    #[must_use]
    pub fn drain(&self) -> Vec<Event> {
        let rings = self
            .rings
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut tagged: Vec<(u64, Event)> = Vec::new();
        for ring in rings.iter() {
            ring.read_all(&mut tagged);
        }
        drop(rings);
        tagged.sort_by_key(|&(seq, _)| seq);
        tagged.into_iter().map(|(_, e)| e).collect()
    }

    /// The last `n` events across all threads, formatted one per line
    /// for a postmortem dump: reference time, machine time, and the
    /// decoded event.
    #[must_use]
    pub fn postmortem(&self, n: usize) -> String {
        let events = self.drain();
        let tail = &events[events.len().saturating_sub(n)..];
        let mut out = String::new();
        out.push_str(&format!(
            "flight recorder: {} of {} recorded events (ring capacity {} per thread)\n",
            tail.len(),
            self.events_seen(),
            self.capacity
        ));
        out.push_str("     vtime      cycles_ns  event\n");
        for e in tail {
            out.push_str(&format!(
                "{:>10}  {:>13}  {:?}\n",
                e.vtime,
                e.cycles.as_nanos(),
                e.kind
            ));
        }
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("events_seen", &self.events_seen())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_probe::Stamp;

    fn all_kinds() -> Vec<EventKind> {
        vec![
            EventKind::Touch { write: true },
            EventKind::Touch { write: false },
            EventKind::Fault,
            EventKind::FetchStart { words: 512 },
            EventKind::FetchDone { words: 512 },
            EventKind::Evict {
                dirty: true,
                words: 64,
            },
            EventKind::Writeback { words: 64 },
            EventKind::Alloc {
                words: 100,
                searched: 7,
            },
            EventKind::Free { words: 100 },
            EventKind::CompactionStart,
            EventKind::CompactionDone { moved_words: 999 },
            EventKind::Advice,
            EventKind::Prefetch { words: 8 },
            EventKind::BoundsTrap,
            EventKind::MapLookup { hit: false },
            EventKind::FaultInjected {
                fault: InjectedFault::BadFrame,
            },
            EventKind::RetryAttempt { attempt: 3 },
            EventKind::FrameQuarantined,
            EventKind::DegradationStep {
                step: DegradationStep::ShedLoad,
            },
            EventKind::DegradationStep {
                step: DegradationStep::RetryBackoff,
            },
            EventKind::DegradationStep {
                step: DegradationStep::StealGlobal,
            },
            EventKind::DegradationStep {
                step: DegradationStep::ShedTenant,
            },
            EventKind::FaultInjected {
                fault: InjectedFault::ShardCorruption,
            },
            EventKind::QuotaDenied { tenant: 7 },
            EventKind::AdmissionReject { tenant: 8 },
            EventKind::TenantShed {
                tenant: 9,
                words: 4096,
            },
            EventKind::ShardQuarantined { shard: 2 },
            EventKind::ShardRestored { shard: 2 },
            EventKind::TenantAdmitted {
                tenant: 10,
                frames: 12,
            },
            EventKind::TenantDeactivated {
                tenant: 10,
                resident: 5,
            },
            EventKind::WsEstimate {
                tenant: 10,
                pages: 9,
            },
        ]
    }

    #[test]
    fn every_kind_roundtrips_through_the_encoding() {
        for kind in all_kinds() {
            let (meta, a, b) = encode(kind);
            assert_eq!(decode(meta, a, b), Some(kind), "{kind:?}");
        }
    }

    #[test]
    fn drain_is_chronological_and_lossless_under_capacity() {
        let rec = FlightRecorder::new(64);
        let mut h = rec.handle();
        for (i, kind) in all_kinds().into_iter().enumerate() {
            h.emit(kind, Stamp::at(Cycles::from_nanos(i as u64 * 10), i as u64));
        }
        let drained = rec.drain();
        assert_eq!(drained.len(), all_kinds().len());
        for (i, (got, want)) in drained.iter().zip(all_kinds()).enumerate() {
            assert_eq!(got.kind, want, "event {i}");
            assert_eq!(got.vtime, i as u64);
            assert_eq!(got.cycles.as_nanos(), i as u64 * 10);
        }
    }

    #[test]
    fn ring_keeps_only_the_last_capacity_events() {
        let rec = FlightRecorder::new(8);
        let mut h = rec.handle();
        for i in 0..100u64 {
            h.emit(EventKind::Free { words: i }, Stamp::vtime(i));
        }
        let drained = rec.drain();
        assert_eq!(drained.len(), 8);
        let words: Vec<u64> = drained
            .iter()
            .map(|e| match e.kind {
                EventKind::Free { words } => words,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(words, (92..100).collect::<Vec<u64>>());
        assert_eq!(rec.events_seen(), 100);
    }

    #[test]
    fn multi_thread_drain_merges_chronologically() {
        let rec = FlightRecorder::new(1024);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let mut h = rec.handle();
                scope.spawn(move || {
                    for i in 0..200u64 {
                        h.emit(
                            EventKind::Alloc {
                                words: t,
                                searched: i,
                            },
                            Stamp::vtime(i),
                        );
                    }
                });
            }
        });
        let drained = rec.drain();
        assert_eq!(drained.len(), 800);
        // Per-thread order is preserved inside the merged chronology.
        for t in 0..4u64 {
            let searches: Vec<u64> = drained
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::Alloc { words, searched } if words == t => Some(searched),
                    _ => None,
                })
                .collect();
            assert_eq!(searches, (0..200).collect::<Vec<u64>>(), "thread {t}");
        }
    }

    #[test]
    fn postmortem_formats_the_tail() {
        let rec = FlightRecorder::new(16);
        let mut h = rec.handle();
        for i in 0..5u64 {
            h.emit(EventKind::Fault, Stamp::vtime(i));
        }
        let dump = rec.postmortem(3);
        assert!(dump.contains("3 of 5 recorded events"), "{dump}");
        assert_eq!(dump.matches("Fault").count(), 3, "{dump}");
    }
}
