//! Always-on production telemetry over the probe spine.
//!
//! The probe vocabulary (`dsa-probe`) can already *count* events
//! ([`CountingProbe`]/[`SharedProbe`]) or *record everything*
//! (`JsonlRecorder`). Neither is what a production allocator runs with:
//! counters hide distributions and history, full traces cost too much
//! to leave on. This crate is the middle ground — instrumentation cheap
//! enough to never turn off, informative enough to debug a degradation
//! after the fact:
//!
//! * [`FlightRecorder`] — fixed-capacity, lock-free per-thread ring
//!   buffers of recent probe events in a compact fixed-width encoding
//!   (no allocation on the hot path), with a merged chronological
//!   [`FlightRecorder::drain`]. When a fault-injection run, an
//!   `ArenaError::Exhausted`, or a degradation ladder fires, the last-N
//!   events are the postmortem.
//! * [`AtomicHistogram`] — a relaxed-atomic fixed-bucket histogram with
//!   exact merge, built from the same [`dsa_metrics::BucketSpec`]
//!   geometries the sequential `LatencyProbe` uses, so always-on
//!   percentiles and probe percentiles can never diverge.
//! * [`TelemetryProbe`] — the always-on sink: [`SharedProbe`] counters
//!   *plus* distributions (alloc size, hole-search length, inter-fault
//!   gap, fetch latency), safe for any number of emitting threads.
//! * [`HeatmapSampler`] — periodic compact snapshots of the free-list
//!   hole map, rendered as heap-shape-over-time heatmaps via
//!   `dsa-metrics::sparkline`.
//! * [`TelemetrySnapshot`] — the exporter registry: counters, gauges
//!   and histograms rendered as Prometheus text exposition format or
//!   JSON (the `--metrics-out` flag of every experiment binary).
//!
//! [`CountingProbe`]: dsa_probe::CountingProbe
//! [`SharedProbe`]: dsa_probe::SharedProbe

pub mod export;
pub mod flight;
pub mod heatmap;
pub mod histogram;
pub mod probe;

pub use export::TelemetrySnapshot;
pub use flight::{FlightHandle, FlightRecorder};
pub use heatmap::{HeatFrame, HeatmapSampler};
pub use histogram::AtomicHistogram;
pub use probe::TelemetryProbe;
