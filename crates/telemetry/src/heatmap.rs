//! Fragmentation heatmaps: the shape of the heap, over time.
//!
//! Scalar fragmentation numbers (free fraction, largest hole) say *how
//! much* storage is wasted; a production incident usually turns on
//! *where* — checkerboarding at the low addresses, a pinned block
//! marooned mid-heap, free storage pooling at the top. A [`HeatFrame`]
//! is one compact answer: the address space cut into fixed-width
//! buckets, each scored by its occupied fraction, plus the scalars
//! (largest free hole, hole count, free words) for the trend lines.
//!
//! [`HeatmapSampler`] collects frames every K virtual-time units and
//! renders them one sparkline row per frame via
//! [`dsa_metrics::sparkline()`] — a terminal-friendly heatmap where time
//! runs down the page and address runs across it.

use dsa_core::ids::Words;
use dsa_freelist::FreeListAllocator;
use dsa_metrics::sparkline::sparkline;

/// One snapshot of the heap's shape at a point in virtual time.
#[derive(Clone, Debug)]
pub struct HeatFrame {
    /// Reference time of the snapshot.
    pub vtime: u64,
    /// Occupied fraction (`0.0` all free, `1.0` all allocated) per
    /// fixed-width address bucket, low addresses first.
    pub occupancy: Vec<f64>,
    /// Size of the largest free hole, in words.
    pub largest_free: Words,
    /// Number of free holes.
    pub hole_count: usize,
    /// Total free words.
    pub free_words: Words,
    /// Arena capacity, in words.
    pub capacity: Words,
}

impl HeatFrame {
    /// Captures a frame from an address-ordered `(address, size)` hole
    /// iterator over an arena of `capacity` words, cut into `buckets`
    /// equal-width address buckets. Holes spanning bucket boundaries
    /// are apportioned exactly.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    #[must_use]
    pub fn capture(
        vtime: u64,
        capacity: Words,
        holes: impl Iterator<Item = (u64, Words)>,
        buckets: usize,
    ) -> HeatFrame {
        assert!(buckets > 0, "a heat frame needs at least one bucket");
        // Ceil division so bucket_width * buckets >= capacity.
        let bucket_width = capacity.div_ceil(buckets as u64).max(1);
        let mut free_per_bucket = vec![0u64; buckets];
        let mut largest_free = 0;
        let mut hole_count = 0;
        let mut free_words = 0;
        for (addr, size) in holes {
            largest_free = largest_free.max(size);
            hole_count += 1;
            free_words += size;
            // Walk the buckets the hole overlaps, crediting each with
            // its exact share.
            let mut a = addr;
            let end = addr + size;
            while a < end {
                let b = (a / bucket_width) as usize;
                if b >= buckets {
                    break;
                }
                let bucket_end = (b as u64 + 1) * bucket_width;
                let credit = end.min(bucket_end) - a;
                free_per_bucket[b] += credit;
                a = bucket_end;
            }
        }
        let occupancy = free_per_bucket
            .iter()
            .enumerate()
            .map(|(b, &free)| {
                let start = b as u64 * bucket_width;
                let span = capacity.saturating_sub(start).min(bucket_width);
                if span == 0 {
                    0.0
                } else {
                    1.0 - free as f64 / span as f64
                }
            })
            .collect();
        HeatFrame {
            vtime,
            occupancy,
            largest_free,
            hole_count,
            free_words,
            capacity,
        }
    }

    /// Captures a frame directly from a free-list allocator's hole map.
    #[must_use]
    pub fn of_freelist(alloc: &FreeListAllocator, vtime: u64, buckets: usize) -> HeatFrame {
        HeatFrame::capture(vtime, alloc.capacity(), alloc.holes(), buckets)
    }

    /// Fraction of capacity currently occupied.
    #[must_use]
    pub fn occupied_fraction(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            1.0 - self.free_words as f64 / self.capacity as f64
        }
    }

    /// The frame's occupancy as one sparkline (low addresses left).
    #[must_use]
    pub fn sparkline(&self) -> String {
        sparkline(&self.occupancy)
    }
}

/// Collects [`HeatFrame`]s every `every` virtual-time units and renders
/// them as a heatmap — one row per frame, time running down the page.
///
/// The sampler is pull-based so it borrows nothing: callers ask
/// [`HeatmapSampler::due`] inside their drive loop and capture a frame
/// themselves when it answers yes.
///
/// # Examples
///
/// ```
/// use dsa_telemetry::{HeatFrame, HeatmapSampler};
///
/// let mut sampler = HeatmapSampler::new(100, 16);
/// for vt in 0..250u64 {
///     if sampler.due(vt) {
///         // Normally captured from a live allocator's holes().
///         sampler.push(HeatFrame::capture(vt, 1024, std::iter::empty(), 16));
///     }
/// }
/// assert_eq!(sampler.frames().len(), 3); // vt = 0, 100, 200
/// ```
#[derive(Clone, Debug)]
pub struct HeatmapSampler {
    every: u64,
    buckets: usize,
    next_due: u64,
    frames: Vec<HeatFrame>,
}

impl HeatmapSampler {
    /// A sampler that wants one frame every `every` virtual-time units,
    /// with `buckets` address buckets per frame.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero or `buckets` is zero.
    #[must_use]
    pub fn new(every: u64, buckets: usize) -> HeatmapSampler {
        assert!(every > 0, "sampling interval must be positive");
        assert!(buckets > 0, "a heat frame needs at least one bucket");
        HeatmapSampler {
            every,
            buckets,
            next_due: 0,
            frames: Vec::new(),
        }
    }

    /// Address buckets per frame — pass this to [`HeatFrame::capture`].
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Whether a frame is due at reference time `vtime`.
    #[must_use]
    pub fn due(&self, vtime: u64) -> bool {
        vtime >= self.next_due
    }

    /// Accepts a captured frame and schedules the next one `every`
    /// units after it.
    pub fn push(&mut self, frame: HeatFrame) {
        self.next_due = frame.vtime.saturating_add(self.every);
        self.frames.push(frame);
    }

    /// The frames collected so far, in capture order.
    #[must_use]
    pub fn frames(&self) -> &[HeatFrame] {
        &self.frames
    }

    /// Renders the collected frames as a heatmap: one sparkline row per
    /// frame with its scalars alongside.
    #[must_use]
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{title} (addr low→high, {} buckets; █ = fully occupied)\n",
            self.buckets
        ));
        if self.frames.is_empty() {
            out.push_str("  (no frames sampled)\n");
            return out;
        }
        for f in &self.frames {
            out.push_str(&format!(
                "  vt={:>8}  {}  occ={:>5.1}% holes={:>4} largest={:>8}\n",
                f.vtime,
                f.sparkline(),
                f.occupied_fraction() * 100.0,
                f.hole_count,
                f.largest_free,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_freelist::Placement;

    #[test]
    fn empty_heap_is_fully_free() {
        let f = HeatFrame::capture(0, 1000, [(0u64, 1000u64)].into_iter(), 10);
        assert_eq!(f.hole_count, 1);
        assert_eq!(f.free_words, 1000);
        assert_eq!(f.largest_free, 1000);
        assert!(f.occupancy.iter().all(|&o| o.abs() < 1e-12), "{f:?}");
        assert!(f.occupied_fraction().abs() < 1e-12);
    }

    #[test]
    fn full_heap_is_fully_occupied() {
        let f = HeatFrame::capture(5, 1000, std::iter::empty(), 10);
        assert!(f.occupancy.iter().all(|&o| (o - 1.0).abs() < 1e-12));
        assert!((f.occupied_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_spanning_hole_is_apportioned_exactly() {
        // Capacity 100, 4 buckets of 25; one hole [20, 60) spans three.
        let f = HeatFrame::capture(0, 100, [(20u64, 40u64)].into_iter(), 4);
        assert!((f.occupancy[0] - 0.8).abs() < 1e-12, "{:?}", f.occupancy);
        assert!((f.occupancy[1] - 0.0).abs() < 1e-12);
        assert!((f.occupancy[2] - 0.6).abs() < 1e-12);
        assert!((f.occupancy[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn captures_from_a_live_freelist() {
        let mut alloc = FreeListAllocator::new(1024, Placement::FirstFit);
        alloc.alloc(1, 256).expect("fits");
        alloc.alloc(2, 256).expect("fits");
        alloc.free(1).expect("live");
        let f = HeatFrame::of_freelist(&alloc, 7, 8);
        assert_eq!(f.capacity, 1024);
        assert_eq!(f.free_words, 768);
        assert_eq!(f.hole_count, 2);
        // First two buckets (the freed 256-word block) read free.
        assert!(f.occupancy[0].abs() < 1e-12, "{:?}", f.occupancy);
        assert!((f.occupancy[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampler_paces_by_virtual_time() {
        let mut s = HeatmapSampler::new(50, 4);
        let mut sampled = Vec::new();
        for vt in 0..175u64 {
            if s.due(vt) {
                s.push(HeatFrame::capture(vt, 64, std::iter::empty(), 4));
                sampled.push(vt);
            }
        }
        assert_eq!(sampled, vec![0, 50, 100, 150]);
        assert_eq!(s.frames().len(), 4);
    }

    #[test]
    fn render_has_one_row_per_frame() {
        let mut s = HeatmapSampler::new(10, 4);
        s.push(HeatFrame::capture(0, 64, std::iter::empty(), 4));
        s.push(HeatFrame::capture(10, 64, [(0u64, 64u64)].into_iter(), 4));
        let out = s.render("heap shape");
        assert!(out.contains("heap shape"), "{out}");
        assert_eq!(out.matches("vt=").count(), 2, "{out}");
        assert!(out.contains("occ=100.0%"), "{out}");
        assert!(out.contains("occ=  0.0%"), "{out}");
    }
}
