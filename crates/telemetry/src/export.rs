//! The metrics exporter: one registry, two wire formats.
//!
//! Every experiment binary ends a run holding the same kinds of state —
//! probe counters, histograms, report tables — and `--metrics-out`
//! must turn any of them into something a scrape pipeline ingests.
//! [`TelemetrySnapshot`] is the registry they all feed: counters,
//! gauges and histograms (plus whole report [`Table`]s lifted to
//! labelled gauges), rendered as Prometheus text exposition format or
//! as JSON.
//!
//! Rendering is fully deterministic — entries appear in registration
//! order, histogram buckets in geometry order, no timestamps — so two
//! runs of a deterministic experiment produce byte-identical files
//! regardless of `--jobs` width; CI asserts exactly that.

use std::fmt::Write as _;
use std::path::Path;

use dsa_metrics::{Histogram, Table};
use dsa_probe::CountingProbe;

/// The quantiles every exported histogram summarizes in JSON.
const QUANTILES: [(&str, f64); 4] = [("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("max", 1.0)];

enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    value: Value,
}

/// A registry of metrics frozen at one instant, rendered to Prometheus
/// text exposition format or JSON by file extension.
///
/// # Examples
///
/// ```
/// use dsa_telemetry::TelemetrySnapshot;
///
/// let mut snap = TelemetrySnapshot::new("dsa");
/// snap.counter("allocs_total", "Allocations", &[("shard", "0")], 42);
/// let text = snap.render_prometheus();
/// assert!(text.contains("dsa_allocs_total{shard=\"0\"} 42"));
/// ```
pub struct TelemetrySnapshot {
    namespace: String,
    entries: Vec<Entry>,
}

impl TelemetrySnapshot {
    /// An empty registry; `namespace` prefixes every metric name in the
    /// Prometheus rendering (`<namespace>_<name>`).
    #[must_use]
    pub fn new(namespace: &str) -> TelemetrySnapshot {
        TelemetrySnapshot {
            namespace: sanitize(namespace),
            entries: Vec::new(),
        }
    }

    /// Registers a monotone counter.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.push(name, help, labels, Value::Counter(value));
    }

    /// Registers a point-in-time gauge. Non-finite values are exported
    /// as 0 (Prometheus text format has no NaN that round-trips).
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let value = if value.is_finite() { value } else { 0.0 };
        self.push(name, help, labels, Value::Gauge(value));
    }

    /// Registers a frozen histogram (typically an
    /// `AtomicHistogram::snapshot` or a probe's distribution).
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.push(name, help, labels, Value::Histogram(h.clone()));
    }

    /// Registers the standard counters of a [`CountingProbe`] under
    /// `labels` — the one-call way for a binary to export its probe.
    pub fn counting_probe(&mut self, probe: &CountingProbe, labels: &[(&str, &str)]) {
        let mut c =
            |name: &str, help: &str, v: u64| self.push(name, help, labels, Value::Counter(v));
        c(
            "touches_total",
            "Program references observed",
            probe.touches,
        );
        c(
            "faults_total",
            "References that missed working storage",
            probe.faults,
        );
        c(
            "fetches_total",
            "Completed backing-storage transfers",
            probe.fetches,
        );
        c(
            "fetched_words_total",
            "Words fetched from backing storage",
            probe.fetched_words,
        );
        c("evictions_total", "Residence losses", probe.evictions);
        c(
            "writebacks_total",
            "Dirty copies back to backing storage",
            probe.writebacks,
        );
        c("allocs_total", "Variable-unit allocations", probe.allocs);
        c("alloc_words_total", "Words allocated", probe.alloc_words);
        c(
            "alloc_searched_total",
            "Free-list entries examined",
            probe.alloc_searched,
        );
        c("frees_total", "Variable-unit releases", probe.frees);
        c("freed_words_total", "Words released", probe.freed_words);
        c(
            "compactions_total",
            "Compaction passes completed",
            probe.compactions,
        );
        c(
            "faults_injected_total",
            "Simulated hardware failures",
            probe.faults_injected,
        );
        c(
            "retry_attempts_total",
            "Failed transfers retried",
            probe.retry_attempts,
        );
        c(
            "frames_quarantined_total",
            "Bad frames removed from service",
            probe.frames_quarantined,
        );
        c(
            "degradation_steps_total",
            "Degradation rungs climbed",
            probe.degradation_steps,
        );
    }

    /// Lifts a report [`Table`]'s numeric cells into labelled gauges:
    /// one gauge per numeric column, labelled by the row's first-column
    /// value. Non-numeric cells are skipped. This is how the experiment
    /// binaries export their existing report tables without
    /// re-plumbing every figure by hand.
    pub fn table(&mut self, name: &str, table: &Table) {
        let headers = table.headers().to_vec();
        if headers.is_empty() {
            return;
        }
        let key = sanitize(&headers[0]);
        let help = table.title().unwrap_or("report table cell").to_string();
        for row in table.rows().to_vec() {
            let Some(row_key) = row.first() else { continue };
            for (h, cell) in headers.iter().zip(&row).skip(1) {
                // Accept plain numbers and %-suffixed percentages.
                let numeric = cell.trim().trim_end_matches('%');
                let Ok(v) = numeric.parse::<f64>() else {
                    continue;
                };
                let col = sanitize(h);
                self.gauge(
                    &format!("{name}_{col}"),
                    &help,
                    &[(key.as_str(), row_key.as_str())],
                    v,
                );
            }
        }
    }

    fn push(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: Value) {
        self.entries.push(Entry {
            name: sanitize(name),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (sanitize(k), v.to_string()))
                .collect(),
            value,
        });
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the registry in Prometheus text exposition format:
    /// `# HELP`/`# TYPE` once per metric name (at its first
    /// registration), histograms as cumulative `_bucket{le=...}` series
    /// plus `_sum` and `_count`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut described: Vec<&str> = Vec::new();
        for e in &self.entries {
            let full = format!("{}_{}", self.namespace, e.name);
            let kind = match e.value {
                Value::Counter(_) => "counter",
                Value::Gauge(_) => "gauge",
                Value::Histogram(_) => "histogram",
            };
            if !described.contains(&e.name.as_str()) {
                described.push(&e.name);
                let _ = writeln!(out, "# HELP {full} {}", escape_help(&e.help));
                let _ = writeln!(out, "# TYPE {full} {kind}");
            }
            match &e.value {
                Value::Counter(v) => {
                    let _ = writeln!(out, "{full}{} {v}", label_set(&e.labels, None));
                }
                Value::Gauge(v) => {
                    let _ = writeln!(out, "{full}{} {v}", label_set(&e.labels, None));
                }
                Value::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for i in 0..h.spec().bucket_count() {
                        cumulative += h.bucket_count(i);
                        // `le` is the bucket's inclusive upper bound:
                        // the next bucket's lower bound minus one.
                        let le = if i + 1 < h.spec().bucket_count() {
                            (h.bucket_low(i + 1) - 1).to_string()
                        } else {
                            h.bucket_low(i).to_string()
                        };
                        let _ = writeln!(
                            out,
                            "{full}_bucket{} {cumulative}",
                            label_set(&e.labels, Some(&le))
                        );
                    }
                    cumulative += h.overflow();
                    let _ = writeln!(
                        out,
                        "{full}_bucket{} {cumulative}",
                        label_set(&e.labels, Some("+Inf"))
                    );
                    let _ = writeln!(out, "{full}_sum{} {}", label_set(&e.labels, None), h.sum());
                    let _ = writeln!(
                        out,
                        "{full}_count{} {}",
                        label_set(&e.labels, None),
                        h.count()
                    );
                }
            }
        }
        out
    }

    /// Renders the registry as deterministic JSON (registration order,
    /// no timestamps). Histograms carry count/sum/max, summary
    /// quantiles, and the non-empty `[bucket_low, count]` pairs.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"namespace\": \"{}\",",
            escape_json(&self.namespace)
        );
        out.push_str("  \"metrics\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {");
            let _ = write!(out, "\"name\": \"{}\"", escape_json(&e.name));
            let _ = write!(out, ", \"help\": \"{}\"", escape_json(&e.help));
            if !e.labels.is_empty() {
                out.push_str(", \"labels\": {");
                for (j, (k, v)) in e.labels.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{}\": \"{}\"", escape_json(k), escape_json(v));
                }
                out.push('}');
            }
            match &e.value {
                Value::Counter(v) => {
                    let _ = write!(out, ", \"type\": \"counter\", \"value\": {v}");
                }
                Value::Gauge(v) => {
                    let _ = write!(out, ", \"type\": \"gauge\", \"value\": {v}");
                }
                Value::Histogram(h) => {
                    let _ = write!(
                        out,
                        ", \"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"max\": {}",
                        h.count(),
                        h.sum(),
                        h.max()
                    );
                    out.push_str(", \"quantiles\": {");
                    for (j, (label, q)) in QUANTILES.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "\"{label}\": {}", h.quantile(*q));
                    }
                    out.push('}');
                    out.push_str(", \"buckets\": [");
                    for (j, (low, count)) in h.nonempty_buckets().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "[{low}, {count}]");
                    }
                    if h.overflow() > 0 {
                        if h.nonempty_buckets().count() > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "[\"overflow\", {}]", h.overflow());
                    }
                    out.push(']');
                }
            }
            out.push('}');
            if i + 1 < self.entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the registry to `path`, choosing the format by extension:
    /// `.json` gets [`TelemetrySnapshot::render_json`], anything else
    /// the Prometheus text exposition. Parent directories are created.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory creation or the
    /// write itself.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let body = if path.extension().is_some_and(|e| e == "json") {
            self.render_json()
        } else {
            self.render_prometheus()
        };
        std::fs::write(path, body)
    }
}

/// Lowercases and maps every non-`[a-z0-9_]` byte to `_` — valid as a
/// Prometheus metric or label name fragment.
fn sanitize(s: &str) -> String {
    let mut out: String = s
        .to_ascii_lowercase()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a `{k="v",...}` label set, optionally with a trailing
/// `le="..."` (for histogram buckets); empty when there are no labels.
fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_counters_and_gauges() {
        let mut snap = TelemetrySnapshot::new("dsa");
        snap.counter("allocs_total", "Allocations", &[("shard", "0")], 10);
        snap.counter("allocs_total", "Allocations", &[("shard", "1")], 20);
        snap.gauge("occupancy", "Occupied fraction", &[], 0.75);
        let text = snap.render_prometheus();
        assert_eq!(text.matches("# HELP dsa_allocs_total").count(), 1, "{text}");
        assert!(text.contains("dsa_allocs_total{shard=\"0\"} 10"), "{text}");
        assert!(text.contains("dsa_allocs_total{shard=\"1\"} 20"), "{text}");
        assert!(text.contains("# TYPE dsa_occupancy gauge"), "{text}");
        assert!(text.contains("dsa_occupancy 0.75"), "{text}");
    }

    #[test]
    fn prometheus_histogram_is_cumulative_with_inf() {
        let mut h = Histogram::linear(10, 3);
        for v in [1, 2, 15, 100] {
            h.record(v);
        }
        let mut snap = TelemetrySnapshot::new("dsa");
        snap.histogram("lat", "Latency", &[], &h);
        let text = snap.render_prometheus();
        assert!(text.contains("dsa_lat_bucket{le=\"9\"} 2"), "{text}");
        assert!(text.contains("dsa_lat_bucket{le=\"19\"} 3"), "{text}");
        assert!(text.contains("dsa_lat_bucket{le=\"+Inf\"} 4"), "{text}");
        assert!(text.contains("dsa_lat_sum 118"), "{text}");
        assert!(text.contains("dsa_lat_count 4"), "{text}");
    }

    #[test]
    fn json_is_wellformed_and_deterministic() {
        let build = || {
            let mut snap = TelemetrySnapshot::new("dsa");
            snap.counter("faults_total", "Faults", &[("machine", "paged")], 3);
            let mut h = Histogram::log2(8);
            h.record(5);
            h.record(300);
            snap.histogram("gap", "Inter-fault gap", &[], &h);
            snap.render_json()
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.contains("\"name\": \"faults_total\""), "{a}");
        assert!(a.contains("\"labels\": {\"machine\": \"paged\"}"), "{a}");
        assert!(a.contains("\"quantiles\""), "{a}");
        assert!(a.contains("[\"overflow\", 1]"), "{a}");
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(a.matches('{').count(), a.matches('}').count(), "{a}");
        assert_eq!(a.matches('[').count(), a.matches(']').count(), "{a}");
    }

    #[test]
    fn table_cells_become_labelled_gauges() {
        let mut t = Table::new(&["policy", "faults", "p99_us", "note"]);
        t.row(&["first_fit", "120", "4.5", "ok"]);
        t.row(&["best_fit", "95", "3.25", "ok"]);
        let mut snap = TelemetrySnapshot::new("dsa");
        snap.table("exp", &t);
        let text = snap.render_prometheus();
        assert!(
            text.contains("dsa_exp_faults{policy=\"first_fit\"} 120"),
            "{text}"
        );
        assert!(
            text.contains("dsa_exp_p99_us{policy=\"best_fit\"} 3.25"),
            "{text}"
        );
        // The non-numeric "note" column is skipped.
        assert!(!text.contains("exp_note"), "{text}");
    }

    #[test]
    fn counting_probe_exports_standard_counters() {
        let mut probe = CountingProbe::new();
        probe.allocs = 7;
        probe.faults = 3;
        let mut snap = TelemetrySnapshot::new("dsa");
        snap.counting_probe(&probe, &[("exp", "01")]);
        let text = snap.render_prometheus();
        assert!(text.contains("dsa_allocs_total{exp=\"01\"} 7"), "{text}");
        assert!(text.contains("dsa_faults_total{exp=\"01\"} 3"), "{text}");
    }

    #[test]
    fn write_picks_format_by_extension() {
        let dir = std::env::temp_dir().join("dsa_telemetry_export_test");
        let mut snap = TelemetrySnapshot::new("dsa");
        snap.counter("x_total", "X", &[], 1);
        let json_path = dir.join("out.json");
        let prom_path = dir.join("out.prom");
        snap.write(&json_path).expect("write json");
        snap.write(&prom_path).expect("write prom");
        let json = std::fs::read_to_string(&json_path).expect("read json");
        let prom = std::fs::read_to_string(&prom_path).expect("read prom");
        assert!(json.starts_with('{'), "{json}");
        assert!(prom.starts_with("# HELP"), "{prom}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sanitize_normalizes_names() {
        assert_eq!(sanitize("P99 (µs)"), "p99___s_");
        assert_eq!(sanitize("faults/1k"), "faults_1k");
        assert_eq!(sanitize("9lives"), "_9lives");
    }
}
