//! Relaxed-atomic histograms with exact merge.
//!
//! The sequential [`dsa_metrics::Histogram`] is `&mut self`; an
//! always-on distribution shared by every worker thread of a concurrent
//! allocation service cannot be. [`AtomicHistogram`] is the concurrent
//! twin: the same bucket geometry (a [`BucketSpec`]), each bucket an
//! `AtomicU64` bumped with one relaxed `fetch_add`. Histogram counters
//! are commutative — no thread ever reads another's increment on the
//! hot path — so relaxed ordering loses nothing; the join (or any
//! happens-before edge to the reader) is the only synchronization
//! needed, exactly as for `SharedProbe`'s counters.
//!
//! Reading back goes through [`AtomicHistogram::snapshot`], which
//! freezes the buckets into an ordinary [`dsa_metrics::Histogram`] via
//! [`Histogram::from_parts`] — quantiles, means and rendering all come
//! from the one sequential implementation, so the always-on telemetry
//! and the probe-spine `LatencyProbe` can never disagree about what
//! "p99" means.

use std::sync::atomic::{AtomicU64, Ordering};

use dsa_metrics::{BucketSpec, Histogram};

/// A fixed-geometry histogram whose `record` takes `&self`: one relaxed
/// `fetch_add` per sample, shareable across any number of threads.
///
/// `sum` is kept in a `u64` (the sequential histogram uses `u128`):
/// with nanosecond samples that is ~584 years of accumulated latency
/// before wrap, far beyond any run this workspace performs.
///
/// # Examples
///
/// ```
/// use dsa_metrics::BucketSpec;
/// use dsa_telemetry::AtomicHistogram;
///
/// let h = AtomicHistogram::new(BucketSpec::Log2 { buckets: 16 });
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| {
///             for v in 0..100u64 {
///                 h.record(v);
///             }
///         });
///     }
/// });
/// let frozen = h.snapshot();
/// assert_eq!(frozen.count(), 400);
/// ```
#[derive(Debug)]
pub struct AtomicHistogram {
    spec: BucketSpec,
    buckets: Vec<AtomicU64>,
    overflow: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    /// An empty atomic histogram over `spec`'s buckets.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero width, zero buckets, or
    /// more than 64 log2 buckets) — same contract as
    /// [`Histogram::with_spec`].
    #[must_use]
    pub fn new(spec: BucketSpec) -> AtomicHistogram {
        // Delegate validation so the two constructors can't drift.
        let _ = Histogram::with_spec(spec);
        AtomicHistogram {
            spec,
            buckets: (0..spec.bucket_count())
                .map(|_| AtomicU64::new(0))
                .collect(),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// This histogram's bucket geometry.
    #[must_use]
    pub fn spec(&self) -> BucketSpec {
        self.spec
    }

    /// Records one sample: two relaxed `fetch_add`s and a `fetch_max`.
    pub fn record(&self, v: u64) {
        match self.spec.index_of(v) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded so far (relaxed; exact once the emitting
    /// threads have synchronized with the caller).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum::<u64>()
            + self.overflow.load(Ordering::Relaxed)
    }

    /// Folds another accumulator's counts into this one, exactly:
    /// bucket-wise addition, never re-bucketing.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bucket geometries —
    /// merging across specs would silently mis-bucket.
    pub fn merge(&self, other: &AtomicHistogram) {
        assert_eq!(
            self.spec, other.spec,
            "cannot merge histograms with different bucket geometries"
        );
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            self.buckets_add(mine, theirs.load(Ordering::Relaxed));
        }
        self.buckets_add(&self.overflow, other.overflow.load(Ordering::Relaxed));
        self.buckets_add(&self.sum, other.sum.load(Ordering::Relaxed));
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn buckets_add(&self, target: &AtomicU64, n: u64) {
        if n > 0 {
            target.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Freezes the relaxed counters into an ordinary sequential
    /// [`Histogram`] — quantiles and rendering then come from
    /// `dsa-metrics`' single implementation.
    #[must_use]
    pub fn snapshot(&self) -> Histogram {
        Histogram::from_parts(
            self.spec,
            self.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            self.overflow.load(Ordering::Relaxed),
            u128::from(self.sum.load(Ordering::Relaxed)),
            self.max.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_metrics::histogram::geometry;

    #[test]
    fn snapshot_equals_the_sequential_histogram() {
        let atomic = AtomicHistogram::new(geometry::ALLOC_WORDS);
        let mut plain = Histogram::with_spec(geometry::ALLOC_WORDS);
        for v in [0u64, 1, 7, 64, 900, 1 << 20, u64::MAX >> 30] {
            atomic.record(v);
            plain.record(v);
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.sum(), plain.sum());
        assert_eq!(snap.max(), plain.max());
        assert_eq!(snap.overflow(), plain.overflow());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), plain.quantile(q), "q={q}");
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = AtomicHistogram::new(BucketSpec::Linear {
            width: 1,
            buckets: 64,
        });
        let threads = 8u64;
        let per_thread = 6_400u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for i in 0..per_thread {
                        h.record(i % 64);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), threads * per_thread);
        for i in 0..64 {
            assert_eq!(snap.bucket_count(i), threads * per_thread / 64);
        }
    }

    #[test]
    fn merge_is_exact() {
        let a = AtomicHistogram::new(geometry::SEARCH_LEN);
        let b = AtomicHistogram::new(geometry::SEARCH_LEN);
        let mut reference = Histogram::with_spec(geometry::SEARCH_LEN);
        for v in [1u64, 2, 3, 300] {
            a.record(v);
            reference.record(v);
        }
        for v in [4u64, 5, 500] {
            b.record(v);
            reference.record(v);
        }
        a.merge(&b);
        let merged = a.snapshot();
        assert_eq!(merged.count(), reference.count());
        assert_eq!(merged.sum(), reference.sum());
        assert_eq!(merged.max(), reference.max());
        assert_eq!(merged.overflow(), reference.overflow());
        for q in [0.5, 0.9, 1.0] {
            assert_eq!(merged.quantile(q), reference.quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "different bucket geometries")]
    fn merge_rejects_mismatched_specs() {
        let a = AtomicHistogram::new(BucketSpec::Log2 { buckets: 8 });
        let b = AtomicHistogram::new(BucketSpec::Log2 { buckets: 9 });
        a.merge(&b);
    }
}
