//! The always-on sink: counters plus distributions, shared by every
//! thread.
//!
//! [`SharedProbe`] answers "how many"; production debugging needs "how
//! big" and "how long" as well — and needs them *without* the cost or
//! single-ownership of the sequential `LatencyProbe`. [`TelemetryProbe`]
//! is both at once: every [`SharedProbe`] counter, plus four always-on
//! [`AtomicHistogram`]s over the standard geometries
//! ([`dsa_metrics::histogram::geometry`]):
//!
//! * allocation-request size in words,
//! * free-list entries searched per allocation,
//! * inter-fault gap in references,
//! * fetch (fault-service) latency in nanoseconds.
//!
//! Like `SharedProbe`, the sink is used by shared reference:
//! `&TelemetryProbe` implements [`Probe`], so each worker holds its own
//! copy of the reference and the emission sites stay `P: Probe`.
//!
//! The two stateful distributions (inter-fault gap, fetch latency) pair
//! consecutive events through a single atomic cell with a `u64::MAX`
//! "no pending event" sentinel. Under concurrent emission the pairing
//! is best-effort — two threads' faults may pair with each other —
//! which is the honest semantics for a global gap distribution; the
//! counters and the size/search histograms are exact regardless of
//! interleaving.

use std::sync::atomic::{AtomicU64, Ordering};

use dsa_metrics::{histogram::geometry, Histogram};
use dsa_probe::{CountingProbe, Event, EventKind, Probe, SharedProbe};

use crate::AtomicHistogram;

/// `u64::MAX` marks "no earlier event to pair with" in the stateful
/// cells (a nanosecond timestamp of `u64::MAX` is ~584 years).
const NONE: u64 = u64::MAX;

/// Counters and distributions in one always-on, thread-safe sink.
///
/// # Examples
///
/// ```
/// use dsa_probe::{EventKind, Probe, Stamp};
/// use dsa_telemetry::TelemetryProbe;
///
/// let telemetry = TelemetryProbe::new();
/// (&telemetry).emit(
///     EventKind::Alloc { words: 48, searched: 3 },
///     Stamp::vtime(7),
/// );
/// assert_eq!(telemetry.counters().allocs, 1);
/// assert_eq!(telemetry.alloc_words().count(), 1);
/// ```
#[derive(Debug)]
pub struct TelemetryProbe {
    counters: SharedProbe,
    alloc_words: AtomicHistogram,
    search_len: AtomicHistogram,
    inter_fault: AtomicHistogram,
    fetch_ns: AtomicHistogram,
    last_fault_vtime: AtomicU64,
    pending_fetch_ns: AtomicU64,
}

impl TelemetryProbe {
    #[must_use]
    pub fn new() -> TelemetryProbe {
        TelemetryProbe {
            counters: SharedProbe::new(),
            alloc_words: AtomicHistogram::new(geometry::ALLOC_WORDS),
            search_len: AtomicHistogram::new(geometry::SEARCH_LEN),
            inter_fault: AtomicHistogram::new(geometry::INTER_FAULT_REFS),
            fetch_ns: AtomicHistogram::new(geometry::FAULT_SERVICE_NS),
            last_fault_vtime: AtomicU64::new(NONE),
            pending_fetch_ns: AtomicU64::new(NONE),
        }
    }

    fn observe(&self, event: &Event) {
        match event.kind {
            EventKind::Alloc { words, searched } => {
                self.alloc_words.record(words);
                self.search_len.record(searched);
            }
            EventKind::Fault => {
                let prev = self.last_fault_vtime.swap(event.vtime, Ordering::Relaxed);
                if prev != NONE {
                    self.inter_fault.record(event.vtime.saturating_sub(prev));
                }
            }
            EventKind::FetchStart { .. } => {
                self.pending_fetch_ns
                    .store(event.cycles.as_nanos(), Ordering::Relaxed);
            }
            EventKind::FetchDone { .. } => {
                // Claim the pending start (swap in the sentinel) so a
                // racing FetchDone can't count the same start twice.
                let started = self.pending_fetch_ns.swap(NONE, Ordering::Relaxed);
                if started != NONE {
                    self.fetch_ns
                        .record(event.cycles.as_nanos().saturating_sub(started));
                }
            }
            _ => {}
        }
    }

    /// The underlying atomic counter sink, for callers that only need
    /// the `SharedProbe` view.
    #[must_use]
    pub fn shared(&self) -> &SharedProbe {
        &self.counters
    }

    /// Frozen counter totals since construction.
    #[must_use]
    pub fn counters(&self) -> CountingProbe {
        self.counters.snapshot()
    }

    /// Counter totals since `earlier` — per-interval rates for periodic
    /// reporting (see [`SharedProbe::delta`]).
    #[must_use]
    pub fn delta(&self, earlier: &CountingProbe) -> CountingProbe {
        self.counters.delta(earlier)
    }

    /// Frozen distribution of allocation-request sizes, in words.
    #[must_use]
    pub fn alloc_words(&self) -> Histogram {
        self.alloc_words.snapshot()
    }

    /// Frozen distribution of free-list entries searched per
    /// allocation.
    #[must_use]
    pub fn search_len(&self) -> Histogram {
        self.search_len.snapshot()
    }

    /// Frozen distribution of gaps between consecutive faults, in
    /// references.
    #[must_use]
    pub fn inter_fault_gap(&self) -> Histogram {
        self.inter_fault.snapshot()
    }

    /// Frozen distribution of fetch (fault-service) latencies, in
    /// nanoseconds.
    #[must_use]
    pub fn fetch_latency(&self) -> Histogram {
        self.fetch_ns.snapshot()
    }

    /// Folds another telemetry sink's distributions into this one
    /// (exact bucket-wise merge). Counters are *not* merged — they
    /// reconcile through [`CountingProbe`] sums instead.
    pub fn merge_distributions(&self, other: &TelemetryProbe) {
        self.alloc_words.merge(&other.alloc_words);
        self.search_len.merge(&other.search_len);
        self.inter_fault.merge(&other.inter_fault);
        self.fetch_ns.merge(&other.fetch_ns);
    }
}

impl Default for TelemetryProbe {
    fn default() -> TelemetryProbe {
        TelemetryProbe::new()
    }
}

impl Probe for TelemetryProbe {
    fn record(&mut self, event: &Event) {
        self.observe(event);
        let mut counters = &self.counters;
        counters.record(event);
    }
}

/// The shared-reference form workers hold, mirroring
/// `impl Probe for &SharedProbe`.
impl Probe for &TelemetryProbe {
    fn record(&mut self, event: &Event) {
        self.observe(event);
        let mut counters = &self.counters;
        counters.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::clock::Cycles;
    use dsa_probe::Stamp;

    #[test]
    fn distributions_track_their_events() {
        let t = TelemetryProbe::new();
        let mut p = &t;
        p.emit(
            EventKind::Alloc {
                words: 32,
                searched: 4,
            },
            Stamp::vtime(1),
        );
        p.emit(
            EventKind::Alloc {
                words: 100,
                searched: 9,
            },
            Stamp::vtime(2),
        );
        p.emit(EventKind::Fault, Stamp::vtime(10));
        p.emit(EventKind::Fault, Stamp::vtime(25));
        p.emit(
            EventKind::FetchStart { words: 512 },
            Stamp::at(Cycles::from_nanos(1_000), 25),
        );
        p.emit(
            EventKind::FetchDone { words: 512 },
            Stamp::at(Cycles::from_nanos(5_000), 25),
        );

        assert_eq!(t.alloc_words().count(), 2);
        assert_eq!(t.alloc_words().sum(), 132);
        assert_eq!(t.search_len().count(), 2);
        assert_eq!(t.inter_fault_gap().count(), 1);
        assert_eq!(t.inter_fault_gap().sum(), 15);
        assert_eq!(t.fetch_latency().count(), 1);
        assert_eq!(t.fetch_latency().sum(), 4_000);
        assert_eq!(t.counters().allocs, 2);
        assert_eq!(t.counters().faults, 2);
    }

    #[test]
    fn first_fault_and_unpaired_fetch_record_nothing() {
        let t = TelemetryProbe::new();
        let mut p = &t;
        p.emit(EventKind::Fault, Stamp::vtime(5));
        p.emit(
            EventKind::FetchDone { words: 8 },
            Stamp::at(Cycles::from_nanos(99), 5),
        );
        assert_eq!(t.inter_fault_gap().count(), 0);
        assert_eq!(t.fetch_latency().count(), 0);
        assert_eq!(t.counters().faults, 1);
        assert_eq!(t.counters().fetches, 1);
    }

    #[test]
    fn geometries_match_the_latency_probe() {
        let t = TelemetryProbe::new();
        assert_eq!(t.fetch_latency().spec(), geometry::FAULT_SERVICE_NS);
        assert_eq!(t.inter_fault_gap().spec(), geometry::INTER_FAULT_REFS);
        assert_eq!(t.search_len().spec(), geometry::SEARCH_LEN);
        assert_eq!(t.alloc_words().spec(), geometry::ALLOC_WORDS);
    }

    #[test]
    fn concurrent_emission_keeps_size_histograms_exact() {
        let t = TelemetryProbe::new();
        let threads = 8u64;
        let per_thread = 2_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let mut p = &t;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        p.emit(
                            EventKind::Alloc {
                                words: i % 32 + 1,
                                searched: i % 8,
                            },
                            Stamp::vtime(i),
                        );
                    }
                });
            }
        });
        assert_eq!(t.alloc_words().count(), threads * per_thread);
        assert_eq!(t.search_len().count(), threads * per_thread);
        assert_eq!(t.counters().allocs, threads * per_thread);
    }
}
