//! Tenants: who a request allocates *as*, and the word quotas that
//! keep one client from starving the rest.
//!
//! A shared allocation service is multi-tenant the moment two programs
//! submit to it — the paper's multiprogramming concern, restated at the
//! service boundary. Each [`Request`](crate::Request) carries a
//! [`Tenant`] (an id plus a [`Priority`]); the service charges every
//! successful allocation to its tenant's [`TenantTable`] entry and
//! refunds it on release. Quota reservation is a CAS loop over an
//! atomic occupancy counter, so the accounting is *exact* at any thread
//! count: reserve happens before the storage is touched, release after
//! the storage is returned, and a failed backend allocation rolls the
//! reservation back — the counter can transiently over-state occupancy
//! (by in-flight requests) but never under-state it, and it returns to
//! truth at quiescence.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use dsa_core::ids::Words;

/// How much a tenant matters when the service has to pick victims.
///
/// Ordering is by importance: `Low < Normal < High`. The shed rung of
/// the degradation ladder evicts lowest-priority tenants first, and
/// admission control under overload admits only the priorities above
/// the current watermark.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Best-effort: first to be shed, first to be refused admission.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-critical: admitted until the service is truly full,
    /// shed only when nothing lower remains.
    High,
}

impl Priority {
    /// Stable label for telemetry series and experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// The identity a request allocates under.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Tenant {
    /// Stable tenant id (dense small integers index the quota table).
    pub id: u32,
    /// The tenant's shed/admission class.
    pub priority: Priority,
}

impl Tenant {
    /// Tenant 0 at [`Priority::Normal`] — what untagged requests
    /// allocate as.
    pub const DEFAULT: Tenant = Tenant {
        id: 0,
        priority: Priority::Normal,
    };

    /// A tenant at [`Priority::Normal`].
    #[must_use]
    pub fn new(id: u32) -> Tenant {
        Tenant {
            id,
            priority: Priority::Normal,
        }
    }

    /// A tenant at an explicit priority.
    #[must_use]
    pub fn with_priority(id: u32, priority: Priority) -> Tenant {
        Tenant { id, priority }
    }
}

impl fmt::Display for Tenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant {} ({})", self.id, self.priority.label())
    }
}

/// One tenant's frozen accounting, inside an
/// [`ArenaSnapshot`](crate::ArenaSnapshot).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantOccupancy {
    /// The tenant id.
    pub tenant: u32,
    /// The tenant's shed/admission class.
    pub priority: Priority,
    /// Configured quota, in words.
    pub quota: Words,
    /// Words currently charged to the tenant.
    pub in_use: Words,
    /// Allocations shed *from* this tenant by the degradation ladder,
    /// cumulatively.
    pub shed: u64,
    /// Requests refused for this tenant by quota, cumulatively.
    pub quota_denials: u64,
}

/// One tenant's live accounting slot.
#[derive(Debug)]
struct TenantSlot {
    priority: Priority,
    quota: Words,
    in_use: AtomicU64,
    shed: AtomicU64,
    quota_denials: AtomicU64,
}

/// The per-tenant quota book: dense slots indexed by tenant id.
///
/// All counters are atomics; charging is a compare-and-swap loop so a
/// reservation either fits entirely under the quota or fails without
/// side effects — no over-grant window exists at any interleaving.
#[derive(Debug, Default)]
pub struct TenantTable {
    slots: Vec<TenantSlot>,
}

impl TenantTable {
    /// An empty table (every request fails with `UnknownTenant` until
    /// tenants are registered).
    #[must_use]
    pub fn new() -> TenantTable {
        TenantTable::default()
    }

    /// Registers tenant `id..` slots up to and including `id`, giving
    /// the new slot `quota` words at `priority`. Re-registering an id
    /// replaces its quota and priority but keeps its occupancy.
    pub fn register(&mut self, tenant: Tenant, quota: Words) {
        while self.slots.len() <= tenant.id as usize {
            self.slots.push(TenantSlot {
                priority: Priority::Normal,
                quota: 0,
                in_use: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                quota_denials: AtomicU64::new(0),
            });
        }
        let slot = &mut self.slots[tenant.id as usize];
        slot.priority = tenant.priority;
        slot.quota = quota;
    }

    /// Number of registered slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no tenant is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The registered priority of `tenant`, if known.
    #[must_use]
    pub fn priority(&self, tenant: u32) -> Option<Priority> {
        self.slots.get(tenant as usize).map(|s| s.priority)
    }

    /// Words currently charged to `tenant` (0 for unknown tenants).
    #[must_use]
    pub fn in_use(&self, tenant: u32) -> Words {
        self.slots
            .get(tenant as usize)
            .map_or(0, |s| s.in_use.load(Ordering::Acquire))
    }

    /// Attempts to charge `words` to `tenant`. The CAS loop grants the
    /// reservation only if the whole amount fits under the quota.
    ///
    /// # Errors
    ///
    /// Returns the occupancy observed at refusal time (for the typed
    /// `QuotaExceeded` error) without modifying the counter.
    pub fn try_reserve(&self, tenant: u32, words: Words) -> Result<(), Words> {
        let Some(slot) = self.slots.get(tenant as usize) else {
            return Err(0);
        };
        let mut cur = slot.in_use.load(Ordering::Acquire);
        loop {
            if cur + words > slot.quota {
                slot.quota_denials.fetch_add(1, Ordering::Relaxed);
                return Err(cur);
            }
            match slot.in_use.compare_exchange_weak(
                cur,
                cur + words,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Refunds `words` to `tenant` (release, or rollback of a
    /// reservation whose backend allocation failed).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the refund exceeds the occupancy —
    /// that would mean the books were already wrong.
    pub fn release(&self, tenant: u32, words: Words) {
        if let Some(slot) = self.slots.get(tenant as usize) {
            let prev = slot.in_use.fetch_sub(words, Ordering::AcqRel);
            debug_assert!(prev >= words, "tenant {tenant} refunded below zero");
        }
    }

    /// Unconditionally re-charges `words` to `tenant` — the rollback of
    /// a refund whose backend release failed. Unlike
    /// [`TenantTable::try_reserve`] this never refuses: the storage is
    /// demonstrably still held, so the books must say so even if that
    /// re-states an over-quota occupancy.
    pub fn recharge(&self, tenant: u32, words: Words) {
        if let Some(slot) = self.slots.get(tenant as usize) {
            slot.in_use.fetch_add(words, Ordering::AcqRel);
        }
    }

    /// Records one allocation shed from `tenant` by the degradation
    /// ladder (the occupancy itself is refunded via
    /// [`TenantTable::release`]).
    pub fn note_shed(&self, tenant: u32) {
        if let Some(slot) = self.slots.get(tenant as usize) {
            slot.shed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The configured quota of `tenant`, if registered.
    #[must_use]
    pub fn quota(&self, tenant: u32) -> Option<Words> {
        self.slots.get(tenant as usize).map(|s| s.quota)
    }

    /// Frozen per-tenant accounting, in tenant order.
    #[must_use]
    pub fn occupancy(&self) -> Vec<TenantOccupancy> {
        self.slots
            .iter()
            .enumerate()
            .map(|(id, s)| TenantOccupancy {
                tenant: id as u32,
                priority: s.priority,
                quota: s.quota,
                in_use: s.in_use.load(Ordering::Acquire),
                shed: s.shed.load(Ordering::Relaxed),
                quota_denials: s.quota_denials.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_reservation_grants_exactly_to_the_line() {
        let mut t = TenantTable::new();
        t.register(Tenant::new(0), 100);
        assert!(t.try_reserve(0, 60).is_ok());
        assert!(t.try_reserve(0, 40).is_ok());
        assert_eq!(t.try_reserve(0, 1), Err(100));
        t.release(0, 40);
        assert!(t.try_reserve(0, 40).is_ok());
        assert_eq!(t.in_use(0), 100);
        let occ = t.occupancy();
        assert_eq!(occ[0].quota_denials, 1);
    }

    #[test]
    fn unknown_tenants_are_refused_without_side_effects() {
        let t = TenantTable::new();
        assert_eq!(t.try_reserve(7, 10), Err(0));
        assert_eq!(t.in_use(7), 0);
        assert_eq!(t.quota(7), None);
    }

    #[test]
    fn priorities_order_by_importance() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Tenant::DEFAULT.id, 0);
    }

    #[test]
    fn concurrent_reservations_never_over_grant() {
        let mut t = TenantTable::new();
        t.register(Tenant::new(0), 1000);
        let granted = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let t = &t;
                let granted = &granted;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        if t.try_reserve(0, 7).is_ok() {
                            granted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let g = granted.load(Ordering::Relaxed);
        assert_eq!(t.in_use(0), g * 7);
        assert!(g * 7 <= 1000, "no over-grant: {g} grants of 7 words");
        // Full refund returns the books to zero, exactly.
        for _ in 0..g {
            t.release(0, 7);
        }
        assert_eq!(t.in_use(0), 0);
    }
}
