//! Always-on service telemetry: distributions per shard and per size
//! class.
//!
//! The service-wide [`TelemetryProbe`] already answers "what does the
//! traffic look like overall"; production triage needs one level finer
//! on both of the service's natural axes:
//!
//! * **per shard** — a stripe whose search lengths are growing is
//!   fragmenting (or absorbing everyone's steals) while its neighbours
//!   stay healthy;
//! * **per size class** — first-fit may place small requests instantly
//!   while large ones crawl the whole list; a single global histogram
//!   averages that signal away.
//!
//! Everything here is an [`AtomicHistogram`] bumped with relaxed
//! fetch-adds on the allocation path — always on, no locks, exact merge
//! into `dsa-metrics` histograms at read time.

use dsa_core::ids::Words;
use dsa_metrics::histogram::geometry;
use dsa_metrics::Histogram;
use dsa_telemetry::{AtomicHistogram, TelemetryProbe, TelemetrySnapshot};

/// Power-of-two request-size classes tracked separately: class *c*
/// covers sizes `[2^c, 2^(c+1))`, with the last class absorbing
/// everything larger.
pub const SIZE_CLASSES: usize = 16;

/// The size class of a request (`floor(log2(words))`, clamped).
#[must_use]
pub fn size_class(words: Words) -> usize {
    if words < 2 {
        0
    } else {
        (63 - words.leading_zeros() as usize).min(SIZE_CLASSES - 1)
    }
}

/// The always-on telemetry of one [`ArenaService`]: the global
/// [`TelemetryProbe`] plus per-shard and per-size-class distributions.
///
/// [`ArenaService`]: crate::ArenaService
#[derive(Debug)]
pub struct ServiceTelemetry {
    probe: TelemetryProbe,
    shard_alloc_words: Vec<AtomicHistogram>,
    shard_search: Vec<AtomicHistogram>,
    class_search: Vec<AtomicHistogram>,
}

impl ServiceTelemetry {
    /// Telemetry for a service of `shards` stripes (a slab backend is
    /// one stripe).
    #[must_use]
    pub fn new(shards: u32) -> ServiceTelemetry {
        ServiceTelemetry {
            probe: TelemetryProbe::new(),
            shard_alloc_words: (0..shards)
                .map(|_| AtomicHistogram::new(geometry::ALLOC_WORDS))
                .collect(),
            shard_search: (0..shards)
                .map(|_| AtomicHistogram::new(geometry::SEARCH_LEN))
                .collect(),
            class_search: (0..SIZE_CLASSES)
                .map(|_| AtomicHistogram::new(geometry::SEARCH_LEN))
                .collect(),
        }
    }

    /// The service-wide always-on sink (counters + global
    /// distributions); the service passes this as the probe on every
    /// backend operation.
    #[must_use]
    pub fn probe(&self) -> &TelemetryProbe {
        &self.probe
    }

    /// Number of shards tracked.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shard_alloc_words.len()
    }

    /// Records one successful allocation into the per-shard and
    /// per-class distributions (the global ones were fed by the probe
    /// on the emission path).
    pub fn record_alloc(&self, shard: u32, words: Words, searched: u64) {
        if let Some(h) = self.shard_alloc_words.get(shard as usize) {
            h.record(words);
        }
        if let Some(h) = self.shard_search.get(shard as usize) {
            h.record(searched);
        }
        self.class_search[size_class(words)].record(searched);
    }

    /// Frozen allocation-size distribution of one shard.
    #[must_use]
    pub fn shard_alloc_words(&self, shard: u32) -> Histogram {
        self.shard_alloc_words[shard as usize].snapshot()
    }

    /// Frozen hole-search-length distribution of one shard.
    #[must_use]
    pub fn shard_search(&self, shard: u32) -> Histogram {
        self.shard_search[shard as usize].snapshot()
    }

    /// Frozen hole-search-length distribution of one size class.
    #[must_use]
    pub fn class_search(&self, class: usize) -> Histogram {
        self.class_search[class].snapshot()
    }

    /// Registers the whole telemetry surface into an exporter snapshot:
    /// the probe's counters and global distributions, plus the
    /// per-shard and (non-empty) per-class distributions, labelled.
    pub fn export_into(&self, snap: &mut TelemetrySnapshot) {
        snap.counting_probe(&self.probe.counters(), &[]);
        snap.histogram(
            "alloc_words",
            "Allocation-request size in words",
            &[],
            &self.probe.alloc_words(),
        );
        snap.histogram(
            "search_len",
            "Free-list entries examined per allocation",
            &[],
            &self.probe.search_len(),
        );
        for s in 0..self.shard_count() {
            let shard = s.to_string();
            snap.histogram(
                "shard_alloc_words",
                "Allocation-request size in words, by shard",
                &[("shard", &shard)],
                &self.shard_alloc_words(s as u32),
            );
            snap.histogram(
                "shard_search_len",
                "Free-list entries examined per allocation, by shard",
                &[("shard", &shard)],
                &self.shard_search(s as u32),
            );
        }
        for c in 0..SIZE_CLASSES {
            let h = self.class_search(c);
            if h.count() == 0 {
                continue;
            }
            let class = (1u64 << c).to_string();
            snap.histogram(
                "class_search_len",
                "Free-list entries examined per allocation, by size class lower bound",
                &[("class_low", &class)],
                &h,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_cover_the_range() {
        assert_eq!(size_class(0), 0);
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(2), 1);
        assert_eq!(size_class(3), 1);
        assert_eq!(size_class(1024), 10);
        assert_eq!(size_class(u64::MAX), SIZE_CLASSES - 1);
    }

    #[test]
    fn per_shard_and_per_class_record_independently() {
        let t = ServiceTelemetry::new(4);
        t.record_alloc(0, 8, 2);
        t.record_alloc(0, 8, 4);
        t.record_alloc(3, 1000, 30);
        assert_eq!(t.shard_alloc_words(0).count(), 2);
        assert_eq!(t.shard_search(0).sum(), 6);
        assert_eq!(t.shard_alloc_words(1).count(), 0);
        assert_eq!(t.shard_alloc_words(3).count(), 1);
        assert_eq!(t.class_search(size_class(8)).count(), 2);
        assert_eq!(t.class_search(size_class(1000)).count(), 1);
    }

    #[test]
    fn out_of_range_shard_is_ignored() {
        let t = ServiceTelemetry::new(1);
        // A defensive no-op rather than a panic on the hot path.
        t.record_alloc(7, 16, 1);
        assert_eq!(t.shard_alloc_words(0).count(), 0);
        assert_eq!(t.class_search(size_class(16)).count(), 1);
    }

    #[test]
    fn export_registers_labelled_series() {
        let t = ServiceTelemetry::new(2);
        t.record_alloc(1, 64, 5);
        let mut snap = TelemetrySnapshot::new("dsa");
        t.export_into(&mut snap);
        let text = snap.render_prometheus();
        assert!(
            text.contains("dsa_shard_search_len_count{shard=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("dsa_class_search_len_count{class_low=\"64\"} 1"),
            "{text}"
        );
        // Empty classes are not exported.
        assert!(!text.contains("class_low=\"2\""), "{text}");
    }
}
