//! Admission control: the valve in front of the allocators.
//!
//! An overloaded allocation service has exactly two choices: collapse —
//! every request grinds through the full steal rotation, fails, and
//! retries — or *degrade on purpose*. The [`OverloadGuard`] implements
//! the second course. It watches global occupancy and refuses admission
//! at the door by tenant [`Priority`] once the watermarks are crossed,
//! and it meters the shed rung of the arena's degradation ladder
//! ([`ARENA_LADDER`]) through an [`AtomicShedBudget`] so victim
//! eviction is bounded per overload episode rather than cascading.
//!
//! The ladder the service walks on a failed placement, in order:
//!
//! 1. [`DegradationStep::RetryBackoff`] — re-drive the placement after
//!    the [`RetryPolicy`]'s backoff (another worker may have freed);
//! 2. [`DegradationStep::Coalesce`] — compact the pressured home shard
//!    so its free words become one placeable hole;
//! 3. [`DegradationStep::StealGlobal`] — the full steal rotation (the
//!    arena does this on every placement; the ladder names the re-drive
//!    after compaction);
//! 4. [`DegradationStep::ShedTenant`] — evict the lowest-priority
//!    tenant's blocks until the request fits, budget permitting.
//!
//! Only then does the typed failure surface to the client.
//!
//! [`ARENA_LADDER`]: dsa_faults::ladder::ARENA_LADDER

use std::sync::atomic::{AtomicU64, Ordering};

use dsa_core::ids::Words;
use dsa_faults::ladder::{AtomicShedBudget, DegradationStep};
use dsa_faults::RetryPolicy;

use crate::tenant::Priority;

/// Tuning for the [`OverloadGuard`].
#[derive(Clone, Debug)]
pub struct OverloadConfig {
    /// Occupancy fraction above which [`Priority::Low`] is refused
    /// admission.
    pub low_watermark: f64,
    /// Occupancy fraction above which only [`Priority::High`] is
    /// admitted.
    pub high_watermark: f64,
    /// Backoff schedule for the retry rung of the ladder.
    pub retry: RetryPolicy,
    /// Shed-rung budget per guard lifetime: at most this many victim
    /// evictions before failures surface unsoftened.
    pub shed_budget: u32,
}

impl Default for OverloadConfig {
    fn default() -> OverloadConfig {
        OverloadConfig {
            low_watermark: 0.85,
            high_watermark: 0.95,
            retry: RetryPolicy::default_policy(),
            shed_budget: 64,
        }
    }
}

/// The admission-control valve plus degradation-ladder metering.
///
/// All state is atomic: workers consult the guard concurrently with no
/// lock, and its counters reconcile exactly with the probe events the
/// service emits (one `AdmissionReject` event per refused request, one
/// `TenantShed` event per granted shed).
#[derive(Debug)]
pub struct OverloadGuard {
    config: OverloadConfig,
    shed_budget: AtomicShedBudget,
    admission_rejects: AtomicU64,
}

impl OverloadGuard {
    /// A guard under `config`.
    #[must_use]
    pub fn new(config: OverloadConfig) -> OverloadGuard {
        let shed_budget = AtomicShedBudget::new(config.shed_budget);
        OverloadGuard {
            config,
            shed_budget,
            admission_rejects: AtomicU64::new(0),
        }
    }

    /// The configured tuning.
    #[must_use]
    pub fn config(&self) -> &OverloadConfig {
        &self.config
    }

    /// Whether a request at `priority` is admitted when `in_use` of
    /// `capacity` words are occupied. Below the low watermark everyone
    /// is admitted; between the watermarks best-effort traffic is
    /// refused; above the high watermark only [`Priority::High`]
    /// clears the bar. A refusal is counted.
    pub fn admit(&self, priority: Priority, in_use: Words, capacity: Words) -> bool {
        let occupancy = if capacity == 0 {
            1.0
        } else {
            in_use as f64 / capacity as f64
        };
        let admitted = if occupancy >= self.config.high_watermark {
            priority >= Priority::High
        } else if occupancy >= self.config.low_watermark {
            priority >= Priority::Normal
        } else {
            true
        };
        if !admitted {
            self.admission_rejects.fetch_add(1, Ordering::Relaxed);
        }
        admitted
    }

    /// The retry rung's backoff schedule.
    #[must_use]
    pub fn retry(&self) -> &RetryPolicy {
        &self.config.retry
    }

    /// Claims one eviction from the shed budget; `false` once the
    /// budget for this overload episode is spent.
    pub fn try_shed(&self) -> bool {
        self.shed_budget.try_shed()
    }

    /// Evictions granted so far.
    #[must_use]
    pub fn sheds(&self) -> u64 {
        self.shed_budget.sheds()
    }

    /// Shed grants still available.
    #[must_use]
    pub fn shed_remaining(&self) -> u32 {
        self.shed_budget.remaining()
    }

    /// Requests refused at the door so far.
    #[must_use]
    pub fn admission_rejects(&self) -> u64 {
        self.admission_rejects.load(Ordering::Relaxed)
    }

    /// The ladder this guard meters, for display and docs.
    #[must_use]
    pub fn ladder() -> &'static [DegradationStep] {
        &dsa_faults::ladder::ARENA_LADDER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermarks_gate_by_priority() {
        let g = OverloadGuard::new(OverloadConfig::default());
        // Plenty of room: everyone gets in.
        assert!(g.admit(Priority::Low, 100, 1000));
        // Past the low watermark: best-effort refused.
        assert!(!g.admit(Priority::Low, 900, 1000));
        assert!(g.admit(Priority::Normal, 900, 1000));
        // Past the high watermark: only High.
        assert!(!g.admit(Priority::Normal, 960, 1000));
        assert!(g.admit(Priority::High, 960, 1000));
        assert_eq!(g.admission_rejects(), 2);
    }

    #[test]
    fn zero_capacity_admits_only_high() {
        let g = OverloadGuard::new(OverloadConfig::default());
        assert!(!g.admit(Priority::Normal, 0, 0));
        assert!(g.admit(Priority::High, 0, 0));
    }

    #[test]
    fn shed_budget_is_finite() {
        let g = OverloadGuard::new(OverloadConfig {
            shed_budget: 2,
            ..OverloadConfig::default()
        });
        assert!(g.try_shed());
        assert!(g.try_shed());
        assert!(!g.try_shed());
        assert_eq!(g.sheds(), 2);
        assert_eq!(g.shed_remaining(), 0);
    }

    #[test]
    fn the_arena_ladder_ends_in_tenant_shedding() {
        let ladder = OverloadGuard::ladder();
        assert_eq!(ladder.first(), Some(&DegradationStep::RetryBackoff));
        assert_eq!(ladder.last(), Some(&DegradationStep::ShedTenant));
    }
}
