//! The batching request port: the front door worker threads talk to.
//!
//! A production allocation service is not called one `malloc` at a
//! time across a socket — clients batch. [`ArenaService::submit`] takes
//! a slice of [`Request`]s, executes them in order, and returns one
//! [`Response`] per request. `submit` is `&self`: any number of worker
//! threads (`std::thread::scope` in the bench driver) push their own
//! batches concurrently, and the service routes each request to the
//! backend — the lock-free [`FixedSlab`] when the unit of allocation is
//! uniform, the [`ShardedArena`] when it is not (the paper's
//! §Uniformity axis, as a service configuration).
//!
//! Every operation is emitted into one [`SharedProbe`]. Because the
//! sink is a set of atomic counters, the totals it reports reconcile
//! *exactly* with the sum of per-worker response tallies at any thread
//! count — the reconciliation guarantee the sequential probes have
//! always given, extended to concurrent traffic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use dsa_core::error::AllocError;
use dsa_core::ids::{PhysAddr, Words};
use dsa_freelist::freelist::Placement;
use dsa_probe::{Event, EventKind, Probe, SharedProbe, Stamp, Tee};

use crate::slab::FixedSlab;
use crate::striped::{ArenaError, ShardedArena};
use crate::telemetry::ServiceTelemetry;

/// Stripes in the slab backend's id registry (the slab itself is
/// lock-free; only the id -> unit bookkeeping takes a short lock).
const REGISTRY_STRIPES: usize = 16;

/// One allocation-service operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Allocate `words` under `id`.
    Alloc {
        /// The client's identifier for the block.
        id: u64,
        /// Requested size in words.
        words: Words,
    },
    /// Release the allocation `id`.
    Free {
        /// The identifier passed at allocation time.
        id: u64,
    },
}

/// The outcome of one [`Request`], in batch order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The allocation succeeded.
    Allocated {
        /// The request's id.
        id: u64,
        /// The placed address (global across shards).
        addr: PhysAddr,
    },
    /// The release succeeded.
    Freed {
        /// The request's id.
        id: u64,
    },
    /// The request failed, with the typed reason.
    Failed {
        /// The request's id.
        id: u64,
        /// Why it failed.
        error: ArenaError,
    },
}

impl Response {
    /// Whether this response reports success.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        !matches!(self, Response::Failed { .. })
    }
}

#[derive(Debug)]
enum Backend {
    /// Uniform allocation units: the lock-free slab, plus a striped
    /// id -> unit registry.
    Slab {
        slab: FixedSlab,
        registry: Vec<Mutex<HashMap<u64, u32>>>,
    },
    /// Variable allocation units: the sharded free-list arena.
    Striped(ShardedArena),
}

/// The thread-safe allocation service front-end.
///
/// # Examples
///
/// ```
/// use dsa_arena::{ArenaService, Request, Response};
/// use dsa_freelist::Placement;
///
/// let svc = ArenaService::striped(4, 1000, Placement::FirstFit);
/// let batch = [
///     Request::Alloc { id: 1, words: 100 },
///     Request::Free { id: 1 },
/// ];
/// let responses = svc.submit(&batch);
/// assert!(responses.iter().all(Response::is_ok));
/// assert_eq!(svc.counters().allocs, 1);
/// ```
#[derive(Debug)]
pub struct ArenaService {
    backend: Backend,
    telemetry: ServiceTelemetry,
    /// Service-wide request sequence: the virtual-time stamp on emitted
    /// events (a total order over requests, whatever the thread count).
    clock: AtomicU64,
}

/// Captures the `Alloc` payload the backend emits, so the service can
/// attribute it to the serving shard and size class without re-deriving
/// the search length.
#[derive(Default)]
struct LastAlloc {
    searched: u64,
}

impl Probe for LastAlloc {
    fn record(&mut self, event: &Event) {
        if let EventKind::Alloc { searched, .. } = event.kind {
            self.searched = searched;
        }
    }
}

impl ArenaService {
    /// A service over uniform units: `units` blocks of `unit_words`
    /// words in a lock-free [`FixedSlab`].
    ///
    /// # Panics
    ///
    /// Panics if `units` or `unit_words` is zero.
    #[must_use]
    pub fn fixed(units: u32, unit_words: Words) -> ArenaService {
        ArenaService {
            backend: Backend::Slab {
                slab: FixedSlab::new(units, unit_words),
                registry: (0..REGISTRY_STRIPES)
                    .map(|_| Mutex::new(HashMap::new()))
                    .collect(),
            },
            telemetry: ServiceTelemetry::new(1),
            clock: AtomicU64::new(0),
        }
    }

    /// A service over variable units: `shards` stripes of
    /// `shard_capacity` words each, under `policy`, in a
    /// [`ShardedArena`].
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `shard_capacity` is zero.
    #[must_use]
    pub fn striped(shards: u32, shard_capacity: Words, policy: Placement) -> ArenaService {
        ArenaService {
            backend: Backend::Striped(ShardedArena::new(shards, shard_capacity, policy)),
            telemetry: ServiceTelemetry::new(shards),
            clock: AtomicU64::new(0),
        }
    }

    /// The shared atomic event sink.
    #[must_use]
    pub fn probe(&self) -> &SharedProbe {
        self.telemetry.probe().shared()
    }

    /// The always-on telemetry: counters plus global, per-shard and
    /// per-size-class distributions.
    #[must_use]
    pub fn telemetry(&self) -> &ServiceTelemetry {
        &self.telemetry
    }

    /// A frozen copy of the counters (see [`SharedProbe::snapshot`]).
    #[must_use]
    pub fn counters(&self) -> dsa_probe::CountingProbe {
        self.telemetry.probe().counters()
    }

    /// The striped backend, when this service allocates variable units.
    #[must_use]
    pub fn arena(&self) -> Option<&ShardedArena> {
        match &self.backend {
            Backend::Striped(a) => Some(a),
            Backend::Slab { .. } => None,
        }
    }

    /// The slab backend, when this service allocates uniform units.
    #[must_use]
    pub fn slab(&self) -> Option<&FixedSlab> {
        match &self.backend {
            Backend::Slab { slab, .. } => Some(slab),
            Backend::Striped(_) => None,
        }
    }

    fn registry_stripe<'a>(
        registry: &'a [Mutex<HashMap<u64, u32>>],
        id: u64,
    ) -> MutexGuard<'a, HashMap<u64, u32>> {
        let stripe = (id % registry.len() as u64) as usize;
        registry[stripe]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Executes a batch in order, returning one response per request.
    ///
    /// Thread-safe: workers call this concurrently on a shared
    /// reference; responses are positionally matched to the batch.
    pub fn submit(&self, batch: &[Request]) -> Vec<Response> {
        batch.iter().map(|&req| self.execute(req)).collect()
    }

    fn execute(&self, req: Request) -> Response {
        let at = Stamp::vtime(self.clock.fetch_add(1, Ordering::Relaxed));
        match req {
            Request::Alloc { id, words } => match self.alloc(id, words, at) {
                Ok(addr) => Response::Allocated { id, addr },
                Err(error) => Response::Failed { id, error },
            },
            Request::Free { id } => match self.free(id, at) {
                Ok(()) => Response::Freed { id },
                Err(error) => Response::Failed { id, error },
            },
        }
    }

    fn alloc(&self, id: u64, words: Words, at: Stamp) -> Result<PhysAddr, ArenaError> {
        match &self.backend {
            Backend::Striped(arena) => {
                let mut last = LastAlloc::default();
                let mut sink = Tee(self.telemetry.probe(), &mut last);
                let addr = arena.alloc_probed(id, words, at, &mut sink)?;
                let shard = (addr.value() / arena.shard_capacity()) as u32;
                self.telemetry.record_alloc(shard, words, last.searched);
                Ok(addr)
            }
            Backend::Slab { slab, registry } => {
                if words == 0 {
                    return Err(ArenaError::Alloc(AllocError::ZeroSize));
                }
                if words > slab.unit_words() {
                    return Err(ArenaError::Alloc(AllocError::RequestTooLarge {
                        requested: words,
                        max: slab.unit_words(),
                    }));
                }
                let mut reg = Self::registry_stripe(registry, id);
                if reg.contains_key(&id) {
                    return Err(ArenaError::Alloc(AllocError::AlreadyAllocated));
                }
                let unit = slab.alloc()?;
                reg.insert(id, unit.unit);
                drop(reg);
                self.telemetry
                    .record_alloc(0, slab.unit_words(), u64::from(unit.attempts));
                let mut sink = self.telemetry.probe();
                sink.emit(
                    EventKind::Alloc {
                        // The unit is the grain: a smaller request still
                        // consumes a whole unit (internal
                        // fragmentation, the uniform-unit tax).
                        words: slab.unit_words(),
                        searched: u64::from(unit.attempts),
                    },
                    at,
                );
                Ok(unit.addr)
            }
        }
    }

    fn free(&self, id: u64, at: Stamp) -> Result<(), ArenaError> {
        match &self.backend {
            Backend::Striped(arena) => {
                let mut sink = self.telemetry.probe();
                arena.free_probed(id, at, &mut sink)
            }
            Backend::Slab { slab, registry } => {
                let mut reg = Self::registry_stripe(registry, id);
                let unit = reg.remove(&id).ok_or(AllocError::UnknownUnit)?;
                slab.free(unit)?;
                drop(reg);
                let mut sink = self.telemetry.probe();
                sink.emit(
                    EventKind::Free {
                        words: slab.unit_words(),
                    },
                    at,
                );
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_batch_roundtrip_reconciles() {
        let svc = ArenaService::striped(4, 1000, Placement::BestFit);
        let batch: Vec<Request> = (0..10)
            .map(|id| Request::Alloc { id, words: 50 })
            .chain((0..5).map(|id| Request::Free { id }))
            .collect();
        let responses = svc.submit(&batch);
        assert!(responses.iter().all(Response::is_ok));
        let c = svc.counters();
        assert_eq!(c.allocs, 10);
        assert_eq!(c.alloc_words, 500);
        assert_eq!(c.frees, 5);
        assert_eq!(c.freed_words, 250);
        assert_eq!(svc.arena().unwrap().snapshot().allocated_words(), 250);
    }

    #[test]
    fn slab_service_enforces_the_unit_grain() {
        let svc = ArenaService::fixed(4, 64);
        let r = svc.submit(&[
            Request::Alloc { id: 1, words: 64 },
            Request::Alloc { id: 2, words: 10 }, // fits, whole unit consumed
            Request::Alloc { id: 3, words: 65 }, // too big for the grain
            Request::Free { id: 2 },
        ]);
        assert!(r[0].is_ok());
        assert!(r[1].is_ok());
        assert_eq!(
            r[2],
            Response::Failed {
                id: 3,
                error: ArenaError::Alloc(AllocError::RequestTooLarge {
                    requested: 65,
                    max: 64
                })
            }
        );
        assert!(r[3].is_ok());
        let c = svc.counters();
        assert_eq!(c.allocs, 2);
        assert_eq!(c.alloc_words, 128, "whole units, not requested words");
        assert_eq!(c.frees, 1);
    }

    #[test]
    fn duplicate_and_unknown_ids_fail_typed() {
        let svc = ArenaService::fixed(2, 8);
        let r = svc.submit(&[
            Request::Alloc { id: 7, words: 8 },
            Request::Alloc { id: 7, words: 8 },
            Request::Free { id: 9 },
        ]);
        assert!(r[0].is_ok());
        assert_eq!(
            r[1],
            Response::Failed {
                id: 7,
                error: ArenaError::Alloc(AllocError::AlreadyAllocated)
            }
        );
        assert_eq!(
            r[2],
            Response::Failed {
                id: 9,
                error: ArenaError::Alloc(AllocError::UnknownUnit)
            }
        );
    }

    #[test]
    fn concurrent_submissions_reconcile_exactly() {
        let svc = ArenaService::striped(4, 4096, Placement::FirstFit);
        let threads = 8u64;
        let per_thread = 500u64;
        let oks: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let svc = &svc;
                let oks = &oks;
                scope.spawn(move || {
                    let mut ok = 0u64;
                    for i in 0..per_thread {
                        let id = (t << 32) | i;
                        let batch = [Request::Alloc { id, words: 16 }, Request::Free { id }];
                        ok += svc.submit(&batch).iter().filter(|r| r.is_ok()).count() as u64;
                    }
                    oks[t as usize].store(ok, Ordering::Relaxed);
                });
            }
        });
        let total_ok: u64 = oks.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        let c = svc.counters();
        // Every successful response is counted exactly once in the
        // shared sink, whatever the interleaving.
        assert_eq!(c.allocs + c.frees, total_ok);
        assert_eq!(c.allocs, c.frees);
        assert_eq!(svc.arena().unwrap().snapshot().allocated_words(), 0);
        svc.arena().unwrap().check_invariants();
    }
}
