//! The batching request port: the front door worker threads talk to.
//!
//! A production allocation service is not called one `malloc` at a
//! time across a socket — clients batch. [`ArenaService::submit`] takes
//! a slice of [`Request`]s, executes them in order, and returns one
//! [`Response`] per request. `submit` is `&self`: any number of worker
//! threads (`std::thread::scope` in the bench driver) push their own
//! batches concurrently, and the service routes each request to the
//! backend — the lock-free [`FixedSlab`] when the unit of allocation is
//! uniform, the [`ShardedArena`] when it is not (the paper's
//! §Uniformity axis, as a service configuration).
//!
//! On top of the backends the service is *multi-tenant and
//! overload-hardened*:
//!
//! * every request allocates as a [`Tenant`]; registered tenants carry
//!   word quotas charged through the atomic [`TenantTable`] **before**
//!   storage is touched and refunded after it is returned, so the
//!   per-tenant books reconcile exactly at any thread count;
//! * an optional [`OverloadGuard`] refuses admission at the door by
//!   priority once occupancy crosses its watermarks, and walks the
//!   [`ARENA_LADDER`] degradation ladder (retry with backoff → coalesce
//!   the pressured shard → compact globally and re-drive the steal
//!   rotation → shed lowest-priority tenants) before a typed failure
//!   reaches the caller;
//! * [`ArenaService::submit_chaos`] drives the same path under
//!   deterministic fault injection — forced allocation failures,
//!   channel delays, and shard corruption that is detected,
//!   quarantined and healed in place.
//!
//! Every operation is emitted into one [`SharedProbe`]. Because the
//! sink is a set of atomic counters, the totals it reports reconcile
//! *exactly* with the sum of per-worker response tallies at any thread
//! count — the reconciliation guarantee the sequential probes have
//! always given, extended to concurrent traffic.
//!
//! [`ARENA_LADDER`]: dsa_faults::ladder::ARENA_LADDER

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use dsa_core::error::AllocError;
use dsa_core::ids::{PhysAddr, Words};
use dsa_faults::ladder::DegradationStep;
use dsa_faults::WorkerInjector;
use dsa_freelist::freelist::Placement;
use dsa_probe::{Event, EventKind, InjectedFault, NullProbe, Probe, SharedProbe, Stamp, Tee};
use dsa_telemetry::TelemetrySnapshot;

use crate::overload::{OverloadConfig, OverloadGuard};
use crate::slab::FixedSlab;
use crate::striped::{ArenaError, ArenaSnapshot, ShardedArena};
use crate::telemetry::ServiceTelemetry;
use crate::tenant::{Priority, Tenant, TenantOccupancy, TenantTable};

/// Stripes in the service's id registry (the map from live ids to
/// their tenant, charged words and — for the slab — unit).
const REGISTRY_STRIPES: usize = 16;

/// One allocation-service operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Allocate `words` under `id`, charged to `tenant`.
    Alloc {
        /// The client's identifier for the block.
        id: u64,
        /// Requested size in words.
        words: Words,
        /// Who the allocation is charged to.
        tenant: Tenant,
    },
    /// Release the allocation `id`.
    Free {
        /// The identifier passed at allocation time.
        id: u64,
    },
}

impl Request {
    /// An allocation as [`Tenant::DEFAULT`].
    #[must_use]
    pub fn alloc(id: u64, words: Words) -> Request {
        Request::Alloc {
            id,
            words,
            tenant: Tenant::DEFAULT,
        }
    }

    /// An allocation charged to an explicit tenant.
    #[must_use]
    pub fn alloc_as(id: u64, words: Words, tenant: Tenant) -> Request {
        Request::Alloc { id, words, tenant }
    }

    /// A release.
    #[must_use]
    pub fn free(id: u64) -> Request {
        Request::Free { id }
    }
}

/// The outcome of one [`Request`], in batch order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The allocation succeeded.
    Allocated {
        /// The request's id.
        id: u64,
        /// The placed address (global across shards).
        addr: PhysAddr,
    },
    /// The release succeeded.
    Freed {
        /// The request's id.
        id: u64,
    },
    /// The request failed, with the typed reason.
    Failed {
        /// The request's id.
        id: u64,
        /// Why it failed.
        error: ArenaError,
    },
}

impl Response {
    /// Whether this response reports success.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        !matches!(self, Response::Failed { .. })
    }
}

/// One live allocation's service-side book entry.
#[derive(Clone, Copy, Debug)]
struct LiveRec {
    /// The tenant charged.
    tenant: u32,
    /// Words charged (requested words for the striped backend, the
    /// whole unit for the slab).
    words: Words,
    /// The slab unit backing the id (unused by the striped backend).
    unit: u32,
}

#[derive(Debug)]
enum Backend {
    /// Uniform allocation units: the lock-free slab.
    Slab(FixedSlab),
    /// Variable allocation units: the sharded free-list arena.
    Striped(ShardedArena),
}

/// The thread-safe allocation service front-end.
///
/// # Examples
///
/// ```
/// use dsa_arena::{ArenaService, Request, Response};
/// use dsa_freelist::Placement;
///
/// let svc = ArenaService::striped(4, 1000, Placement::FirstFit);
/// let batch = [Request::alloc(1, 100), Request::free(1)];
/// let responses = svc.submit(&batch);
/// assert!(responses.iter().all(Response::is_ok));
/// assert_eq!(svc.counters().allocs, 1);
/// ```
#[derive(Debug)]
pub struct ArenaService {
    backend: Backend,
    telemetry: ServiceTelemetry,
    /// id -> live book entry, striped by id to keep lock spans short.
    registry: Vec<Mutex<HashMap<u64, LiveRec>>>,
    /// Per-tenant quotas and occupancy. An empty table means an
    /// untenanted service: no quota metering, no registration needed.
    tenants: TenantTable,
    /// Admission control + degradation ladder, when armed.
    guard: Option<OverloadGuard>,
    /// Service-wide charged words (advisory: feeds the admission
    /// watermarks; the exact books are the registry + tenant table).
    occupied: AtomicU64,
    /// Service-wide request sequence: the virtual-time stamp on emitted
    /// events (a total order over requests, whatever the thread count).
    clock: AtomicU64,
}

/// Captures the `Alloc` payload the backend emits, so the service can
/// attribute it to the serving shard and size class without re-deriving
/// the search length.
#[derive(Default)]
struct LastAlloc {
    searched: u64,
}

impl Probe for LastAlloc {
    fn record(&mut self, event: &Event) {
        if let EventKind::Alloc { searched, .. } = event.kind {
            self.searched = searched;
        }
    }
}

impl ArenaService {
    /// A service over uniform units: `units` blocks of `unit_words`
    /// words in a lock-free [`FixedSlab`].
    ///
    /// # Panics
    ///
    /// Panics if `units` or `unit_words` is zero.
    #[must_use]
    pub fn fixed(units: u32, unit_words: Words) -> ArenaService {
        ArenaService::over(Backend::Slab(FixedSlab::new(units, unit_words)), 1)
    }

    /// A service over variable units: `shards` stripes of
    /// `shard_capacity` words each, under `policy`, in a
    /// [`ShardedArena`].
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `shard_capacity` is zero.
    #[must_use]
    pub fn striped(shards: u32, shard_capacity: Words, policy: Placement) -> ArenaService {
        ArenaService::over(
            Backend::Striped(ShardedArena::new(shards, shard_capacity, policy)),
            shards,
        )
    }

    fn over(backend: Backend, shards: u32) -> ArenaService {
        ArenaService {
            backend,
            telemetry: ServiceTelemetry::new(shards),
            registry: (0..REGISTRY_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            tenants: TenantTable::new(),
            guard: None,
            occupied: AtomicU64::new(0),
            clock: AtomicU64::new(0),
        }
    }

    /// Arms admission control and the degradation ladder.
    #[must_use]
    pub fn with_overload(mut self, config: OverloadConfig) -> ArenaService {
        self.guard = Some(OverloadGuard::new(config));
        self
    }

    /// Arms the small-size quick-list fast path in every shard of a
    /// striped backend (no-op over a slab backend, which is already
    /// O(1)). Host-speed mode: placement behavior changes and the
    /// quick path charges no modeled probes, so modeled (golden)
    /// experiments must not use it. Reconciliation is unaffected —
    /// parked blocks count as free words, so charged words still equal
    /// arena-allocated words.
    ///
    /// # Panics
    ///
    /// Panics if `max_size` is zero or exceeds the shard capacity, or
    /// if `depth` is zero.
    #[must_use]
    pub fn with_quick_lists(self, max_size: Words, depth: usize) -> ArenaService {
        if let Backend::Striped(arena) = &self.backend {
            arena.enable_quick_lists(max_size, depth);
        }
        self
    }

    /// Registers (or re-registers) a tenant with a word quota. Once any
    /// tenant is registered, *every* request must allocate as a
    /// registered tenant — unknown tenants fail typed.
    pub fn register_tenant(&mut self, tenant: Tenant, quota: Words) {
        self.tenants.register(tenant, quota);
    }

    /// The per-tenant quota book.
    #[must_use]
    pub fn tenants(&self) -> &TenantTable {
        &self.tenants
    }

    /// The admission-control guard, when armed.
    #[must_use]
    pub fn guard(&self) -> Option<&OverloadGuard> {
        self.guard.as_ref()
    }

    /// Total backend capacity, in words.
    #[must_use]
    pub fn capacity(&self) -> Words {
        match &self.backend {
            Backend::Slab(slab) => slab.capacity_words(),
            Backend::Striped(a) => a.capacity(),
        }
    }

    /// Words currently charged across all tenants.
    #[must_use]
    pub fn occupied(&self) -> Words {
        self.occupied.load(Ordering::Relaxed)
    }

    /// The shared atomic event sink.
    #[must_use]
    pub fn probe(&self) -> &SharedProbe {
        self.telemetry.probe().shared()
    }

    /// The always-on telemetry: counters plus global, per-shard and
    /// per-size-class distributions.
    #[must_use]
    pub fn telemetry(&self) -> &ServiceTelemetry {
        &self.telemetry
    }

    /// A frozen copy of the counters (see [`SharedProbe::snapshot`]).
    #[must_use]
    pub fn counters(&self) -> dsa_probe::CountingProbe {
        self.telemetry.probe().counters()
    }

    /// The striped backend, when this service allocates variable units.
    #[must_use]
    pub fn arena(&self) -> Option<&ShardedArena> {
        match &self.backend {
            Backend::Striped(a) => Some(a),
            Backend::Slab(_) => None,
        }
    }

    /// The slab backend, when this service allocates uniform units.
    #[must_use]
    pub fn slab(&self) -> Option<&FixedSlab> {
        match &self.backend {
            Backend::Slab(slab) => Some(slab),
            Backend::Striped(_) => None,
        }
    }

    /// Frozen per-tenant accounting, in tenant order.
    #[must_use]
    pub fn tenant_occupancy(&self) -> Vec<TenantOccupancy> {
        self.tenants.occupancy()
    }

    /// A point-in-time arena view with the per-tenant books filled in
    /// (`None` for the slab backend, whose view is
    /// [`FixedSlab::stats`]).
    #[must_use]
    pub fn snapshot(&self) -> Option<ArenaSnapshot> {
        self.arena().map(|a| {
            let mut snap = a.snapshot();
            snap.tenants = self.tenants.occupancy();
            snap
        })
    }

    /// Registers the service's full telemetry surface into an exporter
    /// snapshot: the base counters and distributions, then the ordered
    /// per-tenant quota series and the per-shard quarantine flags.
    pub fn export_into(&self, snap: &mut TelemetrySnapshot) {
        self.telemetry.export_into(snap);
        for t in self.tenants.occupancy() {
            let tenant = t.tenant.to_string();
            let labels = [
                ("tenant", tenant.as_str()),
                ("priority", t.priority.label()),
            ];
            snap.gauge(
                "tenant_quota_words",
                "Configured per-tenant quota in words",
                &labels,
                t.quota as f64,
            );
            snap.gauge(
                "tenant_in_use_words",
                "Words currently charged to the tenant",
                &labels,
                t.in_use as f64,
            );
            snap.counter(
                "tenant_shed_total",
                "Allocations shed from the tenant by the degradation ladder",
                &labels,
                t.shed,
            );
            snap.counter(
                "tenant_quota_denials_total",
                "Requests refused by the tenant's quota",
                &labels,
                t.quota_denials,
            );
        }
        if let Some(arena) = self.arena() {
            for s in 0..arena.shard_count() {
                let shard = s.to_string();
                snap.gauge(
                    "shard_quarantined",
                    "Whether the shard is quarantined (1) or serving (0)",
                    &[("shard", &shard)],
                    if arena.is_quarantined(s) { 1.0 } else { 0.0 },
                );
            }
        }
        if let Some(guard) = &self.guard {
            snap.counter(
                "admission_rejects_total",
                "Requests refused at the door by admission control",
                &[],
                guard.admission_rejects(),
            );
            snap.counter(
                "tenant_sheds_granted_total",
                "Shed-rung grants taken from the overload budget",
                &[],
                guard.sheds(),
            );
        }
    }

    fn stripe(&self, id: u64) -> MutexGuard<'_, HashMap<u64, LiveRec>> {
        let stripe = (id % self.registry.len() as u64) as usize;
        self.registry[stripe]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Executes a batch in order, returning one response per request.
    ///
    /// Thread-safe: workers call this concurrently on a shared
    /// reference; responses are positionally matched to the batch.
    pub fn submit(&self, batch: &[Request]) -> Vec<Response> {
        self.submit_with(batch, &mut NullProbe)
    }

    /// [`ArenaService::submit`] with an extra per-worker event sink
    /// teed alongside the always-on telemetry — a flight recorder for
    /// shed postmortems, a JSONL stream, a latency tracker.
    pub fn submit_with<X: Probe + ?Sized>(
        &self,
        batch: &[Request],
        extra: &mut X,
    ) -> Vec<Response> {
        batch
            .iter()
            .map(|&req| self.execute(req, extra, None))
            .collect()
    }

    /// [`ArenaService::submit_with`] under chaos: each request rolls
    /// the worker's deterministic hazard stream for channel delays,
    /// forced allocation failures, and — on the striped backend —
    /// shard corruption, which is detected by audit, quarantined, and
    /// healed in place before the request proceeds. (The slab backend
    /// has no free list to corrupt; it sees delays and forced failures
    /// only.)
    pub fn submit_chaos<X: Probe + ?Sized>(
        &self,
        batch: &[Request],
        inj: &mut WorkerInjector<'_>,
        extra: &mut X,
    ) -> Vec<Response> {
        batch
            .iter()
            .map(|&req| self.execute(req, extra, Some(&mut *inj)))
            .collect()
    }

    fn execute<X: Probe + ?Sized>(
        &self,
        req: Request,
        extra: &mut X,
        mut chaos: Option<&mut WorkerInjector<'_>>,
    ) -> Response {
        let at = Stamp::vtime(self.clock.fetch_add(1, Ordering::Relaxed));
        if let Some(inj) = chaos.as_deref_mut() {
            self.roll_ambient_hazards(inj, at, extra);
        }
        match req {
            Request::Alloc { id, words, tenant } => {
                match self.alloc(id, words, tenant, at, extra, chaos) {
                    Ok(addr) => Response::Allocated { id, addr },
                    Err(error) => Response::Failed { id, error },
                }
            }
            Request::Free { id } => match self.free(id, at, extra) {
                Ok(()) => Response::Freed { id },
                Err(error) => Response::Failed { id, error },
            },
        }
    }

    /// Hazards that fire between requests: a channel-congestion stall
    /// (a bounded yield — simulated stall time is the injector's
    /// business, not wall time) and, on the striped backend, free-list
    /// corruption. Corruption is *immediately* detected by the shard
    /// audit and healed through the quarantine path, under live
    /// traffic from the other workers.
    fn roll_ambient_hazards<X: Probe + ?Sized>(
        &self,
        inj: &mut WorkerInjector<'_>,
        at: Stamp,
        extra: &mut X,
    ) {
        let mut sink = Tee(self.telemetry.probe(), extra);
        if inj.channel_delay().is_some() {
            sink.emit(
                EventKind::FaultInjected {
                    fault: InjectedFault::ChannelDelay,
                },
                at,
            );
            std::thread::yield_now();
        }
        if let Backend::Striped(arena) = &self.backend {
            if inj.shard_corruption() {
                let target = inj.corruption_target(arena.shard_count());
                arena.corrupt_shard_for_chaos(target);
                sink.emit(
                    EventKind::FaultInjected {
                        fault: InjectedFault::ShardCorruption,
                    },
                    at,
                );
                // Heal in place; on a (never-expected) rebuild failure
                // the shard stays quarantined and the service degrades
                // around it instead of serving from corrupt state. (No
                // audit assertion here: a concurrent worker healing its
                // own corruption of the same shard may have already
                // repaired this one — the rebuild below is idempotent.)
                let _ = arena.heal_shard(target, at, &mut sink);
            }
        }
    }

    fn alloc<X: Probe + ?Sized>(
        &self,
        id: u64,
        words: Words,
        tenant: Tenant,
        at: Stamp,
        extra: &mut X,
        mut chaos: Option<&mut WorkerInjector<'_>>,
    ) -> Result<PhysAddr, ArenaError> {
        if words == 0 {
            return Err(ArenaError::Alloc(AllocError::ZeroSize));
        }
        if let Backend::Slab(slab) = &self.backend {
            if words > slab.unit_words() {
                return Err(ArenaError::Alloc(AllocError::RequestTooLarge {
                    requested: words,
                    max: slab.unit_words(),
                }));
            }
        }
        // The forced-failure hazard is rolled before any stateful gate
        // (admission, quota) so every Alloc request consumes exactly
        // the same injector rolls regardless of how concurrent books
        // look at the instant it runs — the schedule stays a pure
        // function of (seed, stream), byte-identical at any thread
        // count.
        let forced = chaos.as_mut().is_some_and(|inj| inj.alloc_failure());
        if forced {
            let mut sink = Tee(self.telemetry.probe(), &mut *extra);
            sink.emit(
                EventKind::FaultInjected {
                    fault: InjectedFault::AllocFailure,
                },
                at,
            );
        }
        let priority = self.tenants.priority(tenant.id).unwrap_or(tenant.priority);
        // Admission: refused at the door, before any book is touched.
        if let Some(guard) = &self.guard {
            if !guard.admit(priority, self.occupied(), self.capacity()) {
                let mut sink = Tee(self.telemetry.probe(), extra);
                sink.emit(EventKind::AdmissionReject { tenant: tenant.id }, at);
                return Err(ArenaError::AdmissionDenied { tenant: tenant.id });
            }
        }
        // Quota: the whole charge is reserved up front (CAS, exact) and
        // rolled back if the backend cannot place the request.
        let charge = match &self.backend {
            Backend::Slab(slab) => slab.unit_words(),
            Backend::Striped(_) => words,
        };
        let metered = !self.tenants.is_empty();
        if metered {
            let Some(quota) = self.tenants.quota(tenant.id) else {
                return Err(ArenaError::UnknownTenant { tenant: tenant.id });
            };
            if let Err(in_use) = self.tenants.try_reserve(tenant.id, charge) {
                let mut sink = Tee(self.telemetry.probe(), extra);
                sink.emit(EventKind::QuotaDenied { tenant: tenant.id }, at);
                return Err(ArenaError::QuotaExceeded {
                    tenant: tenant.id,
                    requested: charge,
                    quota,
                    in_use,
                });
            }
        }
        // Book the id before the backend runs: the registry entry goes
        // live together with the quota charge, so a probe panic on the
        // success emission (which fires after the backend mutation)
        // leaves every book already agreeing.
        {
            let mut reg = self.stripe(id);
            if reg.contains_key(&id) {
                drop(reg);
                if metered {
                    self.tenants.release(tenant.id, charge);
                }
                return Err(ArenaError::Alloc(AllocError::AlreadyAllocated));
            }
            reg.insert(
                id,
                LiveRec {
                    tenant: tenant.id,
                    words: charge,
                    unit: 0,
                },
            );
        }
        // Occupancy is charged before the backend runs, mirroring the
        // quota reservation: the success emission fires *after* the
        // backend mutation, so a probe panic there (poisoning the shard
        // lock) must find every book — registry, quota, occupancy, and
        // the arena itself — already agreeing. Like the quota, the
        // counter transiently over-states during flight and is rolled
        // back on a failed placement.
        self.occupied.fetch_add(charge, Ordering::Relaxed);
        let placed = match &self.backend {
            Backend::Striped(arena) => {
                self.striped_alloc(arena, id, words, priority, forced, at, extra)
            }
            Backend::Slab(slab) => self.slab_alloc(slab, id, forced, at, extra),
        };
        match placed {
            Ok(addr) => Ok(addr),
            Err(e) => {
                self.occupied.fetch_sub(charge, Ordering::Relaxed);
                self.stripe(id).remove(&id);
                if metered {
                    self.tenants.release(tenant.id, charge);
                }
                Err(e)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn striped_alloc<X: Probe + ?Sized>(
        &self,
        arena: &ShardedArena,
        id: u64,
        words: Words,
        priority: Priority,
        forced_failure: bool,
        at: Stamp,
        extra: &mut X,
    ) -> Result<PhysAddr, ArenaError> {
        let mut last = LastAlloc::default();
        let mut sink = Tee(Tee(self.telemetry.probe(), extra), &mut last);
        let first = if forced_failure {
            // The injector refused this placement outright; recovery
            // starts at the ladder exactly as for true exhaustion.
            Err(ArenaError::Exhausted {
                requested: words,
                per_shard: Vec::new(),
            })
        } else {
            arena.alloc_probed(id, words, at, &mut sink)
        };
        let placed = match first {
            Err(ArenaError::Exhausted { .. }) if self.guard.is_some() => {
                self.climb_ladder(arena, id, words, priority, at, &mut sink)
            }
            other => other,
        };
        let addr = placed?;
        let shard = (addr.value() / arena.shard_capacity()) as u32;
        self.telemetry.record_alloc(shard, words, last.searched);
        Ok(addr)
    }

    /// The [`ARENA_LADDER`] walk on a placement failure, rung by rung,
    /// re-driving the allocation after each. Every rung emits its
    /// [`DegradationStep`]; every shed emits `TenantShed`, one for one
    /// with the budget grants.
    ///
    /// [`ARENA_LADDER`]: dsa_faults::ladder::ARENA_LADDER
    fn climb_ladder<P: Probe + ?Sized>(
        &self,
        arena: &ShardedArena,
        id: u64,
        words: Words,
        priority: Priority,
        at: Stamp,
        probe: &mut P,
    ) -> Result<PhysAddr, ArenaError> {
        let Some(guard) = &self.guard else {
            // Reached only through the guard-gated arm above.
            return Err(ArenaError::Exhausted {
                requested: words,
                per_shard: Vec::new(),
            });
        };
        // Rung 1: retry after backoff — under concurrency another
        // worker's free may have opened a hole.
        probe.emit(
            EventKind::DegradationStep {
                step: DegradationStep::RetryBackoff,
            },
            at,
        );
        std::thread::yield_now();
        let mut outcome = arena.alloc_probed(id, words, at, probe);
        if !matches!(outcome, Err(ArenaError::Exhausted { .. })) {
            return outcome;
        }
        // Rung 2: coalesce the pressured home shard into one hole.
        probe.emit(
            EventKind::DegradationStep {
                step: DegradationStep::Coalesce,
            },
            at,
        );
        arena.compact_shard(arena.home_shard(id), at, probe);
        outcome = arena.alloc_probed(id, words, at, probe);
        if !matches!(outcome, Err(ArenaError::Exhausted { .. })) {
            return outcome;
        }
        // Rung 3: compact every serving shard, then re-drive the full
        // steal rotation against the consolidated holes.
        probe.emit(
            EventKind::DegradationStep {
                step: DegradationStep::StealGlobal,
            },
            at,
        );
        for s in 0..arena.shard_count() {
            if !arena.is_quarantined(s) {
                arena.compact_shard(s, at, probe);
            }
        }
        outcome = arena.alloc_probed(id, words, at, probe);
        if !matches!(outcome, Err(ArenaError::Exhausted { .. })) {
            return outcome;
        }
        // Rung 4: shed lowest-priority tenants, budget permitting, and
        // re-drive once enough words have been surrendered.
        loop {
            let mut freed = 0;
            while freed < words {
                let Some(victim) = self.pick_victim(priority) else {
                    return outcome;
                };
                if !guard.try_shed() {
                    return outcome;
                }
                match self.shed_block(arena, victim, at, probe) {
                    Some(shed_words) => freed += shed_words,
                    // Raced by a client free: the budget rung is spent
                    // but the storage came back anyway.
                    None => continue,
                }
            }
            outcome = arena.alloc_probed(id, words, at, probe);
            if !matches!(outcome, Err(ArenaError::Exhausted { .. })) {
                return outcome;
            }
        }
    }

    /// The lowest-id block of the lowest-priority tenant strictly below
    /// `priority` that still holds storage. Deterministic given the
    /// live set: priorities resolve first, ids tie-break ascending.
    fn pick_victim(&self, priority: Priority) -> Option<u64> {
        let victim_priority = self
            .tenants
            .occupancy()
            .into_iter()
            .filter(|t| t.in_use > 0 && t.priority < priority)
            .map(|t| t.priority)
            .min()?;
        let mut best: Option<u64> = None;
        for stripe in &self.registry {
            let reg = stripe
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (&rid, rec) in reg.iter() {
                if self.tenants.priority(rec.tenant) == Some(victim_priority)
                    && best.is_none_or(|b| rid < b)
                {
                    best = Some(rid);
                }
            }
        }
        best
    }

    /// Evicts one victim block through the normal free path: the
    /// registry removal decides the race against a concurrent client
    /// free, the quota is refunded, and the shed events are emitted
    /// one-for-one with the budget grants.
    fn shed_block<P: Probe + ?Sized>(
        &self,
        arena: &ShardedArena,
        id: u64,
        at: Stamp,
        probe: &mut P,
    ) -> Option<Words> {
        let rec = self.stripe(id).remove(&id)?;
        self.tenants.release(rec.tenant, rec.words);
        self.occupied.fetch_sub(rec.words, Ordering::Relaxed);
        // Winning the registry removal means the block is live in the
        // backend; a failure here would already be a book tear, which
        // `check_reconciliation` would surface.
        let _ = arena.free_probed(id, at, probe);
        self.tenants.note_shed(rec.tenant);
        probe.emit(
            EventKind::DegradationStep {
                step: DegradationStep::ShedTenant,
            },
            at,
        );
        probe.emit(
            EventKind::TenantShed {
                tenant: rec.tenant,
                words: rec.words,
            },
            at,
        );
        Some(rec.words)
    }

    fn slab_alloc<X: Probe + ?Sized>(
        &self,
        slab: &FixedSlab,
        id: u64,
        forced_failure: bool,
        at: Stamp,
        extra: &mut X,
    ) -> Result<PhysAddr, ArenaError> {
        if forced_failure {
            return Err(ArenaError::Alloc(AllocError::OutOfStorage {
                requested: slab.unit_words(),
                largest_free: 0,
            }));
        }
        let unit = slab.alloc()?;
        if let Some(rec) = self.stripe(id).get_mut(&id) {
            rec.unit = unit.unit;
        }
        self.telemetry
            .record_alloc(0, slab.unit_words(), u64::from(unit.attempts));
        let mut sink = Tee(self.telemetry.probe(), extra);
        sink.emit(
            EventKind::Alloc {
                // The unit is the grain: a smaller request still
                // consumes a whole unit (internal fragmentation, the
                // uniform-unit tax).
                words: slab.unit_words(),
                searched: u64::from(unit.attempts),
            },
            at,
        );
        Ok(unit.addr)
    }

    fn free<X: Probe + ?Sized>(&self, id: u64, at: Stamp, extra: &mut X) -> Result<(), ArenaError> {
        let Some(rec) = self.stripe(id).remove(&id) else {
            return Err(ArenaError::Alloc(AllocError::UnknownUnit));
        };
        // Refund *before* the backend release: the backend's probe
        // emission fires after its mutation, so a panicking probe
        // leaves the charge refunded and the storage returned — exact.
        // The transient under-statement admits at most one in-flight
        // request early, which the quota CAS then settles.
        if !self.tenants.is_empty() {
            self.tenants.release(rec.tenant, rec.words);
        }
        self.occupied.fetch_sub(rec.words, Ordering::Relaxed);
        let released = match &self.backend {
            Backend::Striped(arena) => {
                let mut sink = Tee(self.telemetry.probe(), extra);
                arena.free_probed(id, at, &mut sink)
            }
            Backend::Slab(slab) => slab.free(rec.unit).map_err(ArenaError::Alloc).map(|()| {
                let mut sink = Tee(self.telemetry.probe(), extra);
                sink.emit(
                    EventKind::Free {
                        words: slab.unit_words(),
                    },
                    at,
                );
            }),
        };
        if let Err(e) = released {
            // The storage is demonstrably still held: roll the books
            // forward again so they keep telling the truth.
            if !self.tenants.is_empty() {
                self.tenants.recharge(rec.tenant, rec.words);
            }
            self.occupied.fetch_add(rec.words, Ordering::Relaxed);
            self.stripe(id).insert(id, rec);
            return Err(e);
        }
        Ok(())
    }

    /// Verifies the service-level books against the backend from a
    /// quiescent state: every registry entry is charged, the tenant
    /// occupancies sum to exactly the charged words, and the backend's
    /// own invariants hold.
    ///
    /// # Panics
    ///
    /// Panics if any book disagrees with the storage.
    pub fn check_reconciliation(&self) {
        let mut by_tenant: HashMap<u32, Words> = HashMap::new();
        let mut charged = 0u64;
        for stripe in &self.registry {
            let reg = stripe
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for rec in reg.values() {
                *by_tenant.entry(rec.tenant).or_default() += rec.words;
                charged += rec.words;
            }
        }
        assert_eq!(self.occupied(), charged, "occupied counter out of step");
        for t in self.tenants.occupancy() {
            assert_eq!(
                t.in_use,
                by_tenant.get(&t.tenant).copied().unwrap_or(0),
                "tenant {} occupancy out of step",
                t.tenant
            );
        }
        match &self.backend {
            Backend::Striped(arena) => {
                arena.check_invariants();
                assert_eq!(
                    arena.snapshot().allocated_words(),
                    charged,
                    "backend words out of step with the registry"
                );
            }
            Backend::Slab(slab) => {
                assert_eq!(
                    slab.live_units() * slab.unit_words(),
                    charged,
                    "slab units out of step with the registry"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_batch_roundtrip_reconciles() {
        let svc = ArenaService::striped(4, 1000, Placement::BestFit);
        let batch: Vec<Request> = (0..10)
            .map(|id| Request::alloc(id, 50))
            .chain((0..5).map(Request::free))
            .collect();
        let responses = svc.submit(&batch);
        assert!(responses.iter().all(Response::is_ok));
        let c = svc.counters();
        assert_eq!(c.allocs, 10);
        assert_eq!(c.alloc_words, 500);
        assert_eq!(c.frees, 5);
        assert_eq!(c.freed_words, 250);
        assert_eq!(svc.arena().unwrap().snapshot().allocated_words(), 250);
        svc.check_reconciliation();
    }

    #[test]
    fn quick_lists_reconcile_and_drain_to_zero() {
        let svc = ArenaService::striped(4, 4096, Placement::FirstFit).with_quick_lists(64, 16);
        // Churn small blocks so frees park on the quick lists, then
        // re-allocate through them; charged words must track arena
        // words at every quiescent point.
        for round in 0..8u64 {
            let batch: Vec<Request> = (0..32)
                .map(|i| Request::alloc(round * 32 + i, 8 + (i % 4) * 8))
                .collect();
            assert!(svc.submit(&batch).iter().all(Response::is_ok));
            svc.check_reconciliation();
            let frees: Vec<Request> = (0..32).map(|i| Request::free(round * 32 + i)).collect();
            assert!(svc.submit(&frees).iter().all(Response::is_ok));
            svc.check_reconciliation();
        }
        // Parked blocks are free words: a fully-drained service shows
        // zero allocated even with blocks still on the quick lists.
        let snap = svc.arena().unwrap().snapshot();
        assert_eq!(snap.allocated_words(), 0);
        svc.arena().unwrap().check_invariants();
    }

    #[test]
    fn slab_service_enforces_the_unit_grain() {
        let svc = ArenaService::fixed(4, 64);
        let r = svc.submit(&[
            Request::alloc(1, 64),
            Request::alloc(2, 10), // fits, whole unit consumed
            Request::alloc(3, 65), // too big for the grain
            Request::free(2),
        ]);
        assert!(r[0].is_ok());
        assert!(r[1].is_ok());
        assert_eq!(
            r[2],
            Response::Failed {
                id: 3,
                error: ArenaError::Alloc(AllocError::RequestTooLarge {
                    requested: 65,
                    max: 64
                })
            }
        );
        assert!(r[3].is_ok());
        let c = svc.counters();
        assert_eq!(c.allocs, 2);
        assert_eq!(c.alloc_words, 128, "whole units, not requested words");
        assert_eq!(c.frees, 1);
        svc.check_reconciliation();
    }

    #[test]
    fn duplicate_and_unknown_ids_fail_typed() {
        let svc = ArenaService::fixed(2, 8);
        let r = svc.submit(&[Request::alloc(7, 8), Request::alloc(7, 8), Request::free(9)]);
        assert!(r[0].is_ok());
        assert_eq!(
            r[1],
            Response::Failed {
                id: 7,
                error: ArenaError::Alloc(AllocError::AlreadyAllocated)
            }
        );
        assert_eq!(
            r[2],
            Response::Failed {
                id: 9,
                error: ArenaError::Alloc(AllocError::UnknownUnit)
            }
        );
    }

    #[test]
    fn quotas_meter_each_tenant_exactly() {
        let mut svc = ArenaService::striped(2, 1000, Placement::FirstFit);
        svc.register_tenant(Tenant::new(0), 100);
        svc.register_tenant(Tenant::new(1), 500);
        let r = svc.submit(&[
            Request::alloc_as(1, 80, Tenant::new(0)),
            Request::alloc_as(2, 80, Tenant::new(0)), // over tenant 0's quota
            Request::alloc_as(3, 400, Tenant::new(1)),
            Request::alloc_as(4, 10, Tenant::new(7)), // unregistered
        ]);
        assert!(r[0].is_ok());
        assert_eq!(
            r[1],
            Response::Failed {
                id: 2,
                error: ArenaError::QuotaExceeded {
                    tenant: 0,
                    requested: 80,
                    quota: 100,
                    in_use: 80
                }
            }
        );
        assert!(r[2].is_ok());
        assert_eq!(
            r[3],
            Response::Failed {
                id: 4,
                error: ArenaError::UnknownTenant { tenant: 7 }
            }
        );
        assert_eq!(svc.tenants().in_use(0), 80);
        assert_eq!(svc.tenants().in_use(1), 400);
        assert_eq!(svc.counters().quota_denials, 1);
        svc.submit(&[Request::free(1), Request::free(3)]);
        assert_eq!(svc.tenants().in_use(0), 0);
        assert_eq!(svc.tenants().in_use(1), 0);
        svc.check_reconciliation();
    }

    #[test]
    fn admission_gates_by_priority_under_pressure() {
        let mut svc = ArenaService::striped(1, 1000, Placement::FirstFit)
            .with_overload(OverloadConfig::default());
        svc.register_tenant(Tenant::with_priority(0, Priority::Low), 1000);
        svc.register_tenant(Tenant::with_priority(1, Priority::High), 1000);
        // Fill to 90%: past the low watermark, below the high one.
        assert!(svc
            .submit(&[Request::alloc_as(1, 900, Tenant::new(1))])
            .iter()
            .all(Response::is_ok));
        let r = svc.submit(&[
            Request::alloc_as(2, 10, Tenant::with_priority(0, Priority::Low)),
            Request::alloc_as(3, 10, Tenant::with_priority(1, Priority::High)),
        ]);
        assert_eq!(
            r[0],
            Response::Failed {
                id: 2,
                error: ArenaError::AdmissionDenied { tenant: 0 }
            }
        );
        assert!(r[1].is_ok());
        assert_eq!(svc.guard().unwrap().admission_rejects(), 1);
        assert_eq!(svc.counters().admission_rejects, 1);
        svc.check_reconciliation();
    }

    #[test]
    fn the_ladder_sheds_low_priority_tenants_for_high() {
        let mut svc =
            ArenaService::striped(1, 100, Placement::FirstFit).with_overload(OverloadConfig {
                // Watermarks out of the way: this test exercises the
                // shed rung, not the door.
                low_watermark: 2.0,
                high_watermark: 2.0,
                ..OverloadConfig::default()
            });
        svc.register_tenant(Tenant::with_priority(0, Priority::Low), 100);
        svc.register_tenant(Tenant::with_priority(1, Priority::High), 100);
        // The low tenant fills the storage.
        let r = svc.submit(&[
            Request::alloc_as(1, 40, Tenant::with_priority(0, Priority::Low)),
            Request::alloc_as(2, 40, Tenant::with_priority(0, Priority::Low)),
        ]);
        assert!(r.iter().all(Response::is_ok));
        // The high tenant's demand does not fit — the ladder retries,
        // coalesces, compacts, then sheds tenant 0's blocks.
        let r = svc.submit(&[Request::alloc_as(
            3,
            60,
            Tenant::with_priority(1, Priority::High),
        )]);
        assert!(r[0].is_ok(), "{r:?}");
        let c = svc.counters();
        assert!(c.tenants_shed >= 1, "at least one block shed");
        assert_eq!(c.tenants_shed, svc.guard().unwrap().sheds());
        assert_eq!(svc.tenants().occupancy()[0].shed, c.tenants_shed);
        assert_eq!(svc.tenants().in_use(1), 60);
        svc.check_reconciliation();
    }

    #[test]
    fn concurrent_submissions_reconcile_exactly() {
        let svc = ArenaService::striped(4, 4096, Placement::FirstFit);
        let threads = 8u64;
        let per_thread = 500u64;
        let oks: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let svc = &svc;
                let oks = &oks;
                scope.spawn(move || {
                    let mut ok = 0u64;
                    for i in 0..per_thread {
                        let id = (t << 32) | i;
                        let batch = [Request::alloc(id, 16), Request::free(id)];
                        ok += svc.submit(&batch).iter().filter(|r| r.is_ok()).count() as u64;
                    }
                    oks[t as usize].store(ok, Ordering::Relaxed);
                });
            }
        });
        let total_ok: u64 = oks.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        let c = svc.counters();
        // Every successful response is counted exactly once in the
        // shared sink, whatever the interleaving.
        assert_eq!(c.allocs + c.frees, total_ok);
        assert_eq!(c.allocs, c.frees);
        assert_eq!(svc.arena().unwrap().snapshot().allocated_words(), 0);
        svc.arena().unwrap().check_invariants();
        svc.check_reconciliation();
    }

    #[test]
    fn tenant_books_reconcile_under_multithreaded_churn() {
        let mut svc = ArenaService::striped(4, 8192, Placement::FirstFit);
        for t in 0..4 {
            svc.register_tenant(Tenant::new(t), 4096);
        }
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let svc = &svc;
                scope.spawn(move || {
                    for i in 0..400u64 {
                        let id = (u64::from(t) << 32) | i;
                        svc.submit(&[
                            Request::alloc_as(id, 1 + (i % 32), Tenant::new(t)),
                            Request::free(id),
                        ]);
                    }
                });
            }
        });
        for t in 0..4 {
            assert_eq!(
                svc.tenants().in_use(t),
                0,
                "tenant {t} books settle to zero"
            );
        }
        assert_eq!(svc.occupied(), 0);
        svc.check_reconciliation();
    }

    /// A probe that panics the first time it sees its trigger event —
    /// the *real* panic-while-holding-lock: the freelist emits
    /// `Alloc`/`Free` after its mutation, inside the shard mutex, so
    /// the unwind poisons the lock mid-operation.
    struct PanicOn {
        armed: bool,
        trigger: fn(&EventKind) -> bool,
    }

    impl Probe for PanicOn {
        fn record(&mut self, event: &Event) {
            if self.armed && (self.trigger)(&event.kind) {
                self.armed = false;
                panic!("probe panic injected for the poison ride-out test");
            }
        }
    }

    #[test]
    fn probe_panic_mid_alloc_poisons_the_lock_but_not_the_books() {
        let mut svc = ArenaService::striped(2, 512, Placement::FirstFit);
        svc.register_tenant(Tenant::new(0), 1024);
        assert!(svc.submit(&[Request::alloc(1, 40)])[0].is_ok());
        // Panic on the success emission of the next alloc: the freelist
        // has already placed the block when the probe fires, and every
        // book — registry, quota, occupancy — was settled before it.
        let torn = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let mut probe = PanicOn {
                        armed: true,
                        trigger: |k| matches!(k, EventKind::Alloc { .. }),
                    };
                    let _ = svc.submit_with(&[Request::alloc(2, 48)], &mut probe);
                })
                .join()
        });
        assert!(torn.is_err(), "the probe must actually panic");
        svc.check_reconciliation();
        assert_eq!(svc.occupied(), 40 + 48, "the torn alloc is fully booked");
        // The poisoned shard mutex is ridden out via PoisonError::
        // into_inner: traffic continues, and the torn id is live — it
        // frees like any other block.
        let r = svc.submit(&[Request::free(2), Request::free(1)]);
        assert!(r.iter().all(Response::is_ok));
        assert_eq!(svc.occupied(), 0);
        svc.check_reconciliation();
    }

    #[test]
    fn probe_panic_mid_free_leaves_the_books_reconciled() {
        let mut svc = ArenaService::striped(2, 512, Placement::FirstFit);
        svc.register_tenant(Tenant::new(0), 1024);
        let r = svc.submit(&[Request::alloc(1, 40), Request::alloc(2, 48)]);
        assert!(r.iter().all(Response::is_ok));
        // The free path settles registry, quota, and occupancy before
        // the backend mutates, and the backend emits only after its own
        // mutation — so the panic tears nothing.
        let torn = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let mut probe = PanicOn {
                        armed: true,
                        trigger: |k| matches!(k, EventKind::Free { .. }),
                    };
                    let _ = svc.submit_with(&[Request::free(2)], &mut probe);
                })
                .join()
        });
        assert!(torn.is_err(), "the probe must actually panic");
        svc.check_reconciliation();
        assert_eq!(svc.occupied(), 40, "the torn free completed");
        // The torn id is really gone — a second free reports it unknown.
        assert!(matches!(
            svc.submit(&[Request::free(2)])[0],
            Response::Failed { .. }
        ));
        assert!(svc.submit(&[Request::free(1)])[0].is_ok());
        assert_eq!(svc.occupied(), 0);
        svc.check_reconciliation();
    }

    /// Chaos at 1, 2, and 8 worker threads: forced failures, delays and
    /// shard corruption healed under live traffic, with conservation
    /// and the per-tenant books intact at every width.
    #[test]
    fn chaos_churn_conserves_storage_at_any_thread_count() {
        use dsa_faults::{FaultConfig, SyncFaultInjector};
        for &threads in &[1usize, 2, 8] {
            let mut svc = ArenaService::striped(4, 2048, Placement::FirstFit)
                .with_overload(crate::OverloadConfig::default());
            for t in 0..threads as u32 {
                svc.register_tenant(Tenant::new(t), 2048);
            }
            let inj = SyncFaultInjector::new(
                0xC4A05,
                FaultConfig {
                    alloc_fail_rate: 0.02,
                    channel_delay_rate: 0.01,
                    channel_delay: dsa_core::clock::Cycles::from_micros(5),
                    shard_corruption_rate: 0.01,
                    burst_len: 1,
                    ..FaultConfig::default()
                },
            );
            std::thread::scope(|scope| {
                for w in 0..threads {
                    let svc = &svc;
                    let inj = &inj;
                    scope.spawn(move || {
                        let mut worker = inj.worker(w as u64);
                        let tenant = Tenant::new(w as u32);
                        for i in 0..600u64 {
                            let id = ((w as u64) << 32) | i;
                            let _ = svc.submit_chaos(
                                &[
                                    Request::alloc_as(id, 1 + (i % 48), tenant),
                                    Request::free(id),
                                ],
                                &mut worker,
                                &mut NullProbe,
                            );
                        }
                    });
                }
            });
            svc.check_reconciliation();
            let arena = svc.arena().expect("striped service has an arena");
            arena.check_invariants();
            assert_eq!(
                arena.quarantined_count(),
                0,
                "{threads} threads: every corruption healed and readmitted"
            );
            assert_eq!(svc.occupied(), 0, "{threads} threads: drained to zero");
            let report = inj.report();
            assert!(
                report.shard_corruptions > 0,
                "{threads} threads: the corruption path must actually run"
            );
            assert!(
                report.forced_alloc_failures > 0,
                "{threads} threads: forced failures must actually fire"
            );
        }
    }
}
