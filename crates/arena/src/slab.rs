//! The lock-free fixed-size slab: concurrent alloc/free in constant
//! time, in the style of Blelloch & Wei.
//!
//! When the unit of allocation is uniform, the free storage needs no
//! search at all — any free unit is as good as any other, so the free
//! set can be a stack of unit indices and both operations are a single
//! successful compare-and-swap on its head. That is the core of
//! Blelloch & Wei's *Concurrent Fixed-Size Allocation and Free in
//! Constant Time*: no locks, no helping, just a version-tagged head so
//! the classic ABA interleaving (pop observes head `A`, sleeps while
//! others pop `A`, push `B`, push `A` back, then wakes and CASes a
//! stale successor in) can never succeed — the tag has moved on even
//! though the index matches.
//!
//! The head packs `(tag, index+1)` into one [`AtomicU64`]: 32 bits of
//! version tag, 32 bits of index (`0` meaning the stack is empty), so a
//! single CAS covers both. Per-unit `live` flags catch double frees and
//! frees of never-allocated units, turning them into typed
//! [`AllocError::UnknownUnit`] instead of silent free-list corruption.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use dsa_core::error::AllocError;
use dsa_core::ids::{PhysAddr, Words};

/// Sentinel for "no successor" / "stack empty" in the packed head and
/// the `next` array: indices are stored as `index + 1`, so `0` is free
/// to mean none.
const NONE: u32 = 0;

/// Packs a version tag and an `index + 1` value into the head word.
fn pack(tag: u32, idx1: u32) -> u64 {
    (u64::from(tag) << 32) | u64::from(idx1)
}

/// A successful slab allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlabUnit {
    /// The unit index, `0..units`. Pass it back to [`FixedSlab::free`].
    pub unit: u32,
    /// The unit's storage address: `unit * unit_words`.
    pub addr: PhysAddr,
    /// How many CAS attempts the pop took — the constant-time analogue
    /// of the free-list's search length (1 = no contention).
    pub attempts: u32,
}

/// Cumulative slab counters, snapshotted with relaxed loads.
#[derive(Clone, Copy, Debug, Default)]
pub struct SlabStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Allocations refused because every unit was live.
    pub failures: u64,
    /// Frees refused as double frees / unknown units.
    pub bad_frees: u64,
    /// Total CAS attempts across both operations; `attempts - (allocs +
    /// frees)` is the number of contended retries.
    pub cas_attempts: u64,
}

/// A lock-free allocator for `units` uniform blocks of `unit_words`
/// words each.
///
/// All methods take `&self`; the slab is [`Sync`] and meant to be
/// hammered from many threads at once.
///
/// # Examples
///
/// ```
/// use dsa_arena::FixedSlab;
///
/// let slab = FixedSlab::new(4, 64);
/// let a = slab.alloc().unwrap();
/// let b = slab.alloc().unwrap();
/// assert_ne!(a.unit, b.unit);
/// slab.free(a.unit).unwrap();
/// assert_eq!(slab.free_units(), 3);
/// ```
#[derive(Debug)]
pub struct FixedSlab {
    unit_words: Words,
    units: u32,
    /// `(tag << 32) | (index + 1)`; low half `0` = empty stack.
    head: AtomicU64,
    /// `next[i]` = successor's `index + 1`, `0` = end of stack. Only
    /// meaningful while unit `i` is on the free stack.
    next: Vec<AtomicU32>,
    /// `live[i]` = unit `i` is currently handed out. Guards against
    /// double frees corrupting the stack.
    live: Vec<AtomicBool>,
    allocs: AtomicU64,
    frees: AtomicU64,
    failures: AtomicU64,
    bad_frees: AtomicU64,
    cas_attempts: AtomicU64,
}

impl FixedSlab {
    /// Creates a slab of `units` free blocks, `unit_words` words each.
    ///
    /// # Panics
    ///
    /// Panics if `units` or `unit_words` is zero.
    #[must_use]
    pub fn new(units: u32, unit_words: Words) -> FixedSlab {
        assert!(units > 0, "a slab needs at least one unit");
        assert!(unit_words > 0, "a unit must hold at least one word");
        // Initial free stack: 0 -> 1 -> ... -> units-1, head at 0.
        let next = (0..units)
            .map(|i| AtomicU32::new(if i + 1 < units { i + 2 } else { NONE }))
            .collect();
        let live = (0..units).map(|_| AtomicBool::new(false)).collect();
        FixedSlab {
            unit_words,
            units,
            head: AtomicU64::new(pack(0, 1)),
            next,
            live,
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            bad_frees: AtomicU64::new(0),
            cas_attempts: AtomicU64::new(0),
        }
    }

    /// Words per unit.
    #[must_use]
    pub fn unit_words(&self) -> Words {
        self.unit_words
    }

    /// Number of units in the slab.
    #[must_use]
    pub fn capacity_units(&self) -> u32 {
        self.units
    }

    /// Total capacity in words.
    #[must_use]
    pub fn capacity_words(&self) -> Words {
        Words::from(self.units) * self.unit_words
    }

    /// Units currently handed out.
    #[must_use]
    pub fn live_units(&self) -> u64 {
        let s = self.stats();
        s.allocs - s.frees
    }

    /// Units currently free.
    #[must_use]
    pub fn free_units(&self) -> u64 {
        u64::from(self.units) - self.live_units()
    }

    /// The storage address of a unit: `unit * unit_words`.
    #[must_use]
    pub fn addr_of(&self, unit: u32) -> PhysAddr {
        PhysAddr(u64::from(unit) * self.unit_words)
    }

    /// Pops a free unit off the stack.
    ///
    /// Lock-free: a CAS failure means some other thread *succeeded*, so
    /// the system as a whole always makes progress.
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfStorage`] when every unit is live
    /// (`largest_free` is honest: zero words are free in this slab).
    pub fn alloc(&self) -> Result<SlabUnit, AllocError> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            self.cas_attempts.fetch_add(1, Ordering::Relaxed);
            let head = self.head.load(Ordering::Acquire);
            let idx1 = (head & 0xFFFF_FFFF) as u32;
            if idx1 == NONE {
                self.failures.fetch_add(1, Ordering::Relaxed);
                return Err(AllocError::OutOfStorage {
                    requested: self.unit_words,
                    largest_free: 0,
                });
            }
            let idx = idx1 - 1;
            // Benign race: `next[idx]` may be mutated by a concurrent
            // push of the same unit, but then the tag has changed and
            // the CAS below fails, discarding the stale read.
            let succ = self.next[idx as usize].load(Ordering::Relaxed);
            let tag = (head >> 32) as u32;
            let new = pack(tag.wrapping_add(1), succ);
            if self
                .head
                .compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.live[idx as usize].store(true, Ordering::Release);
                self.allocs.fetch_add(1, Ordering::Relaxed);
                return Ok(SlabUnit {
                    unit: idx,
                    addr: self.addr_of(idx),
                    attempts,
                });
            }
        }
    }

    /// Pushes `unit` back onto the free stack.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownUnit`] if `unit` is out of range, already
    /// free, or was never handed out — the double-free guard.
    pub fn free(&self, unit: u32) -> Result<(), AllocError> {
        if unit >= self.units {
            self.bad_frees.fetch_add(1, Ordering::Relaxed);
            return Err(AllocError::UnknownUnit);
        }
        // Claim the release: exactly one thread can turn `live` off, so
        // a double free is caught here and never touches the stack.
        if !self.live[unit as usize].swap(false, Ordering::AcqRel) {
            self.bad_frees.fetch_add(1, Ordering::Relaxed);
            return Err(AllocError::UnknownUnit);
        }
        loop {
            self.cas_attempts.fetch_add(1, Ordering::Relaxed);
            let head = self.head.load(Ordering::Acquire);
            let idx1 = (head & 0xFFFF_FFFF) as u32;
            self.next[unit as usize].store(idx1, Ordering::Relaxed);
            let tag = (head >> 32) as u32;
            let new = pack(tag.wrapping_add(1), unit + 1);
            if self
                .head
                .compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.frees.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
    }

    /// Snapshot of the cumulative counters (relaxed loads; exact once
    /// the mutating threads have joined).
    #[must_use]
    pub fn stats(&self) -> SlabStats {
        SlabStats {
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            bad_frees: self.bad_frees.load(Ordering::Relaxed),
            cas_attempts: self.cas_attempts.load(Ordering::Relaxed),
        }
    }

    /// Verifies free-stack integrity from a quiescent state (no
    /// concurrent operations): every unit is on the free stack exactly
    /// once or live, and the two populations partition the slab.
    ///
    /// # Panics
    ///
    /// Panics if the stack has a cycle, an index out of range, a live
    /// unit on the stack, or the populations don't add up.
    pub fn check_invariants(&self) {
        let mut on_stack = vec![false; self.units as usize];
        let mut idx1 = (self.head.load(Ordering::Acquire) & 0xFFFF_FFFF) as u32;
        let mut count = 0u64;
        while idx1 != NONE {
            let idx = (idx1 - 1) as usize;
            assert!(idx < self.units as usize, "stack index out of range");
            assert!(!on_stack[idx], "unit {idx} is on the free stack twice");
            assert!(
                !self.live[idx].load(Ordering::Acquire),
                "unit {idx} is both live and free"
            );
            on_stack[idx] = true;
            count += 1;
            idx1 = self.next[idx].load(Ordering::Acquire);
        }
        assert_eq!(count, self.free_units(), "free count out of step");
        let live = (0..self.units as usize)
            .filter(|&i| self.live[i].load(Ordering::Acquire))
            .count() as u64;
        assert_eq!(live, self.live_units(), "live count out of step");
        assert_eq!(count + live, u64::from(self.units), "units leaked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_up_then_frees_back() {
        let slab = FixedSlab::new(3, 10);
        let a = slab.alloc().unwrap();
        let b = slab.alloc().unwrap();
        let c = slab.alloc().unwrap();
        assert_eq!(slab.free_units(), 0);
        let err = slab.alloc().unwrap_err();
        assert_eq!(
            err,
            AllocError::OutOfStorage {
                requested: 10,
                largest_free: 0
            }
        );
        for u in [a, b, c] {
            slab.free(u.unit).unwrap();
        }
        assert_eq!(slab.free_units(), 3);
        slab.check_invariants();
    }

    #[test]
    fn addresses_are_disjoint_unit_multiples() {
        let slab = FixedSlab::new(8, 64);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            let u = slab.alloc().unwrap();
            assert_eq!(u.addr.value() % 64, 0);
            assert!(seen.insert(u.addr), "address handed out twice");
        }
    }

    #[test]
    fn double_free_is_caught() {
        let slab = FixedSlab::new(2, 8);
        let u = slab.alloc().unwrap();
        slab.free(u.unit).unwrap();
        assert_eq!(slab.free(u.unit), Err(AllocError::UnknownUnit));
        assert_eq!(slab.free(99), Err(AllocError::UnknownUnit));
        assert_eq!(
            slab.free(1),
            Err(AllocError::UnknownUnit),
            "never allocated"
        );
        assert_eq!(slab.stats().bad_frees, 3);
        slab.check_invariants();
    }

    #[test]
    fn lifo_reuse_from_a_quiescent_stack() {
        let slab = FixedSlab::new(4, 16);
        let a = slab.alloc().unwrap();
        slab.free(a.unit).unwrap();
        let b = slab.alloc().unwrap();
        assert_eq!(a.unit, b.unit, "a freshly freed unit is popped first");
    }

    #[test]
    fn concurrent_churn_hands_no_unit_out_twice() {
        let slab = FixedSlab::new(64, 8);
        let claimed: Vec<AtomicBool> = (0..64).map(|_| AtomicBool::new(false)).collect();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..2_000 {
                        if let Ok(u) = slab.alloc() {
                            // Exclusive hand-out: our claim flag must
                            // have been clear.
                            assert!(
                                !claimed[u.unit as usize].swap(true, Ordering::AcqRel),
                                "unit {} handed to two threads",
                                u.unit
                            );
                            claimed[u.unit as usize].store(false, Ordering::Release);
                            slab.free(u.unit).unwrap();
                        }
                    }
                });
            }
        });
        let s = slab.stats();
        assert_eq!(s.allocs, s.frees);
        assert_eq!(slab.free_units(), 64);
        slab.check_invariants();
    }
}
