//! The sharded variable-size arena: striped free-list allocators
//! behind per-shard locks.
//!
//! Variable-size allocation cannot use the slab's search-free stack —
//! placement *is* a search — so concurrency comes from sharding
//! instead: storage is striped into `N` independent regions, each owned
//! by one [`FreeListAllocator`] (any placement policy) behind its own
//! lock. Requests hash to a deterministic *home shard*; threads whose
//! ids hash apart never contend. When the home shard cannot satisfy a
//! request, the arena *steals*: it tries the remaining shards in a
//! deterministic rotation before giving up with a typed
//! [`ArenaError::Exhausted`] that reports every shard's honest
//! `largest_free` — the same honesty the single-allocator
//! [`AllocError::OutOfStorage`] carries, extended across the stripe.
//!
//! A 1-shard arena degenerates to a mutex around one allocator: every
//! id homes to shard 0, no stealing can happen, and the placement
//! decisions (and the stats) are byte-identical to the bare
//! [`FreeListAllocator`] — the property test that anchors the arena's
//! semantics to the sequential taxonomy.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use dsa_core::error::AllocError;
use dsa_core::ids::{PhysAddr, Words};
use dsa_freelist::compaction::{compact_probed, CompactionReport};
use dsa_freelist::freelist::{AllocSnapshot, FreeListAllocator, FreeListStats, Placement};
use dsa_probe::{EventKind, NullProbe, Probe, Stamp};

use crate::tenant::TenantOccupancy;

/// Marks an id whose steal attempt is still in flight in the home
/// shard's ownership map.
const RESERVED: u32 = u32::MAX;

/// The fixed 64-bit mixer behind home-shard hashing (SplitMix64's
/// finalizer). Deterministic across runs, platforms and thread counts.
fn mix64(id: u64) -> u64 {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One shard's honest fullness figures inside an
/// [`ArenaError::Exhausted`] report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardFullness {
    /// Which shard.
    pub shard: u32,
    /// The largest contiguous hole in that shard at failure time.
    pub largest_free: Words,
    /// Total free words in that shard.
    pub free_words: Words,
}

/// An arena request failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArenaError {
    /// A per-request error from the underlying allocator (zero size,
    /// duplicate id, unknown id).
    Alloc(AllocError),
    /// Every shard was tried — home first, then the steal rotation —
    /// and none could place the request. Carries each shard's honest
    /// `largest_free` so callers can tell fragmentation from genuine
    /// exhaustion.
    Exhausted {
        /// The size that was requested, in words.
        requested: Words,
        /// Fullness of every shard, in shard order.
        per_shard: Vec<ShardFullness>,
    },
    /// The request would push its tenant past its word quota. The
    /// storage may have room — the *tenant* does not.
    QuotaExceeded {
        /// The tenant that was refused.
        tenant: u32,
        /// The size that was requested, in words.
        requested: Words,
        /// The tenant's configured quota, in words.
        quota: Words,
        /// The tenant's occupancy at refusal time, in words.
        in_use: Words,
    },
    /// Admission control refused the request before it touched storage:
    /// the service is past its overload watermark and the tenant's
    /// priority did not clear the bar.
    AdmissionDenied {
        /// The tenant that was refused.
        tenant: u32,
    },
    /// The request named a tenant the service has no quota entry for.
    UnknownTenant {
        /// The unregistered tenant id.
        tenant: u32,
    },
}

impl fmt::Display for ArenaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArenaError::Alloc(e) => write!(f, "{e}"),
            ArenaError::Exhausted {
                requested,
                per_shard,
            } => {
                let largest = per_shard.iter().map(|s| s.largest_free).max().unwrap_or(0);
                write!(
                    f,
                    "all {} shards exhausted: requested {requested} words, largest free \
                     extent anywhere {largest}",
                    per_shard.len()
                )
            }
            ArenaError::QuotaExceeded {
                tenant,
                requested,
                quota,
                in_use,
            } => write!(
                f,
                "tenant {tenant} over quota: requested {requested} words with {in_use} \
                 of {quota} in use"
            ),
            ArenaError::AdmissionDenied { tenant } => {
                write!(
                    f,
                    "admission denied for tenant {tenant}: service overloaded"
                )
            }
            ArenaError::UnknownTenant { tenant } => {
                write!(f, "unknown tenant {tenant}")
            }
        }
    }
}

impl std::error::Error for ArenaError {}

impl From<AllocError> for ArenaError {
    fn from(e: AllocError) -> ArenaError {
        ArenaError::Alloc(e)
    }
}

/// One shard: its allocator plus the ownership map for ids that *home*
/// here (the owner may be another shard after a steal).
#[derive(Debug)]
struct Shard {
    alloc: FreeListAllocator,
    /// id -> owning shard, for every live id homed to this shard.
    homed: HashMap<u64, u32>,
}

/// A point-in-time view of one shard.
#[derive(Clone, Copy, Debug)]
pub struct ShardSnapshot {
    /// Which shard.
    pub shard: u32,
    /// The shard allocator's occupancy and counters.
    pub alloc: AllocSnapshot,
    /// Live ids homed to this shard (owned here or stolen elsewhere).
    pub homed: usize,
    /// Whether the shard is quarantined (out of the placement rotation,
    /// frees still drain).
    pub quarantined: bool,
}

/// A point-in-time view of the whole arena.
#[derive(Clone, Debug)]
pub struct ArenaSnapshot {
    /// Per-shard views, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// Allocations that landed on a non-home shard, cumulatively.
    pub steals: u64,
    /// Per-tenant occupancy, in tenant order. Empty when the arena is
    /// driven bare — the [`crate::ArenaService`] front-end fills it.
    pub tenants: Vec<TenantOccupancy>,
}

impl ArenaSnapshot {
    /// Total capacity across shards.
    #[must_use]
    pub fn capacity(&self) -> Words {
        self.shards.iter().map(|s| s.alloc.capacity).sum()
    }

    /// Total free words across shards.
    #[must_use]
    pub fn free_words(&self) -> Words {
        self.shards.iter().map(|s| s.alloc.free_words).sum()
    }

    /// Total allocated words across shards.
    #[must_use]
    pub fn allocated_words(&self) -> Words {
        self.capacity() - self.free_words()
    }

    /// The shard counters merged into one [`FreeListStats`].
    #[must_use]
    pub fn stats(&self) -> FreeListStats {
        let mut total = FreeListStats::default();
        for s in &self.shards {
            total.merge(&s.alloc.stats);
        }
        total
    }
}

/// A thread-safe variable-size arena striped over `N` locked
/// [`FreeListAllocator`] shards.
///
/// Shard `s` owns the global address range
/// `[s * shard_capacity, (s + 1) * shard_capacity)`; returned addresses
/// are global.
///
/// Concurrency contract: any number of threads may call any method, but
/// each *id* must be driven by one request stream at a time (alloc,
/// then free, strictly ordered per id) — the natural shape of a
/// per-client id space.
///
/// # Examples
///
/// ```
/// use dsa_arena::ShardedArena;
/// use dsa_freelist::Placement;
///
/// let arena = ShardedArena::new(4, 1000, Placement::BestFit);
/// let addr = arena.alloc(7, 100).unwrap();
/// assert_eq!(arena.lookup(7), Some((addr, 100)));
/// arena.free(7).unwrap();
/// assert_eq!(arena.snapshot().free_words(), 4000);
/// ```
#[derive(Debug)]
pub struct ShardedArena {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard quarantine flags: a quarantined shard is skipped by
    /// placement (home and steal rotation alike) until readmitted;
    /// frees still reach it so it can drain while sidelined.
    quarantined: Vec<AtomicBool>,
    shard_capacity: Words,
    steals: AtomicU64,
}

impl ShardedArena {
    /// Creates an arena of `shards` stripes, each `shard_capacity`
    /// words under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `shard_capacity` is zero.
    #[must_use]
    pub fn new(shards: u32, shard_capacity: Words, policy: Placement) -> ShardedArena {
        assert!(shards > 0, "an arena needs at least one shard");
        let quarantined = (0..shards).map(|_| AtomicBool::new(false)).collect();
        let shards = (0..shards)
            .map(|_| {
                Mutex::new(Shard {
                    alloc: FreeListAllocator::new(shard_capacity, policy),
                    homed: HashMap::new(),
                })
            })
            .collect();
        ShardedArena {
            shards,
            quarantined,
            shard_capacity,
            steals: AtomicU64::new(0),
        }
    }

    /// Enables the exact-size quick lists (deferred coalescing) in
    /// every shard's allocator — the small-size fast path for churn-
    /// heavy hosts. Host-speed mode only: placement behavior changes
    /// and quick-path requests charge no modeled probes, so this must
    /// never be enabled in a modeled (golden) experiment. See
    /// `FreeListAllocator::enable_quick_lists`.
    ///
    /// # Panics
    ///
    /// Panics if `max_size` is zero or exceeds the shard capacity, or
    /// if `depth` is zero.
    pub fn enable_quick_lists(&self, max_size: Words, depth: usize) {
        for s in 0..self.shard_count() {
            self.lock(s).alloc.enable_quick_lists(max_size, depth);
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Capacity of each shard, in words.
    #[must_use]
    pub fn shard_capacity(&self) -> Words {
        self.shard_capacity
    }

    /// Total capacity across shards.
    #[must_use]
    pub fn capacity(&self) -> Words {
        self.shard_capacity * self.shards.len() as u64
    }

    /// The deterministic home shard of an id.
    #[must_use]
    pub fn home_shard(&self, id: u64) -> u32 {
        (mix64(id) % self.shards.len() as u64) as u32
    }

    /// Locks shard `s`, riding out poisoning (a panicked holder leaves
    /// counters behind, never a torn free list — `FreeListAllocator`
    /// mutates through `&mut self` with no unwind points mid-update).
    fn lock(&self, s: u32) -> MutexGuard<'_, Shard> {
        self.shards[s as usize]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn global(&self, shard: u32, addr: PhysAddr) -> PhysAddr {
        PhysAddr(u64::from(shard) * self.shard_capacity + addr.value())
    }

    /// Allocates `size` words under `id`: home shard first, then the
    /// steal rotation. See [`ShardedArena::alloc_probed`].
    ///
    /// # Errors
    ///
    /// As [`ShardedArena::alloc_probed`].
    pub fn alloc(&self, id: u64, size: Words) -> Result<PhysAddr, ArenaError> {
        self.alloc_probed(id, size, Stamp::default(), &mut NullProbe)
    }

    /// [`ShardedArena::alloc`] with event emission: the shard that
    /// places the request emits `Alloc { words, searched }` through its
    /// allocator, where `searched` counts that shard's hole
    /// inspections.
    ///
    /// # Errors
    ///
    /// * [`ArenaError::Alloc`] for zero-size requests and duplicate
    ///   ids;
    /// * [`ArenaError::Exhausted`] when no shard can place the request,
    ///   with every shard's honest `largest_free`.
    pub fn alloc_probed<P: Probe + ?Sized>(
        &self,
        id: u64,
        size: Words,
        at: Stamp,
        probe: &mut P,
    ) -> Result<PhysAddr, ArenaError> {
        if size == 0 {
            return Err(ArenaError::Alloc(AllocError::ZeroSize));
        }
        let home = self.home_shard(id);
        let n = self.shards.len() as u32;
        {
            let mut g = self.lock(home);
            if g.homed.contains_key(&id) {
                return Err(ArenaError::Alloc(AllocError::AlreadyAllocated));
            }
            if self.is_quarantined(home) {
                // The home shard still does the bookkeeping — only its
                // free list is out of rotation. Reserve and steal.
                g.homed.insert(id, RESERVED);
            } else {
                // Record ownership *before* mutating the allocator. The
                // only unwind point inside `alloc_probed` is probe
                // emission, which fires after the free list is updated
                // and only on success — so a panicking probe leaves
                // both books agreeing the block is live and homed, and
                // the poison ride-out in `lock` keeps serving.
                g.homed.insert(id, home);
                match g.alloc.alloc_probed(id, size, at, probe) {
                    Ok(addr) => return Ok(self.global(home, addr)),
                    Err(AllocError::OutOfStorage { .. }) => {
                        // Reserve the id while we steal, so a racing
                        // duplicate alloc is refused.
                        g.homed.insert(id, RESERVED);
                    }
                    Err(e) => {
                        g.homed.remove(&id);
                        return Err(ArenaError::Alloc(e));
                    }
                }
            }
        }
        // Steal rotation: deterministic order, one lock at a time,
        // skipping quarantined shards. The ownership entry is pointed at
        // the candidate *before* its allocator is tried (same panic-safe
        // ordering as the home path); per-id request ordering means no
        // well-formed free can observe the provisional owner.
        for k in 1..n {
            let s = (home + k) % n;
            if self.is_quarantined(s) {
                continue;
            }
            self.lock(home).homed.insert(id, s);
            let stolen = {
                let mut g = self.lock(s);
                match g.alloc.alloc_probed(id, size, at, probe) {
                    Ok(addr) => Some(Ok(addr)),
                    Err(AllocError::OutOfStorage { .. }) => None,
                    Err(e) => Some(Err(e)),
                }
            };
            match stolen {
                Some(Ok(addr)) => {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Ok(self.global(s, addr));
                }
                Some(Err(e)) => {
                    self.lock(home).homed.remove(&id);
                    return Err(ArenaError::Alloc(e));
                }
                None => {
                    self.lock(home).homed.insert(id, RESERVED);
                }
            }
        }
        // Nothing anywhere: drop the reservation and report honestly.
        self.lock(home).homed.remove(&id);
        let per_shard = (0..n)
            .map(|s| {
                let g = self.lock(s);
                ShardFullness {
                    shard: s,
                    largest_free: g.alloc.largest_free(),
                    free_words: g.alloc.free_words(),
                }
            })
            .collect();
        Err(ArenaError::Exhausted {
            requested: size,
            per_shard,
        })
    }

    /// Frees the allocation `id`, wherever the steal rotation placed
    /// it. See [`ShardedArena::free_probed`].
    ///
    /// # Errors
    ///
    /// As [`ShardedArena::free_probed`].
    pub fn free(&self, id: u64) -> Result<(), ArenaError> {
        self.free_probed(id, Stamp::default(), &mut NullProbe)
    }

    /// [`ShardedArena::free`] with event emission: the owning shard
    /// emits `Free { words }` through its allocator.
    ///
    /// # Errors
    ///
    /// [`ArenaError::Alloc`] carrying [`AllocError::UnknownUnit`] if
    /// `id` is not live.
    pub fn free_probed<P: Probe + ?Sized>(
        &self,
        id: u64,
        at: Stamp,
        probe: &mut P,
    ) -> Result<(), ArenaError> {
        let home = self.home_shard(id);
        let owner = {
            let mut g = self.lock(home);
            match g.homed.get(&id) {
                None => return Err(ArenaError::Alloc(AllocError::UnknownUnit)),
                Some(&RESERVED) => return Err(ArenaError::Alloc(AllocError::UnknownUnit)),
                Some(&owner) if owner == home => {
                    // Drop the ownership entry *before* the release: if
                    // the probe panics it does so after the free list
                    // has absorbed the block, so the books still agree.
                    g.homed.remove(&id);
                    if let Err(e) = g.alloc.free_probed(id, at, probe) {
                        g.homed.insert(id, home);
                        return Err(ArenaError::Alloc(e));
                    }
                    return Ok(());
                }
                Some(&owner) => {
                    g.homed.remove(&id);
                    owner
                }
            }
        };
        self.lock(owner)
            .alloc
            .free_probed(id, at, probe)
            .map_err(ArenaError::Alloc)
    }

    /// Looks up a live allocation, returning its global address.
    #[must_use]
    pub fn lookup(&self, id: u64) -> Option<(PhysAddr, Words)> {
        let home = self.home_shard(id);
        let owner = {
            let g = self.lock(home);
            match g.homed.get(&id) {
                None | Some(&RESERVED) => return None,
                Some(&owner) if owner == home => {
                    return g
                        .alloc
                        .lookup(id)
                        .map(|(addr, size)| (self.global(home, addr), size));
                }
                Some(&owner) => owner,
            }
        };
        self.lock(owner)
            .alloc
            .lookup(id)
            .map(|(addr, size)| (self.global(owner, addr), size))
    }

    /// Allocations that landed on a non-home shard so far.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Whether shard `s` is currently quarantined.
    #[must_use]
    pub fn is_quarantined(&self, s: u32) -> bool {
        self.quarantined[s as usize].load(Ordering::Acquire)
    }

    /// Quarantines shard `s`: placement (home and steal rotation) skips
    /// it until [`ShardedArena::readmit`]; frees still drain into it.
    /// Returns `true` if this call changed the state.
    pub fn quarantine(&self, s: u32) -> bool {
        !self.quarantined[s as usize].swap(true, Ordering::AcqRel)
    }

    /// Readmits shard `s` to the placement rotation. Returns `true` if
    /// this call changed the state.
    pub fn readmit(&self, s: u32) -> bool {
        self.quarantined[s as usize].swap(false, Ordering::AcqRel)
    }

    /// Number of shards currently quarantined.
    #[must_use]
    pub fn quarantined_count(&self) -> u32 {
        self.quarantined
            .iter()
            .filter(|q| q.load(Ordering::Acquire))
            .count() as u32
    }

    /// Audits shard `s`'s free-list invariants without panicking.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant, described.
    pub fn audit_shard(&self, s: u32) -> Result<(), String> {
        self.lock(s).alloc.audit()
    }

    /// Compacts shard `s` in place — the pressured-shard coalesce rung
    /// of the degradation ladder. Live blocks slide toward the shard
    /// base (relocation is transparent here exactly as in
    /// `dsa_freelist::compaction`: addresses are logical), and the pass
    /// is bracketed by `CompactionStart`/`CompactionDone` events.
    pub fn compact_shard<P: Probe + ?Sized>(
        &self,
        s: u32,
        at: Stamp,
        probe: &mut P,
    ) -> CompactionReport {
        let mut g = self.lock(s);
        compact_probed(&mut g.alloc, |_, _, _, _| {}, at, probe)
    }

    /// Quarantines shard `s`, rebuilds its free list from the
    /// live-allocation book of record, audits the rebuilt state
    /// (including word conservation), and readmits it — the
    /// self-healing path taken when corruption is detected.
    ///
    /// Emits `ShardQuarantined` on entry and `ShardRestored` on
    /// successful readmission. On failure the shard *stays quarantined*
    /// (frees drain, placement avoids it) and the violated invariant is
    /// returned.
    ///
    /// # Errors
    ///
    /// Returns the audit failure if the rebuilt shard still violates an
    /// invariant.
    pub fn heal_shard<P: Probe + ?Sized>(
        &self,
        s: u32,
        at: Stamp,
        probe: &mut P,
    ) -> Result<(), String> {
        if self.quarantine(s) {
            probe.emit(EventKind::ShardQuarantined { shard: s }, at);
        }
        {
            let mut g = self.lock(s);
            // Sum the allocation book directly — `allocated_words()`
            // is capacity minus the (corrupt) free store right now.
            let live: Words = g
                .alloc
                .allocations_by_address()
                .iter()
                .map(|&(_, _, size)| size)
                .sum();
            g.alloc.rebuild_from_live();
            g.alloc.audit()?;
            // Conservation, stated independently of the audit: the
            // rebuilt free store must be exactly the complement of the
            // live blocks that survived.
            let free = g.alloc.free_words();
            if live + free != self.shard_capacity {
                return Err(format!(
                    "rebuild lost words: {live} live + {free} free != {} capacity",
                    self.shard_capacity
                ));
            }
        }
        self.readmit(s);
        probe.emit(EventKind::ShardRestored { shard: s }, at);
        Ok(())
    }

    /// Deliberately corrupts shard `s`'s free list (chaos injection
    /// hook). The damage is always detectable by
    /// [`ShardedArena::audit_shard`] and healable by
    /// [`ShardedArena::heal_shard`]. Not for production use.
    #[doc(hidden)]
    pub fn corrupt_shard_for_chaos(&self, s: u32) {
        self.lock(s).alloc.corrupt_free_list_for_chaos();
    }

    /// The arena-wide hole map: every shard's free holes as
    /// `(global_address, size)`, in address order (shards visited in
    /// stripe order, each copied under its own lock).
    ///
    /// This is what the fragmentation heatmap sampler snapshots — feed
    /// it to `HeatFrame::capture` with [`ShardedArena::capacity`].
    #[must_use]
    pub fn hole_map(&self) -> Vec<(u64, Words)> {
        let mut holes = Vec::new();
        for s in 0..self.shards.len() as u32 {
            let g = self.lock(s);
            let base = u64::from(s) * self.shard_capacity;
            holes.extend(g.alloc.holes().map(|(a, size)| (base + a, size)));
        }
        holes
    }

    /// A point-in-time view of every shard (each copied out under its
    /// own lock; the arena keeps serving between shards).
    #[must_use]
    pub fn snapshot(&self) -> ArenaSnapshot {
        let shards = (0..self.shards.len() as u32)
            .map(|s| {
                let g = self.lock(s);
                ShardSnapshot {
                    shard: s,
                    alloc: g.alloc.snapshot(),
                    homed: g.homed.len(),
                    quarantined: self.is_quarantined(s),
                }
            })
            .collect();
        ArenaSnapshot {
            shards,
            steals: self.steals(),
            tenants: Vec::new(),
        }
    }

    /// Verifies every shard's allocator invariants plus cross-shard
    /// ownership consistency, from a quiescent state.
    ///
    /// # Panics
    ///
    /// Panics if any shard's free list is corrupt, an ownership entry
    /// points at a shard that doesn't hold the id, or the ownership
    /// maps disagree with the live-allocation count.
    pub fn check_invariants(&self) {
        let guards: Vec<MutexGuard<'_, Shard>> = (0..self.shards.len() as u32)
            .map(|s| self.lock(s))
            .collect();
        let mut owned_total = 0usize;
        for g in &guards {
            g.alloc.check_invariants();
            owned_total += g.alloc.allocations_by_address().len();
        }
        let mut homed_total = 0usize;
        for g in &guards {
            for (&id, &owner) in &g.homed {
                assert_ne!(owner, RESERVED, "reservation leaked for id {id}");
                let owner_guard = &guards[owner as usize];
                assert!(
                    owner_guard.alloc.lookup(id).is_some(),
                    "id {id} homed here but not live on shard {owner}"
                );
                homed_total += 1;
            }
        }
        assert_eq!(
            homed_total, owned_total,
            "ownership maps out of step with live allocations"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip_across_shards() {
        let arena = ShardedArena::new(4, 500, Placement::FirstFit);
        for id in 0..20 {
            arena.alloc(id, 50).unwrap();
        }
        assert_eq!(arena.snapshot().allocated_words(), 1000);
        arena.check_invariants();
        for id in 0..20 {
            arena.free(id).unwrap();
        }
        assert_eq!(arena.snapshot().free_words(), 2000);
        arena.check_invariants();
    }

    #[test]
    fn addresses_land_in_the_owning_shards_stripe() {
        let arena = ShardedArena::new(8, 1000, Placement::BestFit);
        for id in 0..40 {
            let addr = arena.alloc(id, 10).unwrap();
            let (found, size) = arena.lookup(id).unwrap();
            assert_eq!(found, addr);
            assert_eq!(size, 10);
            let shard = addr.value() / 1000;
            assert!(shard < 8);
        }
        arena.check_invariants();
    }

    #[test]
    fn overflow_steals_to_a_neighbour() {
        let arena = ShardedArena::new(2, 100, Placement::FirstFit);
        // Fill whichever shard id 0 homes to, then overflow it.
        let home = arena.home_shard(0);
        arena.alloc(0, 100).unwrap();
        // Find another id with the same home to force a steal.
        let id2 = (1..).find(|&i| arena.home_shard(i) == home).unwrap();
        let addr = arena.alloc(id2, 50).unwrap();
        let other = 1 - home;
        assert_eq!(addr.value() / 100, u64::from(other), "stolen placement");
        assert_eq!(arena.steals(), 1);
        arena.free(id2).unwrap();
        arena.free(0).unwrap();
        arena.check_invariants();
    }

    #[test]
    fn exhaustion_reports_every_shard_honestly() {
        let arena = ShardedArena::new(2, 100, Placement::FirstFit);
        arena.alloc(1, 90).unwrap();
        arena.alloc(2, 90).unwrap();
        let err = arena.alloc(3, 50).unwrap_err();
        match err {
            ArenaError::Exhausted {
                requested,
                per_shard,
            } => {
                assert_eq!(requested, 50);
                assert_eq!(per_shard.len(), 2);
                for (i, s) in per_shard.iter().enumerate() {
                    assert_eq!(s.shard, i as u32);
                    assert_eq!(s.largest_free, 10);
                    assert_eq!(s.free_words, 10);
                }
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        // The failed request leaves no residue.
        arena.check_invariants();
        assert_eq!(arena.lookup(3), None);
    }

    #[test]
    fn hole_map_spans_the_stripes_globally() {
        let arena = ShardedArena::new(2, 100, Placement::FirstFit);
        assert_eq!(arena.hole_map(), vec![(0, 100), (100, 100)]);
        let home = arena.home_shard(0);
        arena.alloc(0, 40).unwrap();
        let holes = arena.hole_map();
        assert_eq!(holes.len(), 2);
        // The home shard's hole starts past the allocation; the other
        // stripe is untouched.
        let base = u64::from(home) * 100;
        assert!(holes.contains(&(base + 40, 60)), "{holes:?}");
        let total: Words = holes.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 160);
    }

    #[test]
    fn typed_errors_pass_through() {
        let arena = ShardedArena::new(4, 100, Placement::BestFit);
        assert_eq!(
            arena.alloc(1, 0),
            Err(ArenaError::Alloc(AllocError::ZeroSize))
        );
        arena.alloc(1, 10).unwrap();
        assert_eq!(
            arena.alloc(1, 10),
            Err(ArenaError::Alloc(AllocError::AlreadyAllocated))
        );
        assert_eq!(
            arena.free(99),
            Err(ArenaError::Alloc(AllocError::UnknownUnit))
        );
    }

    #[test]
    fn quarantined_shard_is_skipped_but_still_drains() {
        let arena = ShardedArena::new(2, 100, Placement::FirstFit);
        let home = arena.home_shard(0);
        arena.alloc(0, 30).unwrap();
        // Sideline the home shard: the next alloc homing there must be
        // placed on the neighbour, counted as a steal.
        assert!(arena.quarantine(home));
        let id2 = (1..).find(|&i| arena.home_shard(i) == home).unwrap();
        let addr = arena.alloc(id2, 30).unwrap();
        assert_eq!(addr.value() / 100, u64::from(1 - home), "steered away");
        assert_eq!(arena.steals(), 1);
        // Frees still drain into the quarantined shard.
        arena.free(0).unwrap();
        assert!(arena.readmit(home));
        let id3 = (id2 + 1..).find(|&i| arena.home_shard(i) == home).unwrap();
        let back = arena.alloc(id3, 30).unwrap();
        assert_eq!(back.value() / 100, u64::from(home), "readmitted");
        arena.check_invariants();
        let snap = arena.snapshot();
        assert!(snap.shards.iter().all(|s| !s.quarantined));
    }

    #[test]
    fn every_shard_quarantined_reports_honest_exhaustion() {
        let arena = ShardedArena::new(2, 100, Placement::FirstFit);
        arena.quarantine(0);
        arena.quarantine(1);
        assert_eq!(arena.quarantined_count(), 2);
        match arena.alloc(5, 10).unwrap_err() {
            ArenaError::Exhausted { requested, .. } => assert_eq!(requested, 10),
            other => panic!("expected Exhausted, got {other:?}"),
        }
        assert_eq!(arena.lookup(5), None, "no reservation residue");
        arena.check_invariants();
    }

    #[test]
    fn injected_corruption_is_detected_and_healed_in_place() {
        let arena = ShardedArena::new(2, 100, Placement::BestFit);
        for id in 0..6 {
            arena.alloc(id, 10).unwrap();
        }
        arena.free(2).unwrap();
        let live_before = arena.snapshot().allocated_words();
        let victim = 0;
        arena.corrupt_shard_for_chaos(victim);
        assert!(arena.audit_shard(victim).is_err(), "corruption detected");
        let mut probe = dsa_probe::CountingProbe::default();
        arena
            .heal_shard(victim, Stamp::default(), &mut probe)
            .unwrap();
        assert_eq!(probe.shards_quarantined, 1);
        assert_eq!(probe.shards_restored, 1);
        assert!(!arena.is_quarantined(victim), "readmitted after heal");
        assert!(arena.audit_shard(victim).is_ok());
        assert_eq!(arena.snapshot().allocated_words(), live_before);
        arena.check_invariants();
        // The healed shard keeps serving.
        for id in 0..6 {
            let _ = arena.free(id);
        }
        assert_eq!(arena.snapshot().free_words(), 200);
        arena.check_invariants();
    }

    #[test]
    fn one_shard_arena_matches_the_bare_allocator() {
        // The anchor property: with one shard there is no hashing, no
        // stealing, and no divergence from the sequential allocator.
        let arena = ShardedArena::new(1, 1000, Placement::BestFit);
        let mut bare = FreeListAllocator::new(1000, Placement::BestFit);
        let sizes = [100u64, 37, 200, 64, 300, 12, 150];
        for (i, &size) in sizes.iter().enumerate() {
            let id = i as u64;
            assert_eq!(arena.alloc(id, size).ok(), bare.alloc(id, size).ok());
        }
        for id in [1u64, 3, 5] {
            assert!(arena.free(id).is_ok() == bare.free(id).is_ok());
        }
        // Refill into the holes: placement decisions must agree.
        for (i, &size) in [30u64, 60, 90].iter().enumerate() {
            let id = 100 + i as u64;
            assert_eq!(arena.alloc(id, size).ok(), bare.alloc(id, size).ok());
        }
        let snap = arena.snapshot();
        assert_eq!(snap.shards[0].alloc.free_words, bare.free_words());
        assert_eq!(snap.stats().probes, bare.stats().probes);
        arena.check_invariants();
    }
}
