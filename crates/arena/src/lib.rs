//! The concurrent allocation service: the taxonomy, made to serve
//! traffic.
//!
//! Everything else in this workspace allocates on one thread, because
//! the paper's machines did. This crate is the front-end that turns
//! those allocators into a *service*: many worker threads submitting
//! allocation and release traffic at once, with throughput that scales
//! with the storage's parallel structure.
//!
//! The design follows the paper's §Uniformity axis — the choice it
//! calls "the most basic" — because that axis decides what concurrency
//! is even possible:
//!
//! * **Uniform unit of allocation** → no placement search exists, so
//!   nothing needs a lock: [`FixedSlab`] is a lock-free free-stack of
//!   unit indices with a version-tagged head, giving concurrent
//!   alloc/free in constant time in the style of Blelloch & Wei
//!   (*Concurrent Fixed-Size Allocation and Free in Constant Time*).
//! * **Variable unit of allocation** → placement is a stateful search,
//!   so concurrency comes from *sharding*: [`ShardedArena`] stripes
//!   storage across `N` independent [`FreeListAllocator`] shards (any
//!   placement policy), each behind its own lock, with deterministic
//!   home-shard hashing, overflow stealing, and a typed
//!   [`ArenaError::Exhausted`] that reports every shard's honest
//!   `largest_free`.
//!
//! [`ArenaService`] is the batching request port over either backend:
//! `submit(&[Request]) -> Vec<Response>` from any number of threads,
//! every operation counted in one atomic [`SharedProbe`] sink so the
//! books balance exactly at any thread count.
//!
//! The service is overload-hardened: requests allocate as [`Tenant`]s
//! with word quotas metered exactly by the atomic [`TenantTable`]; an
//! optional [`OverloadGuard`] refuses admission by priority past its
//! occupancy watermarks and walks a degradation ladder (retry →
//! coalesce → global compaction → shed lowest-priority tenants) before
//! a typed error escapes; shards whose free lists are found corrupt are
//! quarantined, rebuilt from the live-allocation book, audited, and
//! readmitted — all under live traffic (`submit_chaos` injects exactly
//! these failures deterministically).
//!
//! [`FreeListAllocator`]: dsa_freelist::FreeListAllocator
//! [`SharedProbe`]: dsa_probe::SharedProbe

pub mod overload;
pub mod service;
pub mod slab;
pub mod striped;
pub mod telemetry;
pub mod tenant;

pub use overload::{OverloadConfig, OverloadGuard};
pub use service::{ArenaService, Request, Response};
pub use slab::{FixedSlab, SlabStats, SlabUnit};
pub use striped::{ArenaError, ArenaSnapshot, ShardFullness, ShardSnapshot, ShardedArena};
pub use telemetry::ServiceTelemetry;
pub use tenant::{Priority, Tenant, TenantOccupancy, TenantTable};
