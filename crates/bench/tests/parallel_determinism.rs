//! The engine's core promise: experiment output is a pure function of
//! the grid, never of the scheduling. Each binary here is run at
//! `--jobs 1` (inline, the exact pre-engine sequential program) and at
//! `--jobs 8` (worker fan-out wider than the host), and the two
//! outputs must match byte for byte.
//!
//! The set is chosen to cover the engine's usage patterns while staying
//! cheap under the debug profile: plain value grids (E10, E11, E14),
//! stateful cells behind `Mutex` (E1), and sequentially pre-drawn
//! randomness fanned to workers (E17).

use std::process::Command;

fn output_with_jobs(bin: &str, jobs: &str) -> Vec<u8> {
    let out = Command::new(bin)
        .args(["--jobs", jobs])
        .output()
        .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} --jobs {jobs} exited with {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn assert_jobs_invariant(bin: &str) {
    let sequential = output_with_jobs(bin, "1");
    let parallel = output_with_jobs(bin, "8");
    assert!(
        sequential == parallel,
        "{bin}: --jobs 1 and --jobs 8 outputs differ"
    );
    assert!(!sequential.is_empty(), "{bin}: produced no output at all");
}

#[test]
fn exp_01_output_independent_of_jobs() {
    assert_jobs_invariant(env!("CARGO_BIN_EXE_exp_01_artificial_contiguity"));
}

#[test]
fn exp_10_output_independent_of_jobs() {
    assert_jobs_invariant(env!("CARGO_BIN_EXE_exp_10_name_spaces"));
}

#[test]
fn exp_11_output_independent_of_jobs() {
    assert_jobs_invariant(env!("CARGO_BIN_EXE_exp_11_multics_dual"));
}

#[test]
fn exp_14_output_independent_of_jobs() {
    assert_jobs_invariant(env!("CARGO_BIN_EXE_exp_14_promotion"));
}

#[test]
fn exp_17_output_independent_of_jobs() {
    assert_jobs_invariant(env!("CARGO_BIN_EXE_exp_17_drum_queueing"));
}
