//! Host-cost hot paths: what the simulator pays in wall-clock, as
//! distinct from the modeled costs it reports.
//!
//! Two inner loops dominate every sweep's wall-clock:
//!
//! * variable-unit placement — best-fit/worst-fit must *choose* a hole
//!   on every allocation (the modeled search length the paper cares
//!   about is reported separately by `FreeListStats`);
//! * victim selection — LRU and MIN must pick a frame on every
//!   eviction;
//! * whole fault-rate *curves* — the experiments want faults at every
//!   core size, and replaying the machine once per size multiplies the
//!   victim-selection cost by the number of sizes. The `belady_curve`
//!   group races that replay loop against one `dsa-stackdist` pass
//!   (exact same fault counts, property-tested).
//!
//! The workloads here are sized so the structures being searched are
//! large (thousands of holes, hundreds of frames): the regime the
//! finite-size-scaling sweeps need. Results are recorded across PRs in
//! `BENCH_03.json` and `BENCH_04.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsa_core::access::AllocEvent;
use dsa_core::ids::PageNo;
use dsa_freelist::freelist::{FreeListAllocator, Placement};
use dsa_paging::paged::PagedMemory;
use dsa_paging::replacement::lru::LruRepl;
use dsa_paging::replacement::min::MinRepl;
use dsa_stackdist::{lru_distances, opt_distances};
use dsa_trace::allocstream::{AllocStreamCfg, SizeDist};
use dsa_trace::refstring::RefStringCfg;
use dsa_trace::rng::Rng64;

const CAPACITY: u64 = 1 << 18;
const ALLOC_EVENTS: usize = 120_000;

/// Replays an allocation/free stream, dropping frees of failed
/// requests, exactly as experiment E5 does.
fn replay(policy: Placement, events: &[AllocEvent]) -> u64 {
    let mut a = FreeListAllocator::new(CAPACITY, policy);
    let mut dropped: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for e in events {
        match *e {
            AllocEvent::Alloc(r) => {
                if a.alloc(r.id, r.size).is_err() {
                    dropped.insert(r.id);
                }
            }
            AllocEvent::Free { id } => {
                if !dropped.remove(&id) {
                    a.free(id).expect("live id");
                }
            }
        }
    }
    a.stats().probes
}

/// Best-fit and worst-fit on a hole-rich heap: small exponential
/// requests at high load keep thousands of holes live, so the
/// per-allocation hole choice is the hot path.
fn alloc_churn(c: &mut Criterion) {
    let cfg = AllocStreamCfg {
        sizes: SizeDist::Exponential {
            mean: 32.0,
            cap: 2000,
        },
        mean_lifetime: 4000.0,
        target_live_words: (CAPACITY as f64 * 0.95) as u64,
    };
    let events = cfg.generate(ALLOC_EVENTS, &mut Rng64::new(7));
    let mut g = c.benchmark_group("alloc_churn");
    for policy in [Placement::BestFit, Placement::WorstFit, Placement::FirstFit] {
        g.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &events,
            |b, events| b.iter(|| replay(policy, events)),
        );
    }
    g.finish();
}

/// The first-fit *search* isolated: an alloc/free pair against a field
/// of ~1024 small splinter holes that the request does not fit, so the
/// linear scan walks all of them and the segregated bins jump straight
/// to the first adequate class. `TwoEnds {threshold: u64::MAX}` routes
/// every request through its bottom-up scan — operationally identical
/// to first-fit's linear scan and still in the tree — so the baseline
/// and the indexed path can be raced in one binary on the same
/// workload (the pair's placement, and the heap it leaves behind, are
/// identical under both).
fn first_fit_search(c: &mut Criterion) {
    fn fragmented(policy: Placement) -> FreeListAllocator {
        let mut a = FreeListAllocator::new(CAPACITY, policy);
        for id in 0..2048u64 {
            a.alloc(id, 64).expect("setup fits");
        }
        for id in (0..2048u64).step_by(2) {
            a.free(id).expect("just allocated");
        }
        a
    }
    let mut g = c.benchmark_group("first_fit_search");
    g.bench_function("linear_scan", |b| {
        let mut a = fragmented(Placement::TwoEnds {
            threshold: u64::MAX,
        });
        let mut id = 1u64 << 32;
        b.iter(|| {
            id += 1;
            let addr = a.alloc(id, 128).expect("large hole fits");
            a.free(id).expect("just allocated");
            addr
        })
    });
    g.bench_function("segregated_bins", |b| {
        let mut a = fragmented(Placement::FirstFit);
        let mut id = 1u64 << 32;
        b.iter(|| {
            id += 1;
            let addr = a.alloc(id, 128).expect("large hole fits");
            a.free(id).expect("just allocated");
            addr
        })
    });
    g.finish();
}

/// LRU and MIN victim selection with a large frame pool and a miss-heavy
/// uniform trace: nearly every reference evicts, so victim choice
/// dominates.
fn victim_select(c: &mut Criterion) {
    const FRAMES: usize = 512;
    const REFS: usize = 60_000;
    let trace: Vec<PageNo> =
        RefStringCfg::Uniform { pages: 4096 }.generate_pages(REFS, &mut Rng64::new(11));
    let mut g = c.benchmark_group("victim_select");
    g.bench_function("lru_512f", |b| {
        b.iter(|| {
            let mut m = PagedMemory::new(FRAMES, Box::new(LruRepl::new()));
            m.run_pages(&trace).expect("no pinning").faults
        })
    });
    g.bench_function("min_512f", |b| {
        b.iter(|| {
            let mut m = PagedMemory::new(FRAMES, Box::new(MinRepl::new(&trace)));
            m.run_pages(&trace).expect("no pinning").faults
        })
    });
    g.finish();
}

/// The whole faults-vs-size curve, the E4 way: one replay per frame
/// count versus one stack-distance traversal. The workload mirrors E4's
/// first trace (60 000 LRU-stack references over 64 pages) and the
/// frame counts are E4's columns.
fn belady_curve(c: &mut Criterion) {
    const REFS: usize = 60_000;
    const FRAME_COUNTS: [usize; 5] = [8, 16, 24, 32, 48];
    let trace: Vec<PageNo> = RefStringCfg::LruStack {
        pages: 64,
        theta: 0.9,
    }
    .generate_pages(REFS, &mut Rng64::new(4_000));
    let mut g = c.benchmark_group("belady_curve");
    g.bench_function("lru_per_size", |b| {
        b.iter(|| {
            FRAME_COUNTS
                .iter()
                .map(|&frames| {
                    let mut m = PagedMemory::new(frames, Box::new(LruRepl::new()));
                    m.run_pages(&trace).expect("no pinning").faults
                })
                .sum::<u64>()
        })
    });
    g.bench_function("lru_stackdist", |b| {
        b.iter(|| {
            lru_distances(&trace)
                .success()
                .curve(&FRAME_COUNTS)
                .iter()
                .sum::<u64>()
        })
    });
    g.bench_function("min_per_size", |b| {
        b.iter(|| {
            FRAME_COUNTS
                .iter()
                .map(|&frames| {
                    let mut m = PagedMemory::new(frames, Box::new(MinRepl::new(&trace)));
                    m.run_pages(&trace).expect("no pinning").faults
                })
                .sum::<u64>()
        })
    });
    g.bench_function("min_stackdist", |b| {
        b.iter(|| {
            opt_distances(&trace)
                .success()
                .curve(&FRAME_COUNTS)
                .iter()
                .sum::<u64>()
        })
    });
    g.finish();
}

criterion_group!(
    name = hotpath;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = alloc_churn, first_fit_search, victim_select, belady_curve
);
criterion_main!(hotpath);
