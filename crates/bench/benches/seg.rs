//! Criterion benches for the segmentation machinery (E9/E15 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsa_core::ids::SegId;
use dsa_freelist::freelist::{FreeListAllocator, Placement};
use dsa_freelist::rice::RiceAllocator;
use dsa_seg::sharing::{AccessMode, AccessType, SharedSegments};
use dsa_seg::store::{SegReplacement, SegmentStore, StoreBackend};
use dsa_trace::rng::Rng64;

fn touches() -> Vec<(u32, u64, bool)> {
    let mut rng = Rng64::new(5);
    (0..20_000)
        .map(|_| (rng.below(16) as u32, rng.below(100), rng.chance(0.3)))
        .collect()
}

fn bench_store_backends(c: &mut Criterion) {
    let touches = touches();
    let mut g = c.benchmark_group("segment_store_20k_touches");
    type Factory = fn() -> SegmentStore;
    let cases: Vec<(&str, Factory)> = vec![
        ("freelist_cyclic", || {
            SegmentStore::new(
                StoreBackend::FreeList(FreeListAllocator::new(1200, Placement::BestFit)),
                SegReplacement::Cyclic,
                1024,
            )
        }),
        ("rice_iterative", || {
            SegmentStore::new(
                StoreBackend::Rice(RiceAllocator::new(1200)),
                SegReplacement::RiceIterative,
                1024,
            )
        }),
    ];
    for (name, factory) in cases {
        g.bench_with_input(BenchmarkId::from_parameter(name), &touches, |b, touches| {
            b.iter(|| {
                let mut store = factory();
                for s in 0..16u32 {
                    store.define(SegId(s), 100).expect("declared");
                }
                let mut faults = 0u64;
                for &(s, off, w) in touches {
                    if store.touch(SegId(s), off, w).expect("evictable").fetched {
                        faults += 1;
                    }
                }
                faults
            });
        });
    }
    g.finish();
}

fn bench_capability_check(c: &mut Criterion) {
    let touches = touches();
    c.bench_function("shared_access_20k_capability_checks", |b| {
        b.iter(|| {
            let mut shared = SharedSegments::new(SegmentStore::new(
                StoreBackend::FreeList(FreeListAllocator::new(4096, Placement::BestFit)),
                SegReplacement::Cyclic,
                1024,
            ));
            for s in 0..16u32 {
                shared
                    .publish(0, SegId(s), 100, AccessMode::RW)
                    .expect("fits");
                shared.grant(0, 1, SegId(s), AccessMode::RO).expect("owner");
            }
            let mut ok = 0u64;
            for &(s, off, w) in &touches {
                let kind = if w {
                    AccessType::Write
                } else {
                    AccessType::Read
                };
                // Program 1 holds read-only grants: writes are refused.
                if shared.access(1, SegId(s), off, kind).is_ok() {
                    ok += 1;
                }
            }
            ok
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_store_backends, bench_capability_check
}
criterion_main!(benches);
