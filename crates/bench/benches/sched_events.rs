//! Event-driven scheduler throughput at population scale, against the
//! per-cycle reference stepper.
//!
//! The reference [`MultiprogramSim`] carries a materialized trace and a
//! full paging engine per job, so its cost (and footprint) grows with
//! the population even while everyone is blocked. [`EventSim`] keys
//! blocked time through a binary heap and keeps tenants compact, so the
//! same mix costs what its *executed references* cost. This group
//! measures whole runs — build plus simulate — at 1k/10k/100k tenants
//! with working-set admission on, and the stepper at 1k as the
//! "before" point. `BENCH_08.json` records the medians; the CI bench
//! guard reruns the group in smoke mode and fails on a >3x regression
//! of the guarded medians.

use criterion::{criterion_group, criterion_main, Criterion};
use dsa_core::clock::Cycles;
use dsa_core::ids::JobId;
use dsa_paging::replacement::lru::LruRepl;
use dsa_probe::NullProbe;
use dsa_sched::{
    AdmissionPolicy, EventSim, JobSpec, LoadControlCfg, MultiprogramSim, SimConfig, TenantSpec,
    TraceSpec,
};
use dsa_trace::refstring::RefStringCfg;
use dsa_trace::rng::Rng64;

/// Short sessions: the population is the scale axis, not the traces.
const REFS: u64 = 50;

fn sim_cfg() -> SimConfig {
    SimConfig {
        instr_time: Cycles::from_micros(10),
        fetch_time: Cycles::from_millis(2),
        page_size: 512,
        quantum_refs: 20,
        fetch_channels: Some(8),
    }
}

fn refstring() -> RefStringCfg {
    RefStringCfg::WorkingSetPhases {
        pages: 16,
        set: 6,
        phase_len: 40,
    }
}

fn tenants(n: u32) -> Vec<TenantSpec> {
    (0..n)
        .map(|i| {
            TenantSpec::new(
                i,
                TraceSpec::Stream {
                    cfg: refstring(),
                    write_fraction: 0.0,
                    seed: u64::from(i) + 1,
                    len: REFS,
                },
                8,
            )
        })
        .collect()
}

fn run_event(n: u32) -> u64 {
    let sim = EventSim::new(
        sim_cfg(),
        n as usize * 8,
        AdmissionPolicy::WorkingSet,
        LoadControlCfg::default(),
        tenants(n),
    );
    sim.run(&mut NullProbe)
        .expect("compact sets cannot fail")
        .references
}

fn run_stepper(n: u32) -> u64 {
    let specs: Vec<JobSpec> = (0..n)
        .map(|i| JobSpec {
            id: JobId(i),
            trace: refstring().generate_pages(REFS as usize, &mut Rng64::new(u64::from(i) + 1)),
            frames: 8,
            replacer: Box::new(LruRepl::new()),
        })
        .collect();
    let report = MultiprogramSim::new(sim_cfg(), specs)
        .run()
        .expect("no pinning");
    report.jobs.iter().map(|j| j.references).sum()
}

fn sched_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_events");
    g.bench_function("stepper_1k", |b| b.iter(|| run_stepper(1_000)));
    g.bench_function("event_1k", |b| b.iter(|| run_event(1_000)));
    g.bench_function("event_10k", |b| b.iter(|| run_event(10_000)));
    g.bench_function("event_100k", |b| b.iter(|| run_event(100_000)));
    g.finish();
}

criterion_group!(benches, sched_events);
criterion_main!(benches);
