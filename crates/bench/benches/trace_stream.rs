//! Streaming vs. materialized trace traversal: what a reference
//! costs to *produce and consume*, each way.
//!
//! The streaming layer's pitch is constant memory at identical
//! throughput — the iterator does exactly the draws the materializing
//! generator does, so per-reference host cost should match (and the
//! stream never pays the allocation or the cache misses of an
//! 800 MB `Vec` at 10⁸ references). This group measures both paths at
//! a CI-friendly length; `BENCH_06.json` records the 10⁸-reference
//! runs (where the materialized path stops being measurable on small
//! hosts, which is the point).
//!
//! Consumers are the real ones: the LRU machine via `run_pages_iter`
//! and the streaming Mattson engine, against their `Vec`-driven
//! twins.

use criterion::{criterion_group, criterion_main, Criterion};
use dsa_paging::paged::PagedMemory;
use dsa_paging::replacement::lru::LruRepl;
use dsa_stackdist::lru_success;
use dsa_stackdist::streaming::StreamingLru;
use dsa_trace::refstring::RefStringCfg;
use dsa_trace::rng::Rng64;

const REFS: usize = 1_000_000;
const FRAMES: usize = 256;

fn cfg() -> RefStringCfg {
    RefStringCfg::HotCold {
        hot: 128,
        cold: 8064,
        p_hot: 0.85,
    }
}

/// Generate-and-traverse, both ways: the whole producer+consumer cost,
/// which is what an experiment binary actually pays per reference.
fn trace_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_stream");
    g.bench_function("materialized_machine", |b| {
        b.iter(|| {
            let trace = cfg().generate_pages(REFS, &mut Rng64::new(42));
            let mut m = PagedMemory::new(FRAMES, Box::new(LruRepl::new()));
            m.run_pages(&trace).expect("no pinning").faults
        })
    });
    g.bench_function("streamed_machine", |b| {
        b.iter(|| {
            let mut m = PagedMemory::new(FRAMES, Box::new(LruRepl::new()));
            m.run_pages_iter(cfg().stream(0.0, 42).pages().take(REFS))
                .expect("no pinning")
                .faults
        })
    });
    g.bench_function("materialized_stackdist", |b| {
        b.iter(|| {
            let trace = cfg().generate_pages(REFS, &mut Rng64::new(42));
            lru_success(&trace).faults(FRAMES)
        })
    });
    g.bench_function("streamed_stackdist", |b| {
        b.iter(|| {
            let mut s = StreamingLru::new();
            for p in cfg().stream(0.0, 42).pages().take(REFS) {
                s.record(p);
            }
            s.success().faults(FRAMES)
        })
    });
    g.finish();
}

criterion_group!(
    name = streams;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = trace_stream
);
criterion_main!(streams);
