//! Always-on telemetry overhead: what the flight recorder and the
//! atomic histograms cost on the hot paths they watch.
//!
//! Two groups, each sweeping the same probe variants:
//!
//! * `telemetry_arena_churn` — a single-threaded alloc/free churn loop
//!   over a 4-shard `ShardedArena`, the allocation service's hot path.
//! * `telemetry_machine` — an ATLAS machine driving a survey program,
//!   the simulation spine's hot path (every touch emits through the
//!   probe parameter).
//!
//! Variants: `null` (the `NullProbe` baseline the spine const-folds),
//! `flight` (lock-free per-thread ring, 6 relaxed stores per event),
//! `histograms` (the `TelemetryProbe` distribution set: shared counters
//! plus relaxed `fetch_add` into atomic histogram buckets), and
//! `flight+histograms` (both teed). The acceptance budget is
//! histograms-on churn within 15% of the null baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use dsa_arena::ShardedArena;
use dsa_bench::workloads::survey_program_cfg;
use dsa_core::access::ProgramOp;
use dsa_freelist::Placement;
use dsa_machines::presets::atlas;
use dsa_probe::{NullProbe, Probe, Stamp, Tee};
use dsa_telemetry::{FlightRecorder, TelemetryProbe};
use dsa_trace::rng::Rng64;

/// One churn op against the arena: alloc under a fresh id or free a
/// random live one.
enum Op {
    Alloc { id: u64, words: u64 },
    Free { id: u64 },
}

/// Bounded-live-set churn (same shape as the arena_churn bench), small
/// enough that one iteration is a few thousand locked operations.
fn churn_ops(n: usize) -> Vec<Op> {
    let mut rng = Rng64::new(0x7E1E);
    let mut live: Vec<u64> = Vec::new();
    let mut next = 0u64;
    let mut out = Vec::with_capacity(n + 300);
    for _ in 0..n {
        let grow = live.len() < 16 || (live.len() < 256 && rng.next_u64() % 100 < 55);
        if grow {
            let id = next;
            next += 1;
            out.push(Op::Alloc {
                id,
                words: 8 + rng.next_u64() % 120,
            });
            live.push(id);
        } else {
            let i = (rng.next_u64() as usize) % live.len();
            out.push(Op::Free {
                id: live.swap_remove(i),
            });
        }
    }
    for id in live {
        out.push(Op::Free { id });
    }
    out
}

/// Replays the churn against a fresh arena through `probe`; returns the
/// success count so the optimizer keeps the loop.
fn drive_arena<P: Probe>(ops: &[Op], mut probe: P) -> u64 {
    let arena = ShardedArena::new(4, 1 << 16, Placement::FirstFit);
    let mut ok = 0u64;
    for (vt, op) in ops.iter().enumerate() {
        let at = Stamp::vtime(vt as u64);
        let done = match *op {
            Op::Alloc { id, words } => arena.alloc_probed(id, words, at, &mut probe).is_ok(),
            Op::Free { id } => arena.free_probed(id, at, &mut probe).is_ok(),
        };
        ok += u64::from(done);
    }
    ok
}

fn arena_churn(c: &mut Criterion) {
    let ops = churn_ops(4_000);
    let recorder = FlightRecorder::new(1024);
    let telemetry = TelemetryProbe::default();
    let mut g = c.benchmark_group("telemetry_arena_churn");
    g.bench_function("null", |b| b.iter(|| drive_arena(&ops, NullProbe)));
    g.bench_function("flight", |b| {
        b.iter(|| drive_arena(&ops, recorder.handle()))
    });
    g.bench_function("histograms", |b| b.iter(|| drive_arena(&ops, &telemetry)));
    g.bench_function("flight+histograms", |b| {
        b.iter(|| drive_arena(&ops, Tee(&telemetry, recorder.handle())))
    });
    g.finish();
}

/// Replays the survey program on a fresh ATLAS through `probe`.
fn drive_machine<P: Probe>(ops: &[ProgramOp], probe: &mut P) -> u64 {
    let mut m = atlas();
    let r = m
        .run_with(ops, probe)
        .expect("survey program runs on ATLAS");
    r.touches
}

fn machine_driver(c: &mut Criterion) {
    let mut cfg = survey_program_cfg();
    cfg.touches = 6_000;
    let program = cfg.generate(&mut Rng64::new(0x7E1E));
    let recorder = FlightRecorder::new(1024);
    let telemetry = TelemetryProbe::default();
    let mut g = c.benchmark_group("telemetry_machine");
    g.bench_function("null", |b| {
        b.iter(|| drive_machine(&program.ops, &mut NullProbe))
    });
    g.bench_function("flight", |b| {
        b.iter(|| drive_machine(&program.ops, &mut recorder.handle()))
    });
    g.bench_function("histograms", |b| {
        let mut sink = &telemetry;
        b.iter(|| drive_machine(&program.ops, &mut sink))
    });
    g.bench_function("flight+histograms", |b| {
        let mut sink = Tee(&telemetry, recorder.handle());
        b.iter(|| drive_machine(&program.ops, &mut sink))
    });
    g.finish();
}

criterion_group!(
    name = telemetry;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = arena_churn, machine_driver
);
criterion_main!(telemetry);
