//! Concurrent allocation service under churn: the wall-clock cost of
//! the `dsa-arena` hot paths.
//!
//! Three groups:
//!
//! * `striped_submit` — four scoped workers hammer one `ArenaService`
//!   with mixed alloc/free batches, swept over shard counts at constant
//!   total capacity. More shards means fewer lock conflicts; on a
//!   1-CPU host the curve flattens to the locking overhead itself.
//! * `slab_submit` — the same batched workload against the lock-free
//!   fixed-size slab: no locks, no placement search, one CAS per op.
//! * `slab_raw` — the bare `FixedSlab::alloc`/`free` pair without the
//!   service front-end, isolating the Treiber-stack cost from the
//!   registry/probe overhead around it.
//! * `striped_raw` — the bare `ShardedArena` alloc/free pair against a
//!   fragmented shard, with and without the quick-list fast path; the
//!   quick variant is the small-size arena fast path `BENCH_06.json`
//!   records.
//! * `striped_submit_quick` — the `striped_submit` sweep with quick
//!   lists armed, the service-level view of the same fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsa_arena::{ArenaService, FixedSlab, Request, Response, ShardedArena};
use dsa_freelist::Placement;
use dsa_trace::rng::Rng64;

const WORKERS: u64 = 4;
const OPS_PER_WORKER: usize = 5_000;
const BATCH: usize = 256;
const TOTAL_WORDS: u64 = 1 << 18;
const UNIT_WORDS: u64 = 64;

/// Bounded-live-set churn stream, ids namespaced by worker (same shape
/// as `exp_18_concurrency`, smaller so a sample stays cheap).
fn worker_stream(worker: u64, max_words: u64) -> Vec<Request> {
    let mut rng = Rng64::new(0xBE_0000 + worker);
    let mut live: Vec<u64> = Vec::new();
    let mut next = 0u64;
    let mut out = Vec::with_capacity(OPS_PER_WORKER + 300);
    for _ in 0..OPS_PER_WORKER {
        let grow = live.len() < 16 || (live.len() < 256 && rng.next_u64() % 100 < 55);
        if grow {
            let id = (worker << 40) | next;
            next += 1;
            out.push(Request::alloc(id, 8 + rng.next_u64() % max_words));
            live.push(id);
        } else {
            let i = (rng.next_u64() as usize) % live.len();
            out.push(Request::free(live.swap_remove(i)));
        }
    }
    for id in live {
        out.push(Request::free(id));
    }
    out
}

/// Drives every stream through the service from scoped workers; returns
/// the count of successful responses (a value the optimizer must keep).
fn drive(svc: &ArenaService, streams: &[Vec<Request>]) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    let ok = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for stream in streams {
            scope.spawn(|| {
                let mut n = 0u64;
                for batch in stream.chunks(BATCH) {
                    n += svc
                        .submit(batch)
                        .iter()
                        .filter(|r| !matches!(r, Response::Failed { .. }))
                        .count() as u64;
                }
                ok.fetch_add(n, Ordering::Relaxed);
            });
        }
    });
    ok.into_inner()
}

fn striped_submit(c: &mut Criterion) {
    let streams: Vec<Vec<Request>> = (0..WORKERS).map(|w| worker_stream(w, 120)).collect();
    let mut g = c.benchmark_group("striped_submit");
    for shards in [1u32, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &streams,
            |b, streams| {
                b.iter_with_setup(
                    || {
                        ArenaService::striped(
                            shards,
                            TOTAL_WORDS / u64::from(shards),
                            Placement::FirstFit,
                        )
                    },
                    |svc| drive(&svc, streams),
                )
            },
        );
    }
    g.finish();
}

fn slab_submit(c: &mut Criterion) {
    let streams: Vec<Vec<Request>> = (0..WORKERS)
        .map(|w| worker_stream(w, UNIT_WORDS - 8))
        .collect();
    let mut g = c.benchmark_group("slab_submit");
    g.bench_function("4_workers", |b| {
        b.iter_with_setup(
            || ArenaService::fixed(1 << 12, UNIT_WORDS),
            |svc| drive(&svc, &streams),
        )
    });
    g.finish();
}

fn striped_submit_quick(c: &mut Criterion) {
    let streams: Vec<Vec<Request>> = (0..WORKERS).map(|w| worker_stream(w, 120)).collect();
    let mut g = c.benchmark_group("striped_submit_quick");
    for shards in [1u32, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &streams,
            |b, streams| {
                b.iter_with_setup(
                    || {
                        ArenaService::striped(
                            shards,
                            TOTAL_WORDS / u64::from(shards),
                            Placement::FirstFit,
                        )
                        // Streams request 8..=127 words: cover them all.
                        .with_quick_lists(128, 64)
                    },
                    |svc| drive(&svc, streams),
                )
            },
        );
    }
    g.finish();
}

/// A fragmented 4-shard arena: persistent blocks with every other one
/// freed, so the pair under test works against a populated hole list —
/// the regime where the fast path matters.
fn fragmented_arena(quick: bool) -> ShardedArena {
    let arena = ShardedArena::new(4, TOTAL_WORDS / 4, Placement::FirstFit);
    if quick {
        arena.enable_quick_lists(128, 64);
    }
    let mut rng = Rng64::new(0xF4A6);
    for id in 0..2000u64 {
        let _ = arena.alloc(1 << 50 | id, 8 + rng.next_u64() % 120);
    }
    for id in (0..2000u64).step_by(2) {
        let _ = arena.free(1 << 50 | id);
    }
    arena
}

fn striped_raw(c: &mut Criterion) {
    let mut g = c.benchmark_group("striped_raw");
    g.bench_function("alloc_free_pair", |b| {
        let arena = fragmented_arena(false);
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let addr = arena.alloc(id, 16).expect("churn block fits");
            arena.free(id).expect("just allocated");
            addr
        })
    });
    g.bench_function("alloc_free_pair_quick", |b| {
        let arena = fragmented_arena(true);
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let addr = arena.alloc(id, 16).expect("churn block fits");
            arena.free(id).expect("just allocated");
            addr
        })
    });
    g.finish();
}

fn slab_raw(c: &mut Criterion) {
    let mut g = c.benchmark_group("slab_raw");
    g.bench_function("alloc_free_pair", |b| {
        let slab = FixedSlab::new(1 << 12, UNIT_WORDS);
        b.iter(|| {
            let unit = slab.alloc().expect("slab never fills here").unit;
            slab.free(unit).expect("just allocated");
            unit
        })
    });
    g.finish();
}

criterion_group!(
    name = arena_churn;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = striped_submit, striped_submit_quick, slab_submit, striped_raw, slab_raw
);
criterion_main!(arena_churn);
