//! The operational allocator vs the system allocator (E21 substrate).
//!
//! Three ways through the same mixed-size churn — `std::alloc::System`,
//! the shared slab path (`DsaHeap::alloc_direct`), and the per-thread
//! magazine path (`ThreadCache`) — plus a magazine-depth pair showing
//! what depot amortization the depth buys. `BENCH_07.json` records the
//! full runs; this group is the CI-friendly twin.

use std::alloc::{GlobalAlloc, Layout, System};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsa_alloc::{DsaHeap, HeapConfig, ThreadCache};
use dsa_trace::rng::Rng64;

const OPS: u64 = 100_000;
const WINDOW: usize = 512;
const SMALL_SIZES: [usize; 12] = [16, 24, 32, 48, 64, 96, 128, 192, 256, 512, 1024, 2048];

fn next_layout(rng: &mut Rng64) -> Layout {
    let size = if rng.below(32) == 0 {
        rng.range(4_096, 32_768) as usize
    } else {
        SMALL_SIZES[rng.below(SMALL_SIZES.len() as u64) as usize]
    };
    Layout::from_size_align(size, 8).expect("valid")
}

/// Replays the fixed churn sequence through `alloc`/`dealloc`,
/// draining the window at the end so every run leaves the heap empty.
fn drive(
    mut alloc: impl FnMut(Layout) -> *mut u8,
    mut dealloc: impl FnMut(*mut u8, Layout),
) -> u64 {
    let mut rng = Rng64::new(7);
    let mut slots: Vec<Option<(*mut u8, Layout)>> = vec![None; WINDOW];
    let mut made = 0;
    for _ in 0..OPS {
        let i = rng.below(WINDOW as u64) as usize;
        match slots[i].take() {
            Some((p, l)) => dealloc(p, l),
            None => {
                let l = next_layout(&mut rng);
                let p = alloc(l);
                assert!(!p.is_null());
                unsafe { p.write(1) };
                made += 1;
                slots[i] = Some((p, l));
            }
        }
    }
    for slot in &mut slots {
        if let Some((p, l)) = slot.take() {
            dealloc(p, l);
        }
    }
    made
}

fn bench_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("global_alloc_churn_100k");
    g.bench_function("system", |b| {
        b.iter(|| {
            drive(
                |l| unsafe { System.alloc(l) },
                |p, l| unsafe { System.dealloc(p, l) },
            )
        })
    });
    let heap = DsaHeap::new(HeapConfig::DEFAULT);
    g.bench_function("dsa_slab_direct", |b| {
        b.iter(|| {
            drive(
                |l| heap.alloc_direct(l),
                |p, l| unsafe { heap.dealloc_direct(p, l) },
            )
        })
    });
    g.bench_function("dsa_magazines", |b| {
        b.iter(|| {
            let cache = std::cell::RefCell::new(ThreadCache::new(&heap));
            let made = drive(
                |l| cache.borrow_mut().alloc(l),
                |p, l| unsafe { cache.borrow_mut().dealloc(p, l) },
            );
            drop(cache);
            made
        })
    });
    g.finish();
    heap.check_reconciliation();
}

fn bench_depth(c: &mut Criterion) {
    let heap = DsaHeap::new(HeapConfig::DEFAULT);
    let layout = Layout::from_size_align(64, 8).expect("valid");
    let mut g = c.benchmark_group("magazine_depth_64B");
    for depth in [1usize, 8, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let cache = std::cell::RefCell::new(ThreadCache::with_depth(&heap, depth));
                let mut rng = Rng64::new(9);
                let mut slots: Vec<Option<*mut u8>> = vec![None; WINDOW];
                for _ in 0..OPS {
                    let i = rng.below(WINDOW as u64) as usize;
                    match slots[i].take() {
                        Some(p) => unsafe { cache.borrow_mut().dealloc(p, layout) },
                        None => {
                            let p = cache.borrow_mut().alloc(layout);
                            assert!(!p.is_null());
                            slots[i] = Some(p);
                        }
                    }
                }
                for slot in &mut slots {
                    if let Some(p) = slot.take() {
                        unsafe { cache.borrow_mut().dealloc(p, layout) }
                    }
                }
            })
        });
    }
    g.finish();
    heap.check_reconciliation();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_churn, bench_depth
}
criterion_main!(benches);
