//! Criterion benches for the addressing mechanisms (E1/E3 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsa_core::clock::Cycles;
use dsa_core::ids::{FrameNo, Name, PageNo, PhysAddr, SegId};
use dsa_mapping::associative::{AssocPolicy, FrameAssociativeMap};
use dsa_mapping::block_map::BlockMap;
use dsa_mapping::cost::MapCosts;
use dsa_mapping::relocation::{IdentityMap, RelocationLimit};
use dsa_mapping::two_level::TwoLevelMap;
use dsa_mapping::AddressMap;
use dsa_trace::refstring::RefStringCfg;
use dsa_trace::rng::Rng64;

fn names() -> Vec<Name> {
    let mut rng = Rng64::new(3);
    RefStringCfg::LruStack {
        pages: 4096,
        theta: 1.0,
    }
    .generate(100_000, 0.0, &mut rng)
    .into_iter()
    .map(|a| a.name)
    .collect()
}

fn bench_simple_devices(c: &mut Criterion) {
    let names = names();
    let costs = MapCosts::for_core_cycle(Cycles::from_micros(1));
    let mut g = c.benchmark_group("translate_100k");
    g.bench_function("identity", |b| {
        let mut m = IdentityMap::new(4096, costs);
        b.iter(|| {
            names
                .iter()
                .filter(|&&n| m.translate(n).outcome.is_ok())
                .count()
        });
    });
    g.bench_function("relocation+limit", |b| {
        let mut m = RelocationLimit::new(PhysAddr(10_000), 4096, costs);
        b.iter(|| {
            names
                .iter()
                .filter(|&&n| m.translate(n).outcome.is_ok())
                .count()
        });
    });
    g.bench_function("block_map", |b| {
        let mut m = BlockMap::new(64, 6, costs);
        for i in 0..64 {
            m.map_block(i, PhysAddr(i * 64));
        }
        b.iter(|| {
            names
                .iter()
                .filter(|&&n| m.translate(n).outcome.is_ok())
                .count()
        });
    });
    g.bench_function("frame_associative", |b| {
        let mut m = FrameAssociativeMap::new(64, 6, 4096, costs);
        for i in 0..64u64 {
            m.load(FrameNo(i), PageNo(i));
        }
        b.iter(|| {
            names
                .iter()
                .filter(|&&n| m.translate(n).outcome.is_ok())
                .count()
        });
    });
    g.finish();
}

fn bench_two_level(c: &mut Criterion) {
    let names = names();
    let costs = MapCosts::for_core_cycle(Cycles::from_micros(1));
    let mut g = c.benchmark_group("two_level_translate_100k");
    for tlb in [0usize, 8, 44] {
        g.bench_with_input(BenchmarkId::from_parameter(tlb), &names, |b, names| {
            let mut m = TwoLevelMap::new(8, 512, 6, tlb, AssocPolicy::Lru, costs);
            for s in 0..8u32 {
                m.create_segment(SegId(s), 512).expect("fits");
                for p in 0..8 {
                    m.map_page(SegId(s), p, FrameNo(u64::from(s) * 8 + p))
                        .expect("page");
                }
            }
            b.iter(|| {
                names
                    .iter()
                    .filter(|&&n| {
                        let seg = SegId((n.value() / 512) as u32 % 8);
                        let off = n.value() % 512;
                        m.translate_pair(seg, off).outcome.is_ok()
                    })
                    .count()
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_simple_devices, bench_two_level
}
criterion_main!(benches);
