//! Probe-layer overhead benches.
//!
//! The probe trait is monomorphized: with `NullProbe` every emission
//! site must const-fold away (`is_enabled()` is a constant `false`), so
//! `run` — which routes through the probed code paths — must cost the
//! same as it did before the probe layer existed. The `null_probe`
//! group measures that directly against an attached `CountingProbe`,
//! on the linear paged machine's hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use dsa_core::access::ProgramOp;
use dsa_machines::presets::atlas;
use dsa_machines::report::Machine;
use dsa_probe::CountingProbe;
use dsa_trace::allocstream::SizeDist;
use dsa_trace::program::ProgramCfg;
use dsa_trace::rng::Rng64;

fn program() -> Vec<ProgramOp> {
    ProgramCfg {
        segments: 24,
        seg_sizes: SizeDist::Exponential {
            mean: 500.0,
            cap: 3000,
        },
        touches: 8_000,
        phase_set: 4,
        phase_len: 300,
        write_fraction: 0.3,
        resize_prob: 0.05,
        advice_accuracy: None,
        wild_touch_prob: 0.0,
        compute_between: 0,
    }
    .generate(&mut Rng64::new(4))
    .ops
}

fn bench_null_probe_overhead(c: &mut Criterion) {
    let ops = program();
    let mut g = c.benchmark_group("null_probe");
    g.bench_function("plain_run", |b| {
        b.iter(|| {
            let mut m = atlas();
            m.run(&ops).expect("runs").faults
        });
    });
    g.bench_function("run_with_null_probe", |b| {
        b.iter(|| {
            let mut m = atlas();
            m.run_with(&ops, &mut dsa_probe::NullProbe)
                .expect("runs")
                .faults
        });
    });
    g.bench_function("run_with_counting_probe", |b| {
        b.iter(|| {
            let mut m = atlas();
            let mut probe = CountingProbe::new();
            m.run_with(&ops, &mut probe).expect("runs").faults
        });
    });
    g.finish();
}

criterion_group!(benches, bench_null_probe_overhead);
criterion_main!(benches);
