//! Criterion benches for the composed machines (E9 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsa_core::access::ProgramOp;
use dsa_machines::presets::{all_machines, atlas, b5000, m44_44x, model67, multics};
use dsa_machines::report::Machine;
use dsa_trace::allocstream::SizeDist;
use dsa_trace::program::ProgramCfg;
use dsa_trace::rng::Rng64;

fn program() -> Vec<ProgramOp> {
    ProgramCfg {
        segments: 24,
        seg_sizes: SizeDist::Exponential {
            mean: 500.0,
            cap: 3000,
        },
        touches: 8_000,
        phase_set: 4,
        phase_len: 300,
        write_fraction: 0.3,
        resize_prob: 0.05,
        advice_accuracy: None,
        wild_touch_prob: 0.0,
        compute_between: 0,
    }
    .generate(&mut Rng64::new(4))
    .ops
}

fn bench_each_machine(c: &mut Criterion) {
    let ops = program();
    let mut g = c.benchmark_group("machine_run_8k_touches");
    type Factory = Box<dyn Fn() -> Box<dyn Machine>>;
    let factories: Vec<(&str, Factory)> = vec![
        ("atlas", Box::new(|| Box::new(atlas()))),
        ("m44", Box::new(|| Box::new(m44_44x()))),
        ("b5000", Box::new(|| Box::new(b5000()))),
        ("multics", Box::new(|| Box::new(multics()))),
        ("model67", Box::new(|| Box::new(model67()))),
    ];
    for (name, factory) in &factories {
        g.bench_with_input(BenchmarkId::from_parameter(*name), &ops, |b, ops| {
            b.iter(|| {
                let mut m = factory();
                m.run(ops).expect("runs").faults
            });
        });
    }
    g.finish();
}

fn bench_survey(c: &mut Criterion) {
    let ops = program();
    c.bench_function("survey_all_seven", |b| {
        b.iter(|| {
            all_machines()
                .into_iter()
                .map(|mut m| m.run(&ops).expect("runs").faults)
                .sum::<u64>()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_each_machine, bench_survey
}
criterion_main!(benches);
