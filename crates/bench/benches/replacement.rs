//! Criterion benches for the replacement policies (E4 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsa_core::ids::PageNo;
use dsa_paging::paged::PagedMemory;
use dsa_paging::replacement::atlas::AtlasLearning;
use dsa_paging::replacement::clock::ClockRepl;
use dsa_paging::replacement::fifo::FifoRepl;
use dsa_paging::replacement::lru::LruRepl;
use dsa_paging::replacement::min::MinRepl;
use dsa_paging::replacement::nru::ClassRandomRepl;
use dsa_paging::replacement::random::RandomRepl;
use dsa_paging::replacement::ws::working_set_sim;
use dsa_paging::replacement::Replacer;
use dsa_trace::refstring::RefStringCfg;
use dsa_trace::rng::Rng64;

const FRAMES: usize = 24;

fn trace() -> Vec<PageNo> {
    RefStringCfg::LruStack {
        pages: 64,
        theta: 0.9,
    }
    .generate_pages(30_000, &mut Rng64::new(2))
}

fn bench_policies(c: &mut Criterion) {
    let trace = trace();
    let mut g = c.benchmark_group("paging_30k_refs");
    type Factory = Box<dyn Fn() -> Box<dyn Replacer>>;
    let make: Vec<(&str, Factory)> = vec![
        ("lru", Box::new(|| Box::new(LruRepl::new()))),
        ("fifo", Box::new(|| Box::new(FifoRepl::new()))),
        ("clock", Box::new(move || Box::new(ClockRepl::new(FRAMES)))),
        ("random", Box::new(|| Box::new(RandomRepl::new(7)))),
        (
            "class-random",
            Box::new(|| Box::new(ClassRandomRepl::new(7, 8))),
        ),
        ("atlas", Box::new(|| Box::new(AtlasLearning::new()))),
    ];
    for (name, factory) in &make {
        g.bench_with_input(BenchmarkId::from_parameter(*name), &trace, |b, tr| {
            b.iter(|| {
                let mut mem = PagedMemory::new(FRAMES, factory());
                mem.run_pages(tr).expect("no pinning").faults
            });
        });
    }
    // MIN includes oracle construction, measured separately.
    g.bench_with_input(
        BenchmarkId::from_parameter("min+oracle"),
        &trace,
        |b, tr| {
            b.iter(|| {
                let mut mem = PagedMemory::new(FRAMES, Box::new(MinRepl::new(tr)));
                mem.run_pages(tr).expect("no pinning").faults
            });
        },
    );
    g.finish();
}

fn bench_working_set(c: &mut Criterion) {
    let trace = trace();
    c.bench_function("working_set_tau100_30k_refs", |b| {
        b.iter(|| working_set_sim(&trace, 100).faults);
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_policies, bench_working_set
}
criterion_main!(benches);
