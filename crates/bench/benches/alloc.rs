//! Criterion benches for the variable-unit allocators (E5/E7 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsa_core::access::AllocEvent;
use dsa_freelist::buddy::BuddyAllocator;
use dsa_freelist::compaction::compact;
use dsa_freelist::freelist::{FreeListAllocator, Placement};
use dsa_freelist::rice::RiceAllocator;
use dsa_trace::allocstream::{AllocStreamCfg, SizeDist};
use dsa_trace::rng::Rng64;

fn stream() -> Vec<AllocEvent> {
    AllocStreamCfg {
        sizes: SizeDist::Exponential {
            mean: 80.0,
            cap: 2000,
        },
        mean_lifetime: 300.0,
        target_live_words: 26_000,
    }
    .generate(20_000, &mut Rng64::new(1))
}

fn drive_freelist(policy: Placement, events: &[AllocEvent]) -> u64 {
    let mut a = FreeListAllocator::new(32_768, policy);
    let mut failures = 0;
    let mut dropped = std::collections::HashSet::new();
    for e in events {
        match *e {
            AllocEvent::Alloc(r) => {
                if a.alloc(r.id, r.size).is_err() {
                    failures += 1;
                    dropped.insert(r.id);
                }
            }
            AllocEvent::Free { id } => {
                if !dropped.remove(&id) {
                    a.free(id).expect("live");
                }
            }
        }
    }
    failures
}

fn bench_placement(c: &mut Criterion) {
    let events = stream();
    let mut g = c.benchmark_group("freelist_churn_20k_events");
    for policy in [
        Placement::FirstFit,
        Placement::NextFit,
        Placement::BestFit,
        Placement::WorstFit,
        Placement::TwoEnds { threshold: 256 },
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &events,
            |b, ev| {
                b.iter(|| drive_freelist(policy, ev));
            },
        );
    }
    g.finish();
}

fn bench_rice_and_buddy(c: &mut Criterion) {
    let events = stream();
    c.bench_function("rice_churn_20k_events", |b| {
        b.iter(|| {
            let mut a = RiceAllocator::new(32_768);
            let mut dropped = std::collections::HashSet::new();
            for e in &events {
                match *e {
                    AllocEvent::Alloc(r) => {
                        if a.alloc(r.id, r.size, r.id).is_err() {
                            dropped.insert(r.id);
                        }
                    }
                    AllocEvent::Free { id } => {
                        if !dropped.remove(&id) {
                            a.free(id).expect("live");
                        }
                    }
                }
            }
            a.chain_len()
        });
    });
    c.bench_function("buddy_churn_20k_events", |b| {
        b.iter(|| {
            let mut a = BuddyAllocator::new(15);
            let mut dropped = std::collections::HashSet::new();
            for e in &events {
                match *e {
                    AllocEvent::Alloc(r) => {
                        if a.alloc(r.id, r.size).is_err() {
                            dropped.insert(r.id);
                        }
                    }
                    AllocEvent::Free { id } => {
                        if !dropped.remove(&id) {
                            a.free(id).expect("live");
                        }
                    }
                }
            }
            a.free_words()
        });
    });
}

fn bench_compaction(c: &mut Criterion) {
    c.bench_function("compact_200_blocks", |b| {
        b.iter_with_setup(
            || {
                let mut a = FreeListAllocator::new(65_536, Placement::FirstFit);
                for i in 0..400u64 {
                    a.alloc(i, 128).expect("fits");
                }
                for i in (0..400u64).step_by(2) {
                    a.free(i).expect("live");
                }
                a
            },
            |mut a| {
                let r = compact(&mut a, |_, _, _, _| {});
                assert_eq!(r.blocks_moved, 200);
                a
            },
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_placement, bench_rice_and_buddy, bench_compaction
}
criterion_main!(benches);
