//! End-of-run metrics emission shared by every experiment binary.
//!
//! Each `exp_*` binary builds a [`RunMetrics`], registers whatever it
//! already prints (result tables, probe counters, distributions), and
//! calls [`RunMetrics::emit`] last. If the user passed
//! `--metrics-out PATH` the registered series are written there —
//! JSON for a `.json` path, Prometheus text exposition otherwise —
//! and nothing is written at all when the flag is absent, so the
//! binaries' stdout stays byte-identical to the golden gauntlet.
//!
//! Registration order is the serialization order, and every binary
//! registers in its deterministic print order, so the emitted file is
//! byte-stable across runs and across `--jobs` settings.

use dsa_metrics::{Histogram, Table};
use dsa_probe::CountingProbe;
use dsa_telemetry::{FlightRecorder, TelemetrySnapshot};

/// The per-run metrics registry behind `--metrics-out`.
pub struct RunMetrics {
    snapshot: TelemetrySnapshot,
}

impl RunMetrics {
    /// A registry namespaced by the binary name (sanitized to the
    /// Prometheus alphabet by the exporter).
    #[must_use]
    pub fn new(bin: &str) -> RunMetrics {
        RunMetrics {
            snapshot: TelemetrySnapshot::new(bin),
        }
    }

    /// Registers every numeric cell of a printed result table as a
    /// gauge labelled by the table's first column.
    pub fn table(&mut self, name: &str, table: &Table) {
        self.snapshot.table(name, table);
    }

    /// Registers the standard counter set of a [`CountingProbe`].
    pub fn probe(&mut self, probe: &CountingProbe, labels: &[(&str, &str)]) {
        self.snapshot.counting_probe(probe, labels);
    }

    /// Registers one counter.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.snapshot.counter(name, help, labels, value);
    }

    /// Registers one gauge.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.snapshot.gauge(name, help, labels, value);
    }

    /// Registers one distribution.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.snapshot.histogram(name, help, labels, h);
    }

    /// The underlying snapshot, for deep wiring (e.g. the arena
    /// service exporting its sharded histograms directly).
    pub fn snapshot(&mut self) -> &mut TelemetrySnapshot {
        &mut self.snapshot
    }

    /// Writes the registry to the `--metrics-out` path, if one was
    /// given on the command line. No flag, no file, no output.
    pub fn emit(&self) {
        let Some(path) = dsa_exec::cli::metrics_out_from_env() else {
            return;
        };
        match self.snapshot.write(&path) {
            Ok(()) => eprintln!(
                "metrics: wrote {} series to {}",
                self.snapshot.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("metrics: cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
}

/// The flight recorder requested by `--flight-recorder N`, if any.
/// Every binary calls this once and tees the returned recorder's
/// handles into its probe sinks; with no flag there is no recorder
/// and the tee leg const-folds away behind `NullProbe`-style checks.
#[must_use]
pub fn flight_recorder_from_env() -> Option<FlightRecorder> {
    dsa_exec::cli::flight_recorder_from_env().map(FlightRecorder::new)
}
