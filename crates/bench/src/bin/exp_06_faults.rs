//! E6b — degradation curves under injected storage faults.
//!
//! The paper's systems lean on "special hardware facilities" that trap
//! what software cannot foresee: transfer errors on the drum channel,
//! frames whose storage has gone bad, exhaustion the allocator must
//! survive. This experiment injects exactly those failures at
//! controlled rates into three machines — one per mapping family — and
//! measures what graceful recovery costs: throughput and fault-service
//! latency versus injected transfer-error rate, plus what the recovery
//! machinery did (retries, quarantines, degradation rungs).
//!
//! Every run is checked for exact reconciliation: the `RecoveryReport`
//! the machine returns must match, count for count, the
//! `FaultInjected`/`RetryAttempt`/`FrameQuarantined`/`DegradationStep`
//! events the probe observed.

use dsa_bench::workloads::survey_program_cfg;
use dsa_core::access::ProgramOp;
use dsa_core::clock::Cycles;
use dsa_exec::{jobs_from_env, product2, SimGrid};
use dsa_faults::FaultConfig;
use dsa_machines::presets::{atlas, b5000, multics};
use dsa_machines::MachineReport;
use dsa_metrics::table::Table;
use dsa_probe::{CountingProbe, Event, LatencyProbe, Probe};
use dsa_trace::rng::Rng64;

/// Feeds one event stream to both sinks.
struct Tee {
    counts: CountingProbe,
    latency: LatencyProbe,
}

impl Probe for Tee {
    fn record(&mut self, event: &Event) {
        self.counts.record(event);
        self.latency.record(event);
    }
}

/// The injected failure mix at a given transfer-error rate: bad frames
/// at a tenth of the rate, channel stalls at the rate itself.
fn config_at(rate: f64) -> FaultConfig {
    if rate == 0.0 {
        FaultConfig::off()
    } else {
        FaultConfig::transfer_errors(rate)
            .with_bad_frames(rate / 10.0)
            .with_channel_delays(rate, Cycles::from_micros(20))
    }
}

/// Asserts that the recovery report and the probe's totals are two
/// views of one execution.
fn assert_reconciles(name: &str, rate: f64, r: &MachineReport, c: &CountingProbe) {
    let rec = &r.recovery;
    let pairs: [(&str, u64, u64); 9] = [
        ("faults_injected", c.faults_injected, rec.faults_injected),
        (
            "transfer_errors",
            c.transfer_errors_injected,
            rec.transfer_errors,
        ),
        ("bad_frames", c.bad_frames_injected, rec.bad_frames),
        (
            "channel_delays",
            c.channel_delays_injected,
            rec.channel_delays,
        ),
        (
            "forced_alloc_failures",
            c.alloc_failures_injected,
            rec.forced_alloc_failures,
        ),
        ("retry_attempts", c.retry_attempts, rec.retry_attempts),
        (
            "frames_quarantined",
            c.frames_quarantined,
            rec.frames_quarantined,
        ),
        (
            "degradation_steps",
            c.degradation_steps,
            rec.degradation_steps,
        ),
        ("shed_loads", c.shed_loads, rec.shed_loads),
    ];
    for (field, probe_total, report_total) in pairs {
        assert_eq!(
            probe_total, report_total,
            "{name} @ rate {rate}: probe/report disagree on {field}"
        );
    }
    assert_eq!(c.touches, r.touches, "{name} @ rate {rate}: touches");
    assert_eq!(c.faults, r.faults, "{name} @ rate {rate}: faults");
}

fn run_one(name: &str, rate: f64, ops: &[ProgramOp]) -> Vec<String> {
    let seed = 6;
    let mut tee = Tee {
        counts: CountingProbe::new(),
        latency: LatencyProbe::new(),
    };
    let report = match name {
        "ATLAS" => atlas()
            .with_fault_injection(seed, config_at(rate))
            .run_with(ops, &mut tee),
        "B5000" => b5000()
            .with_fault_injection(seed, config_at(rate))
            .run_with(ops, &mut tee),
        "MULTICS" => multics()
            .with_fault_injection(seed, config_at(rate))
            .run_with(ops, &mut tee),
        other => unreachable!("unknown preset {other}"),
    };
    let r = report.unwrap_or_else(|e| panic!("{name} @ rate {rate}: {e}"));
    assert_reconciles(name, rate, &r, &tee.counts);

    // Throughput: touches per millisecond of machine-busy time (fetch
    // waits plus addressing); the denominator is what faults inflate.
    let busy_ns = (r.fetch_time + r.map_time).as_nanos().max(1);
    let throughput = r.touches as f64 * 1e6 / busy_ns as f64;
    let service = tee.latency.fault_service();
    vec![
        name.to_owned(),
        format!("{rate:.0e}"),
        r.touches.to_string(),
        r.faults.to_string(),
        r.recovery.transfer_errors.to_string(),
        r.recovery.retry_attempts.to_string(),
        r.recovery.frames_quarantined.to_string(),
        r.recovery.degradation_steps.to_string(),
        r.alloc_failures.to_string(),
        format!("{throughput:.1}"),
        service.quantile(0.5).to_string(),
        service.quantile(0.95).to_string(),
    ]
}

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_06_faults", &[]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_06_faults");
    println!("E6b: graceful degradation under injected storage faults\n");
    let mut rng = Rng64::new(6);
    let program = survey_program_cfg().generate(&mut rng);
    println!(
        "workload: {} touches; fault mix at transfer-error rate r: \
         transfer errors r, bad frames r/10, channel stalls r (20 us)\n",
        program.touch_count()
    );

    let mut results = Table::new(&[
        "machine",
        "rate",
        "touches",
        "faults",
        "xfer errs",
        "retries",
        "quarantined",
        "degradations",
        "alloc fails",
        "touches/ms busy",
        "svc p50 ns",
        "svc p95 ns",
    ])
    .with_title("degradation curves (one row per machine x error rate)");

    // Each (machine, rate) pair is an independent injected run; the
    // per-cell fault RNG is seeded inside run_one, so cells are pure.
    let grid = SimGrid::new(product2(
        &["ATLAS", "B5000", "MULTICS"],
        &[0.0, 1e-4, 1e-3, 1e-2],
    ));
    for row in grid.run(jobs_from_env(), |_, &(name, rate)| {
        run_one(name, rate, &program.ops)
    }) {
        results.row_owned(row);
    }
    println!("{results}");
    metrics.table("degradation", &results);
    metrics.emit();

    // Postmortem demonstration: with `--flight-recorder N`, replay the
    // worst injected cell with a recorder handle teed into the probes
    // and dump the tail of the event stream — exactly what a
    // production fault report would attach.
    if let Some(recorder) = dsa_bench::metrics::flight_recorder_from_env() {
        let mut tee = Tee {
            counts: CountingProbe::new(),
            latency: LatencyProbe::new(),
        };
        let mut sink = dsa_probe::Tee(&mut tee, recorder.handle());
        let report = atlas()
            .with_fault_injection(6, config_at(1e-2))
            .run_with(&program.ops, &mut sink)
            .expect("degrades gracefully but completes");
        assert!(report.recovery.faults_injected > 0, "1e-2 always injects");
        println!(
            "\npostmortem of ATLAS @ 1e-2 ({} faults injected):\n{}",
            report.recovery.faults_injected,
            recorder.postmortem(16)
        );
    }
    println!(
        "things to see: at 1e-4 the retry machinery is invisible in\n\
         throughput; at 1e-2 every machine still completes the workload —\n\
         no panic, no abort — but pays for it in fault-service latency\n\
         (each retry re-waits the transfer plus backoff) and, on the\n\
         paged machines, in quarantined frames permanently shrinking\n\
         working storage. every row reconciled its RecoveryReport\n\
         against the probe's event totals exactly."
    );
}
