//! E11 — Appendix A.6: the MULTICS two page sizes.
//!
//! "Unlike the B5000 system, the segment is not the unit of allocation.
//! Instead allocation is performed by a variant of the standard paging
//! technique, since in fact two different page sizes (64 and 1024 words)
//! are used. Thus, at the cost of somewhat added complexity to the
//! placement and replacement strategies, the loss in storage utilization
//! caused by fragmentation occurring within pages can be reduced."
//!
//! For segment populations of different shapes, we compare in-page waste
//! and management complexity (page-table entries to be placed and
//! replaced) for uniform 64, uniform 1024, and the 64+1024 mix.

use dsa_core::ids::Words;
use dsa_exec::{jobs_from_env, SimGrid};
use dsa_freelist::frag::{dual_size_waste, internal_waste};
use dsa_metrics::table::Table;
use dsa_trace::allocstream::SizeDist;
use dsa_trace::rng::Rng64;

fn mix_pages(r: Words, small: Words, large: Words) -> u64 {
    let bulk = r / large;
    let tail = r - bulk * large;
    bulk + tail.div_ceil(small)
}

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_11_multics_dual", &[]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_11_multics_dual");
    println!("E11: the MULTICS dual page size (64 + 1024 words)\n");
    let populations: Vec<(&str, SizeDist)> = vec![
        (
            "small segments (exp mean 200)",
            SizeDist::Exponential {
                mean: 200.0,
                cap: 4096,
            },
        ),
        (
            "medium segments (exp mean 1500)",
            SizeDist::Exponential {
                mean: 1500.0,
                cap: 20_000,
            },
        ),
        (
            "large segments (exp mean 8000)",
            SizeDist::Exponential {
                mean: 8000.0,
                cap: 100_000,
            },
        ),
    ];
    // Each segment population is an independent cell: sample it from the
    // fixed seed, tally all three schemes, return the finished table.
    let grid = SimGrid::new(populations);
    for (pi, table) in grid
        .run(jobs_from_env(), |_, (name, dist)| {
            let mut rng = Rng64::new(11);
            let segments: Vec<Words> = (0..3_000).map(|_| dist.sample(&mut rng)).collect();
            let data: Words = segments.iter().sum();
            let mut t = Table::new(&[
                "scheme",
                "in-page waste",
                "waste % of data",
                "page-table entries",
            ])
            .with_title(&format!("{name}: 3000 segments, {data} data words"));
            let w64: Words = segments.iter().map(|&s| internal_waste(s, 64)).sum();
            let p64: u64 = segments.iter().map(|&s| s.div_ceil(64)).sum();
            let w1024: Words = segments.iter().map(|&s| internal_waste(s, 1024)).sum();
            let p1024: u64 = segments.iter().map(|&s| s.div_ceil(1024)).sum();
            let wmix: Words = segments.iter().map(|&s| dual_size_waste(s, 64, 1024)).sum();
            let pmix: u64 = segments.iter().map(|&s| mix_pages(s, 64, 1024)).sum();
            for (scheme, waste, pages) in [
                ("uniform 64", w64, p64),
                ("uniform 1024", w1024, p1024),
                ("64 + 1024 mix", wmix, pmix),
            ] {
                t.row_owned(vec![
                    scheme.to_owned(),
                    waste.to_string(),
                    format!("{:.2}%", waste as f64 / data as f64 * 100.0),
                    pages.to_string(),
                ]);
            }
            t
        })
        .into_iter()
        .enumerate()
    {
        println!("{table}");
        metrics.table(&format!("population_{pi}"), &table);
    }
    metrics.emit();
    println!(
        "uniform 64 has tiny waste but an order of magnitude more page\n\
         table entries to manage (and, per E6, more fetch latencies);\n\
         uniform 1024 wastes half a kiloword per segment tail; the mix\n\
         gets 64-level waste at nearly 1024-level table size — the added\n\
         'complexity to the placement and replacement strategies' buys\n\
         exactly what A.6 claims."
    );
}
