//! E2 — Figure 3: the space-time product under demand paging.
//!
//! A single demand-paged program alternately executes and waits for
//! pages; while it waits it still occupies working storage, so its
//! space-time product grows with the page-fetch time. Multiprogramming
//! does not shrink any one program's space-time product, but it
//! overlaps the waits so the *processor* stays busy — the paper's
//! resolution of the Figure 3 danger ("demand paging however can be
//! quite effective ... when the time taken to fetch a page is very
//! small", and overlap "will certainly be the case when ... a
//! sufficient reserve of programs can be kept in working storage").

use dsa_core::clock::Cycles;
use dsa_core::ids::JobId;
use dsa_exec::{jobs_from_env, SimGrid};
use dsa_metrics::table::Table;
use dsa_paging::replacement::lru::LruRepl;
use dsa_sched::sim::{JobSpec, MultiprogramSim, SimConfig};
use dsa_trace::refstring::RefStringCfg;
use dsa_trace::rng::Rng64;

fn job_trace(seed: u64) -> Vec<dsa_core::ids::PageNo> {
    let cfg = RefStringCfg::LruStack {
        pages: 64,
        theta: 1.4,
    };
    cfg.generate_pages(20_000, &mut Rng64::new(seed))
}

fn sim_for(fetch: Cycles, jobs: usize, channels: Option<usize>) -> MultiprogramSim {
    let cfg = SimConfig {
        instr_time: Cycles::from_micros(10),
        fetch_time: fetch,
        page_size: 512,
        quantum_refs: 100,
        fetch_channels: channels,
    };
    let specs = (0..jobs)
        .map(|i| JobSpec {
            id: JobId(i as u32),
            trace: job_trace(100 + i as u64),
            frames: 32,
            replacer: Box::new(LruRepl::new()),
        })
        .collect();
    MultiprogramSim::new(cfg, specs)
}

fn run_with_channels(fetch: Cycles, jobs: usize, channels: Option<usize>) -> (f64, f64, f64) {
    let r = sim_for(fetch, jobs, channels).run().expect("no pinning");
    let st = r.total_space_time();
    let per_job = st.total_word_millis() / jobs as f64;
    (r.cpu_utilization(), st.waiting_fraction(), per_job)
}

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_02_space_time", &[]);
    let workers = jobs_from_env();
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_02_space_time");
    println!("E2: storage utilization with demand paging (Figure 3)\n");
    let devices = [
        ("fast store (20 us)", Cycles::from_micros(20)),
        ("drum (8 ms)", Cycles::from_millis(8)),
        ("disk (165 ms)", Cycles::from_millis(165)),
    ];

    let mut t = Table::new(&[
        "backing store",
        "jobs",
        "cpu util",
        "wait share of space-time",
        "space-time/job (word-ms)",
    ])
    .with_title("64-page program, 32 frames, LRU, 10 us/ref");
    // One multiprogramming-level sweep per backing store, on the sched
    // crate's parallel sweep entry point.
    let levels = [1usize, 2, 4, 8];
    for (name, fetch) in devices {
        let reports = dsa_sched::sweep::level_sweep(workers, levels.to_vec(), |jobs| {
            sim_for(fetch, jobs, None)
        });
        for (&jobs, r) in levels.iter().zip(reports) {
            let r = r.expect("no pinning");
            let st = r.total_space_time();
            t.row_owned(vec![
                name.to_owned(),
                jobs.to_string(),
                format!("{:.1}%", r.cpu_utilization() * 100.0),
                format!("{:.1}%", st.waiting_fraction() * 100.0),
                format!("{:.1}", st.total_word_millis() / jobs as f64),
            ]);
        }
    }
    println!("{t}");
    metrics.table("space_time", &t);

    // The fine print of the overlap argument: it assumes "extra page
    // transmission" capacity. With one drum channel the fetches queue
    // and multiprogramming's rescue saturates early.
    let mut t = Table::new(&["channels", "cpu util (8 jobs)", "wait share"])
        .with_title("drum, 8 jobs, limited transfer channels");
    let grid = SimGrid::new(vec![
        ("1", Some(1)),
        ("2", Some(2)),
        ("4", Some(4)),
        ("ample", None),
    ]);
    for row in grid.run(workers, |_, &(label, channels)| {
        let (util, wait, _) = run_with_channels(Cycles::from_millis(8), 8, channels);
        vec![
            label.to_owned(),
            format!("{:.1}%", util * 100.0),
            format!("{:.1}%", wait * 100.0),
        ]
    }) {
        t.row_owned(row);
    }
    println!("{t}");
    metrics.table("channel_limits", &t);
    metrics.emit();
    println!(
        "reading the table: with a slow backing store a lone program's\n\
         space-time is almost all wait (Figure 3's shaded area) and the\n\
         processor idles; adding programs overlaps the waits and restores\n\
         processor utilization, while a very fast store makes even the\n\
         lone program's wait share small."
    );
}
