//! E8 — §Predictive Information: what is advice worth?
//!
//! "The authors' opinion is that the general level of performance of the
//! system should not be dependent on the extent and accuracy of
//! predictive information supplied by users. The system should in
//! general achieve acceptable performance without such user-supplied
//! information." The M44/44X supplied exactly the instrument to test
//! this (its two advice instructions, A.2), but "as yet very little use
//! has been made of these facilities, and thus it is not known how
//! effective they might be" — so we measure it.
//!
//! The same phase-structured program runs on the M44/44X preset with no
//! advice, and with will-need/wont-need directives of accuracy 0%, 25%,
//! 50%, 75% and 100% (an inaccurate directive names a random wrong
//! segment).

use dsa_exec::{jobs_from_env, product2, SimGrid};
use dsa_machines::presets::m44_44x;
use dsa_machines::report::Machine;
use dsa_metrics::table::Table;
use dsa_trace::allocstream::SizeDist;
use dsa_trace::planner::{AdvicePlanner, PlannerCfg};
use dsa_trace::program::ProgramCfg;
use dsa_trace::rng::Rng64;

fn program(accuracy: Option<f64>, seed: u64) -> Vec<dsa_core::access::ProgramOp> {
    // Working storage on the M44 preset is 195 frames; size the program
    // so its phase sets fit but the whole program does not.
    ProgramCfg {
        segments: 64,
        seg_sizes: SizeDist::Exponential {
            mean: 8_000.0,
            cap: 12_000,
        },
        touches: 40_000,
        phase_set: 4,
        phase_len: 600,
        write_fraction: 0.3,
        resize_prob: 0.0,
        advice_accuracy: accuracy,
        wild_touch_prob: 0.0,
        compute_between: 0,
    }
    .generate(&mut Rng64::new(seed))
    .ops
}

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_08_advice", &[]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_08_advice");
    println!("E8: the value (and danger) of predictive information\n");
    let mut t = Table::new(&[
        "advice",
        "faults",
        "fault rate",
        "fetched words",
        "advice ops",
        "useful/prefetched",
        "fetch time",
    ])
    .with_title("M44/44X, 64 large segments, phase-structured touches");
    let cases: Vec<(String, Option<f64>)> = vec![
        ("none".to_owned(), None),
        ("0% accurate".to_owned(), Some(0.0)),
        ("25% accurate".to_owned(), Some(0.25)),
        ("50% accurate".to_owned(), Some(0.5)),
        ("75% accurate".to_owned(), Some(0.75)),
        ("100% accurate".to_owned(), Some(1.0)),
    ];
    let mut none_rate = 0.0;
    let mut best_rate = f64::MAX;
    const SEEDS: [u64; 5] = [8, 18, 28, 38, 48];
    let mut cases = cases;
    cases.push(("compiler (planned)".to_owned(), Some(-1.0)));
    // Every (advice regime, seed) pair is an independent run; the grid
    // puts the regime on the outer axis so grid order groups the seed
    // replicates of each regime together for the aggregation below.
    let accs: Vec<Option<f64>> = cases.iter().map(|&(_, acc)| acc).collect();
    let grid = SimGrid::new(product2(&accs, &SEEDS));
    let measured = grid.run(jobs_from_env(), |_, &(acc, seed)| {
        // accuracy -1.0 is the sentinel for exact compiler planning:
        // the whole-program analyser inserts the directives itself.
        let ops = if acc == Some(-1.0) {
            let raw = program(None, seed);
            AdvicePlanner::new(PlannerCfg {
                lead: 20,
                episode_gap: 300,
            })
            .plan(&raw)
        } else {
            program(acc, seed)
        };
        let mut m = m44_44x();
        let r = m.run(&ops).expect("m44 runs the workload");
        (
            r.faults,
            r.fault_rate(),
            r.fetched_words,
            r.advice_ops,
            r.fetch_time.as_nanos(),
            r.prefetches,
            r.useful_prefetches,
        )
    });
    for ((label, acc), replicates) in cases.into_iter().zip(measured.chunks(SEEDS.len())) {
        let mut faults = 0u64;
        let mut rate = 0.0;
        let mut fetched = 0u64;
        let mut advice_ops = 0u64;
        let mut fetch_ns = 0u64;
        let mut prefetches = 0u64;
        let mut useful = 0u64;
        for &(f, fr, fw, ao, ft, p, u) in replicates {
            faults += f;
            rate += fr;
            fetched += fw;
            advice_ops += ao;
            fetch_ns += ft;
            prefetches += p;
            useful += u;
        }
        let n = SEEDS.len() as u64;
        rate /= SEEDS.len() as f64;
        if acc.is_none() {
            none_rate = rate;
        }
        let _ = &none_rate;
        best_rate = best_rate.min(rate);
        t.row_owned(vec![
            label,
            (faults / n).to_string(),
            format!("{rate:.4}"),
            (fetched / n).to_string(),
            (advice_ops / n).to_string(),
            format!("{}/{}", useful / n, prefetches / n),
            dsa_core::clock::Cycles::from_nanos(fetch_ns / n).to_string(),
        ]);
    }
    println!("{t}");
    metrics.table("advice", &t);
    metrics.emit();
    println!(
        "the measured trade: fault rate falls monotonically with advice\n\
         accuracy (none {none_rate:.4} -> perfect {best_rate:.4}), but every\n\
         advised regime pays ~30-60% more backing-store traffic, and wrong\n\
         advice pays the traffic for nothing. the system already performs\n\
         acceptably with no advice at all — the authors' requirement — and\n\
         the compiler-planned row shows even exact whole-program analysis\n\
         lands in the same band as good user advice: prediction tunes, it\n\
         does not rescue."
    );
}
