//! E1 — Figures 1 & 2: artificial name contiguity via a block map.
//!
//! Demonstrates that a table-of-block-addresses mapping (Figure 2) makes
//! a set of scattered physical blocks behave as one contiguous run of
//! names (Figure 1): address arithmetic walks straight across block
//! boundaries, data written through names reads back intact even after
//! blocks are moved, and the price is one mapping-table reference per
//! access — compared against the cheaper addressing mechanisms.

use dsa_core::ids::{Name, PhysAddr};
use dsa_exec::{jobs_from_env, SimGrid};
use dsa_mapping::block_map::BlockMap;
use dsa_mapping::cost::MapCosts;
use dsa_mapping::relocation::{IdentityMap, RelocationLimit};
use dsa_mapping::AddressMap;
use dsa_metrics::table::Table;
use dsa_storage::memory::CoreMemory;
use dsa_trace::rng::Rng64;

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_01_artificial_contiguity", &[]);
    let jobs = jobs_from_env();
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_01_artificial_contiguity");
    println!("E1: artificial contiguity (Figures 1 and 2)\n");

    // A 64-name space of four 16-word blocks over a 256-word memory,
    // with the blocks deliberately scattered and out of order.
    let costs = MapCosts::for_core_cycle(dsa_core::clock::Cycles::from_micros(2));
    let mut map = BlockMap::new(4, 4, costs);
    let bases = [192u64, 32, 128, 64];
    for (i, &b) in bases.iter().enumerate() {
        map.map_block(i as u64, PhysAddr(b));
    }
    let mut mem = CoreMemory::new(256);

    // Write a recognizable sequence through *names* 0..64.
    for n in 0..64u64 {
        let t = map.translate(Name(n));
        mem.write(t.unwrap_addr(), 1000 + n).unwrap();
    }

    let mut t = Table::new(&["name", "block", "physical addr"])
        .with_title("name contiguity without address contiguity (block boundaries at 16)");
    for n in [0u64, 15, 16, 31, 32, 47, 48, 63] {
        let (block, _) = map.split(Name(n));
        let addr = map.translate(Name(n)).unwrap_addr();
        t.row_owned(vec![
            n.to_string(),
            block.to_string(),
            addr.value().to_string(),
        ]);
    }
    println!("{t}");
    metrics.table("contiguity", &t);

    // Address arithmetic across a block boundary.
    let a15 = map.translate(Name(15)).unwrap_addr();
    let a16 = map.translate(Name(16)).unwrap_addr();
    println!(
        "names 15,16 are contiguous; their addresses are {} and {} (gap {})\n",
        a15.value(),
        a16.value(),
        a16.value().abs_diff(a15.value() + 1)
    );

    // Verify every name reads back what was written, then move block 1
    // to a new frame (relocation invisible to names) and verify again.
    let verify = |map: &mut BlockMap, mem: &CoreMemory| {
        (0..64u64).all(|n| {
            let addr = map.translate(Name(n)).unwrap_addr();
            mem.read(addr).unwrap() == 1000 + n
        })
    };
    assert!(verify(&mut map, &mem));
    // Move block 1 from 32 to 0.
    mem.move_block(PhysAddr(32), PhysAddr(0), 16).unwrap();
    map.map_block(1, PhysAddr(0));
    assert!(verify(&mut map, &mem));
    println!("block 1 moved 32 -> 0: all 64 names still read back correctly\n");

    // The cost side: mean addressing overhead per access for each
    // mechanism on the same random access pattern.
    let mut rng = Rng64::new(1);
    let names: Vec<Name> = (0..100_000).map(|_| Name(rng.below(64))).collect();
    let mut t = Table::new(&["mechanism", "ns/access", "faults"])
        .with_title("addressing overhead (2 us core)");
    // Each device is an independent cell; the block map carries the
    // translation statistics it accumulated in the demonstration above,
    // so the devices move into the grid rather than being rebuilt.
    let identity = IdentityMap::new(64, costs);
    let reloc = RelocationLimit::new(PhysAddr(100), 64, costs);
    let grid = SimGrid::new(vec![
        std::sync::Mutex::new(Box::new(identity) as Box<dyn AddressMap + Send>),
        std::sync::Mutex::new(Box::new(reloc) as Box<dyn AddressMap + Send>),
        std::sync::Mutex::new(Box::new(map) as Box<dyn AddressMap + Send>),
    ]);
    for row in grid.run(jobs, |_, cell| {
        let mut d = cell.lock().expect("cell is never contended");
        for &n in &names {
            let _ = d.translate(n);
        }
        let s = d.stats();
        vec![
            d.label().to_owned(),
            format!("{:.0}", s.mean_overhead_nanos()),
            s.faults.to_string(),
        ]
    }) {
        t.row_owned(row);
    }
    println!("{t}");
    metrics.table("addressing_overhead", &t);
    metrics.emit();
    println!(
        "the block map buys artificial contiguity for one table reference\n\
         (a full core cycle) per access; the paper's remedy for that cost is\n\
         the associative memory measured in E3."
    );
}
