//! E20 — trace scale: streamed references in constant memory
//! (extension).
//!
//! The materializing generators cap every experiment at whatever `Vec`
//! fits in core; this binary is the existence proof that the streaming
//! path removes the cap. One seedable reference stream
//! (`dsa_trace::stream`) is cloned twice and drained once each through
//!
//! * a demand-paged LRU machine ([`PagedMemory::run_pages_iter`]) —
//!   O(frames) state, and
//! * the streaming Mattson engine
//!   ([`dsa_stackdist::streaming::StreamingLru`]) — O(distinct pages)
//!   state,
//!
//! so peak memory is a function of the page universe alone, never of
//! `--refs`. The two consumers then cross-check each other exactly:
//! the machine's fault count must equal the success function evaluated
//! at the machine's frame count — the streamed version of the
//! simulator/stack-distance parity the property tests pin.
//!
//! The run reports its own peak RSS (`VmHWM` from `/proc/self/status`)
//! and, under `--max-rss-mb N`, **fails** if the high-water mark
//! exceeds it — CI's constant-memory assertion. Wall-clock varies by
//! host, so this binary is not part of the golden gauntlet; the fault
//! counts and curve it prints are nevertheless deterministic.

use dsa_bench::metrics::RunMetrics;
use dsa_exec::cli;
use dsa_metrics::table::Table;
use dsa_paging::replacement::lru::LruRepl;
use dsa_paging::PagedMemory;
use dsa_stackdist::streaming::StreamingLru;
use dsa_trace::refstring::RefStringCfg;

/// The `--refs N` flag: how many references to stream (default 10⁷).
const REFS: cli::FlagSpec = cli::FlagSpec {
    name: "--refs",
    value: Some("N"),
    help: "references to stream through the machine and the curve (default: 10000000)",
};

/// The `--max-rss-mb N` flag: fail if peak RSS exceeds N MB.
const MAX_RSS_MB: cli::FlagSpec = cli::FlagSpec {
    name: "--max-rss-mb",
    value: Some("N"),
    help: "exit 1 if peak RSS (VmHWM) exceeds N MB — the constant-memory assertion",
};

/// The workload: hot/cold at a fixed page universe, so distinct pages
/// (and thus every consumer's state) are bounded regardless of length.
const HOT: u64 = 256;
const COLD: u64 = 16_128;
const PAGES: u64 = HOT + COLD;
const FRAMES: usize = 512;

/// Peak resident set size in KB from `/proc/self/status` (`VmHWM`),
/// `None` where the proc filesystem is absent.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    cli::enforce_standard_flags("exp_20_trace_scale", &[REFS, MAX_RSS_MB]);
    let refs = cli::count_flag_from_env(REFS).unwrap_or(10_000_000);
    let max_rss_mb = cli::count_flag_from_env(MAX_RSS_MB);
    let mut metrics = RunMetrics::new("exp_20_trace_scale");
    println!("E20: trace scale — streamed references, constant memory\n");
    println!(
        "{refs} references, hot/cold over {PAGES} pages (hot {HOT}), streamed —\n\
         never materialized — through an LRU machine of {FRAMES} frames and the\n\
         streaming Mattson engine; both consumers' state is bounded by the page\n\
         universe, so peak RSS must not grow with --refs\n"
    );

    let cfg = RefStringCfg::HotCold {
        hot: HOT,
        cold: COLD,
        p_hot: 0.85,
    };
    let stream = cfg.stream(0.0, 0x20_5CA1E).pages();

    // Consumer 1: the demand-paged machine, O(frames) state.
    let mut machine = PagedMemory::new(FRAMES, Box::new(LruRepl::new()));
    let stats = machine
        .run_pages_iter(stream.clone().take(refs))
        .expect("no pinning, so no core errors");
    machine.check_invariants();

    // Consumer 2: the streaming stack-distance curve, O(pages) state.
    let mut curve = StreamingLru::new();
    for p in stream.take(refs) {
        curve.record(p);
    }
    let success = curve.success();

    // The cross-check: two independent streamed consumers, one truth.
    assert_eq!(
        stats.faults,
        success.faults(FRAMES),
        "machine faults must equal the success function at {FRAMES} frames"
    );
    assert_eq!(stats.references, success.references());

    let mut t = Table::new(&["frames", "faults", "fault rate"])
        .with_title("streamed LRU success function (exact, from one pass)");
    for frames in [64usize, 128, 256, FRAMES, 1024, PAGES as usize] {
        t.row_owned(vec![
            frames.to_string(),
            success.faults(frames).to_string(),
            format!("{:.6}", success.fault_rate(frames)),
        ]);
    }
    println!("{t}");
    metrics.table("streamed_curve", &t);

    println!(
        "machine: {} faults at {FRAMES} frames — matches the curve exactly",
        stats.faults
    );
    println!(
        "distinct pages: {} (compulsory faults {})",
        curve.distinct_pages(),
        success.compulsory()
    );

    match peak_rss_kb() {
        Some(kb) => {
            println!("peak RSS (VmHWM): {} MB", kb / 1024);
            if let Some(limit) = max_rss_mb {
                if kb > limit as u64 * 1024 {
                    eprintln!(
                        "peak RSS {} KB exceeds --max-rss-mb {limit} — streaming is not \
                         constant-memory",
                        kb
                    );
                    std::process::exit(1);
                }
                println!("within --max-rss-mb {limit}: constant-memory assertion holds");
            }
        }
        None => {
            println!("peak RSS: unavailable (no /proc/self/status on this host)");
            if max_rss_mb.is_some() {
                eprintln!("--max-rss-mb requires /proc/self/status");
                std::process::exit(1);
            }
        }
    }
    metrics.emit();
}
