//! E21 — a real allocator: size-class slabs, per-thread magazines,
//! and the system allocator as the yardstick (extension).
//!
//! The seed experiments model allocation (probe counts, placement
//! quality); this binary runs the *operational* allocator built on the
//! same substrate — [`DsaHeap`]'s size-class slabs over a
//! `ShardedArena` region, fronted by Bonwick-style per-thread
//! magazine caches ([`ThreadCache`]) — and races it against
//! `std::alloc::System` on the same mixed-size churn.
//!
//! Three phases:
//!
//! 1. **Churn** — a sliding window of live objects, random alloc/free
//!    with jemalloc-ladder sizes plus an occasional large block, timed
//!    for `System`, the no-magazine slab path (`alloc_direct`), and
//!    the magazine path. Same seed, same op sequence, per backend.
//! 2. **Producer/consumer** — one thread allocates, another frees, so
//!    every object crosses caches and returns home through the depot.
//! 3. **Depth sweep** — small-object churn at magazine depths 1..64,
//!    showing the depot amortization the depth buys.
//!
//! After every phase the heap's books are reconciled
//! ([`DsaHeap::check_reconciliation`]): the telemetry ledger must
//! equal backend-live words exactly, magazines included. Wall-clock
//! numbers vary by host, so this binary is not part of the golden
//! gauntlet; the accounting assertions are what must always hold.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::mpsc;
use std::time::Instant;

use dsa_alloc::{DsaHeap, HeapConfig, ThreadCache, MAG_MAX};
use dsa_bench::metrics::RunMetrics;
use dsa_exec::cli;
use dsa_metrics::table::Table;
use dsa_trace::rng::Rng64;

/// The `--ops N` flag: churn operations per timed phase.
const OPS: cli::FlagSpec = cli::FlagSpec {
    name: "--ops",
    value: Some("N"),
    help: "churn operations per timed phase (default: 2000000)",
};

/// Live-object window for the churn phases: at any instant at most
/// this many objects are outstanding, as in the E5 lifetime streams.
const WINDOW: usize = 512;

/// The small-size menu: one representative per ladder region, so the
/// churn touches many classes without degenerating into one slab.
const SMALL_SIZES: [usize; 12] = [16, 24, 32, 48, 64, 96, 128, 192, 256, 512, 1024, 2048];

/// One in this many allocations takes the large path (4 KB–32 KB).
const LARGE_EVERY: u64 = 32;

/// An allocation backend under test: the churn driver is generic so
/// every backend replays the identical op sequence.
trait Backend {
    fn alloc(&mut self, layout: Layout) -> *mut u8;
    /// # Safety
    ///
    /// `ptr` must be live from this backend's `alloc` with `layout`.
    unsafe fn dealloc(&mut self, ptr: *mut u8, layout: Layout);
}

/// `std::alloc::System`, the yardstick.
struct SystemBackend;

impl Backend for SystemBackend {
    fn alloc(&mut self, layout: Layout) -> *mut u8 {
        // SAFETY: layout is non-zero (the churn driver never asks for
        // zero bytes).
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&mut self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded caller contract.
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// The no-magazine slab path: every op takes the shared slab word.
struct DirectBackend<'h>(&'h DsaHeap);

impl Backend for DirectBackend<'_> {
    fn alloc(&mut self, layout: Layout) -> *mut u8 {
        self.0.alloc_direct(layout)
    }
    unsafe fn dealloc(&mut self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded caller contract.
        unsafe { self.0.dealloc_direct(ptr, layout) }
    }
}

/// The magazine path: per-thread cache in front of the same heap.
struct MagazineBackend<'h>(ThreadCache<'h>);

impl Backend for MagazineBackend<'_> {
    fn alloc(&mut self, layout: Layout) -> *mut u8 {
        self.0.alloc(layout)
    }
    unsafe fn dealloc(&mut self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded caller contract.
        unsafe { self.0.dealloc(ptr, layout) }
    }
}

/// Draws the next request size — mostly ladder sizes, occasionally a
/// multi-page large block.
fn next_size(rng: &mut Rng64) -> usize {
    if rng.below(LARGE_EVERY) == 0 {
        rng.range(4_096, 32_768) as usize
    } else {
        SMALL_SIZES[rng.below(SMALL_SIZES.len() as u64) as usize]
    }
}

/// Runs `ops` random alloc/free operations over a [`WINDOW`]-slot
/// live set and returns mean ns per operation. Every allocation is
/// written to once, so the measurement includes the first-touch cost
/// a real mutator always pays.
fn churn<B: Backend>(backend: &mut B, ops: u64, seed: u64) -> f64 {
    let mut rng = Rng64::new(seed);
    let mut slots: Vec<Option<(*mut u8, Layout)>> = vec![None; WINDOW];
    let start = Instant::now();
    for _ in 0..ops {
        let i = rng.below(WINDOW as u64) as usize;
        match slots[i].take() {
            Some((p, l)) => {
                // SAFETY: `p` is live from this backend with layout `l`.
                unsafe { backend.dealloc(p, l) };
            }
            None => {
                let layout = Layout::from_size_align(next_size(&mut rng), 8).expect("valid");
                let p = backend.alloc(layout);
                assert!(!p.is_null(), "backend refused {layout:?}");
                // SAFETY: `p` is a live allocation of at least 1 byte.
                unsafe { p.write(i as u8) };
                slots[i] = Some((p, layout));
            }
        }
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    for slot in &mut slots {
        if let Some((p, l)) = slot.take() {
            // SAFETY: `p` is live from this backend with layout `l`.
            unsafe { backend.dealloc(p, l) };
        }
    }
    elapsed / ops as f64
}

/// A raw pointer with its layout, made `Send` so the consumer thread
/// can free what the producer allocated.
struct Parcel(*mut u8, Layout);

// SAFETY: the parcel is a unique handle to a live heap block; sending
// it transfers ownership, and the heap itself is `Sync`.
unsafe impl Send for Parcel {}

/// Producer/consumer: `count` objects allocated on one thread, freed
/// on another, every one crossing caches through the depot.
fn cross_thread_phase(heap: &DsaHeap, count: usize, metrics: &mut RunMetrics) {
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::sync_channel::<Parcel>(64);
        scope.spawn(move || {
            let mut cache = ThreadCache::new(heap);
            let mut rng = Rng64::new(0x21_0002);
            for _ in 0..count {
                let layout = Layout::from_size_align(next_size(&mut rng), 8).expect("valid");
                let p = cache.alloc(layout);
                assert!(!p.is_null());
                tx.send(Parcel(p, layout)).expect("consumer alive");
            }
        });
        scope.spawn(move || {
            let mut cache = ThreadCache::new(heap);
            while let Ok(Parcel(p, layout)) = rx.recv() {
                // SAFETY: the parcel transferred ownership of a live
                // block allocated with `layout` from this heap.
                unsafe { cache.dealloc(p, layout) };
            }
        });
    });
    heap.flush_depots();
    heap.check_reconciliation();
    let s = heap.stats();
    println!(
        "cross-thread: {count} objects produced on one thread, consumed on another\n\
         magazine hits {} allocs / {} frees, depot exchanges {}, bad frees {}\n\
         books reconciled: telemetry ledger == backend-live words\n",
        s.magazine_allocs, s.magazine_frees, s.depot_exchanges, s.bad_frees
    );
    metrics.counter(
        "dsa_e21_depot_exchanges",
        "depot exchanges during the cross-thread phase",
        &[],
        s.depot_exchanges,
    );
    metrics.counter(
        "dsa_e21_bad_frees",
        "mis-routed frees during the cross-thread phase (must be 0)",
        &[],
        s.bad_frees,
    );
    assert_eq!(s.bad_frees, 0, "every cross-thread free must route home");
}

fn main() {
    cli::enforce_standard_flags("exp_21_global_alloc", &[OPS]);
    let ops = cli::count_flag_from_env(OPS).unwrap_or(2_000_000) as u64;
    let mut metrics = RunMetrics::new("exp_21_global_alloc");
    println!("E21: a real allocator — slab classes, magazines, vs the system allocator\n");
    println!(
        "{ops} ops per phase, {WINDOW}-slot live window, jemalloc-ladder sizes\n\
         plus 1/{LARGE_EVERY} large blocks (4-32 KB); every phase ends with a full\n\
         ledger reconciliation (magazines included, no flush required)\n"
    );

    // Phase 1: churn, three backends, identical op sequences.
    let heap = DsaHeap::new(HeapConfig::DEFAULT);
    let system_ns = churn(&mut SystemBackend, ops, 0x21_0001);
    let direct_ns = churn(&mut DirectBackend(&heap), ops, 0x21_0001);
    heap.check_reconciliation();
    let magazine_ns = churn(
        &mut MagazineBackend(ThreadCache::new(&heap)),
        ops,
        0x21_0001,
    );
    heap.check_reconciliation();

    let mut t = Table::new(&["backend", "ns/op", "vs System"])
        .with_title("mixed-size churn (same seed, same op sequence)");
    for (name, ns) in [
        ("System", system_ns),
        ("dsa slab direct", direct_ns),
        ("dsa magazines", magazine_ns),
    ] {
        t.row_owned(vec![
            name.to_string(),
            format!("{ns:.1}"),
            format!("{:.2}x", ns / system_ns),
        ]);
    }
    println!("{t}");
    metrics.table("churn", &t);
    println!(
        "magazine speedup over the shared slab path: {:.2}x\n",
        direct_ns / magazine_ns
    );
    metrics.gauge(
        "dsa_e21_magazine_speedup",
        "direct slab ns/op divided by magazine ns/op on mixed churn",
        &[],
        direct_ns / magazine_ns,
    );

    // Phase 2: every object freed on a different thread than made it.
    cross_thread_phase(&heap, 200_000, &mut metrics);

    // Phase 3: what magazine depth buys. Small objects only — depth
    // governs how often the depot lock is touched, and the large path
    // never sees a magazine.
    let mut t = Table::new(&["depth", "ns/op", "depot exchanges"])
        .with_title("magazine depth sweep (64-byte churn)");
    for depth in [1usize, 2, 4, 8, 16, 32, MAG_MAX] {
        let before = heap.stats().depot_exchanges;
        let mut backend = MagazineBackend(ThreadCache::with_depth(&heap, depth));
        let mut rng = Rng64::new(0x21_0003);
        let layout = Layout::from_size_align(64, 8).expect("valid");
        let mut slots: Vec<Option<*mut u8>> = vec![None; WINDOW];
        let start = Instant::now();
        for _ in 0..ops {
            let i = rng.below(WINDOW as u64) as usize;
            match slots[i].take() {
                // SAFETY: live from this backend with `layout`.
                Some(p) => unsafe { backend.dealloc(p, layout) },
                None => {
                    let p = backend.alloc(layout);
                    assert!(!p.is_null());
                    slots[i] = Some(p);
                }
            }
        }
        let ns = start.elapsed().as_nanos() as f64 / ops as f64;
        for slot in &mut slots {
            if let Some(p) = slot.take() {
                // SAFETY: live from this backend with `layout`.
                unsafe { backend.dealloc(p, layout) };
            }
        }
        drop(backend);
        let exchanges = heap.stats().depot_exchanges - before;
        t.row_owned(vec![
            depth.to_string(),
            format!("{ns:.1}"),
            exchanges.to_string(),
        ]);
    }
    heap.check_reconciliation();
    println!("{t}");
    metrics.table("depth_sweep", &t);

    let s = heap.stats();
    println!(
        "\nfinal books: {} magazine allocs, {} magazine frees, {} depot exchanges,\n\
         {} large allocs, {} slab exhaustions, {} bad frees — reconciled after every phase",
        s.magazine_allocs,
        s.magazine_frees,
        s.depot_exchanges,
        s.large_allocs,
        s.slab_exhausted,
        s.bad_frees
    );
    metrics.emit();
}
