//! E10 — §Name Space: symbolic versus linearly segmented bookkeeping.
//!
//! "One does not need to search a dictionary for a group of available
//! contiguous segment names, and more importantly, one does not have to
//! reallocate names when the dictionary has become fragmented ... A
//! symbolically segmented name space consequently involves far less
//! bookkeeping than a linearly segmented name space."
//!
//! Both dictionary kinds serve the same churn of programs attaching and
//! detaching blocks of segment names, at rising occupancy of the number
//! space. The symbolic dictionary pays one operation per name and can
//! never fail while names remain; the linear dictionary additionally
//! searches for contiguous ranges and, when its number space fragments,
//! renumbers live programs — on a real machine that means finding and
//! updating every stored reference to the moved segment numbers.

use dsa_exec::{jobs_from_env, SimGrid};
use dsa_metrics::table::Table;
use dsa_seg::names::{LinearSegDict, SymbolicDict};
use dsa_trace::rng::Rng64;

const CAPACITY: u32 = 4096;
const OPS: usize = 30_000;

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_10_name_spaces", &[]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_10_name_spaces");
    println!("E10: segment-name bookkeeping — symbolic vs linear dictionaries\n");
    let mut t = Table::new(&[
        "target occupancy",
        "dict",
        "bookkeeping ops",
        "names reallocated",
        "failures",
        "ops per attach",
    ])
    .with_title(&format!(
        "{CAPACITY} segment numbers, programs of 2-64 segments"
    ));
    // Each occupancy level builds its own schedule from a fixed seed and
    // replays it against both dictionaries — an independent cell that
    // returns its two finished table rows.
    let grid = SimGrid::new(vec![0.5f64, 0.7, 0.85, 0.95]);
    let rows = grid.run(jobs_from_env(), |_, &occupancy| {
        let target = (CAPACITY as f64 * occupancy) as u32;
        // Build one attach/detach schedule, replayed against both
        // dictionaries.
        let mut rng = Rng64::new(10);
        let mut live: Vec<(u32, u32)> = Vec::new(); // (program, count)
        let mut live_names = 0u32;
        let mut next_prog = 0u32;
        let mut schedule: Vec<(bool, u32, u32)> = Vec::new(); // (attach, prog, count)
        for _ in 0..OPS {
            if live_names < target || live.is_empty() {
                let count = rng.range(2, 64) as u32;
                schedule.push((true, next_prog, count));
                live.push((next_prog, count));
                live_names += count;
                next_prog += 1;
            } else {
                let idx = rng.below(live.len() as u64) as usize;
                let (prog, count) = live.swap_remove(idx);
                schedule.push((false, prog, count));
                live_names -= count;
            }
        }

        let mut sym = SymbolicDict::new(CAPACITY);
        let mut lin = LinearSegDict::new(CAPACITY);
        let mut attaches = 0u64;
        for &(attach, prog, count) in &schedule {
            if attach {
                attaches += 1;
                sym.attach(prog, count);
                lin.attach(prog, count);
            } else {
                sym.detach(prog);
                lin.detach(prog);
            }
        }
        [("symbolic", sym.stats()), ("linear", lin.stats())].map(|(name, stats)| {
            vec![
                format!("{:.0}%", occupancy * 100.0),
                name.to_owned(),
                stats.bookkeeping_ops.to_string(),
                stats.names_reallocated.to_string(),
                stats.failures.to_string(),
                format!("{:.1}", stats.bookkeeping_ops as f64 / attaches as f64),
            ]
        })
    });
    for pair in rows {
        for row in pair {
            t.row_owned(row);
        }
    }
    println!("{t}");
    metrics.table("name_spaces", &t);
    metrics.emit();
    println!(
        "at half occupancy the two differ only by the linear dictionary's\n\
         range search; as the number space fills, the linear dictionary\n\
         fragments and must renumber thousands of live names — and still\n\
         refuses requests the symbolic dictionary would have satisfied.\n\
         the bookkeeping gap is exactly the paper's 'far less'."
    );
}
