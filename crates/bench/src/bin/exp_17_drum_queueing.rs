//! E17 — inside the fetch time: drum queue scheduling (extension).
//!
//! Experiments E2 and E16 price every page fetch at a flat latency —
//! the paper's own abstraction. This extension opens the box: an
//! ATLAS-scale sector drum serving queues of page requests under FIFO
//! versus shortest-latency-time-first order. With deep queues, SLTF
//! streams sectors and the *effective* per-page latency collapses —
//! the "extra page transmission" capacity whose absence E2's
//! one-channel table showed saturating multiprogramming's rescue.

use dsa_core::clock::Cycles;
use dsa_metrics::sparkline::labelled_sparkline;
use dsa_metrics::table::Table;
use dsa_storage::drum::{DrumDiscipline, SectorDrum};
use dsa_trace::rng::Rng64;

fn main() {
    println!("E17: FIFO vs shortest-latency-first drum queueing\n");
    let drum = SectorDrum::atlas();
    println!(
        "drum: {} sectors of {} words, {} per revolution ({} per sector)\n",
        drum.sectors(),
        drum.words_per_sector(),
        Cycles::from_millis(12),
        drum.sector_time()
    );

    let mut rng = Rng64::new(17);
    let mut t = Table::new(&[
        "queue depth",
        "FIFO mean wait",
        "SLTF mean wait",
        "FIFO makespan",
        "SLTF makespan",
        "SLTF speedup",
    ])
    .with_title("random page sectors, all requests queued at once (100 batches averaged)");
    let mut curve = Vec::new();
    for depth in [1usize, 2, 4, 8, 16, 32] {
        let mut fifo_wait = 0u64;
        let mut sltf_wait = 0u64;
        let mut fifo_span = 0u64;
        let mut sltf_span = 0u64;
        const BATCHES: u64 = 100;
        for _ in 0..BATCHES {
            let reqs: Vec<u64> = (0..depth).map(|_| rng.below(drum.sectors())).collect();
            let start = Cycles::from_nanos(rng.below(12_000_000));
            fifo_wait += drum
                .mean_wait(&reqs, start, DrumDiscipline::Fifo)
                .as_nanos();
            sltf_wait += drum
                .mean_wait(&reqs, start, DrumDiscipline::Sltf)
                .as_nanos();
            fifo_span += drum
                .service(&reqs, start, DrumDiscipline::Fifo)
                .1
                .as_nanos();
            sltf_span += drum
                .service(&reqs, start, DrumDiscipline::Sltf)
                .1
                .as_nanos();
        }
        let speedup = fifo_span as f64 / sltf_span as f64;
        curve.push(speedup);
        t.row_owned(vec![
            depth.to_string(),
            Cycles::from_nanos(fifo_wait / BATCHES).to_string(),
            Cycles::from_nanos(sltf_wait / BATCHES).to_string(),
            Cycles::from_nanos(fifo_span / BATCHES).to_string(),
            Cycles::from_nanos(sltf_span / BATCHES).to_string(),
            format!("{speedup:.2}x"),
        ]);
    }
    println!("{t}");
    println!(
        "{}\n",
        labelled_sparkline("SLTF speedup vs queue depth", &curve)
    );
    println!(
        "at depth 1 the disciplines are identical (half-revolution mean\n\
         latency, the paper's 6 ms); as the queue deepens, FIFO keeps\n\
         paying it per request while SLTF picks whatever sector comes\n\
         next and approaches one sector-time per page — queue depth, not\n\
         rotation speed, sets a loaded drum's effective latency."
    );
}
