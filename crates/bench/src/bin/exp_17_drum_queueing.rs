//! E17 — inside the fetch time: drum queue scheduling (extension).
//!
//! Experiments E2 and E16 price every page fetch at a flat latency —
//! the paper's own abstraction. This extension opens the box: an
//! ATLAS-scale sector drum serving queues of page requests under FIFO
//! versus shortest-latency-time-first order. With deep queues, SLTF
//! streams sectors and the *effective* per-page latency collapses —
//! the "extra page transmission" capacity whose absence E2's
//! one-channel table showed saturating multiprogramming's rescue.

use dsa_core::clock::Cycles;
use dsa_exec::{jobs_from_env, SimGrid};
use dsa_metrics::sparkline::labelled_sparkline;
use dsa_metrics::table::Table;
use dsa_storage::drum::{DrumDiscipline, SectorDrum};
use dsa_trace::rng::Rng64;

/// One grid cell: a queue depth and its pre-drawn request batches,
/// each `(sector requests, queue-arrival instant)`.
type DepthCell = (usize, Vec<(Vec<u64>, Cycles)>);

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_17_drum_queueing", &[]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_17_drum_queueing");
    println!("E17: FIFO vs shortest-latency-first drum queueing\n");
    let drum = SectorDrum::atlas();
    println!(
        "drum: {} sectors of {} words, {} per revolution ({} per sector)\n",
        drum.sectors(),
        drum.words_per_sector(),
        Cycles::from_millis(12),
        drum.sector_time()
    );

    let mut rng = Rng64::new(17);
    let mut t = Table::new(&[
        "queue depth",
        "FIFO mean wait",
        "SLTF mean wait",
        "FIFO makespan",
        "SLTF makespan",
        "SLTF speedup",
    ])
    .with_title("random page sectors, all requests queued at once (100 batches averaged)");
    let mut curve = Vec::new();
    const BATCHES: u64 = 100;
    // The single RNG stream threads through the depths in order, so the
    // request batches are drawn sequentially (cheap); the drum
    // simulations over them are the independent cells.
    let cells: Vec<DepthCell> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .map(|depth| {
            let batches = (0..BATCHES)
                .map(|_| {
                    let reqs: Vec<u64> = (0..depth).map(|_| rng.below(drum.sectors())).collect();
                    let start = Cycles::from_nanos(rng.below(12_000_000));
                    (reqs, start)
                })
                .collect();
            (depth, batches)
        })
        .collect();
    let grid = SimGrid::new(cells);
    for (speedup, row) in grid.run(jobs_from_env(), |_, (depth, batches)| {
        let mut fifo_wait = 0u64;
        let mut sltf_wait = 0u64;
        let mut fifo_span = 0u64;
        let mut sltf_span = 0u64;
        for (reqs, start) in batches {
            fifo_wait += drum
                .mean_wait(reqs, *start, DrumDiscipline::Fifo)
                .as_nanos();
            sltf_wait += drum
                .mean_wait(reqs, *start, DrumDiscipline::Sltf)
                .as_nanos();
            fifo_span += drum
                .service(reqs, *start, DrumDiscipline::Fifo)
                .1
                .as_nanos();
            sltf_span += drum
                .service(reqs, *start, DrumDiscipline::Sltf)
                .1
                .as_nanos();
        }
        let speedup = fifo_span as f64 / sltf_span as f64;
        (
            speedup,
            vec![
                depth.to_string(),
                Cycles::from_nanos(fifo_wait / BATCHES).to_string(),
                Cycles::from_nanos(sltf_wait / BATCHES).to_string(),
                Cycles::from_nanos(fifo_span / BATCHES).to_string(),
                Cycles::from_nanos(sltf_span / BATCHES).to_string(),
                format!("{speedup:.2}x"),
            ],
        )
    }) {
        curve.push(speedup);
        t.row_owned(row);
    }
    println!("{t}");
    metrics.table("drum_queueing", &t);
    metrics.emit();
    println!(
        "{}\n",
        labelled_sparkline("SLTF speedup vs queue depth", &curve)
    );
    println!(
        "at depth 1 the disciplines are identical (half-revolution mean\n\
         latency, the paper's 6 ms); as the queue deepens, FIFO keeps\n\
         paying it per request while SLTF picks whatever sector comes\n\
         next and approaches one sector-time per page — queue depth, not\n\
         rotation speed, sets a loaded drum's effective latency."
    );
}
