//! E3 — Figure 4 + special hardware facility (vi): the associative
//! memory's effect on two-level mapping overhead.
//!
//! "Many computers have special hardware for the purpose of reducing the
//! average time taken to determine the current location of an item of
//! information. The most obvious example of such a device is a small
//! associative memory in which recently-used segment and/or page
//! locations are kept. If it were not for such mechanisms, the cost in
//! extra addressing time caused by the provision of, say, segmentation
//! and artificial name contiguity, would often be unacceptable."
//!
//! We walk a locality-bearing reference string through a Figure 4
//! segment+page map at associative-memory sizes 0 (absent), 1, 4, 8
//! (the 360/67), 16, and 44 (the B8500), on a 1 µs core.

use dsa_core::clock::Cycles;
use dsa_core::ids::{FrameNo, SegId};
use dsa_exec::{jobs_from_env, SimGrid};
use dsa_mapping::associative::AssocPolicy;
use dsa_mapping::cost::MapCosts;
use dsa_mapping::two_level::TwoLevelMap;
use dsa_mapping::AddressMap;
use dsa_metrics::table::Table;
use dsa_trace::refstring::RefStringCfg;
use dsa_trace::rng::Rng64;

const SEGS: u32 = 8;
const SEG_EXTENT: u64 = 8192;
const PAGE_BITS: u32 = 10; // 1024-word pages

fn build(tlb: usize, policy: AssocPolicy) -> TwoLevelMap {
    let costs = MapCosts::for_core_cycle(Cycles::from_micros(1));
    let mut m = TwoLevelMap::new(SEGS, SEG_EXTENT, PAGE_BITS, tlb, policy, costs);
    for s in 0..SEGS {
        m.create_segment(SegId(s), SEG_EXTENT).expect("fits");
        for p in 0..(SEG_EXTENT >> PAGE_BITS) {
            m.map_page(SegId(s), p, FrameNo(u64::from(s) * 8 + p))
                .expect("declared");
        }
    }
    m
}

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_03_mapping_overhead", &[]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_03_mapping_overhead");
    println!("E3: two-level mapping overhead vs associative-memory size (Figure 4)\n");

    // Word-granular accesses with locality: an LRU-stack model over the
    // 64 (seg, page) pairs, each reference landing at a random offset.
    let mut rng = Rng64::new(3);
    let pages = RefStringCfg::LruStack {
        pages: 64,
        theta: 1.1,
    }
    .generate_pages(200_000, &mut rng);
    let accesses: Vec<(SegId, u64)> = pages
        .iter()
        .map(|p| {
            let seg = SegId((p.0 / 8) as u32);
            let page = p.0 % 8;
            let offset = (page << PAGE_BITS) | rng.below(1 << PAGE_BITS);
            (seg, offset)
        })
        .collect();

    let mut t = Table::new(&[
        "assoc size",
        "policy",
        "hit ratio",
        "ns/access",
        "slowdown vs none -> gain",
    ])
    .with_title("1 us core: table walk costs 2 us, associative search 0.2 us");
    // Each associative-memory configuration walks the shared access
    // string independently; the "gain" column needs the size-0 row's
    // result, so rows are formatted after the fan-out.
    let grid = SimGrid::new(vec![
        (0usize, AssocPolicy::Lru),
        (1, AssocPolicy::Lru),
        (4, AssocPolicy::Lru),
        (8, AssocPolicy::Lru),
        (8, AssocPolicy::Fifo),
        (16, AssocPolicy::Lru),
        (44, AssocPolicy::Lru),
    ]);
    let measured = grid.run(jobs_from_env(), |_, &(n, pol)| {
        let mut m = build(n, pol);
        for &(seg, off) in &accesses {
            let tr = m.translate_pair(seg, off);
            assert!(tr.outcome.is_ok(), "fully mapped");
        }
        (m.tlb_hit_ratio(), m.stats().mean_overhead_nanos())
    });
    let mut baseline = 0.0f64;
    for (&(n, pol), &(hits, ns)) in grid.cells().iter().zip(&measured) {
        if n == 0 {
            baseline = ns;
        }
        t.row_owned(vec![
            n.to_string(),
            format!("{pol:?}"),
            format!("{:.1}%", hits * 100.0),
            format!("{ns:.0}"),
            format!("{:.2}x cheaper", baseline / ns),
        ]);
    }
    println!("{t}");
    metrics.table("mapping_overhead", &t);
    metrics.emit();
    println!(
        "without the associative memory every access pays two table\n\
         references (segment table + page table); eight entries already\n\
         capture most of the locality, which is why the 360/67 shipped\n\
         with exactly eight."
    );
}
