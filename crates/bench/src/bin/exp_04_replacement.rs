//! E4 — the replacement-strategy study (Belady \[1\], §Replacement
//! Strategies).
//!
//! Fault rate of every fixed-allocation policy against core size, on
//! reference strings spanning the regimes the paper and Belady discuss:
//! program-like locality (LRU-stack), phase behaviour (working sets),
//! cyclic sweeps (LRU's nemesis), strict loop nests (the ATLAS learning
//! program's home), and uniform random (the control where nothing
//! helps). MIN is the unbeatable offline bound.
//!
//! The stack policies (MIN, LRU — see
//! `dsa_paging::replacement::registry::is_exact_stack`) get their whole
//! faults-vs-size curve from **one** `dsa-stackdist` traversal per
//! trace instead of one replay per frame count; the per-reference
//! distances also reproduce the fault stream at the probed size, so the
//! percentile column comes from the same pass. Non-stack policies keep
//! their per-size runs. Output is byte-identical either way — parity is
//! property-tested in `tests/properties_stackdist.rs`.
//!
//! Pass `--trace-out <path>` to dump the probe event stream of one
//! representative run (LRU on the first trace, 24 frames) as JSONL.

use dsa_exec::{jobs_from_env, trace_out_from_env, SimGrid};
use dsa_metrics::table::Table;
use dsa_paging::paged::PagedMemory;
use dsa_paging::replacement::lru::LruRepl;
use dsa_paging::replacement::registry::{
    is_exact_stack, policy_by_index, policy_count, policy_label, MIN,
};
use dsa_probe::{EventKind, JsonlRecorder, LatencyProbe, Probe, Stamp};
use dsa_stackdist::{lru_distances, opt_distances};
use dsa_trace::refstring::RefStringCfg;
use dsa_trace::rng::Rng64;

const LEN: usize = 60_000;

/// Frame count at which the percentile-latency column is measured.
const PROBED_FRAMES: usize = 24;

/// One cell of the simulation grid.
#[derive(Clone, Copy)]
enum Cell {
    /// An exact stack policy: the whole curve from one stackdist pass.
    Curve { policy: usize },
    /// One `(frames, policy)` replay for the non-stack policies.
    PerSize { frames: usize, policy: usize },
}

/// What a cell yields.
enum Measured {
    Curve { rates: Vec<f64>, p95: u64 },
    PerSize { rate: f64, p95: Option<u64> },
}

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_04_replacement", &[dsa_exec::cli::TRACE_OUT]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_04_replacement");
    let trace_out = trace_out_from_env();
    let jobs = jobs_from_env();
    println!("E4: replacement strategies — fault rate vs core size\n");
    let traces: Vec<(&str, RefStringCfg)> = vec![
        (
            "lru-stack th=0.9",
            RefStringCfg::LruStack {
                pages: 64,
                theta: 0.9,
            },
        ),
        (
            "working-set 12/600",
            RefStringCfg::WorkingSetPhases {
                pages: 64,
                set: 12,
                phase_len: 600,
            },
        ),
        ("sweep 40", RefStringCfg::SequentialSweep { pages: 40 }),
        (
            "loop-nest 8+32/8",
            RefStringCfg::LoopNest {
                inner: 8,
                outer: 32,
                period: 8,
            },
        ),
        ("uniform 64", RefStringCfg::Uniform { pages: 64 }),
        (
            "hot-cold 8/56 p=.9",
            RefStringCfg::HotCold {
                hot: 8,
                cold: 56,
                p_hot: 0.9,
            },
        ),
    ];
    for (ti, (tname, cfg)) in traces.into_iter().enumerate() {
        let trace = cfg.generate_pages(LEN, &mut Rng64::new(4_000));
        let mut t = Table::new(&[
            "policy",
            "8 frames",
            "16",
            "24",
            "32",
            "48",
            "p95 inter-fault @24",
        ])
        .with_title(&format!("trace: {tname} ({LEN} refs)"));
        let frame_counts = [8usize, 16, 24, 32, 48];
        let mut rates = vec![Vec::new(); policy_count()];
        let mut p95_inter_fault = vec![0u64; policy_count()];
        // Stack policies are one cell per trace (the size axis collapses
        // into a single stackdist pass); every non-stack (frame count,
        // policy) pair stays an independent replay of the shared trace.
        let mut cells: Vec<Cell> = (0..policy_count())
            .filter(|&i| is_exact_stack(i))
            .map(|policy| Cell::Curve { policy })
            .collect();
        for &frames in &frame_counts {
            for policy in (0..policy_count()).filter(|&i| !is_exact_stack(i)) {
                cells.push(Cell::PerSize { frames, policy });
            }
        }
        let grid = SimGrid::new(cells);
        let measured = grid.run(jobs, |_, &cell| match cell {
            Cell::Curve { policy } => {
                let distances = if policy == MIN {
                    opt_distances(&trace)
                } else {
                    lru_distances(&trace)
                };
                // Replaying the probed size's fault positions through
                // the same probe the simulator feeds reproduces the
                // percentile column exactly.
                let mut probe = LatencyProbe::new();
                for vt in distances.fault_times(PROBED_FRAMES) {
                    probe.emit(EventKind::Fault, Stamp::vtime(vt));
                }
                Measured::Curve {
                    rates: distances.success().rate_curve(&frame_counts),
                    p95: probe.inter_fault().quantile(0.95),
                }
            }
            Cell::PerSize { frames, policy } => {
                let mut mem = PagedMemory::new(frames, policy_by_index(policy, frames, &trace));
                if frames == PROBED_FRAMES {
                    let mut probe = LatencyProbe::new();
                    let stats = mem
                        .run_pages_probed(&trace, &mut probe)
                        .expect("no pinning");
                    Measured::PerSize {
                        rate: stats.fault_rate(),
                        p95: Some(probe.inter_fault().quantile(0.95)),
                    }
                } else {
                    let stats = mem.run_pages(&trace).expect("no pinning");
                    Measured::PerSize {
                        rate: stats.fault_rate(),
                        p95: None,
                    }
                }
            }
        });
        for (&cell, m) in grid.cells().iter().zip(measured) {
            match (cell, m) {
                (Cell::Curve { policy }, Measured::Curve { rates: curve, p95 }) => {
                    rates[policy] = curve;
                    p95_inter_fault[policy] = p95;
                }
                (Cell::PerSize { policy, .. }, Measured::PerSize { rate, p95 }) => {
                    rates[policy].push(rate);
                    if let Some(p) = p95 {
                        p95_inter_fault[policy] = p;
                    }
                }
                _ => unreachable!("cell and measurement kinds always pair"),
            }
        }
        // Dump one representative probed run (LRU on the first trace)
        // when asked; the recorder keeps the trace tail.
        if ti == 0 {
            if let Some(path) = &trace_out {
                let mut rec = JsonlRecorder::new(200_000);
                let mut mem = PagedMemory::new(PROBED_FRAMES, Box::new(LruRepl::new()));
                mem.run_pages_probed(&trace, &mut rec).expect("no pinning");
                rec.write_to(path).expect("writable --trace-out path");
                println!(
                    "trace-out: {} events ({} dropped) -> {}\n",
                    rec.len(),
                    rec.dropped(),
                    path.display()
                );
            }
        }
        for (i, row_rates) in rates.iter().enumerate() {
            let mut row = vec![policy_label(i).to_owned()];
            row.extend(row_rates.iter().map(|r| format!("{:.3}", r)));
            row.push(format!("{} refs", p95_inter_fault[i]));
            t.row_owned(row);
        }
        println!("{t}");
        metrics.table(&format!("trace_{ti}"), &t);
    }
    metrics.emit();
    println!(
        "expected shape: MIN bounds everyone from below; LRU and Clock track\n\
         each other on locality-bearing traces; the ATLAS learning program\n\
         wins on the strict loop nest and the sweep (it predicts periodic\n\
         reuse) but gives ground on irregular references; on uniform random\n\
         every policy collapses to the same fault rate."
    );
}
