//! E4 — the replacement-strategy study (Belady \[1\], §Replacement
//! Strategies).
//!
//! Fault rate of every fixed-allocation policy against core size, on
//! reference strings spanning the regimes the paper and Belady discuss:
//! program-like locality (LRU-stack), phase behaviour (working sets),
//! cyclic sweeps (LRU's nemesis), strict loop nests (the ATLAS learning
//! program's home), and uniform random (the control where nothing
//! helps). MIN is the unbeatable offline bound.
//!
//! Pass `--trace-out <path>` to dump the probe event stream of one
//! representative run (LRU on the first trace, 24 frames) as JSONL.

use dsa_core::ids::PageNo;
use dsa_exec::{jobs_from_env, product2, SimGrid};
use dsa_metrics::table::Table;
use dsa_paging::paged::PagedMemory;
use dsa_paging::replacement::atlas::AtlasLearning;
use dsa_paging::replacement::clock::ClockRepl;
use dsa_paging::replacement::fifo::FifoRepl;
use dsa_paging::replacement::lfu::LfuRepl;
use dsa_paging::replacement::lru::LruRepl;
use dsa_paging::replacement::min::MinRepl;
use dsa_paging::replacement::nru::ClassRandomRepl;
use dsa_paging::replacement::random::RandomRepl;
use dsa_paging::replacement::Replacer;
use dsa_probe::{JsonlRecorder, LatencyProbe};
use dsa_trace::refstring::RefStringCfg;
use dsa_trace::rng::Rng64;
use std::path::PathBuf;

const LEN: usize = 60_000;

/// Frame count at which the percentile-latency column is measured.
const PROBED_FRAMES: usize = 24;

fn trace_out_path() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            let p = args.next().unwrap_or_else(|| {
                eprintln!("--trace-out requires a path");
                std::process::exit(2);
            });
            return Some(PathBuf::from(p));
        }
    }
    None
}

const POLICY_COUNT: usize = 8;

fn policy_by_index(i: usize, frames: usize, trace: &[PageNo]) -> Box<dyn Replacer> {
    match i {
        0 => Box::new(MinRepl::new(trace)),
        1 => Box::new(LruRepl::new()),
        2 => Box::new(ClockRepl::new(frames)),
        3 => Box::new(FifoRepl::new()),
        4 => Box::new(ClassRandomRepl::new(4, 8)),
        5 => Box::new(RandomRepl::new(4)),
        6 => Box::new(AtlasLearning::new()),
        7 => Box::new(LfuRepl::with_aging(32)),
        _ => unreachable!("policy index {i} out of range"),
    }
}

fn main() {
    let trace_out = trace_out_path();
    let jobs = jobs_from_env();
    println!("E4: replacement strategies — fault rate vs core size\n");
    let traces: Vec<(&str, RefStringCfg)> = vec![
        (
            "lru-stack th=0.9",
            RefStringCfg::LruStack {
                pages: 64,
                theta: 0.9,
            },
        ),
        (
            "working-set 12/600",
            RefStringCfg::WorkingSetPhases {
                pages: 64,
                set: 12,
                phase_len: 600,
            },
        ),
        ("sweep 40", RefStringCfg::SequentialSweep { pages: 40 }),
        (
            "loop-nest 8+32/8",
            RefStringCfg::LoopNest {
                inner: 8,
                outer: 32,
                period: 8,
            },
        ),
        ("uniform 64", RefStringCfg::Uniform { pages: 64 }),
        (
            "hot-cold 8/56 p=.9",
            RefStringCfg::HotCold {
                hot: 8,
                cold: 56,
                p_hot: 0.9,
            },
        ),
    ];
    for (ti, (tname, cfg)) in traces.into_iter().enumerate() {
        let trace = cfg.generate_pages(LEN, &mut Rng64::new(4_000));
        let mut t = Table::new(&[
            "policy",
            "8 frames",
            "16",
            "24",
            "32",
            "48",
            "p95 inter-fault @24",
        ])
        .with_title(&format!("trace: {tname} ({LEN} refs)"));
        let frame_counts = [8usize, 16, 24, 32, 48];
        // One row per policy.
        let names = [
            "MIN (Belady)",
            "LRU",
            "Clock",
            "FIFO",
            "class-random (M44)",
            "Random",
            "ATLAS learning",
            "LFU (aged)",
        ];
        let mut rates = vec![Vec::new(); names.len()];
        let mut p95_inter_fault = vec![0u64; names.len()];
        // Every (frame count, policy) pair is an independent run over
        // the shared trace; the grid preserves the nested-loop order.
        let grid = SimGrid::new(product2(
            &frame_counts,
            &(0..POLICY_COUNT).collect::<Vec<_>>(),
        ));
        let measured = grid.run(jobs, |_, &(frames, i)| {
            let mut mem = PagedMemory::new(frames, policy_by_index(i, frames, &trace));
            if frames == PROBED_FRAMES {
                let mut probe = LatencyProbe::new();
                let stats = mem
                    .run_pages_probed(&trace, &mut probe)
                    .expect("no pinning");
                (stats.fault_rate(), Some(probe.inter_fault().quantile(0.95)))
            } else {
                let stats = mem.run_pages(&trace).expect("no pinning");
                (stats.fault_rate(), None)
            }
        });
        for (&(_, i), (rate, p95)) in grid.cells().iter().zip(measured) {
            rates[i].push(rate);
            if let Some(p) = p95 {
                p95_inter_fault[i] = p;
            }
        }
        // Dump one representative probed run (LRU on the first trace)
        // when asked; the recorder keeps the trace tail.
        if ti == 0 {
            if let Some(path) = &trace_out {
                let mut rec = JsonlRecorder::new(200_000);
                let mut mem = PagedMemory::new(PROBED_FRAMES, Box::new(LruRepl::new()));
                mem.run_pages_probed(&trace, &mut rec).expect("no pinning");
                rec.write_to(path).expect("writable --trace-out path");
                println!(
                    "trace-out: {} events ({} dropped) -> {}\n",
                    rec.len(),
                    rec.dropped(),
                    path.display()
                );
            }
        }
        for (i, name) in names.iter().enumerate() {
            let mut row = vec![(*name).to_owned()];
            row.extend(rates[i].iter().map(|r| format!("{:.3}", r)));
            row.push(format!("{} refs", p95_inter_fault[i]));
            t.row_owned(row);
        }
        println!("{t}");
    }
    println!(
        "expected shape: MIN bounds everyone from below; LRU and Clock track\n\
         each other on locality-bearing traces; the ATLAS learning program\n\
         wins on the strict loop nest and the sweep (it predicts periodic\n\
         reuse) but gives ground on irregular references; on uniform random\n\
         every policy collapses to the same fault rate."
    );
}
