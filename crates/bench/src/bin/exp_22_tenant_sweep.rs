//! E22 — population-scale multi-tenant scheduling: the thrashing cliff
//! and its working-set rescue.
//!
//! The paper's conclusion (i) at the scale modern shared infrastructure
//! actually runs: not four jobs over one drum but a *population* of
//! tenants over a shared frame pool. The event-driven simulator
//! (`dsa_sched::EventSim`) makes the experiment affordable — blocked
//! time is jumped through a binary-heap event queue and per-tenant
//! state is a stream recipe plus a compact LRU summary, so the default
//! run puts 100 000 tenants through the machine.
//!
//! The sweep crosses population size × frames-per-tenant × admission
//! policy. With open admission and a tight pool (one frame per
//! tenant), every tenant holds a sliver of its working set, nearly
//! every reference faults, the finite transfer channels queue, and
//! virtual throughput falls off a cliff. Working-set admission holds
//! the surplus tenants in a backlog and runs the population in
//! shifts: the same tight pool saturates gracefully instead.
//!
//! Each grid cell is an independent simulation on the `dsa-exec`
//! engine: stdout is byte-identical at any `--jobs` width (the golden
//! gauntlet pins `--tenants 1000`). `--metrics-out` adds Prometheus
//! series — per-cell admission decisions and per-tenant faults and
//! working-set estimates for a sampled cohort — without touching
//! stdout.

use dsa_bench::metrics::RunMetrics;
use dsa_core::clock::Cycles;
use dsa_exec::{cli, jobs_from_env};
use dsa_metrics::table::Table;
use dsa_sched::admission::{estimate_ws, AdmissionPolicy, LoadControlCfg};
use dsa_sched::sim::SimConfig;
use dsa_sched::sweep::{tenant_sweep, SweepCell, SweepPoint};
use dsa_sched::tenant::{TenantSpec, TraceSpec};
use dsa_trace::refstring::RefStringCfg;

/// References per tenant: short sessions, population-scale count.
const REFS_PER_TENANT: u64 = 200;
/// Per-tenant page universe and working-set size.
const PAGES: u64 = 16;
const SET: u64 = 8;
/// Upper bound on any tenant's allotment.
const QUOTA: usize = 16;

/// The `--tenants N` flag: population at the largest sweep point.
const TENANTS: cli::FlagSpec = cli::FlagSpec {
    name: "--tenants",
    value: Some("N"),
    help: "population at the largest sweep point (default 100000, min 100)",
};

fn sim_cfg() -> SimConfig {
    SimConfig {
        instr_time: Cycles::from_micros(10),
        fetch_time: Cycles::from_millis(2),
        page_size: 512,
        quantum_refs: 20,
        fetch_channels: Some(8), // eight transfer channels, shared
    }
}

fn load_cfg() -> LoadControlCfg {
    LoadControlCfg::default()
}

/// A point's tenant population — a pure function of the point, so the
/// sweep is byte-identical at any worker count.
fn tenant_specs(point: SweepPoint) -> Vec<TenantSpec> {
    (0..point.tenants as u32).map(tenant_spec).collect()
}

fn tenant_spec(i: u32) -> TenantSpec {
    TenantSpec::new(
        i,
        TraceSpec::Stream {
            cfg: RefStringCfg::WorkingSetPhases {
                pages: PAGES,
                set: SET,
                phase_len: 80,
            },
            write_fraction: 0.0,
            seed: u64::from(i) + 1,
            len: REFS_PER_TENANT,
        },
        QUOTA,
    )
}

fn policy_label(policy: AdmissionPolicy) -> &'static str {
    match policy {
        AdmissionPolicy::Open => "open",
        AdmissionPolicy::WorkingSet => "working-set",
        AdmissionPolicy::Fixed => "fixed",
    }
}

fn main() {
    cli::enforce_standard_flags("exp_22_tenant_sweep", &[TENANTS]);
    let max = cli::count_flag_from_env(TENANTS)
        .unwrap_or(100_000)
        .max(100);
    let mut metrics = RunMetrics::new("exp_22_tenant_sweep");
    println!("E22: population-scale multi-tenant scheduling\n");
    println!(
        "populations up to {max} tenants, ~{SET}-page working sets over\n\
         {PAGES} pages, {REFS_PER_TENANT} references each, eight transfer\n\
         channels; 'tight' pools hold one frame per tenant, 'ample' eight\n"
    );

    let populations = [max / 100, max / 10, max];
    let regimes = [("tight", 1usize), ("ample", 8usize)];
    let policies = [AdmissionPolicy::Open, AdmissionPolicy::WorkingSet];
    let mut points = Vec::new();
    for &tenants in &populations {
        for &(_, per) in &regimes {
            for &policy in &policies {
                points.push(SweepPoint {
                    tenants,
                    frames: tenants * per,
                    policy,
                });
            }
        }
    }

    let cells: Vec<SweepCell> =
        tenant_sweep(jobs_from_env(), points, sim_cfg(), load_cfg(), tenant_specs)
            .into_iter()
            .map(|r| r.expect("compact resident sets cannot fail"))
            .collect();

    let mut t = Table::new(&[
        "tenants",
        "pool",
        "policy",
        "peak active",
        "swaps",
        "faults/ref",
        "cpu util",
        "refs/s",
    ])
    .with_title("tenant-count x memory-size sweep");
    for cell in &cells {
        let p = cell.point;
        let r = &cell.report;
        let pool = regimes
            .iter()
            .find(|&&(_, per)| p.frames == p.tenants * per)
            .map_or("?", |&(label, _)| label);
        t.row_owned(vec![
            p.tenants.to_string(),
            pool.to_owned(),
            policy_label(p.policy).to_owned(),
            r.peak_active.to_string(),
            r.deactivations.to_string(),
            format!("{:.3}", r.fault_rate()),
            format!("{:.1}%", r.cpu_utilization() * 100.0),
            format!("{:.0}", r.refs_per_second()),
        ]);
    }
    println!("{t}");
    metrics.table("tenant_sweep", &t);

    // Prometheus series: per-cell admission decisions, and a sampled
    // per-tenant cohort from the largest tight working-set cell.
    for cell in &cells {
        let p = cell.point;
        let r = &cell.report;
        let tenants = p.tenants.to_string();
        let frames = p.frames.to_string();
        let labels = [
            ("tenants", tenants.as_str()),
            ("frames", frames.as_str()),
            ("policy", policy_label(p.policy)),
        ];
        metrics.counter(
            "dsa_sweep_admissions_total",
            "tenant activations (re-admissions included)",
            &labels,
            r.admissions,
        );
        metrics.counter(
            "dsa_sweep_admission_rejects_total",
            "tenants the working-set gate deferred at least once",
            &labels,
            r.admission_rejects,
        );
        metrics.counter(
            "dsa_sweep_deactivations_total",
            "swap-outs taken by the degradation ladder",
            &labels,
            r.deactivations,
        );
        metrics.counter(
            "dsa_sweep_faults_total",
            "demand faults across the population",
            &labels,
            r.faults,
        );
        metrics.gauge(
            "dsa_sweep_mean_ws_estimate_pages",
            "mean working-set estimate over sampled tenants",
            &labels,
            r.mean_ws_estimate,
        );
        metrics.gauge(
            "dsa_sweep_refs_per_second",
            "virtual throughput of the cell",
            &labels,
            r.refs_per_second(),
        );
    }
    if let Some(cohort) = cells.iter().rfind(|c| {
        c.point.policy == AdmissionPolicy::WorkingSet && c.point.frames == c.point.tenants
    }) {
        let lc = load_cfg();
        for report in cohort.report.tenants.iter().take(8) {
            let id = report.id.to_string();
            let labels = [("tenant", id.as_str())];
            metrics.counter(
                "dsa_tenant_faults_total",
                "demand faults taken by the tenant",
                &labels,
                report.faults,
            );
            let spec = tenant_spec(report.id);
            let est = estimate_ws(&spec.trace.sample(lc.ws_sample), lc.ws_window);
            metrics.gauge(
                "dsa_tenant_ws_estimate_pages",
                "windowed working-set estimate from the admission sample",
                &labels,
                est as f64,
            );
        }
    }
    metrics.emit();

    println!(
        "with one frame per tenant, open admission gives every tenant a\n\
         sliver of its working set: nearly every reference faults, the\n\
         eight channels queue, and throughput collapses — and the cliff\n\
         deepens as the population grows. working-set admission runs the\n\
         same pool in shifts: fewer tenants at a time, each with its\n\
         estimated appetite, so the fault rate stays near the ample-pool\n\
         floor and saturation is graceful. conclusion (i), at population\n\
         scale."
    );
}
