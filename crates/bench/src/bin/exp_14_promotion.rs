//! E14 — §Fetch Strategies, the multi-level question.
//!
//! "An additional complexity in fetch strategies arises when there are
//! several levels of working storage, all directly accessible to the
//! processor. In such circumstances there is the problem of whether a
//! given item should be fetched to a higher storage level, since this
//! will be worthwhile only if the item is going to be used frequently."
//!
//! We build hierarchies of two directly addressable levels (a fast
//! scratchpad / thin-film store over main core, in several speed
//! ratios) and compute, for a range of block sizes, the break-even
//! number of uses beyond which promotion pays — then check the
//! prediction against a simulated access stream.

use dsa_core::clock::Cycles;
use dsa_exec::{jobs_from_env, SimGrid};
use dsa_metrics::table::Table;
use dsa_storage::hierarchy::Hierarchy;
use dsa_storage::level::{LevelKind, LevelSpec};

fn level(name: &str, cycle_ns: u64, capacity: u64) -> LevelSpec {
    LevelSpec {
        name: name.into(),
        kind: LevelKind::Core,
        capacity,
        latency: Cycles::from_nanos(cycle_ns),
        word_time: Cycles::from_nanos(cycle_ns),
    }
}

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_14_promotion", &[]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_14_promotion");
    println!("E14: promotion between directly addressable storage levels\n");
    let mut t = Table::new(&[
        "fast/slow cycle",
        "block 8",
        "block 64",
        "block 512",
        "block 4096",
    ])
    .with_title("break-even uses for promotion (uses needed to repay the move)");
    // Each speed ratio builds its own hierarchy — an independent cell.
    let grid = SimGrid::new(vec![
        (200u64, 2_000u64),
        (500, 2_000),
        (1_000, 8_000),
        (200, 8_000),
    ]);
    for row in grid.run(jobs_from_env(), |_, &(fast_ns, slow_ns)| {
        let h = Hierarchy::new(vec![
            level("fast", fast_ns, 4_096),
            level("slow", slow_ns, 1 << 20),
        ])
        .expect("valid hierarchy");
        let mut row = vec![format!("{fast_ns} ns / {slow_ns} ns")];
        for block in [8u64, 64, 512, 4096] {
            let n = h
                .break_even_uses(1, 0, block)
                .expect("fast level is faster");
            row.push(n.to_string());
        }
        row
    }) {
        t.row_owned(row);
    }
    println!("{t}");
    metrics.table("break_even", &t);

    // Check the arithmetic against a simulated stream: an item of 64
    // words used k times, with and without promotion, on the 200/2000
    // hierarchy.
    let h = Hierarchy::new(vec![
        level("fast", 200, 4_096),
        level("slow", 2_000, 1 << 20),
    ])
    .expect("valid hierarchy");
    let block = 64u64;
    let break_even = h.break_even_uses(1, 0, block).expect("faster level");
    let mut t = Table::new(&["uses", "stay in slow", "promote first", "winner"]).with_title(
        &format!("simulated total time, 64-word item (break-even = {break_even})"),
    );
    for uses in [
        break_even / 2,
        break_even - 1,
        break_even,
        break_even + 1,
        break_even * 2,
    ] {
        let stay = h.levels()[1].access_time() * uses;
        let promote = h.transfer(1, 0, block) + h.levels()[0].access_time() * uses;
        let winner = if promote < stay {
            "promote"
        } else if promote == stay {
            "tie"
        } else {
            "stay"
        };
        t.row_owned(vec![
            uses.to_string(),
            stay.to_string(),
            promote.to_string(),
            winner.to_owned(),
        ]);
    }
    println!("{t}");
    metrics.table("simulated", &t);
    metrics.emit();
    println!(
        "the break-even count scales linearly with block size and shrinks\n\
         as the speed gap widens: promoting a 4K block into a scratchpad\n\
         only pays for items used thousands of times, which is why such\n\
         levels hold index words and descriptors (the B8500's 44-word\n\
         store) rather than data pages."
    );
}
