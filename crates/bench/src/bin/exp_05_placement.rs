//! E5 — §Placement Strategies: best-fit, two-ends, and friends.
//!
//! "Once it is decided that some information is to be fetched, then some
//! strategy is needed for deciding where to put the information ... On
//! such systems, careful placement can considerably reduce storage
//! fragmentation." We drive every placement policy (plus the Rice chain
//! and a buddy baseline) with the same allocation/free stream at several
//! load factors and report the costs the paper says the choice trades
//! off: fragmentation, failures, and search ("bookkeeping") length.
//!
//! Pass `--trace-out <path>` to dump the probe event stream of one
//! representative run (best-fit, first size distribution, highest
//! load) as JSONL. `--jobs N` fans the policy rows of each table
//! across N workers; any width prints the same bytes.

use dsa_core::access::AllocEvent;
use dsa_exec::{jobs_from_env, trace_out_from_env, SimGrid};
use dsa_freelist::frag::FragReport;
use dsa_freelist::freelist::{FreeListAllocator, Placement};
use dsa_freelist::rice::RiceAllocator;
use dsa_freelist::segregated::SegregatedAllocator;
use dsa_metrics::table::Table;
use dsa_probe::{JsonlRecorder, LatencyProbe, Probe, Stamp};
use dsa_trace::allocstream::{AllocStreamCfg, SizeDist};
use dsa_trace::rng::Rng64;

const CAPACITY: u64 = 32_768;
const EVENTS: usize = 60_000;

struct Outcome {
    failures: u64,
    utilization: f64,
    ext_frag: f64,
    holes: u64,
    mean_search: f64,
}

fn drive_freelist<P: Probe + ?Sized>(
    policy: Placement,
    events: &[AllocEvent],
    probe: &mut P,
) -> Outcome {
    let mut a = FreeListAllocator::new(CAPACITY, policy);
    let mut failures = 0;
    let mut util_sum = 0.0;
    let mut frag_sum = 0.0;
    let mut hole_sum = 0u64;
    let mut samples = 0u64;
    let mut dropped: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for (i, e) in events.iter().enumerate() {
        let at = Stamp::vtime(i as u64);
        match *e {
            AllocEvent::Alloc(r) => {
                if a.alloc_probed(r.id, r.size, at, probe).is_err() {
                    failures += 1;
                    dropped.insert(r.id);
                }
            }
            AllocEvent::Free { id } => {
                if !dropped.remove(&id) {
                    a.free_probed(id, at, probe).expect("live id");
                }
            }
        }
        if i % 64 == 0 {
            let f = FragReport::capture(&a);
            util_sum += a.utilization();
            frag_sum += f.external_frag;
            hole_sum += f.holes;
            samples += 1;
        }
    }
    Outcome {
        failures,
        utilization: util_sum / samples as f64,
        ext_frag: frag_sum / samples as f64,
        holes: hole_sum / samples,
        mean_search: a.stats().mean_search(),
    }
}

fn drive_rice<P: Probe + ?Sized>(events: &[AllocEvent], probe: &mut P) -> Outcome {
    let mut a = RiceAllocator::new(CAPACITY);
    let mut failures = 0;
    let mut util_sum = 0.0;
    let mut chain_sum = 0u64;
    let mut samples = 0u64;
    let mut dropped: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for (i, e) in events.iter().enumerate() {
        let at = Stamp::vtime(i as u64);
        match *e {
            AllocEvent::Alloc(r) => {
                if a.alloc_probed(r.id, r.size, r.id, at, probe).is_err() {
                    failures += 1;
                    dropped.insert(r.id);
                }
            }
            AllocEvent::Free { id } => {
                if !dropped.remove(&id) {
                    a.free_probed(id, at, probe).expect("live id");
                }
            }
        }
        if i % 64 == 0 {
            util_sum += 1.0 - a.free_words() as f64 / CAPACITY as f64;
            chain_sum += a.chain_len() as u64;
            samples += 1;
        }
    }
    let probes = a.stats().probes as f64;
    let attempts = (a.stats().allocs + a.stats().failures) as f64;
    Outcome {
        failures,
        utilization: util_sum / samples as f64,
        ext_frag: f64::NAN, // chain never coalesces eagerly; holes stand in
        holes: chain_sum / samples,
        mean_search: probes / attempts,
    }
}

fn drive_segregated(events: &[AllocEvent]) -> Outcome {
    let mut a = SegregatedAllocator::power_of_two(CAPACITY, 16, 2048);
    let mut failures = 0;
    let mut util_sum = 0.0;
    let mut samples = 0u64;
    let mut dropped: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for (i, e) in events.iter().enumerate() {
        match *e {
            AllocEvent::Alloc(r) => {
                if a.alloc(r.id, r.size).is_err() {
                    failures += 1;
                    dropped.insert(r.id);
                }
            }
            AllocEvent::Free { id } => {
                if !dropped.remove(&id) {
                    a.free(id).expect("live id");
                }
            }
        }
        if i % 64 == 0 {
            util_sum += 1.0 - a.free_words() as f64 / CAPACITY as f64;
            samples += 1;
        }
    }
    Outcome {
        failures,
        utilization: util_sum / samples as f64,
        ext_frag: f64::NAN,
        holes: 0,
        mean_search: 1.0, // a pop from the class list
    }
}

/// One row of a table: a policy, the Rice chain, or the segregated
/// baseline — an independent simulation over the shared event stream.
#[derive(Clone)]
enum RowKind {
    Policy(Placement),
    Rice,
    Segregated,
}

fn row_for(kind: &RowKind, events: &[AllocEvent]) -> Vec<String> {
    match kind {
        RowKind::Policy(policy) => {
            let mut probe = LatencyProbe::new();
            let o = drive_freelist(*policy, events, &mut probe);
            vec![
                policy.label().to_owned(),
                o.failures.to_string(),
                format!("{:.1}%", o.utilization * 100.0),
                format!("{:.3}", o.ext_frag),
                o.holes.to_string(),
                format!("{:.1}", o.mean_search),
                probe.search_len().quantile(0.95).to_string(),
            ]
        }
        RowKind::Rice => {
            let mut probe = LatencyProbe::new();
            let o = drive_rice(events, &mut probe);
            vec![
                "Rice chain".to_owned(),
                o.failures.to_string(),
                format!("{:.1}%", o.utilization * 100.0),
                "n/a".to_owned(),
                o.holes.to_string(),
                format!("{:.1}", o.mean_search),
                probe.search_len().quantile(0.95).to_string(),
            ]
        }
        RowKind::Segregated => {
            let o = drive_segregated(events);
            vec![
                "segregated 2^k".to_owned(),
                o.failures.to_string(),
                format!("{:.1}%", o.utilization * 100.0),
                "n/a".to_owned(),
                "-".to_owned(),
                format!("{:.1}", o.mean_search),
                "1".to_owned(),
            ]
        }
    }
}

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_05_placement", &[dsa_exec::cli::TRACE_OUT]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_05_placement");
    let trace_out = trace_out_from_env();
    let jobs = jobs_from_env();
    println!("E5: placement strategies under steady allocation churn\n");
    for (di, (dist_name, sizes)) in [
        (
            "exponential mean 80",
            SizeDist::Exponential {
                mean: 80.0,
                cap: 2000,
            },
        ),
        (
            "bimodal 16/900 (90% small)",
            SizeDist::Bimodal {
                small: 16,
                large: 900,
                p_small: 0.9,
            },
        ),
    ]
    .into_iter()
    .enumerate()
    {
        for target in [0.70f64, 0.85, 0.95] {
            let cfg = AllocStreamCfg {
                sizes,
                mean_lifetime: 300.0,
                target_live_words: (CAPACITY as f64 * target) as u64,
            };
            let events = cfg.generate(EVENTS, &mut Rng64::new(55));
            // Dump one representative probed run (best-fit, first
            // distribution, highest load) when asked.
            if di == 0 && target == 0.95 {
                if let Some(path) = &trace_out {
                    let mut rec = JsonlRecorder::new(200_000);
                    drive_freelist(Placement::BestFit, &events, &mut rec);
                    rec.write_to(path).expect("writable --trace-out path");
                    println!(
                        "trace-out: {} events ({} dropped) -> {}\n",
                        rec.len(),
                        rec.dropped(),
                        path.display()
                    );
                }
            }
            let mut t = Table::new(&[
                "policy",
                "failures",
                "mean util",
                "ext frag",
                "holes",
                "search len",
                "p95 search",
            ])
            .with_title(&format!(
                "{dist_name}, target load {target:.0}%",
                target = target * 100.0
            ));
            let grid = SimGrid::new(vec![
                RowKind::Policy(Placement::FirstFit),
                RowKind::Policy(Placement::NextFit),
                RowKind::Policy(Placement::BestFit),
                RowKind::Policy(Placement::WorstFit),
                RowKind::Policy(Placement::TwoEnds { threshold: 256 }),
                RowKind::Rice,
                RowKind::Segregated,
            ]);
            for row in grid.run(jobs, |_, kind| row_for(kind, &events)) {
                t.row_owned(row);
            }
            println!("{t}");
            metrics.table(&format!("dist_{di}_load_{}", (target * 100.0) as u32), &t);
        }
    }
    metrics.emit();
    println!(
        "best-fit and first-fit hold fragmentation down at the price of a\n\
         longer search; two-ends buys a short search by keeping small and\n\
         large blocks apart (its advantage grows on the bimodal stream);\n\
         worst-fit destroys large holes and fails first; the Rice chain's\n\
         deferred coalescing keeps more, smaller holes but searches only\n\
         the inactive chain; segregated lists answer in one probe but pay\n\
         with rounding waste and storage trapped in the wrong class —\n\
         the 'number of different allocation units' trade, both ends."
    );
}
