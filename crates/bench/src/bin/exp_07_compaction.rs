//! E7 — compaction economics: accept fragmentation, or move information?
//!
//! §Uniformity offers "two main alternative courses of action": accept
//! the decreased storage utilization (reasonable "when the average
//! allocation request ... is quite small compared with the extent of
//! physical storage" — Wald), or "move information around in storage so
//! as to remove any unused spaces". Special hardware facility (iii)
//! exists because the second course has a data-movement bill.
//!
//! We push a best-fit allocator to ever higher target loads; whenever a
//! request fails we either drop it (course i) or compact and retry
//! (course ii), pricing each compaction through a programmed copy loop
//! versus an autonomous storage-to-storage channel on a 2 µs core.

use dsa_core::access::AllocEvent;
use dsa_core::clock::Cycles;
use dsa_exec::{jobs_from_env, SimGrid};
use dsa_freelist::compaction::compact;
use dsa_freelist::freelist::{FreeListAllocator, Placement};
use dsa_metrics::table::Table;
use dsa_storage::channel::PackingChannel;
use dsa_trace::allocstream::{AllocStreamCfg, SizeDist};
use dsa_trace::rng::Rng64;

const CAPACITY: u64 = 32_768;
const EVENTS: usize = 40_000;

fn stream(target: f64, mean_size: f64) -> Vec<AllocEvent> {
    AllocStreamCfg {
        sizes: SizeDist::Exponential {
            mean: mean_size,
            cap: 4000,
        },
        mean_lifetime: 300.0,
        target_live_words: (CAPACITY as f64 * target) as u64,
    }
    .generate(EVENTS, &mut Rng64::new(7))
}

struct RunOut {
    failures: u64,
    compactions: u64,
    words_moved: u64,
    cpu_prog: Cycles,
    cpu_chan: Cycles,
}

fn run(events: &[AllocEvent], compact_on_failure: bool) -> RunOut {
    let mut a = FreeListAllocator::new(CAPACITY, Placement::BestFit);
    let mut prog = PackingChannel::programmed(Cycles::from_micros(2));
    let mut chan = PackingChannel::autonomous(Cycles::from_micros(2));
    let mut out = RunOut {
        failures: 0,
        compactions: 0,
        words_moved: 0,
        cpu_prog: Cycles::ZERO,
        cpu_chan: Cycles::ZERO,
    };
    let mut dropped: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for e in events {
        match *e {
            AllocEvent::Alloc(r) => {
                if a.alloc(r.id, r.size).is_ok() {
                    continue;
                }
                if compact_on_failure && a.free_words() >= r.size {
                    let report = compact(&mut a, |_, _, _, len| {
                        out.cpu_prog += prog.charge_move(len).0;
                        out.cpu_chan += chan.charge_move(len).0;
                    });
                    out.compactions += 1;
                    out.words_moved += report.words_moved;
                    if a.alloc(r.id, r.size).is_ok() {
                        continue;
                    }
                }
                out.failures += 1;
                dropped.insert(r.id);
            }
            AllocEvent::Free { id } => {
                if !dropped.remove(&id) {
                    a.free(id).expect("live id");
                }
            }
        }
    }
    out
}

fn main() {
    dsa_exec::cli::enforce_standard_flags("exp_07_compaction", &[]);
    let mut metrics = dsa_bench::metrics::RunMetrics::new("exp_07_compaction");
    println!("E7: compaction — corrective data movement vs accepted fragmentation\n");
    let jobs = jobs_from_env();
    for mean_size in [80.0f64, 800.0] {
        let mut t = Table::new(&[
            "target load",
            "failures (accept)",
            "failures (compact)",
            "compactions",
            "words moved",
            "CPU copy-loop",
            "CPU channel",
        ])
        .with_title(&format!(
            "best-fit, 32K words, exponential mean {mean_size:.0}-word requests"
        ));
        // Each target load regenerates its stream from a fixed seed and
        // replays it under both courses of action — an independent cell.
        let grid = SimGrid::new(vec![0.80f64, 0.90, 0.95, 0.98]);
        for row in grid.run(jobs, |_, &target| {
            let events = stream(target, mean_size);
            let accept = run(&events, false);
            let pack = run(&events, true);
            vec![
                format!("{:.0}%", target * 100.0),
                accept.failures.to_string(),
                pack.failures.to_string(),
                pack.compactions.to_string(),
                pack.words_moved.to_string(),
                pack.cpu_prog.to_string(),
                pack.cpu_chan.to_string(),
            ]
        }) {
            t.row_owned(row);
        }
        println!("{t}");
        metrics.table(&format!("mean_{}", mean_size as u64), &t);
    }
    metrics.emit();
    println!(
        "small requests (relative to storage): fragmentation rarely blocks\n\
         anything and accepting it is free — Wald's observation. large\n\
         requests at high load: only compaction sustains the allocation\n\
         rate, and the autonomous packing channel (facility iii) cuts the\n\
         CPU bill of each pass by an order of magnitude versus the\n\
         programmed copy loop."
    );
}
