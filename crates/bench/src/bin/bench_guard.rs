//! `bench_guard` — CI's gate on the committed performance records.
//!
//! Two modes, both driven from the repo root:
//!
//! * `bench_guard` — schema-only: every `BENCH_*.json` at the root
//!   must parse as strict JSON and carry the record spine
//!   (`pr`/`title`/`bench`/`units`/`host`).
//! * `bench_guard --log smoke.txt` — schema plus regression: the log
//!   is a captured `DSA_BENCH_SMOKE=1 cargo bench` run; every guarded
//!   median (see `dsa_bench::guard::GUARDS`) must come in at or under
//!   3× its committed value. A guard whose benchmark vanished from the
//!   log fails too — renames must update the guard table, not dodge
//!   it.
//!
//! Exit status is the verdict: 0 clean, 1 with every violation listed
//! on stderr. No flags beyond `--log` and `--root` — this is a CI
//! tool, not an experiment, so it takes none of the experiment flags.

use std::path::PathBuf;
use std::process::ExitCode;

use dsa_bench::guard::{
    check_guards, parse, parse_smoke_log, render_verdicts, validate_bench_record, Json,
};

fn parse_args() -> Result<(PathBuf, Option<PathBuf>), String> {
    let mut root = PathBuf::from(".");
    let mut log = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--log" => {
                log = Some(PathBuf::from(args.next().ok_or("--log needs a path")?));
            }
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a path")?);
            }
            other => {
                return Err(format!(
                    "unrecognized argument: {other}\nusage: bench_guard [--root DIR] [--log FILE]"
                ))
            }
        }
    }
    Ok((root, log))
}

fn load_records(root: &PathBuf) -> Result<Vec<(String, Json)>, String> {
    let mut names: Vec<String> = std::fs::read_dir(root)
        .map_err(|e| format!("reading {}: {e}", root.display()))?
        .filter_map(|entry| {
            entry
                .ok()
                .map(|e| e.file_name().to_string_lossy().into_owned())
        })
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("no BENCH_*.json records under {}", root.display()));
    }
    let mut records = Vec::new();
    for name in names {
        let path = root.join(&name);
        let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {name}: {e}"))?;
        let json = parse(&text).map_err(|e| format!("{name}: {e}"))?;
        validate_bench_record(&name, &json)?;
        records.push((name, json));
    }
    Ok(records)
}

fn run() -> Result<(), String> {
    let (root, log) = parse_args()?;
    let records = load_records(&root)?;
    println!(
        "bench_guard: {} committed record(s) parse and carry the record spine",
        records.len()
    );
    let Some(log_path) = log else {
        println!("bench_guard: no --log given, schema-only run");
        return Ok(());
    };
    let log_text = std::fs::read_to_string(&log_path)
        .map_err(|e| format!("reading {}: {e}", log_path.display()))?;
    let smoke = parse_smoke_log(&log_text);
    if smoke.is_empty() {
        return Err(format!(
            "{}: no '  name: median N ns/iter' lines — is this a cargo bench log?",
            log_path.display()
        ));
    }
    let verdicts = check_guards(&records, &smoke)?;
    print!("{}", render_verdicts(&verdicts));
    let failed: Vec<_> = verdicts.iter().filter(|v| !v.pass).collect();
    if failed.is_empty() {
        println!(
            "bench_guard: {} guarded median(s) within 3x of their committed values",
            verdicts.len()
        );
        Ok(())
    } else {
        Err(format!(
            "{} guarded median(s) regressed beyond 3x — either fix the \
             regression or re-measure and update the committed record",
            failed.len()
        ))
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_guard: {msg}");
            ExitCode::FAILURE
        }
    }
}
